"""The :class:`Recorder`: spans, counters, gauges, histograms, events.

Telemetry is a **pure side channel**: a recorder only ever *receives*
values from instrumented code — nothing an instrumented module computes
may depend on what the recorder holds.  The repro-lint
``telemetry-side-channel`` rule enforces that contract in the
deterministic and distributed zones, which is why the write API
(:meth:`Recorder.span`, :meth:`~Recorder.count`, :meth:`~Recorder.gauge`,
:meth:`~Recorder.observe`, :meth:`~Recorder.event`) and the read API
(:meth:`~Recorder.snapshot`, :meth:`~Recorder.to_payload`) are kept
sharply separate.

Clocks are **injected**: a :class:`Recorder` is constructed with the
monotonic callable it timestamps with, so instrumented code in the
deterministic zone never names a process clock (``repro.telemetry`` is
the only module that touches ``time``, and it is zoned *free*).  Tests
inject fake clocks for deterministic timestamps; the env-activated
recorder (:func:`repro.telemetry.recorder_from_env`) injects
``time.monotonic``.

The default recorder is a :class:`NullRecorder`, so the cost of an
uninstrumented run is one attribute check (``recorder.enabled``) per
instrumentation site plus a no-op call where sites do not guard.
"""

from __future__ import annotations

import os
import threading
from typing import Callable

__all__ = ["NullRecorder", "Recorder"]


class _NullSpan:
    """A reusable no-op context manager (one allocation per process)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """The do-nothing recorder instrumented code sees by default.

    Every write-API method is a no-op and :meth:`span` hands back one
    shared context manager, so instrumentation costs an attribute lookup
    and a trivially-inlined call when telemetry is off.  ``enabled`` is
    ``False`` so hot loops can skip even that.
    """

    enabled = False
    process = "null"
    pid = 0

    def now(self) -> float:
        return 0.0

    def span(self, name: str, cat: str = "", **args) -> _NullSpan:
        return _NULL_SPAN

    def complete(
        self, name: str, duration: float, cat: str = "", **args
    ) -> None:
        return None

    def count(self, name: str, delta: float = 1.0) -> None:
        return None

    def gauge(self, name: str, value: float) -> None:
        return None

    def observe(self, name: str, value: float) -> None:
        return None

    def event(self, name: str, cat: str = "", **args) -> None:
        return None

    def snapshot(self) -> dict:
        return {}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "NullRecorder()"


class _Span:
    """One in-flight span; records itself on exit."""

    __slots__ = ("_recorder", "name", "cat", "args", "_start")

    def __init__(self, recorder: "Recorder", name: str, cat: str, args: dict):
        self._recorder = recorder
        self.name = name
        self.cat = cat
        self.args = args
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = self._recorder.now()
        return self

    def __exit__(self, *exc_info) -> None:
        end = self._recorder.now()
        self._recorder._record_span(
            self.name, self.cat, self._start, end - self._start, self.args
        )


class Recorder:
    """Thread-safe in-memory telemetry sink with an injected clock.

    Parameters
    ----------
    clock:
        Monotonic callable the recorder timestamps with.  Injected, never
        defaulted: the deterministic zone must not name a process clock,
        and tests want fake clocks.
    process:
        Display name of this process on the merged timeline (workers use
        their worker id).  Mutable — a worker renames its recorder once
        it knows its identity.
    wall:
        Optional wall-clock callable used *only* when a shard is written,
        to anchor this process's monotonic timeline to an absolute one so
        shards from different processes merge coherently.  ``None`` falls
        back to ``time.time`` at write time (see
        :func:`repro.telemetry.shards.write_shard`).
    """

    enabled = True

    def __init__(
        self,
        clock: Callable[[], float],
        process: str = "main",
        wall: Callable[[], float] | None = None,
    ) -> None:
        if not callable(clock):
            raise TypeError("clock must be a zero-argument callable")
        self._clock = clock
        self._wall = wall
        self.process = str(process)
        self.pid = os.getpid()
        self._lock = threading.Lock()
        self._spans: list[dict] = []
        self._events: list[dict] = []
        self._gauge_samples: list[dict] = []
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        #: name -> [count, total, min, max] (streaming, bounded memory —
        #: a million observations cost four floats, not a million).
        self._hists: dict[str, list[float]] = {}
        #: name -> [count, total_seconds] per span name.
        self._span_totals: dict[str, list[float]] = {}

    # -- write API (the only surface instrumented zones may use) ---------

    def now(self) -> float:
        """The injected clock's current reading (seconds, monotonic).

        The value exists to be handed *back* to this recorder (phase
        timing: ``t0 = rec.now(); ...; rec.observe(name, rec.now() - t0)``)
        — the ``telemetry-side-channel`` lint rule rejects any flow of it
        into result payloads.
        """
        return float(self._clock())

    def span(self, name: str, cat: str = "", **args) -> _Span:
        """A context manager timing one named region."""
        return _Span(self, name, cat, args)

    def complete(
        self, name: str, duration: float, cat: str = "", **args
    ) -> None:
        """Record a span retrospectively from a measured duration.

        Used where the timed region ran somewhere the recorder could not
        see (a process-pool child): the span ends now and is backdated by
        ``duration``.
        """
        end = self.now()
        self._record_span(name, cat, end - float(duration), float(duration), args)

    def count(self, name: str, delta: float = 1.0) -> None:
        """Add ``delta`` to a monotonically accumulating counter."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + float(delta)

    def gauge(self, name: str, value: float) -> None:
        """Sample a point-in-time level (queue depth, fleet size)."""
        ts = self.now()
        with self._lock:
            self._gauges[name] = float(value)
            self._gauge_samples.append(
                {"name": name, "ts": ts, "value": float(value)}
            )

    def observe(self, name: str, value: float) -> None:
        """Feed one observation into a streaming histogram."""
        value = float(value)
        with self._lock:
            stats = self._hists.get(name)
            if stats is None:
                self._hists[name] = [1.0, value, value, value]
            else:
                stats[0] += 1.0
                stats[1] += value
                stats[2] = min(stats[2], value)
                stats[3] = max(stats[3], value)

    def event(self, name: str, cat: str = "", **args) -> None:
        """Record an instantaneous structured event."""
        ts = self.now()
        with self._lock:
            self._events.append(
                {"name": name, "cat": cat, "ts": ts,
                 "tid": threading.get_ident(), "args": args}
            )

    def _record_span(
        self, name: str, cat: str, start: float, duration: float, args: dict
    ) -> None:
        with self._lock:
            self._spans.append(
                {"name": name, "cat": cat, "ts": start, "dur": duration,
                 "tid": threading.get_ident(), "args": args}
            )
            totals = self._span_totals.get(name)
            if totals is None:
                self._span_totals[name] = [1.0, duration]
            else:
                totals[0] += 1.0
                totals[1] += duration

    # -- read API (free zone only: shards, reports, benchmarks) ----------

    def snapshot(self) -> dict:
        """Point-in-time aggregate view (counters, gauges, histogram
        stats, per-name span totals).  Free-zone callers only."""
        with self._lock:
            return {
                "process": self.process,
                "pid": self.pid,
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "hists": {
                    name: {
                        "count": int(stats[0]),
                        "total": stats[1],
                        "min": stats[2],
                        "max": stats[3],
                        "mean": stats[1] / stats[0] if stats[0] else 0.0,
                    }
                    for name, stats in self._hists.items()
                },
                "span_totals": {
                    name: {"count": int(totals[0]), "total_s": totals[1]}
                    for name, totals in self._span_totals.items()
                },
                "spans": len(self._spans),
                "events": len(self._events),
            }

    def to_payload(self) -> dict:
        """The full dump a shard serializes (spans, events, gauge series,
        aggregates).  Free-zone callers only."""
        snapshot = self.snapshot()
        with self._lock:
            return {
                **snapshot,
                "span_records": [dict(s) for s in self._spans],
                "event_records": [dict(e) for e in self._events],
                "gauge_records": [dict(g) for g in self._gauge_samples],
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Recorder(process={self.process!r}, spans={len(self._spans)}, "
            f"counters={len(self._counters)})"
        )
