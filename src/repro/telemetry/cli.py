"""``python -m repro.telemetry`` — report on recorded shards.

Subcommand ``report`` merges the shard directory and prints an aggregate
summary table; ``--trace out.json`` additionally writes a Chrome
trace-event file loadable in Perfetto (https://ui.perfetto.dev) or
chrome://tracing.
"""

from __future__ import annotations

import argparse
import json
import sys

from . import default_dir
from .chrome import write_chrome_trace
from .shards import merge_shards, merge_snapshots, read_shards

__all__ = ["build_parser", "main", "summary_table"]


def summary_table(aggregate: dict, processes: list[dict]) -> str:
    """Render the merged aggregate as an aligned plain-text table."""
    lines = []
    if processes:
        lines.append("processes:")
        for proc in processes:
            lines.append(f"  {proc['process']} (pid {proc['pid']})")
    counters = aggregate.get("counters", {})
    if counters:
        lines.append("counters:")
        width = max(len(n) for n in counters)
        for name in sorted(counters):
            lines.append(f"  {name:<{width}}  {counters[name]:g}")
    gauges = aggregate.get("gauges", {})
    if gauges:
        lines.append("gauges (last):")
        width = max(len(n) for n in gauges)
        for name in sorted(gauges):
            lines.append(f"  {name:<{width}}  {gauges[name]:g}")
    hists = aggregate.get("hists", {})
    if hists:
        lines.append("histograms:")
        width = max(len(n) for n in hists)
        for name in sorted(hists):
            st = hists[name]
            lines.append(
                f"  {name:<{width}}  n={st['count']} mean={st['mean']:.6g}"
                f" min={st['min']:.6g} max={st['max']:.6g}"
            )
    span_totals = aggregate.get("span_totals", {})
    if span_totals:
        lines.append("span totals:")
        width = max(len(n) for n in span_totals)
        for name in sorted(span_totals):
            st = span_totals[name]
            lines.append(
                f"  {name:<{width}}  n={st['count']} total={st['total_s']:.6g}s"
            )
    if not lines:
        lines.append("(no telemetry recorded)")
    return "\n".join(lines)


def cmd_report(ns: argparse.Namespace) -> int:
    directory = ns.dir if ns.dir is not None else default_dir()
    merged = merge_shards(directory)
    aggregate = merge_snapshots(shard["meta"] for shard in read_shards(directory))
    if ns.trace:
        path = write_chrome_trace(directory, ns.trace)
        print(f"chrome trace: {path} ({len(merged['records'])} records)")
    if ns.json:
        print(json.dumps(aggregate, sort_keys=True, indent=2))
    else:
        print(summary_table(aggregate, merged["processes"]))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.telemetry",
        description="Inspect and export recorded telemetry shards.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    report = sub.add_parser(
        "report", help="merge shards; print summary, optionally export trace"
    )
    report.add_argument(
        "--dir",
        default=None,
        help="shard directory (default: $REPRO_TELEMETRY_DIR or .repro-telemetry)",
    )
    report.add_argument(
        "--trace",
        default=None,
        metavar="OUT",
        help="also write a Chrome trace-event JSON file to OUT",
    )
    report.add_argument(
        "--json", action="store_true", help="print the aggregate as JSON"
    )
    report.set_defaults(func=cmd_report)
    return parser


def main(argv: list[str] | None = None) -> int:
    ns = build_parser().parse_args(argv)
    return ns.func(ns)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
