"""Chrome trace-event export (viewable in Perfetto / chrome://tracing).

Maps the merged shard timeline onto the trace-event JSON format:

* one ``M`` (metadata) ``process_name`` event per shard process,
* ``X`` (complete) events for spans, ``dur`` in microseconds,
* ``i`` (instant) events for structured events,
* ``C`` (counter) events for gauge samples, so queue depth renders as a
  stacked area chart under the broker's track.

Timestamps are the shards' absolute timeline (wall-anchored monotonic)
rebased to the earliest record so traces start near t=0 regardless of
host uptime.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from .shards import merge_shards

__all__ = ["chrome_trace", "write_chrome_trace"]

_US = 1_000_000.0


def _pid_index(processes: list[dict]) -> dict[tuple[str, int], int]:
    """Stable small display pids — one per (process, os-pid) shard."""
    index = {}
    for position, proc in enumerate(processes, start=1):
        index[(str(proc["process"]), int(proc["pid"]))] = position
    return index


def chrome_trace(directory: str | os.PathLike) -> dict:
    """Build a ``{"traceEvents": [...]}`` document from shard files."""
    merged = merge_shards(directory)
    processes = merged["processes"]
    records = merged["records"]
    pids = _pid_index(processes)

    base = min((r["abs_ts"] for r in records), default=0.0)
    events: list[dict] = []
    for proc in processes:
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pids[(str(proc["process"]), int(proc["pid"]))],
                "tid": 0,
                "args": {"name": f"{proc['process']} (pid {proc['pid']})"},
            }
        )

    for record in records:
        pid = pids[(str(record["process"]), int(record["pid"]))]
        ts_us = (record["abs_ts"] - base) * _US
        kind = record.get("kind")
        if kind == "span":
            events.append(
                {
                    "ph": "X",
                    "name": record.get("name", "?"),
                    "cat": record.get("cat") or "span",
                    "pid": pid,
                    "tid": record.get("tid", 0),
                    "ts": ts_us,
                    "dur": float(record.get("dur", 0.0)) * _US,
                    "args": record.get("args", {}),
                }
            )
        elif kind == "event":
            events.append(
                {
                    "ph": "i",
                    "s": "t",
                    "name": record.get("name", "?"),
                    "cat": record.get("cat") or "event",
                    "pid": pid,
                    "tid": record.get("tid", 0),
                    "ts": ts_us,
                    "args": record.get("args", {}),
                }
            )
        elif kind == "gauge":
            events.append(
                {
                    "ph": "C",
                    "name": record.get("name", "?"),
                    "pid": pid,
                    "tid": 0,
                    "ts": ts_us,
                    "args": {"value": float(record.get("value", 0.0))},
                }
            )

    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    directory: str | os.PathLike, out: str | os.PathLike
) -> Path:
    """Write the Chrome trace for ``directory``'s shards to ``out``."""
    out = Path(out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(chrome_trace(directory)), encoding="utf-8")
    return out
