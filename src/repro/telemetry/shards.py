"""Per-process telemetry shards and their merge into one timeline.

Each instrumented process dumps its recorder to a JSONL *shard*
(``shard-<process>-<pid>.jsonl``) in the telemetry directory.  The first
line is a ``meta`` record carrying the wall−monotonic clock *offset* of
that process, captured at write time; every later line is one span,
event, or gauge sample stamped with the process's monotonic clock.  The
collector (:func:`merge_shards`) rebases each record onto the absolute
timeline (``abs_ts = ts + offset``) so a distributed run — submitter,
broker, N workers, each with its own monotonic epoch — merges into one
coherent trace.

Writes are atomic (tmp file + ``os.replace``) so a worker can re-flush
its shard periodically for the live ``sweep status --watch`` view
without readers ever seeing a torn file.

This module is the one place telemetry touches the real clocks, and it
lives in the *free* zone; instrumented zones only ever hold a
:class:`~repro.telemetry.recorder.Recorder` with an injected clock.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Iterable

from .recorder import Recorder

__all__ = [
    "merge_shards",
    "merge_snapshots",
    "read_shard",
    "read_shards",
    "shard_path",
    "write_shard",
]

SHARD_PREFIX = "shard-"
SHARD_SUFFIX = ".jsonl"


def shard_path(directory: str | os.PathLike, recorder: Recorder) -> Path:
    """Where ``recorder``'s process writes its shard."""
    safe = "".join(
        ch if (ch.isalnum() or ch in "-_.") else "_" for ch in recorder.process
    )
    return Path(directory) / f"{SHARD_PREFIX}{safe}-{recorder.pid}{SHARD_SUFFIX}"


def write_shard(directory: str | os.PathLike, recorder: Recorder) -> Path:
    """Atomically dump ``recorder`` to its shard file.

    The meta line anchors the shard: ``offset = wall() - clock()`` read
    back-to-back at write time, so ``record_ts + offset`` is an absolute
    timestamp.  Re-flushing overwrites the whole shard — recorders are
    append-only in memory, so a later flush is a superset of an earlier
    one and replacing is safe.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    wall = recorder._wall if recorder._wall is not None else time.time
    offset = float(wall()) - recorder.now()
    payload = recorder.to_payload()

    lines = [
        json.dumps(
            {
                "kind": "meta",
                "process": payload["process"],
                "pid": payload["pid"],
                "offset": offset,
                "counters": payload["counters"],
                "gauges": payload["gauges"],
                "hists": payload["hists"],
                "span_totals": payload["span_totals"],
            },
            sort_keys=True,
        )
    ]
    for span in payload["span_records"]:
        lines.append(json.dumps({"kind": "span", **span}, sort_keys=True))
    for event in payload["event_records"]:
        lines.append(json.dumps({"kind": "event", **event}, sort_keys=True))
    for gauge in payload["gauge_records"]:
        lines.append(json.dumps({"kind": "gauge", **gauge}, sort_keys=True))

    path = shard_path(directory, recorder)
    tmp = path.with_suffix(".tmp")
    tmp.write_text("\n".join(lines) + "\n", encoding="utf-8")
    os.replace(tmp, path)
    return path


def read_shard(path: str | os.PathLike) -> dict | None:
    """Parse one shard into ``{"meta": ..., "records": [...]}``.

    Returns ``None`` for unreadable/torn shards (a worker may be writing
    concurrently under a non-atomic filesystem; skip, don't crash).
    """
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError:
        return None
    meta = None
    records = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except ValueError:
            return None
        if obj.get("kind") == "meta":
            meta = obj
        else:
            records.append(obj)
    if meta is None:
        return None
    return {"meta": meta, "records": records}


def read_shards(directory: str | os.PathLike) -> list[dict]:
    """All parseable shards in ``directory``, sorted by filename."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    shards = []
    for path in sorted(directory.glob(f"{SHARD_PREFIX}*{SHARD_SUFFIX}")):
        shard = read_shard(path)
        if shard is not None:
            shards.append(shard)
    return shards


def merge_shards(directory: str | os.PathLike) -> dict:
    """Merge every shard in ``directory`` into one absolute timeline.

    Returns ``{"processes": [...], "records": [...]}`` where each record
    gained ``abs_ts`` (monotonic ts rebased by its shard's offset) plus
    ``process``/``pid``, and records are sorted by ``abs_ts`` (ties
    broken by process then kind then name so the order is total and
    deterministic for fake-clock tests).
    """
    processes = []
    merged = []
    for shard in read_shards(directory):
        meta = shard["meta"]
        offset = float(meta.get("offset", 0.0))
        processes.append(
            {
                "process": meta["process"],
                "pid": meta["pid"],
                "offset": offset,
                "counters": meta.get("counters", {}),
                "gauges": meta.get("gauges", {}),
                "hists": meta.get("hists", {}),
                "span_totals": meta.get("span_totals", {}),
            }
        )
        for record in shard["records"]:
            merged.append(
                {
                    **record,
                    "abs_ts": float(record.get("ts", 0.0)) + offset,
                    "process": meta["process"],
                    "pid": meta["pid"],
                }
            )
    merged.sort(
        key=lambda r: (
            r["abs_ts"],
            str(r["process"]),
            r.get("kind", ""),
            r.get("name", ""),
        )
    )
    processes.sort(key=lambda p: (str(p["process"]), p["pid"]))
    return {"processes": processes, "records": merged}


def merge_snapshots(snapshots: Iterable[dict]) -> dict:
    """Fold per-process aggregate snapshots into fleet-wide totals.

    Counters and span totals sum; gauges keep the last value per
    process under a ``process:name`` key; histograms merge by
    count/total/min/max.
    """
    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    hists: dict[str, dict] = {}
    span_totals: dict[str, dict] = {}
    for snap in snapshots:
        if not snap:
            continue
        process = snap.get("process", "?")
        for name, value in snap.get("counters", {}).items():
            counters[name] = counters.get(name, 0.0) + value
        for name, value in snap.get("gauges", {}).items():
            gauges[f"{process}:{name}"] = value
        for name, stats in snap.get("hists", {}).items():
            agg = hists.get(name)
            if agg is None:
                hists[name] = dict(stats)
            else:
                agg["count"] += stats["count"]
                agg["total"] += stats["total"]
                agg["min"] = min(agg["min"], stats["min"])
                agg["max"] = max(agg["max"], stats["max"])
                agg["mean"] = agg["total"] / agg["count"] if agg["count"] else 0.0
        for name, totals in snap.get("span_totals", {}).items():
            agg = span_totals.get(name)
            if agg is None:
                span_totals[name] = dict(totals)
            else:
                agg["count"] += totals["count"]
                agg["total_s"] += totals["total_s"]
    return {
        "counters": counters,
        "gauges": gauges,
        "hists": hists,
        "span_totals": span_totals,
    }
