"""Zero-dependency telemetry: spans, counters, gauges, Chrome traces.

Activation is environmental and lazy.  Instrumented code calls
:func:`get_recorder` and gets either the process-wide
:class:`~repro.telemetry.recorder.Recorder` (when ``REPRO_TELEMETRY`` is
truthy) or the shared :class:`~repro.telemetry.recorder.NullRecorder`
(otherwise); the cost of an uninstrumented run is one attribute check
per site.  Worker subprocesses inherit the env vars, so a distributed
sweep instruments its whole fleet with one setting.

Env vars:

* ``REPRO_TELEMETRY`` — ``1``/``true``/``yes``/``on`` enables recording.
* ``REPRO_TELEMETRY_DIR`` — where shard files land (default
  ``.repro-telemetry``).
* ``REPRO_TELEMETRY_PROCESS`` — display name for this process on the
  merged timeline (workers set it to their worker id).

The side-channel contract: recorders absorb values, they never emit
them back into results.  ``identical()`` between telemetry-on and
telemetry-off runs is asserted by tests and the ``telemetry-side-channel``
repro-lint rule polices reads in instrumented zones.
"""

from __future__ import annotations

import os
import threading
import time
from pathlib import Path

from .chrome import chrome_trace, write_chrome_trace
from .recorder import NullRecorder, Recorder
from .shards import (
    merge_shards,
    merge_snapshots,
    read_shard,
    read_shards,
    shard_path,
    write_shard,
)

__all__ = [
    "NullRecorder",
    "Recorder",
    "chrome_trace",
    "default_dir",
    "enabled_in_env",
    "flush",
    "get_recorder",
    "merge_shards",
    "merge_snapshots",
    "read_shard",
    "read_shards",
    "recorder_from_env",
    "reset_recorder",
    "set_recorder",
    "shard_path",
    "summary",
    "write_chrome_trace",
    "write_shard",
]

NULL_RECORDER = NullRecorder()

_TRUTHY = {"1", "true", "yes", "on"}

_state_lock = threading.Lock()
_recorder: Recorder | NullRecorder | None = None


def enabled_in_env(environ: dict | None = None) -> bool:
    """Whether ``REPRO_TELEMETRY`` asks for a live recorder."""
    environ = os.environ if environ is None else environ
    return str(environ.get("REPRO_TELEMETRY", "")).strip().lower() in _TRUTHY


def default_dir(environ: dict | None = None) -> Path:
    """The shard directory (``REPRO_TELEMETRY_DIR`` or ``.repro-telemetry``)."""
    environ = os.environ if environ is None else environ
    return Path(environ.get("REPRO_TELEMETRY_DIR") or ".repro-telemetry")


def recorder_from_env(environ: dict | None = None) -> Recorder | NullRecorder:
    """Build the recorder the environment asks for (no global mutation).

    Clock *references* are injected — the recorder holds
    ``time.monotonic`` as a callable; nothing here reads a clock.
    """
    environ = os.environ if environ is None else environ
    if not enabled_in_env(environ):
        return NULL_RECORDER
    process = str(environ.get("REPRO_TELEMETRY_PROCESS") or "main")
    return Recorder(time.monotonic, process=process, wall=time.time)


def get_recorder() -> Recorder | NullRecorder:
    """The process-wide recorder (env-activated, lazily constructed)."""
    global _recorder
    rec = _recorder
    if rec is None:
        with _state_lock:
            if _recorder is None:
                _recorder = recorder_from_env()
            rec = _recorder
    return rec


def set_recorder(recorder: Recorder | NullRecorder) -> None:
    """Install an explicit recorder (tests, embedding applications)."""
    global _recorder
    with _state_lock:
        _recorder = recorder


def reset_recorder() -> None:
    """Forget the process recorder; the next get re-reads the env."""
    global _recorder
    with _state_lock:
        _recorder = None


def flush(directory: str | os.PathLike | None = None) -> Path | None:
    """Write this process's shard, if telemetry is live.

    Safe to call repeatedly — each flush atomically rewrites the shard
    with everything recorded so far, which is what keeps the
    ``status --watch`` view fresh.
    """
    rec = get_recorder()
    if not rec.enabled:
        return None
    return write_shard(default_dir() if directory is None else directory, rec)


def summary(directory: str | os.PathLike | None = None) -> dict:
    """Fleet-wide aggregate: this process's snapshot + all shard metas."""
    snapshots = []
    rec = get_recorder()
    if rec.enabled:
        snapshots.append(rec.snapshot())
    directory = default_dir() if directory is None else Path(directory)
    for shard in read_shards(directory):
        meta = shard["meta"]
        if rec.enabled and meta.get("pid") == rec.pid and meta.get(
            "process"
        ) == rec.process:
            continue  # already counted via the live snapshot
        snapshots.append(meta)
    return merge_snapshots(snapshots)
