"""Deprecated front over :mod:`repro.search` (paper Section 3).

Design-space exploration moved into the budgeted-search subsystem —
variant enumeration/measurement is :mod:`repro.search.variants`, the
frontier pruning and runtime ladder are :mod:`repro.search.ladder`, the
work profiler is :mod:`repro.search.profiler`, and the scenario-space
strategies that grew out of them live beside all three.  This package
re-exports the old names so existing imports keep working; new code
should import from :mod:`repro.search`.
"""

import warnings

from repro.search.ladder import ApproxLadder, pareto_select
from repro.search.profiler import WorkProfiler
from repro.search.variants import (
    DesignSpaceExplorer,
    ExplorationResult,
    enumerate_variants,
)

warnings.warn(
    "repro.exploration is deprecated; import from repro.search instead "
    "(variants/ladder/profiler moved into the budgeted-search subsystem)",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = [
    "ApproxLadder",
    "DesignSpaceExplorer",
    "ExplorationResult",
    "WorkProfiler",
    "enumerate_variants",
    "pareto_select",
]
