"""Design-space exploration (paper Section 3).

Enumerates each app's approximate variants from its knob grid (the
ACCEPT-hints path) or from profiler-ranked sites (the gprof path), measures
quality/time/contention for every variant against precise execution, prunes
to the points near the pareto frontier within the tolerable inaccuracy, and
produces the ordered :class:`~repro.exploration.pareto.ApproxLadder` the
Pliant runtime climbs at runtime.
"""

from repro.exploration.explorer import DesignSpaceExplorer, ExplorationResult
from repro.exploration.pareto import ApproxLadder, pareto_select
from repro.exploration.profiler import WorkProfiler
from repro.exploration.space import enumerate_variants

__all__ = [
    "ApproxLadder",
    "DesignSpaceExplorer",
    "ExplorationResult",
    "WorkProfiler",
    "enumerate_variants",
    "pareto_select",
]
