"""Deprecated front: moved to :mod:`repro.search.ladder`."""

from repro.search.ladder import (  # noqa: F401
    FRONTIER_TOLERANCE,
    MAX_SELECTED,
    ApproxLadder,
    _frontier,
    pareto_select,
)

__all__ = [
    "FRONTIER_TOLERANCE",
    "MAX_SELECTED",
    "ApproxLadder",
    "pareto_select",
]
