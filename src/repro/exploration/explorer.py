"""Deprecated front: moved to :mod:`repro.search.variants`."""

from repro.search.variants import (  # noqa: F401
    _CACHE_ENV,
    DesignSpaceExplorer,
    ExplorationResult,
    _load_variants,
    _store_variants,
    default_cache_dir,
)

__all__ = [
    "DesignSpaceExplorer",
    "ExplorationResult",
    "default_cache_dir",
]
