"""Deprecated front: moved to :mod:`repro.search.variants`."""

from repro.search.variants import MAX_VARIANTS, enumerate_variants  # noqa: F401

__all__ = ["MAX_VARIANTS", "enumerate_variants"]
