"""Variant enumeration.

The paper prunes an intractable design space in two ways: ACCEPT-style
programmer hints list a handful of approximable sites per app, and for apps
without hints a profiler selects the 2-4 hottest functions.  In this
reproduction every app declares its sites as knobs; enumeration takes the
cartesian product over each knob's precise+candidate values, optionally
capped to keep run counts sane.
"""

from __future__ import annotations

import itertools

from repro.apps.base import ApproximableApp, VariantSpec
from repro.apps.knobs import Knob

#: Upper bound on enumerated variants per app; grids beyond this are
#: subsampled deterministically (every k-th combination).
MAX_VARIANTS = 96


def enumerate_variants(
    app: ApproximableApp,
    knobs: dict[str, Knob] | None = None,
    max_variants: int = MAX_VARIANTS,
) -> list[VariantSpec]:
    """All non-precise knob combinations for ``app``, precise-values allowed
    per knob so single-knob and mixed variants both appear."""
    knobs = knobs if knobs is not None else app.knobs()
    if not knobs:
        return []
    names = sorted(knobs)
    value_lists = [knobs[name].all_values() for name in names]
    specs: list[VariantSpec] = []
    for combo in itertools.product(*value_lists):
        settings = {
            name: value
            for name, value in zip(names, combo)
            if value != knobs[name].precise_value
        }
        if not settings:
            continue  # the all-precise point is handled separately
        specs.append(VariantSpec(settings))
    if len(specs) > max_variants:
        stride = len(specs) / max_variants
        specs = [specs[int(i * stride)] for i in range(max_variants)]
    return specs
