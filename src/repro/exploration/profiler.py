"""Deprecated front: moved to :mod:`repro.search.profiler`."""

from repro.search.profiler import (  # noqa: F401
    SiteProfile,
    WorkProfiler,
    _perforation_depth,
)

__all__ = ["SiteProfile", "WorkProfiler"]
