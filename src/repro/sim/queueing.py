"""Event-driven multi-server queue (G/G/c) simulator.

This is the request-level substrate: an open-loop arrival process feeding a
FIFO queue drained by ``servers`` identical workers.  It exists to validate
the analytic latency surface used by the epoch-level service models, and to
let examples/tests run true request-level experiments at modest QPS.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.sim.distributions import Exponential, ServiceDistribution
from repro.sim.events import Simulator


@dataclass
class QueueMetrics:
    """Latency and throughput metrics collected by a queue run."""

    latencies: np.ndarray
    waits: np.ndarray
    completed: int
    dropped: int
    duration: float

    @property
    def throughput(self) -> float:
        return self.completed / self.duration if self.duration > 0 else 0.0

    def latency_percentile(self, pct: float) -> float:
        if len(self.latencies) == 0:
            return float("nan")
        return float(np.percentile(self.latencies, pct))

    @property
    def mean_latency(self) -> float:
        if len(self.latencies) == 0:
            return float("nan")
        return float(np.mean(self.latencies))

    @property
    def p99(self) -> float:
        return self.latency_percentile(99.0)


@dataclass
class _Request:
    arrival: float
    service_demand: float
    start: float = field(default=float("nan"))


class QueueSimulator:
    """Open-loop G/G/c FIFO queue.

    Parameters
    ----------
    servers:
        Number of parallel workers (cores serving requests).
    service:
        Service-time distribution of a single request on one worker.
    arrival:
        Inter-arrival distribution; defaults to Poisson arrivals for the
        given ``arrival_rate``.
    queue_capacity:
        Optional bound; arrivals beyond it are dropped (counted).
    """

    def __init__(
        self,
        servers: int,
        service: ServiceDistribution,
        arrival_rate: float,
        arrival: ServiceDistribution | None = None,
        queue_capacity: int | None = None,
        seed: int = 0,
    ) -> None:
        if servers <= 0:
            raise ValueError("servers must be positive")
        if arrival_rate <= 0:
            raise ValueError("arrival_rate must be positive")
        self._servers = servers
        self._service = service
        self._arrival = arrival or Exponential(1.0 / arrival_rate)
        self._capacity = queue_capacity
        self._rng = np.random.default_rng(seed)
        self._sim = Simulator()
        self._queue: deque[_Request] = deque()
        self._busy = 0
        self._latencies: list[float] = []
        self._waits: list[float] = []
        self._dropped = 0
        self._warmup = 0.0

    # -- internal event handlers ------------------------------------------

    def _arrive(self) -> None:
        request = _Request(
            arrival=self._sim.now,
            service_demand=float(self._service.sample(self._rng)),
        )
        if self._capacity is not None and len(self._queue) >= self._capacity:
            self._dropped += 1
        elif self._busy < self._servers:
            self._start_service(request)
        else:
            self._queue.append(request)
        self._sim.schedule(float(self._arrival.sample(self._rng)), self._arrive)

    def _start_service(self, request: _Request) -> None:
        self._busy += 1
        request.start = self._sim.now
        self._sim.schedule(request.service_demand, lambda: self._complete(request))

    def _complete(self, request: _Request) -> None:
        self._busy -= 1
        if request.arrival >= self._warmup:
            self._latencies.append(self._sim.now - request.arrival)
            self._waits.append(request.start - request.arrival)
        if self._queue:
            self._start_service(self._queue.popleft())

    # -- public API ---------------------------------------------------------

    def run(self, duration: float, warmup: float = 0.0) -> QueueMetrics:
        """Simulate for ``duration`` seconds; discard requests arriving
        before ``warmup``."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        self._warmup = warmup
        self._sim.schedule(float(self._arrival.sample(self._rng)), self._arrive)
        self._sim.run(until=duration)
        return QueueMetrics(
            latencies=np.asarray(self._latencies),
            waits=np.asarray(self._waits),
            completed=len(self._latencies),
            dropped=self._dropped,
            duration=duration - warmup,
        )
