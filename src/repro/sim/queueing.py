"""Event-driven multi-server queue (G/G/c) simulator.

This is the request-level substrate: an open-loop arrival process feeding a
FIFO queue drained by ``servers`` identical workers.  It exists to validate
the analytic latency surface used by the epoch-level service models, and to
let examples/tests run true request-level experiments at modest QPS.

Two implementations share this module:

* :class:`QueueSimulator` — the original event-driven simulator, one
  request at a time through an event heap.
* :func:`lindley_waits` / :func:`batch_load_sweep` — the vectorized hot
  path.  FIFO G/G/c waiting times follow the Kiefer-Wolfowitz workload
  recursion exactly, and the recursion vectorizes across *grid* axes:
  evaluating a whole load sweep costs one pass over the request index with
  numpy ops across every load at once, instead of one full event-driven
  run per load.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.sim.distributions import Exponential, ServiceDistribution
from repro.sim.events import Simulator


@dataclass
class QueueMetrics:
    """Latency and throughput metrics collected by a queue run."""

    latencies: np.ndarray
    waits: np.ndarray
    completed: int
    dropped: int
    duration: float

    @property
    def throughput(self) -> float:
        return self.completed / self.duration if self.duration > 0 else 0.0

    def latency_percentile(self, pct: float) -> float:
        if len(self.latencies) == 0:
            return float("nan")
        return float(np.percentile(self.latencies, pct))

    @property
    def mean_latency(self) -> float:
        if len(self.latencies) == 0:
            return float("nan")
        return float(np.mean(self.latencies))

    @property
    def p99(self) -> float:
        return self.latency_percentile(99.0)


@dataclass
class _Request:
    arrival: float
    service_demand: float
    start: float = field(default=float("nan"))


class QueueSimulator:
    """Open-loop G/G/c FIFO queue.

    Parameters
    ----------
    servers:
        Number of parallel workers (cores serving requests).
    service:
        Service-time distribution of a single request on one worker.
    arrival:
        Inter-arrival distribution; defaults to Poisson arrivals for the
        given ``arrival_rate``.
    queue_capacity:
        Optional bound; arrivals beyond it are dropped (counted).
    """

    def __init__(
        self,
        servers: int,
        service: ServiceDistribution,
        arrival_rate: float,
        arrival: ServiceDistribution | None = None,
        queue_capacity: int | None = None,
        seed: int = 0,
    ) -> None:
        if servers <= 0:
            raise ValueError("servers must be positive")
        if arrival_rate <= 0:
            raise ValueError("arrival_rate must be positive")
        self._servers = servers
        self._service = service
        self._arrival = arrival or Exponential(1.0 / arrival_rate)
        self._capacity = queue_capacity
        self._rng = np.random.default_rng(seed)
        self._sim = Simulator()
        self._queue: deque[_Request] = deque()
        self._busy = 0
        self._latencies: list[float] = []
        self._waits: list[float] = []
        self._dropped = 0
        self._warmup = 0.0

    # -- internal event handlers ------------------------------------------

    def _arrive(self) -> None:
        request = _Request(
            arrival=self._sim.now,
            service_demand=float(self._service.sample(self._rng)),
        )
        if self._capacity is not None and len(self._queue) >= self._capacity:
            self._dropped += 1
        elif self._busy < self._servers:
            self._start_service(request)
        else:
            self._queue.append(request)
        self._sim.schedule(float(self._arrival.sample(self._rng)), self._arrive)

    def _start_service(self, request: _Request) -> None:
        self._busy += 1
        request.start = self._sim.now
        self._sim.schedule(request.service_demand, lambda: self._complete(request))

    def _complete(self, request: _Request) -> None:
        self._busy -= 1
        if request.arrival >= self._warmup:
            self._latencies.append(self._sim.now - request.arrival)
            self._waits.append(request.start - request.arrival)
        if self._queue:
            self._start_service(self._queue.popleft())

    # -- public API ---------------------------------------------------------

    def run(self, duration: float, warmup: float = 0.0) -> QueueMetrics:
        """Simulate for ``duration`` seconds; discard requests arriving
        before ``warmup``."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        self._warmup = warmup
        self._sim.schedule(float(self._arrival.sample(self._rng)), self._arrive)
        self._sim.run(until=duration)
        return QueueMetrics(
            latencies=np.asarray(self._latencies),
            waits=np.asarray(self._waits),
            completed=len(self._latencies),
            dropped=self._dropped,
            duration=duration - warmup,
        )


# -- vectorized batch evaluation ----------------------------------------------


def lindley_waits(interarrivals, services, servers: int = 1) -> np.ndarray:
    """Exact FIFO G/G/c waiting times via the Kiefer-Wolfowitz recursion.

    ``interarrivals[..., i]`` is the gap between request ``i-1`` and
    request ``i`` (the leading gap ``[..., 0]`` precedes the first request
    and is irrelevant to an initially empty system); ``services[..., i]``
    is request ``i``'s service demand.  Leading axes are independent grid
    points — the recursion steps once per request with numpy ops across
    the whole grid, which is what makes whole-load-sweep evaluation cheap.

    Returns the waiting time (excluding service) of every request, same
    shape as the inputs.
    """
    if servers <= 0:
        raise ValueError("servers must be positive")
    gaps = np.asarray(interarrivals, dtype=float)
    demands = np.asarray(services, dtype=float)
    if gaps.shape != demands.shape:
        raise ValueError("interarrivals and services must share a shape")
    if gaps.ndim == 0 or gaps.shape[-1] == 0:
        return np.zeros_like(demands)
    n = gaps.shape[-1]
    # Sorted remaining-workload vector per grid point (ascending), observed
    # at each arrival instant: w[..., 0] is the soonest-free server.
    workload = np.zeros(gaps.shape[:-1] + (servers,))
    waits = np.empty_like(demands)
    for i in range(n):
        waits[..., i] = workload[..., 0]
        workload[..., 0] = workload[..., 0] + demands[..., i]
        if i + 1 < n:
            workload -= gaps[..., i + 1, None]
            np.maximum(workload, 0.0, out=workload)
            workload.sort(axis=-1)
    return waits


def batch_load_sweep(
    servers: int,
    service: ServiceDistribution,
    arrival_rates,
    n_requests: int,
    seed: int = 0,
    warmup_fraction: float = 0.1,
    arrival_shape: ServiceDistribution | None = None,
) -> list[QueueMetrics]:
    """Simulate one G/G/c queue per arrival rate, all loads in one pass.

    Service demands and unit-mean inter-arrival shapes are pre-sampled as
    (loads x requests) matrices, the per-load gap matrix is the unit shape
    scaled by ``1 / rate``, and the Kiefer-Wolfowitz recursion runs across
    every load at once.  ``arrival_shape`` must have mean 1 (defaults to
    ``Exponential(1)``, i.e. Poisson arrivals); the first
    ``warmup_fraction`` of requests is discarded from the metrics.
    """
    rates = np.asarray(arrival_rates, dtype=float)
    if rates.ndim != 1 or rates.size == 0:
        raise ValueError("arrival_rates must be a non-empty 1-D array")
    if np.any(rates <= 0):
        raise ValueError("arrival rates must be positive")
    if n_requests <= 0:
        raise ValueError("n_requests must be positive")
    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError("warmup_fraction must lie in [0, 1)")
    shape_dist = arrival_shape or Exponential(1.0)
    rng = np.random.default_rng(seed)
    unit_gaps = np.asarray(shape_dist.sample(rng, (rates.size, n_requests)))
    demands = np.asarray(service.sample(rng, (rates.size, n_requests)))
    gaps = unit_gaps / rates[:, None]
    waits = lindley_waits(gaps, demands, servers)
    latencies = waits + demands
    skip = int(round(warmup_fraction * n_requests))
    arrivals = np.cumsum(gaps, axis=-1)
    metrics = []
    for row in range(rates.size):
        duration = float(arrivals[row, -1] - arrivals[row, skip]) if skip else float(
            arrivals[row, -1]
        )
        metrics.append(
            QueueMetrics(
                latencies=latencies[row, skip:].copy(),
                waits=waits[row, skip:].copy(),
                completed=n_requests - skip,
                dropped=0,
                duration=duration,
            )
        )
    return metrics
