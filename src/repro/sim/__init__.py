"""Discrete-event simulation substrate.

Provides a minimal DES kernel (:mod:`repro.sim.events`), an event-driven
multi-server queue for request-level validation (:mod:`repro.sim.queueing`),
closed-form tail-latency approximations (:mod:`repro.sim.analytic`) and the
service-time / arrival distributions shared by both
(:mod:`repro.sim.distributions`).
"""

from repro.sim.analytic import mmc_erlang_c, mmc_tail_latency, mmc_utilization
from repro.sim.distributions import (
    Deterministic,
    Exponential,
    LogNormal,
    Pareto,
    ServiceDistribution,
)
from repro.sim.events import Event, EventQueue, Simulator
from repro.sim.queueing import QueueMetrics, QueueSimulator

__all__ = [
    "Deterministic",
    "Event",
    "EventQueue",
    "Exponential",
    "LogNormal",
    "Pareto",
    "QueueMetrics",
    "QueueSimulator",
    "ServiceDistribution",
    "Simulator",
    "mmc_erlang_c",
    "mmc_tail_latency",
    "mmc_utilization",
]
