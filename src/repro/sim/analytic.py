"""Closed-form queueing approximations.

These are the analytic backbone of the epoch-level latency models: M/M/c
Erlang-C waiting probability, tail quantiles of sojourn time, and an
Allen-Cunneen style M/G/c correction for non-exponential service.

The request-level :mod:`repro.sim.queueing` simulator exists to validate
these formulas (see ``tests/sim/test_analytic_vs_des.py``).
"""

from __future__ import annotations

import math


def mmc_utilization(arrival_rate: float, service_time: float, servers: int) -> float:
    """Offered utilization rho = lambda * S / c."""
    if servers <= 0:
        raise ValueError("servers must be positive")
    if service_time <= 0:
        raise ValueError("service_time must be positive")
    if arrival_rate < 0:
        raise ValueError("arrival_rate must be non-negative")
    return arrival_rate * service_time / servers


def mmc_erlang_c(arrival_rate: float, service_time: float, servers: int) -> float:
    """Erlang-C probability that an arriving request must queue.

    Returns 1.0 when the system is at or beyond saturation.
    """
    rho = mmc_utilization(arrival_rate, service_time, servers)
    if rho >= 1.0:
        return 1.0
    offered = arrival_rate * service_time  # a = lambda * S
    # Sum in log space is unnecessary at our scales (c <= 44); direct sum.
    term = 1.0
    total = 1.0
    for k in range(1, servers):
        term *= offered / k
        total += term
    term *= offered / servers
    top = term / (1.0 - rho)
    return top / (total + top)


def mmc_wait_quantile(
    arrival_rate: float, service_time: float, servers: int, quantile: float
) -> float:
    """Waiting-time quantile for M/M/c: P(W > t) = Pq * exp(-(c*mu - lambda) t)."""
    if not 0.0 < quantile < 1.0:
        raise ValueError("quantile must lie in (0, 1)")
    rho = mmc_utilization(arrival_rate, service_time, servers)
    if rho >= 1.0:
        return math.inf
    wait_prob = mmc_erlang_c(arrival_rate, service_time, servers)
    if wait_prob <= (1.0 - quantile):
        return 0.0
    drain_rate = servers / service_time - arrival_rate
    return math.log(wait_prob / (1.0 - quantile)) / drain_rate


def mmc_tail_latency(
    arrival_rate: float,
    service_time: float,
    servers: int,
    quantile: float = 0.99,
    service_scv: float = 1.0,
) -> float:
    """Sojourn-time quantile for an M/M/c queue (M/G/c approximated).

    Decomposes sojourn time as T = W + S with W = 0 with probability
    1 - Pq and Exp(c*mu - lambda) with probability Pq (exact for M/M/c),
    and S ~ Exp(mu); the resulting mixture tail

        P(T > t) = (1-Pq) e^{-mu t}
                 + Pq (mu e^{-delta t} - delta e^{-mu t}) / (mu - delta)

    is solved for the quantile by bisection.  For c = 1 this collapses to
    the exact Exp(mu - lambda) sojourn.  Non-exponential service is handled
    by scaling the wait rate with the Allen-Cunneen factor.
    """
    rho = mmc_utilization(arrival_rate, service_time, servers)
    if rho >= 1.0:
        return math.inf
    mu = 1.0 / service_time
    delta = servers * mu - arrival_rate
    # Allen-Cunneen: mean wait scales by (1+scv)/2 => wait rate scales down.
    scv_factor = (1.0 + service_scv) / 2.0
    if scv_factor > 0:
        delta = delta / scv_factor
    if abs(delta - mu) < 1e-9 * mu:
        delta = mu * (1.0 - 1e-9)  # avoid the removable singularity
    wait_prob = mmc_erlang_c(arrival_rate, service_time, servers)

    def tail(t: float) -> float:
        return (1.0 - wait_prob) * math.exp(-mu * t) + wait_prob * (
            mu * math.exp(-delta * t) - delta * math.exp(-mu * t)
        ) / (mu - delta)

    target = 1.0 - quantile
    low, high = 0.0, service_time
    while tail(high) > target:
        high *= 2.0
        if high > 1e9 * service_time:
            return math.inf
    for _ in range(80):
        mid = 0.5 * (low + high)
        if tail(mid) > target:
            low = mid
        else:
            high = mid
    return 0.5 * (low + high)


def mm1_mean_wait(arrival_rate: float, service_time: float) -> float:
    """Mean waiting time in M/M/1 (convenience for tests)."""
    rho = arrival_rate * service_time
    if rho >= 1.0:
        return math.inf
    return rho * service_time / (1.0 - rho)
