"""Closed-form queueing approximations.

These are the analytic backbone of the epoch-level latency models: M/M/c
Erlang-C waiting probability, tail quantiles of sojourn time, and an
Allen-Cunneen style M/G/c correction for non-exponential service.

The request-level :mod:`repro.sim.queueing` simulator exists to validate
these formulas (see ``tests/sim/test_analytic_vs_des.py``).

Each formula comes in two shapes: the original scalar function, and a
``*_batch`` variant that broadcasts numpy arrays of operating points and
evaluates the whole grid at once — the sweep engine's hot path.  The batch
versions replicate the scalar arithmetic order exactly, so a batch
evaluation of a grid agrees with a scalar loop to floating-point accuracy
(asserted to 1e-9 in ``tests/sim/test_batch_analytic.py``).
"""

from __future__ import annotations

import math

import numpy as np


def mmc_utilization(arrival_rate: float, service_time: float, servers: int) -> float:
    """Offered utilization rho = lambda * S / c."""
    if servers <= 0:
        raise ValueError("servers must be positive")
    if service_time <= 0:
        raise ValueError("service_time must be positive")
    if arrival_rate < 0:
        raise ValueError("arrival_rate must be non-negative")
    return arrival_rate * service_time / servers


def mmc_erlang_c(arrival_rate: float, service_time: float, servers: int) -> float:
    """Erlang-C probability that an arriving request must queue.

    Returns 1.0 when the system is at or beyond saturation.
    """
    rho = mmc_utilization(arrival_rate, service_time, servers)
    if rho >= 1.0:
        return 1.0
    offered = arrival_rate * service_time  # a = lambda * S
    # Sum in log space is unnecessary at our scales (c <= 44); direct sum.
    term = 1.0
    total = 1.0
    for k in range(1, servers):
        term *= offered / k
        total += term
    term *= offered / servers
    top = term / (1.0 - rho)
    return top / (total + top)


def mmc_wait_quantile(
    arrival_rate: float, service_time: float, servers: int, quantile: float
) -> float:
    """Waiting-time quantile for M/M/c: P(W > t) = Pq * exp(-(c*mu - lambda) t)."""
    if not 0.0 < quantile < 1.0:
        raise ValueError("quantile must lie in (0, 1)")
    rho = mmc_utilization(arrival_rate, service_time, servers)
    if rho >= 1.0:
        return math.inf
    wait_prob = mmc_erlang_c(arrival_rate, service_time, servers)
    if wait_prob <= (1.0 - quantile):
        return 0.0
    drain_rate = servers / service_time - arrival_rate
    return math.log(wait_prob / (1.0 - quantile)) / drain_rate


def mmc_tail_latency(
    arrival_rate: float,
    service_time: float,
    servers: int,
    quantile: float = 0.99,
    service_scv: float = 1.0,
) -> float:
    """Sojourn-time quantile for an M/M/c queue (M/G/c approximated).

    Decomposes sojourn time as T = W + S with W = 0 with probability
    1 - Pq and Exp(c*mu - lambda) with probability Pq (exact for M/M/c),
    and S ~ Exp(mu); the resulting mixture tail

        P(T > t) = (1-Pq) e^{-mu t}
                 + Pq (mu e^{-delta t} - delta e^{-mu t}) / (mu - delta)

    is solved for the quantile by bisection.  For c = 1 this collapses to
    the exact Exp(mu - lambda) sojourn.  Non-exponential service is handled
    by scaling the wait rate with the Allen-Cunneen factor.
    """
    rho = mmc_utilization(arrival_rate, service_time, servers)
    if rho >= 1.0:
        return math.inf
    mu = 1.0 / service_time
    delta = servers * mu - arrival_rate
    # Allen-Cunneen: mean wait scales by (1+scv)/2 => wait rate scales down.
    scv_factor = (1.0 + service_scv) / 2.0
    if scv_factor > 0:
        delta = delta / scv_factor
    if abs(delta - mu) < 1e-9 * mu:
        delta = mu * (1.0 - 1e-9)  # avoid the removable singularity
    wait_prob = mmc_erlang_c(arrival_rate, service_time, servers)

    def tail(t: float) -> float:
        return (1.0 - wait_prob) * math.exp(-mu * t) + wait_prob * (
            mu * math.exp(-delta * t) - delta * math.exp(-mu * t)
        ) / (mu - delta)

    target = 1.0 - quantile
    low, high = 0.0, service_time
    while tail(high) > target:
        high *= 2.0
        if high > 1e9 * service_time:
            return math.inf
    for _ in range(80):
        mid = 0.5 * (low + high)
        if tail(mid) > target:
            low = mid
        else:
            high = mid
    return 0.5 * (low + high)


def mm1_mean_wait(arrival_rate: float, service_time: float) -> float:
    """Mean waiting time in M/M/1 (convenience for tests)."""
    rho = arrival_rate * service_time
    if rho >= 1.0:
        return math.inf
    return rho * service_time / (1.0 - rho)


# -- vectorized batch evaluation ----------------------------------------------


def _broadcast_inputs(
    arrival_rate, service_time, servers
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Validate and broadcast an operating-point grid to a common shape."""
    lam = np.asarray(arrival_rate, dtype=float)
    svc = np.asarray(service_time, dtype=float)
    c = np.asarray(servers, dtype=np.int64)
    if np.any(c <= 0):
        raise ValueError("servers must be positive")
    if np.any(svc <= 0):
        raise ValueError("service_time must be positive")
    if np.any(lam < 0):
        raise ValueError("arrival_rate must be non-negative")
    lam, svc, c = np.broadcast_arrays(lam, svc, c)
    return lam.copy(), svc.copy(), c.copy()


def mmc_utilization_batch(arrival_rate, service_time, servers) -> np.ndarray:
    """Vectorized :func:`mmc_utilization` over broadcastable arrays."""
    lam, svc, c = _broadcast_inputs(arrival_rate, service_time, servers)
    return lam * svc / c


def mmc_erlang_c_batch(arrival_rate, service_time, servers) -> np.ndarray:
    """Vectorized :func:`mmc_erlang_c` over broadcastable arrays.

    The per-element recurrence runs across the whole grid at once; the
    ``k`` loop is bounded by ``max(servers)`` (tens), not the grid size.
    """
    lam, svc, c = _broadcast_inputs(arrival_rate, service_time, servers)
    offered = lam * svc
    rho = offered / c
    saturated = rho >= 1.0
    term = np.ones_like(offered)
    total = np.ones_like(offered)
    for k in range(1, int(c.max())):
        active = k < c
        term = np.where(active, term * (offered / k), term)
        total = np.where(active, total + term, total)
    term = term * (offered / c)
    with np.errstate(divide="ignore", invalid="ignore"):
        top = term / (1.0 - rho)
        wait_prob = top / (total + top)
    return np.where(saturated, 1.0, wait_prob)


def mmc_wait_quantile_batch(
    arrival_rate, service_time, servers, quantile: float
) -> np.ndarray:
    """Vectorized :func:`mmc_wait_quantile` over broadcastable arrays."""
    if not 0.0 < quantile < 1.0:
        raise ValueError("quantile must lie in (0, 1)")
    lam, svc, c = _broadcast_inputs(arrival_rate, service_time, servers)
    rho = lam * svc / c
    saturated = rho >= 1.0
    wait_prob = mmc_erlang_c_batch(lam, svc, c)
    drain_rate = c / svc - lam
    with np.errstate(divide="ignore", invalid="ignore"):
        wait = np.log(wait_prob / (1.0 - quantile)) / drain_rate
    wait = np.where(wait_prob <= (1.0 - quantile), 0.0, wait)
    return np.where(saturated, np.inf, wait)


def mmc_tail_latency_batch(
    arrival_rate,
    service_time,
    servers,
    quantile: float = 0.99,
    service_scv: float = 1.0,
) -> np.ndarray:
    """Vectorized :func:`mmc_tail_latency` over broadcastable arrays.

    The bracket-doubling and 80-step bisection run element-wise across the
    grid with masked updates, reproducing the scalar solver's iterate
    sequence for every element independently.
    """
    lam, svc, c = _broadcast_inputs(arrival_rate, service_time, servers)
    rho = lam * svc / c
    saturated = rho >= 1.0
    mu = 1.0 / svc
    delta = c * mu - lam
    scv_factor = (1.0 + service_scv) / 2.0
    if scv_factor > 0:
        delta = delta / scv_factor
    near_singular = np.abs(delta - mu) < 1e-9 * mu
    delta = np.where(near_singular, mu * (1.0 - 1e-9), delta)
    wait_prob = mmc_erlang_c_batch(lam, svc, c)

    def tail(t: np.ndarray) -> np.ndarray:
        return (1.0 - wait_prob) * np.exp(-mu * t) + wait_prob * (
            mu * np.exp(-delta * t) - delta * np.exp(-mu * t)
        ) / (mu - delta)

    target = 1.0 - quantile
    low = np.zeros_like(svc)
    high = svc.copy()
    overflow = np.zeros_like(saturated)
    growing = ~saturated & (tail(high) > target)
    while growing.any():
        high = np.where(growing, high * 2.0, high)
        blown = growing & (high > 1e9 * svc)
        overflow |= blown
        growing &= ~blown
        growing &= tail(high) > target
    for _ in range(80):
        mid = 0.5 * (low + high)
        above = tail(mid) > target
        low = np.where(above, mid, low)
        high = np.where(above, high, mid)
    return np.where(saturated | overflow, np.inf, 0.5 * (low + high))


def mm1_mean_wait_batch(arrival_rate, service_time) -> np.ndarray:
    """Vectorized :func:`mm1_mean_wait` over broadcastable arrays."""
    lam = np.asarray(arrival_rate, dtype=float)
    svc = np.asarray(service_time, dtype=float)
    lam, svc = np.broadcast_arrays(lam, svc)
    rho = lam * svc
    with np.errstate(divide="ignore", invalid="ignore"):
        wait = rho * svc / (1.0 - rho)
    return np.where(rho >= 1.0, np.inf, wait)
