"""Service-time and arrival distributions used by the queueing substrate.

Each distribution exposes ``mean`` and ``sample(rng)`` plus an analytic
``scv`` (squared coefficient of variation) used by the M/G/k approximations.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np


class ServiceDistribution(ABC):
    """A positive-valued random variable."""

    @property
    @abstractmethod
    def mean(self) -> float:
        """Expected value."""

    @property
    @abstractmethod
    def scv(self) -> float:
        """Squared coefficient of variation Var/Mean^2."""

    @abstractmethod
    def sample(self, rng: np.random.Generator, size: int | tuple[int, ...] | None = None):
        """Draw one value (``size=None``) or an array of ``size`` values.

        ``size`` may be a tuple: batch consumers (the vectorized queueing
        path) pre-sample whole (grid x requests) matrices in one call.
        """

    def scaled(self, factor: float) -> "ServiceDistribution":
        """Return a copy with the mean scaled by ``factor``."""
        raise NotImplementedError


class Deterministic(ServiceDistribution):
    """A constant (D in Kendall notation)."""

    def __init__(self, value: float) -> None:
        if value <= 0:
            raise ValueError("value must be positive")
        self._value = value

    @property
    def mean(self) -> float:
        return self._value

    @property
    def scv(self) -> float:
        return 0.0

    def sample(self, rng: np.random.Generator, size: int | tuple[int, ...] | None = None):
        if size is None:
            return self._value
        return np.full(size, self._value)

    def scaled(self, factor: float) -> "Deterministic":
        return Deterministic(self._value * factor)

    def __repr__(self) -> str:
        return f"Deterministic({self._value!r})"


class Exponential(ServiceDistribution):
    """Exponential with the given mean (M in Kendall notation)."""

    def __init__(self, mean: float) -> None:
        if mean <= 0:
            raise ValueError("mean must be positive")
        self._mean = mean

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def scv(self) -> float:
        return 1.0

    def sample(self, rng: np.random.Generator, size: int | tuple[int, ...] | None = None):
        return rng.exponential(self._mean, size=size)

    def scaled(self, factor: float) -> "Exponential":
        return Exponential(self._mean * factor)

    def __repr__(self) -> str:
        return f"Exponential({self._mean!r})"


class LogNormal(ServiceDistribution):
    """Log-normal parameterized by its *actual* mean and sigma (of log)."""

    def __init__(self, mean: float, sigma: float) -> None:
        if mean <= 0:
            raise ValueError("mean must be positive")
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        self._mean = mean
        self._sigma = sigma
        self._mu = math.log(mean) - 0.5 * sigma * sigma

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def sigma(self) -> float:
        return self._sigma

    @property
    def scv(self) -> float:
        return math.exp(self._sigma * self._sigma) - 1.0

    def sample(self, rng: np.random.Generator, size: int | tuple[int, ...] | None = None):
        return rng.lognormal(self._mu, self._sigma, size=size)

    def scaled(self, factor: float) -> "LogNormal":
        return LogNormal(self._mean * factor, self._sigma)

    def __repr__(self) -> str:
        return f"LogNormal(mean={self._mean!r}, sigma={self._sigma!r})"


class Pareto(ServiceDistribution):
    """Bounded-mean Pareto; models heavy-tailed request sizes.

    Parameterized by mean and tail index ``alpha > 1`` so ``mean`` is finite;
    ``xm`` (scale) is derived.  ``alpha <= 2`` would have infinite variance,
    so ``scv`` raises for such indices — use only where variance is needed
    with ``alpha > 2``.
    """

    def __init__(self, mean: float, alpha: float) -> None:
        if mean <= 0:
            raise ValueError("mean must be positive")
        if alpha <= 1:
            raise ValueError("alpha must exceed 1 for a finite mean")
        self._mean = mean
        self._alpha = alpha
        self._xm = mean * (alpha - 1) / alpha

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def alpha(self) -> float:
        return self._alpha

    @property
    def scv(self) -> float:
        if self._alpha <= 2:
            raise ValueError("variance undefined for alpha <= 2")
        variance = (self._xm**2 * self._alpha) / (
            (self._alpha - 1) ** 2 * (self._alpha - 2)
        )
        return variance / (self._mean**2)

    def sample(self, rng: np.random.Generator, size: int | tuple[int, ...] | None = None):
        # numpy's pareto returns (X/xm - 1); rescale to classic Pareto.
        return self._xm * (1.0 + rng.pareto(self._alpha, size=size))

    def scaled(self, factor: float) -> "Pareto":
        return Pareto(self._mean * factor, self._alpha)

    def __repr__(self) -> str:
        return f"Pareto(mean={self._mean!r}, alpha={self._alpha!r})"
