"""A small discrete-event simulation kernel.

The kernel is a classic priority-queue event loop: callers schedule
:class:`Event` objects at absolute timestamps and :class:`Simulator.run`
dispatches them in time order.  Events scheduled at the same timestamp are
dispatched in insertion order (stable), which keeps traces deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Ordering is by ``(time, sequence)`` so simultaneous events preserve
    insertion order.  ``cancelled`` events are skipped at dispatch.
    """

    time: float
    sequence: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        self.cancelled = True


class EventQueue:
    """Priority queue of events with stable same-time ordering."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def push(self, time: float, action: Callable[[], None]) -> Event:
        event = Event(time=time, sequence=next(self._counter), action=action)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event | None:
        """Pop the next non-cancelled event, or ``None`` when empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> float | None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None


class Simulator:
    """Event loop with a clock.

    ``schedule`` takes a *delay* relative to the current time; ``at`` takes
    an absolute timestamp.  ``run`` dispatches until the queue empties or
    ``until`` is reached, whichever is first.
    """

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._running = False

    @property
    def now(self) -> float:
        return self._now

    @property
    def pending_events(self) -> int:
        return len(self._queue)

    def schedule(self, delay: float, action: Callable[[], None]) -> Event:
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        return self._queue.push(self._now + delay, action)

    def at(self, time: float, action: Callable[[], None]) -> Event:
        if time < self._now:
            raise ValueError(f"cannot schedule in the past: {time} < {self._now}")
        return self._queue.push(time, action)

    def run(self, until: float | None = None) -> float:
        """Dispatch events in order; return the final clock value.

        With ``until`` set, the clock advances to exactly ``until`` even if
        the queue drains earlier, so fixed-horizon runs always end at the
        horizon.
        """
        self._running = True
        try:
            while self._running:
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                event = self._queue.pop()
                if event is None:
                    break
                self._now = event.time
                event.action()
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def stop(self) -> None:
        """Stop the loop after the currently dispatching event."""
        self._running = False
