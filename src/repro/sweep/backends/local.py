"""Single-host backends: inline execution and process fan-out.

``ProcessBackend`` is the fan-out that used to live inside
``SweepEngine.run``, extracted behind the backend protocol so the engine
no longer cares whether scenarios run inline, across local cores, or
across hosts.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Sequence

from repro.sweep.backends.base import ExecutionBackend, timed_run


class SerialBackend(ExecutionBackend):
    """Run every scenario inline in the calling process.

    The reference backend: zero concurrency, zero setup cost, and the
    ground truth other backends are compared against bit-for-bit.
    """

    name = "serial"

    def execute(self, scenarios: Sequence) -> list[tuple]:
        return [timed_run(scenario) for scenario in scenarios]


class ProcessBackend(ExecutionBackend):
    """Fan scenarios out across local worker processes.

    ``workers=None`` uses ``os.cpu_count()``.  Falls back to inline
    execution when the batch (or the worker budget) is 1, so tiny sweeps
    never pay pool startup.
    """

    name = "process"

    def __init__(self, workers: int | None = None) -> None:
        self._workers = workers

    def worker_budget(self, pending: int) -> int:
        workers = self._workers if self._workers is not None else os.cpu_count() or 1
        return max(1, min(workers, pending)) if pending else 1

    def execute(self, scenarios: Sequence) -> list[tuple]:
        scenarios = list(scenarios)
        workers = self.worker_budget(len(scenarios))
        if workers <= 1 or len(scenarios) <= 1:
            return [timed_run(scenario) for scenario in scenarios]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(timed_run, scenarios))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProcessBackend(workers={self._workers!r})"
