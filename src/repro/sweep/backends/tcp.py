"""Asyncio TCP broker and its client transport.

The filesystem :class:`~repro.sweep.backends.distributed.JobSpool`
needs four filesystem round trips per job (submit, ``O_EXCL`` claim,
heartbeat, done marker) — fine on a local disk, a tax on NFS, and the
reason PR 2's distributed backend lost to serial on sub-50ms scenarios.
This module keeps the exact submit / claim / heartbeat / done contract
(:class:`~repro.sweep.backends.base.BrokerTransport`) but moves the
state into one in-memory broker process reached over TCP:

* :class:`TcpBroker` — an :mod:`asyncio` line-protocol server (one JSON
  object per line) run with ``python -m repro.sweep broker`` or embedded
  in-process via :meth:`TcpBroker.start`.  All lease liveness is judged
  on the broker's own monotonic clock from heartbeat arrival times, so
  worker clock skew is structurally irrelevant.
* :class:`TcpTransport` — the synchronous client workers and submitters
  use, selected with ``REPRO_SWEEP_SPOOL=tcp://host:port`` (or any
  ``--spool tcp://...`` flag).  One request per *chunk*, not per job.

Results never travel over the wire: workers publish per-scenario
:class:`~repro.core.runtime.ColocationResult` payloads into the shared
:class:`~repro.sweep.cache.SweepCache` exactly as on the filesystem
path, and the broker only carries job ids, scenario payloads, and cache
keys — so bit-identity, warm-cache reruns, and cache pruning semantics
are untouched by the transport choice.

Wire protocol (newline-delimited JSON, one request → one response)::

    {"op": "submit", "scenarios": [<payload>, ...]}
    {"op": "claim", "worker": "w1", "max_jobs": 8}
    {"op": "heartbeat", "job_ids": [...]}
    {"op": "release", "job_ids": [...]}
    {"op": "done", "job_id": ..., "key": ..., "duration": ..., "worker": ...}
    {"op": "failed", "job_id": ..., "error": ..., "worker": ...}
    {"op": "done_info", "job_ids": [...]}
    {"op": "reset", "job_id": ...}
    {"op": "status"} | {"op": "ping"}

Every response carries ``{"ok": true, ...}`` or
``{"ok": false, "error": "..."}``.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
import time
from typing import Callable, Sequence

from repro.cas import stable_hash
from repro.sweep.backends.base import BrokerTransport, SpoolJob, SpoolStatus
from repro.sweep.grid import Scenario
from repro.telemetry import get_recorder

__all__ = ["TcpBroker", "TcpTransport", "parse_tcp_spec"]

_MAX_LINE = 64 * 1024 * 1024  # a submit of ~100k scenarios fits comfortably


def parse_tcp_spec(spec: str) -> tuple[str, int]:
    """``tcp://host:port`` → ``(host, port)``."""
    if not spec.startswith("tcp://"):
        raise ValueError(f"not a tcp spool spec: {spec!r}")
    hostport = spec[len("tcp://"):]
    host, sep, port = hostport.rpartition(":")
    if not sep or not host or not port.isdigit():
        raise ValueError(
            f"bad tcp spool spec {spec!r} (expected tcp://host:port)"
        )
    return host, int(port)


class TcpBroker:
    """In-memory job broker behind an asyncio line-protocol server.

    The broker is the single writer of all queue state, so the lease
    machinery needs no filesystem atomics at all: a claim is a dict
    insert, expiry is ``monotonic() - last_beat > lease_ttl`` on the
    broker's own clock (worker clocks never enter the comparison), and a
    chunk claim hands out up to ``max_jobs`` runnable jobs in one round
    trip.  ``clock`` is injectable for deterministic expiry tests.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        lease_ttl: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if lease_ttl <= 0:
            raise ValueError("lease_ttl must be positive")
        self._host = host
        self._port = port
        self.lease_ttl = lease_ttl
        self._clock = clock
        self._jobs: dict[str, dict] = {}          # job_id -> scenario payload
        self._order: list[str] = []               # submit order (stable claims)
        self._leases: dict[str, tuple[str, float]] = {}  # id -> (worker, beat)
        self._done: dict[str, dict] = {}          # job_id -> completion info
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.base_events.Server | None = None
        self._thread: threading.Thread | None = None

    # -- state machine (single-threaded inside the event loop) -----------

    def _lease_live(self, job_id: str) -> bool:
        lease = self._leases.get(job_id)
        return lease is not None and self._clock() - lease[1] <= self.lease_ttl

    def _claimable(self, job_id: str) -> bool:
        return job_id not in self._done and not self._lease_live(job_id)

    def handle(self, request: dict) -> dict:
        """One request → one response; the whole protocol, no I/O."""
        op = request.get("op")
        if op == "ping":
            return {"ok": True}
        if op == "submit":
            job_ids = []
            for payload in request.get("scenarios", ()):
                # Validate + canonicalize through the real Scenario so the
                # id matches what a filesystem spool would assign.
                scenario = Scenario.from_payload(payload)
                job_id = stable_hash(scenario.key_payload(), length=24)
                if job_id not in self._jobs:
                    self._jobs[job_id] = scenario.to_payload()
                    self._order.append(job_id)
                job_ids.append(job_id)
            return {"ok": True, "job_ids": job_ids}
        if op == "claim":
            worker = request.get("worker") or "anonymous"
            max_jobs = max(1, int(request.get("max_jobs", 1)))
            now = self._clock()
            jobs = []
            for job_id in self._order:
                if len(jobs) >= max_jobs:
                    break
                if not self._claimable(job_id):
                    continue
                self._leases[job_id] = (worker, now)
                jobs.append({"job_id": job_id, "scenario": self._jobs[job_id]})
            telemetry = get_recorder()
            if telemetry.enabled:
                # Every claim is a broker tick: sample how deep the
                # runnable queue is *after* handing this chunk out.
                telemetry.count("broker.claims")
                telemetry.gauge(
                    "broker.queue_depth",
                    sum(1 for j in self._order if self._claimable(j)),
                )
                if jobs:
                    telemetry.observe("broker.claim_jobs", len(jobs))
            return {"ok": True, "jobs": jobs}
        if op == "heartbeat":
            now = self._clock()
            for job_id in request.get("job_ids", ()):
                lease = self._leases.get(job_id)
                if lease is not None:
                    self._leases[job_id] = (lease[0], now)
            return {"ok": True}
        if op == "release":
            for job_id in request.get("job_ids", ()):
                self._leases.pop(job_id, None)
            return {"ok": True}
        if op == "done":
            job_id = request["job_id"]
            self._done[job_id] = {
                "key": request["key"],
                "duration": float(request.get("duration", 0.0)),
                "worker": request.get("worker", "?"),
            }
            self._leases.pop(job_id, None)
            get_recorder().count("broker.done")
            return {"ok": True}
        if op == "failed":
            job_id = request["job_id"]
            self._done[job_id] = {
                "error": request.get("error", "unknown error"),
                "worker": request.get("worker", "?"),
            }
            self._leases.pop(job_id, None)
            get_recorder().count("broker.failed")
            return {"ok": True}
        if op == "done_info":
            job_ids = request.get("job_ids")
            if job_ids is None:
                job_ids = list(self._done)
            infos = {j: self._done[j] for j in job_ids if j in self._done}
            return {"ok": True, "infos": infos}
        if op == "reset":
            job_id = request["job_id"]
            self._done.pop(job_id, None)
            self._leases.pop(job_id, None)
            return {"ok": True}
        if op == "status":
            total = done = running = expired = pending = failed = 0
            for job_id in self._order:
                total += 1
                info = self._done.get(job_id)
                if info is not None:
                    done += 1
                    if "error" in info:
                        failed += 1
                elif job_id in self._leases:
                    if self._lease_live(job_id):
                        running += 1
                    else:
                        expired += 1
                else:
                    pending += 1
            return {
                "ok": True,
                "status": SpoolStatus(
                    total=total, done=done, running=running, expired=expired,
                    pending=pending, failed=failed,
                ).to_payload(),
            }
        return {"ok": False, "error": f"unknown op {op!r}"}

    # -- asyncio plumbing ------------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, asyncio.LimitOverrunError):
                    break
                if not line:
                    break
                try:
                    response = self.handle(json.loads(line))
                except Exception as exc:  # torn request, bad payload
                    response = {
                        "ok": False, "error": f"{type(exc).__name__}: {exc}"
                    }
                writer.write(json.dumps(response).encode() + b"\n")
                try:
                    await writer.drain()
                except ConnectionError:
                    break
        except asyncio.CancelledError:
            pass  # broker shutting down: finish normally, close the socket
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _start_server(self) -> None:
        self._server = await asyncio.start_server(
            self._serve_connection, self._host, self._port, limit=_MAX_LINE
        )
        self._port = self._server.sockets[0].getsockname()[1]

    @property
    def address(self) -> tuple[str, int]:
        return self._host, self._port

    @property
    def spec(self) -> str:
        return f"tcp://{self._host}:{self._port}"

    def serve_forever(self) -> None:
        """Run the broker in the foreground (``python -m repro.sweep broker``)."""

        async def _run() -> None:
            await self._start_server()
            print(f"broker listening on {self.spec} "
                  f"(lease ttl {self.lease_ttl:g}s)", flush=True)
            async with self._server:
                await self._server.serve_forever()

        try:
            asyncio.run(_run())
        except KeyboardInterrupt:  # pragma: no cover - interactive exit
            pass

    def start(self) -> str:
        """Serve from a daemon thread; returns the bound ``tcp://`` spec."""
        if self._thread is not None:
            raise RuntimeError("broker already started")
        self._loop = asyncio.new_event_loop()
        started = threading.Event()

        def _run() -> None:
            asyncio.set_event_loop(self._loop)
            self._loop.run_until_complete(self._start_server())
            started.set()
            self._loop.run_forever()

        self._thread = threading.Thread(
            target=_run, name="tcp-broker", daemon=True
        )
        self._thread.start()
        if not started.wait(timeout=10):
            raise RuntimeError("broker failed to start within 10s")
        return self.spec

    def stop(self) -> None:
        """Shut down a broker started with :meth:`start`."""
        if self._loop is None or self._thread is None:
            return

        async def _drain() -> None:
            if self._server is not None:
                self._server.close()
                await self._server.wait_closed()
            tasks = [
                task for task in asyncio.all_tasks()
                if task is not asyncio.current_task()
            ]
            for task in tasks:
                task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)

        try:
            asyncio.run_coroutine_threadsafe(_drain(), self._loop).result(
                timeout=10
            )
        except (TimeoutError, RuntimeError):  # pragma: no cover - best effort
            pass
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)
        if not self._loop.is_running():
            self._loop.close()
        self._thread = None
        self._loop = None


class TcpTransport(BrokerTransport):
    """Synchronous :class:`BrokerTransport` client of a :class:`TcpBroker`.

    One persistent connection, one JSON line per request; a dropped
    connection is re-dialed once per request before giving up, so a
    broker restart mid-sweep costs a retry, not the sweep.  Thread-safe:
    the worker's heartbeat thread and claim loop share the socket under
    a lock.
    """

    def __init__(
        self, spec: str, lease_ttl: float = 30.0, timeout: float = 30.0
    ) -> None:
        self._host, self._port = parse_tcp_spec(spec)
        self.lease_ttl = lease_ttl
        self._timeout = timeout
        self._lock = threading.Lock()
        self._sock: socket.socket | None = None
        self._reader = None

    @property
    def spec(self) -> str:
        return f"tcp://{self._host}:{self._port}"

    # -- wire ------------------------------------------------------------

    def _connect(self) -> None:
        self._sock = socket.create_connection(
            (self._host, self._port), timeout=self._timeout
        )
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._reader = self._sock.makefile("rb")

    def close(self) -> None:
        with self._lock:
            self._teardown()

    def _teardown(self) -> None:
        for closable in (self._reader, self._sock):
            if closable is not None:
                try:
                    closable.close()
                except OSError:
                    pass
        self._sock = None
        self._reader = None

    def _request(self, payload: dict) -> dict:
        line = json.dumps(payload).encode() + b"\n"
        with self._lock:
            for attempt in (0, 1):
                try:
                    if self._sock is None:
                        self._connect()
                    self._sock.sendall(line)
                    raw = self._reader.readline()
                    if not raw:
                        raise ConnectionError("broker closed the connection")
                    break
                except (OSError, ConnectionError):
                    self._teardown()
                    if attempt:
                        raise
        response = json.loads(raw)
        if not response.get("ok"):
            raise RuntimeError(
                f"broker rejected {payload.get('op')!r}: "
                f"{response.get('error', 'unknown error')}"
            )
        return response

    # -- BrokerTransport contract ----------------------------------------

    def submit_many(self, scenarios: Sequence[Scenario]) -> list[str]:
        if not scenarios:
            return []
        response = self._request({
            "op": "submit",
            "scenarios": [scenario.to_payload() for scenario in scenarios],
        })
        return list(response["job_ids"])

    def claim_chunk(self, worker_id: str, max_jobs: int = 1) -> list[SpoolJob]:
        response = self._request({
            "op": "claim", "worker": worker_id, "max_jobs": max_jobs,
        })
        return [
            SpoolJob(
                job_id=entry["job_id"],
                scenario=Scenario.from_payload(entry["scenario"]),
            )
            for entry in response["jobs"]
        ]

    def heartbeat_many(self, job_ids: Sequence[str]) -> None:
        if job_ids:
            self._request({"op": "heartbeat", "job_ids": list(job_ids)})

    def release_many(self, job_ids: Sequence[str]) -> None:
        if job_ids:
            self._request({"op": "release", "job_ids": list(job_ids)})

    def mark_done(
        self, job_id: str, key: str, duration: float, worker_id: str
    ) -> None:
        self._request({
            "op": "done", "job_id": job_id, "key": key,
            "duration": duration, "worker": worker_id,
        })

    def mark_failed(self, job_id: str, error: str, worker_id: str) -> None:
        self._request({
            "op": "failed", "job_id": job_id, "error": error,
            "worker": worker_id,
        })

    def done_info_many(self, job_ids: Sequence[str]) -> dict[str, dict]:
        if not job_ids:
            return {}
        response = self._request({"op": "done_info", "job_ids": list(job_ids)})
        return dict(response["infos"])

    def done_info(self, job_id: str) -> dict | None:
        return self.done_info_many([job_id]).get(job_id)

    def reset_job(self, job_id: str) -> None:
        self._request({"op": "reset", "job_id": job_id})

    def status(self) -> SpoolStatus:
        response = self._request({"op": "status"})
        return SpoolStatus.from_payload(response["status"])

    def all_done(self) -> bool:
        status = self.status()
        return status.total > 0 and status.done == status.total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TcpTransport({self.spec!r})"
