"""Pluggable sweep execution backends.

A :class:`~repro.sweep.backends.base.ExecutionBackend` decides *where*
cache-missing scenarios run; the engine and the determinism contract
guarantee the *what* is identical everywhere:

* :class:`SerialBackend` — inline, in-process (the reference),
* :class:`ProcessBackend` — fan-out across local cores,
* :class:`DistributedBackend` — broker/worker queue over a shared spool
  and the content-addressed result cache (multi-host).

The distributed backend itself speaks a pluggable
:class:`~repro.sweep.backends.base.BrokerTransport` — the zero-daemon
filesystem :class:`JobSpool`, or the asyncio TCP broker
(:class:`~repro.sweep.backends.tcp.TcpBroker` /
:class:`~repro.sweep.backends.tcp.TcpTransport`) selected with
``tcp://host:port`` spool specs.

:func:`backend_from_env` lets any driver (figure benchmarks, examples,
CLI) be re-pointed at a different execution substrate with environment
variables alone:

========================  =============================================
``REPRO_SWEEP_BACKEND``   ``serial`` | ``process`` | ``distributed``
``REPRO_SWEEP_SPOOL``     spool directory or ``tcp://host:port``
                          (distributed only, required)
``REPRO_SWEEP_WORKERS``   local workers to spawn (distributed, default 0)
========================  =============================================
"""

from __future__ import annotations

import os

from repro.sweep.backends.base import (
    BrokerTransport,
    ExecutionBackend,
    SpoolJob,
    SpoolStatus,
    timed_run,
    transport_from_spec,
)
from repro.sweep.backends.distributed import (
    DistributedBackend,
    JobSpool,
    default_worker_id,
    run_worker,
)
from repro.sweep.backends.local import ProcessBackend, SerialBackend
from repro.sweep.backends.tcp import TcpBroker, TcpTransport

__all__ = [
    "BrokerTransport",
    "DistributedBackend",
    "ExecutionBackend",
    "JobSpool",
    "ProcessBackend",
    "SerialBackend",
    "SpoolJob",
    "SpoolStatus",
    "TcpBroker",
    "TcpTransport",
    "backend_from_env",
    "default_worker_id",
    "run_worker",
    "timed_run",
    "transport_from_spec",
]


def backend_from_env(environ=None) -> ExecutionBackend | None:
    """Build a backend from ``REPRO_SWEEP_*`` variables, or ``None``.

    ``None`` (no ``REPRO_SWEEP_BACKEND`` set) tells the engine to pick
    its default local backend from its ``workers`` argument.
    """
    env = os.environ if environ is None else environ
    spec = (env.get("REPRO_SWEEP_BACKEND") or "").strip().lower()
    if not spec:
        return None
    if spec == "serial":
        return SerialBackend()
    if spec == "process":
        return ProcessBackend()
    if spec == "distributed":
        spool = env.get("REPRO_SWEEP_SPOOL")
        if not spool:
            raise ValueError(
                "REPRO_SWEEP_BACKEND=distributed needs REPRO_SWEEP_SPOOL "
                "to name the shared spool directory or tcp://host:port broker"
            )
        workers = int(env.get("REPRO_SWEEP_WORKERS", "0") or 0)
        return DistributedBackend(spool, local_workers=workers)
    raise ValueError(
        f"unknown REPRO_SWEEP_BACKEND {spec!r} "
        "(expected serial, process, or distributed)"
    )
