"""The execution-backend protocol.

A backend answers exactly one question: given scenarios that missed the
cache, produce their results.  Everything else — cache probing, grid
ordering, outcome bookkeeping — stays in
:class:`~repro.sweep.engine.SweepEngine`, which is a thin facade over a
backend.  Because scenario results are a pure function of the scenario
config (bit-reproducible seeding, see :mod:`repro.rng`), *where* a
scenario runs can never change *what* it returns — backends only trade
wall-clock, fault tolerance, and locality.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.runtime import ColocationResult
    from repro.sweep.grid import Scenario


def timed_run(scenario: "Scenario") -> tuple["ColocationResult", float]:
    """Run one scenario, returning ``(result, wall_seconds)``.

    Module-level (not a closure) so process pools can pickle it by
    reference; the engine import is deferred because
    :mod:`repro.sweep.engine` imports this package at module scope.
    """
    from repro.sweep.engine import run_scenario

    start = time.perf_counter()
    result = run_scenario(scenario)
    return result, time.perf_counter() - start


class ExecutionBackend(ABC):
    """Strategy for evaluating a batch of cache-missing scenarios.

    Implementations must return one ``(result, duration)`` pair per input
    scenario, in input order, and must preserve the determinism contract:
    the result for a scenario is independent of batch composition,
    concurrency, and placement.
    """

    #: Short identifier used in logs, CLI output, and bench records.
    name: str = "abstract"

    @abstractmethod
    def execute(
        self, scenarios: Sequence["Scenario"]
    ) -> list[tuple["ColocationResult", float]]:
        """Evaluate ``scenarios``, returning ``(result, seconds)`` pairs."""

    def result_store(self):
        """The :class:`SweepCache` this backend already persists into.

        ``None`` for backends that only compute (the engine writes its
        own cache).  The distributed backend returns its shared cache so
        the engine can skip re-pickling results that workers just wrote.
        """
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"
