"""The execution-backend and broker-transport protocols.

A backend answers exactly one question: given scenarios that missed the
cache, produce their results.  Everything else — cache probing, grid
ordering, outcome bookkeeping — stays in
:class:`~repro.sweep.engine.SweepEngine`, which is a thin facade over a
backend.  Because scenario results are a pure function of the scenario
config (bit-reproducible seeding, see :mod:`repro.rng`), *where* a
scenario runs can never change *what* it returns — backends only trade
wall-clock, fault tolerance, and locality.

The distributed backend is further split along a second seam:
:class:`BrokerTransport` is the submit / claim / heartbeat / done
contract between submitters and workers, with two interchangeable
implementations — the zero-daemon filesystem spool
(:class:`~repro.sweep.backends.distributed.JobSpool`) and the asyncio
TCP broker client (:class:`~repro.sweep.backends.tcp.TcpTransport`).
Every transport operation is *chunked*: a single claim leases up to
``max_jobs`` scenarios, one heartbeat covers a whole chunk, and the
submitter polls completion for all outstanding jobs in one call, so
per-scenario broker overhead amortizes K-fold.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.runtime import ColocationResult
    from repro.sweep.grid import Scenario


def timed_run(scenario: "Scenario") -> tuple["ColocationResult", float]:
    """Run one scenario, returning ``(result, wall_seconds)``.

    Module-level (not a closure) so process pools can pickle it by
    reference; the engine import is deferred because
    :mod:`repro.sweep.engine` imports this package at module scope.
    """
    from repro.sweep.engine import run_scenario
    from repro.telemetry import get_recorder

    with get_recorder().span(
        "scenario.run",
        cat="sweep",
        service=scenario.service,
        policy=scenario.policy,
        seed=scenario.seed,
    ):
        start = time.perf_counter()
        result = run_scenario(scenario)
        duration = time.perf_counter() - start
    return result, duration


@dataclass(frozen=True)
class SpoolJob:
    """One claimed unit of work."""

    job_id: str
    scenario: "Scenario"


@dataclass(frozen=True)
class SpoolStatus:
    """Point-in-time census of a spool or broker.

    ``done`` counts every job with a completion marker, including the
    ``failed`` ones (a failed job is drained — it will not be retried
    until explicitly re-queued).
    """

    total: int
    done: int
    running: int
    expired: int
    pending: int
    failed: int = 0

    def to_payload(self) -> dict:
        return {
            "total": self.total,
            "done": self.done,
            "running": self.running,
            "expired": self.expired,
            "pending": self.pending,
            "failed": self.failed,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "SpoolStatus":
        return cls(**{k: int(payload.get(k, 0)) for k in (
            "total", "done", "running", "expired", "pending", "failed")})


class BrokerTransport(ABC):
    """The submit / claim / heartbeat / done contract of a job broker.

    Implementations share the lease semantics documented on
    :class:`~repro.sweep.backends.distributed.JobSpool`: claims are
    exclusive, heartbeats keep a lease alive, a lease whose heartbeats
    stop for ``lease_ttl`` seconds is presumed dead and reassigned, and
    completion markers drain a job permanently (per-scenario *results*
    travel through the shared :class:`~repro.sweep.cache.SweepCache`,
    never through the broker).  Liveness must be judged on the broker
    side from heartbeat *deltas* on a monotonic clock — never by
    comparing another host's wall-clock timestamps against the local
    one, which clock skew would falsify.
    """

    lease_ttl: float = 30.0

    @property
    def spec(self) -> str:
        """The ``--spool`` string that reconnects to this transport."""
        raise NotImplementedError

    @abstractmethod
    def submit_many(self, scenarios: Sequence["Scenario"]) -> list[str]:
        """Enqueue scenarios (idempotent); returns content-addressed ids."""

    @abstractmethod
    def claim_chunk(self, worker_id: str, max_jobs: int = 1) -> list[SpoolJob]:
        """Lease up to ``max_jobs`` runnable jobs to ``worker_id`` at once."""

    @abstractmethod
    def heartbeat_many(self, job_ids: Sequence[str]) -> None:
        """Refresh the leases of a whole in-flight chunk."""

    @abstractmethod
    def release_many(self, job_ids: Sequence[str]) -> None:
        """Drop leases without completing (worker shutting down)."""

    @abstractmethod
    def mark_done(
        self, job_id: str, key: str, duration: float, worker_id: str
    ) -> None:
        """Record success: the result lives in the cache under ``key``."""

    @abstractmethod
    def mark_failed(self, job_id: str, error: str, worker_id: str) -> None:
        """Record a permanent failure (the job is drained, not re-queued)."""

    @abstractmethod
    def done_info_many(self, job_ids: Sequence[str]) -> dict[str, dict]:
        """Completion payloads for every finished id in ``job_ids``."""

    @abstractmethod
    def reset_job(self, job_id: str) -> None:
        """Forget a completion (e.g. its cache entry was pruned) so it re-runs."""

    @abstractmethod
    def status(self) -> SpoolStatus:
        """Census: pending / running / expired / done / failed."""

    @abstractmethod
    def all_done(self) -> bool:
        """True when every submitted job has a completion marker."""


def transport_from_spec(
    spec, lease_ttl: float = 30.0
) -> BrokerTransport:
    """A transport from a ``--spool`` value.

    ``tcp://host:port`` connects a
    :class:`~repro.sweep.backends.tcp.TcpTransport` to a running broker
    (``python -m repro.sweep broker``); anything else is a filesystem
    spool directory.  A :class:`BrokerTransport` instance passes through
    untouched.
    """
    if isinstance(spec, BrokerTransport):
        return spec
    text = str(spec)
    if text.startswith("tcp://"):
        from repro.sweep.backends.tcp import TcpTransport

        return TcpTransport(text, lease_ttl=lease_ttl)
    from repro.sweep.backends.distributed import JobSpool

    return JobSpool(text, lease_ttl=lease_ttl)


class ExecutionBackend(ABC):
    """Strategy for evaluating a batch of cache-missing scenarios.

    Implementations must return one ``(result, duration)`` pair per input
    scenario, in input order, and must preserve the determinism contract:
    the result for a scenario is independent of batch composition,
    concurrency, and placement.
    """

    #: Short identifier used in logs, CLI output, and bench records.
    name: str = "abstract"

    @abstractmethod
    def execute(
        self, scenarios: Sequence["Scenario"]
    ) -> list[tuple["ColocationResult", float]]:
        """Evaluate ``scenarios``, returning ``(result, seconds)`` pairs."""

    def result_store(self):
        """The :class:`SweepCache` this backend already persists into.

        ``None`` for backends that only compute (the engine writes its
        own cache).  The distributed backend returns its shared cache so
        the engine can skip re-pickling results that workers just wrote.
        """
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"
