"""Fault-tolerant broker/worker execution over a pluggable transport.

The distributed backend turns a sweep into datacenter-shaped work: the
submitting host enqueues scenario jobs with a **broker**, stateless
**workers** claim jobs in *chunks* via leases, execute them, and publish
results into the shared content-addressed
:class:`~repro.sweep.cache.SweepCache`; the submitter polls done markers
and reads results back by config hash.

Two interchangeable transports implement the
:class:`~repro.sweep.backends.base.BrokerTransport` contract:

* :class:`JobSpool` (this module) — a directory on storage every
  participant can reach; zero daemons, every operation a small atomic
  filesystem action.
* :class:`~repro.sweep.backends.tcp.TcpTransport` — a client of the
  asyncio line-protocol broker (``python -m repro.sweep broker``),
  selected with ``tcp://host:port`` spool specs; one round trip per
  chunk instead of four filesystem round trips per job.

Spool layout (all writes atomic: tmp + rename, or ``O_CREAT|O_EXCL``)::

    <spool>/jobs/<job_id>.json     scenario payload (content-addressed id)
    <spool>/leases/<job_id>.lease  owner token; mtime is the heartbeat
    <spool>/done/<job_id>.json     {key, duration, worker} once finished
    <spool>/logs/worker-*.log      stdout/stderr of locally spawned workers

Lease semantics
---------------
* **Claim**: creating the lease file with ``O_CREAT | O_EXCL`` — a true
  filesystem-level mutex, so two racing workers claim a fresh job exactly
  once.  A claim leases up to K jobs in one directory scan
  (:meth:`JobSpool.claim_chunk`), so the scan cost amortizes K-fold.
* **Heartbeat**: the owner touches the lease mtimes of its whole chunk
  on one background thread while the jobs run.
* **Expiry / steal**: a lease is presumed dead (worker crashed mid-job)
  once *this observer* has watched its mtime stay frozen for
  ``lease_ttl`` seconds of local monotonic time.  Ages are never derived
  from ``time.time() - mtime``: the mtime was written by another host,
  and on NFS-style spools a few seconds of clock skew would spuriously
  expire live leases (or keep dead ones alive).  Any worker may steal an
  expired lease by atomically replacing it and verifying its own token
  read back.  The verification window still admits a rare
  double-execution — which is *safe*, because results are a pure
  function of the scenario config and cache writes are idempotent.
  Leases guarantee at-least-once execution and best-effort exactly-once;
  determinism upgrades that to exactly-once *semantics*.
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import sys
import threading
import time
import uuid
from pathlib import Path
from typing import Sequence

from repro.cas import atomic_write_bytes, stable_hash
from repro.sweep.backends.base import (
    BrokerTransport,
    ExecutionBackend,
    SpoolJob,
    SpoolStatus,
    timed_run,
    transport_from_spec,
)
from repro.sweep.cache import SweepCache
from repro.sweep.grid import Scenario
from repro.telemetry import flush as telemetry_flush
from repro.telemetry import get_recorder

__all__ = [
    "DistributedBackend",
    "JobSpool",
    "SpoolJob",
    "SpoolStatus",
    "default_worker_id",
    "run_worker",
]

#: A chunk lease targets this many seconds of scenario compute by default:
#: long enough to amortize broker round trips thousandfold on sub-50ms
#: scenarios, short enough that a crashed worker forfeits ~1s of work.
DEFAULT_CHUNK_TARGET = 1.0

#: Upper bound on jobs per lease regardless of how cheap scenarios are,
#: so one worker cannot strand the whole tail of a grid behind its lease.
DEFAULT_CHUNK_MAX = 16


def default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


class JobSpool(BrokerTransport):
    """Filesystem broker: submit, claim, heartbeat, complete.

    Every operation is a small atomic filesystem action, so any number of
    submitters and workers can share one spool with no coordinator
    process.  Job ids are content-addressed (a stable hash of the
    scenario payload), which dedupes identical scenarios across
    submitters for free.
    """

    def __init__(self, root: Path | str, lease_ttl: float = 30.0) -> None:
        if lease_ttl <= 0:
            raise ValueError("lease_ttl must be positive")
        self._root = Path(root)
        self.lease_ttl = lease_ttl
        #: job_id -> (lease mtime_ns, monotonic time we first saw it).
        #: Liveness bookkeeping for :meth:`lease_age` — ages are measured
        #: as local monotonic dwell at an unchanged mtime, never as
        #: wall-clock minus another host's timestamp.
        self._lease_seen: dict[str, tuple[int, float]] = {}
        for sub in ("jobs", "leases", "done"):
            (self._root / sub).mkdir(parents=True, exist_ok=True)

    @property
    def root(self) -> Path:
        return self._root

    @property
    def spec(self) -> str:
        return str(self._root)

    # -- paths -----------------------------------------------------------

    def job_id(self, scenario: Scenario) -> str:
        return stable_hash(scenario.key_payload(), length=24)

    def job_path(self, job_id: str) -> Path:
        return self._root / "jobs" / f"{job_id}.json"

    def lease_path(self, job_id: str) -> Path:
        return self._root / "leases" / f"{job_id}.lease"

    def done_path(self, job_id: str) -> Path:
        return self._root / "done" / f"{job_id}.json"

    # -- submit side -----------------------------------------------------

    def submit(self, scenario: Scenario) -> str:
        """Spool one scenario; returns its job id (idempotent)."""
        job_id = self.job_id(scenario)
        path = self.job_path(job_id)
        if not path.exists():
            payload = json.dumps(scenario.to_payload(), sort_keys=True)
            atomic_write_bytes(path, payload.encode())
        return job_id

    def submit_many(self, scenarios: Sequence[Scenario]) -> list[str]:
        return [self.submit(scenario) for scenario in scenarios]

    def load_scenario(self, job_id: str) -> Scenario:
        return Scenario.from_payload(json.loads(self.job_path(job_id).read_text()))

    def job_ids(self) -> list[str]:
        return sorted(p.stem for p in (self._root / "jobs").glob("*.json"))

    # -- lease lifecycle -------------------------------------------------

    def lease_age(self, job_id: str) -> float | None:
        """Seconds *this observer* has seen the lease without a heartbeat.

        ``None`` if unleased.  A lease whose mtime just changed (or that
        we are seeing for the first time) has age 0: the age is the local
        monotonic dwell since the last observed mtime change, so a remote
        worker's skewed wall clock can neither spuriously expire a live
        lease nor keep a dead one alive.  The cost is that a fresh
        observer must watch a dead lease for a full ``lease_ttl`` before
        stealing it — the safe direction to err.
        """
        try:
            mtime_ns = self.lease_path(job_id).stat().st_mtime_ns
        except OSError:
            self._lease_seen.pop(job_id, None)
            return None
        now = time.monotonic()
        seen = self._lease_seen.get(job_id)
        if seen is None or seen[0] != mtime_ns:
            self._lease_seen[job_id] = (mtime_ns, now)
            return 0.0
        return now - seen[1]

    def try_claim(self, job_id: str, worker_id: str, _retry: bool = True) -> bool:
        """Attempt to own ``job_id``; at most one claimer of a fresh job wins."""
        if self.done_path(job_id).exists():
            return False
        token = f"{worker_id}:{uuid.uuid4().hex}"
        lease = self.lease_path(job_id)
        try:
            fd = os.open(lease, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            age = self.lease_age(job_id)
            if age is None:
                # The owner released between our failed O_EXCL and the
                # stat — the job is free again, so take one more swing at
                # the O_EXCL create instead of wrongly reporting it taken.
                return _retry and self.try_claim(job_id, worker_id, _retry=False)
            if age <= self.lease_ttl:
                return False  # live owner
            return self._steal(job_id, token)
        with os.fdopen(fd, "w") as handle:
            handle.write(token)
        return True

    def _steal(self, job_id: str, token: str) -> bool:
        """Replace an expired lease; read-back verification breaks ties."""
        lease = self.lease_path(job_id)
        tmp = lease.with_suffix(f".steal-{uuid.uuid4().hex}")
        try:
            tmp.write_text(token)
            os.replace(tmp, lease)
            won = lease.read_text() == token
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass
            return False
        if won:
            self._lease_seen.pop(job_id, None)
            get_recorder().event("lease.stolen", cat="spool", job=job_id)
        return won

    def heartbeat(self, job_id: str) -> None:
        try:
            os.utime(self.lease_path(job_id))
        except OSError:
            pass  # lease stolen or spool pruned; the job re-runs harmlessly

    def heartbeat_many(self, job_ids: Sequence[str]) -> None:
        for job_id in job_ids:
            self.heartbeat(job_id)

    def release(self, job_id: str) -> None:
        """Drop a lease without completing the job (worker shutting down)."""
        self._lease_seen.pop(job_id, None)
        try:
            self.lease_path(job_id).unlink()
        except OSError:
            pass

    def release_many(self, job_ids: Sequence[str]) -> None:
        for job_id in job_ids:
            self.release(job_id)

    def claim_chunk(self, worker_id: str, max_jobs: int = 1) -> list[SpoolJob]:
        """Lease up to ``max_jobs`` runnable jobs in one directory scan.

        The scan — one listdir plus a done-marker stat per job — is the
        expensive part of a filesystem claim; leasing a whole chunk per
        scan is what amortizes spool overhead K-fold for sub-second
        scenarios.
        """
        chunk: list[SpoolJob] = []
        for job_id in self.job_ids():
            if len(chunk) >= max_jobs:
                break
            if self.done_path(job_id).exists():
                continue
            if self.try_claim(job_id, worker_id):
                try:
                    chunk.append(
                        SpoolJob(job_id=job_id, scenario=self.load_scenario(job_id))
                    )
                except (OSError, ValueError, KeyError, TypeError):
                    self.quarantine(job_id)  # torn or foreign job file
                    self.release(job_id)
        return chunk

    def claim_next(self, worker_id: str) -> SpoolJob | None:
        """Claim the first available job, or ``None`` if nothing is claimable."""
        chunk = self.claim_chunk(worker_id, max_jobs=1)
        return chunk[0] if chunk else None

    def quarantine(self, job_id: str) -> None:
        """Sideline a malformed job file so it stops being claimable.

        Renames ``jobs/<id>.json`` to ``jobs/<id>.json.bad`` (out of the
        ``*.json`` glob), otherwise a single torn or foreign job file
        would be claimed, fail to parse, and be released forever —
        livelocking every ``--exit-when-idle`` worker in the fleet.
        """
        path = self.job_path(job_id)
        try:
            os.replace(path, path.with_suffix(".json.bad"))
        except OSError:
            pass

    # -- completion ------------------------------------------------------

    def mark_done(
        self, job_id: str, key: str, duration: float, worker_id: str
    ) -> None:
        atomic_write_bytes(
            self.done_path(job_id),
            json.dumps(
                {"key": key, "duration": duration, "worker": worker_id}
            ).encode(),
        )

    def mark_failed(self, job_id: str, error: str, worker_id: str) -> None:
        """Record a permanent failure as a done marker with an error.

        A failed job must not go back in the queue: releasing it would
        hand the same poison scenario to the next worker, crashing the
        fleet one process at a time.  The submitter surfaces the error;
        :meth:`reset_job` (or fixing the config) makes it runnable again.
        """
        atomic_write_bytes(
            self.done_path(job_id),
            json.dumps({"error": error, "worker": worker_id}).encode(),
        )

    def done_info(self, job_id: str) -> dict | None:
        try:
            return json.loads(self.done_path(job_id).read_text())
        except (OSError, ValueError):
            return None

    def done_info_many(self, job_ids: Sequence[str]) -> dict[str, dict]:
        infos: dict[str, dict] = {}
        for job_id in job_ids:
            info = self.done_info(job_id)
            if info is not None:
                infos[job_id] = info
        return infos

    def reset_job(self, job_id: str) -> None:
        """Forget a completion (e.g. its cache entry was pruned) so it re-runs."""
        self._lease_seen.pop(job_id, None)
        for path in (self.done_path(job_id), self.lease_path(job_id)):
            try:
                path.unlink()
            except OSError:
                pass

    def all_done(self) -> bool:
        return all(self.done_path(job_id).exists() for job_id in self.job_ids())

    def status(self) -> SpoolStatus:
        total = done = running = expired = pending = failed = 0
        for job_id in self.job_ids():
            total += 1
            if self.done_path(job_id).exists():
                done += 1
                info = self.done_info(job_id)
                if info is not None and "error" in info:
                    failed += 1
                continue
            age = self.lease_age(job_id)
            if age is None:
                pending += 1
            elif age <= self.lease_ttl:
                running += 1
            else:
                expired += 1
        return SpoolStatus(
            total=total, done=done, running=running, expired=expired,
            pending=pending, failed=failed,
        )


class _LeaseHeartbeat:
    """Beats every lease of an in-flight chunk on one daemon thread.

    ``job_ids`` is a live set the worker shrinks as jobs complete, so a
    finished job's lease stops being touched without thread churn.
    """

    def __init__(
        self, transport: BrokerTransport, job_ids: set[str], interval: float
    ) -> None:
        self._transport = transport
        self._job_ids = job_ids
        self._interval = interval
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="lease-heartbeat", daemon=True
        )

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            beat = sorted(self._job_ids)  # snapshot: the worker mutates the set
            if beat:
                self._transport.heartbeat_many(beat)

    def __enter__(self) -> "_LeaseHeartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join()


def run_worker(
    spool: BrokerTransport | Path | str,
    cache: SweepCache | None = None,
    lease_ttl: float = 30.0,
    heartbeat_interval: float | None = None,
    poll_interval: float = 0.2,
    exit_when_idle: bool = False,
    max_jobs: int | None = None,
    worker_id: str | None = None,
    chunk_target: float = DEFAULT_CHUNK_TARGET,
    chunk_max: int = DEFAULT_CHUNK_MAX,
) -> int:
    """Serve a broker: claim chunks → execute → publish, until told to stop.

    Returns the number of jobs this worker executed.  ``spool`` is a
    transport, a spool directory, or a ``tcp://host:port`` broker
    address.  Each lease claims up to ``chunk_max`` jobs sized so a chunk
    holds roughly ``chunk_target`` seconds of work (an EWMA of measured
    per-scenario cost decides K — the first claim takes a single job to
    get a measurement).  ``exit_when_idle`` makes the worker exit once
    every spooled job has a done marker (it keeps waiting while other
    workers hold live leases, so it can take over if they die).  Workers
    are stateless: killing one at any point loses nothing but the lease
    TTL and the unfinished remainder of its chunk.
    """
    transport = (
        spool
        if isinstance(spool, BrokerTransport)
        else transport_from_spec(spool, lease_ttl=lease_ttl)
    )
    cache = cache if cache is not None else SweepCache()
    worker_id = worker_id or default_worker_id()
    if chunk_max < 1:
        raise ValueError("chunk_max must be at least 1")
    heartbeat = (
        heartbeat_interval
        if heartbeat_interval is not None
        else max(transport.lease_ttl / 4.0, 0.05)
    )
    telemetry = get_recorder()
    if telemetry.enabled:
        # The merged timeline shows one track per worker, not one
        # anonymous "main" per process.  Flush immediately so the worker
        # appears on the timeline even if it dies before its first chunk
        # completes (the smoke test SIGKILLs one mid-chunk).
        telemetry.process = worker_id
        telemetry_flush()
    executed = 0
    avg_cost: float | None = None  # EWMA seconds per scenario
    while max_jobs is None or executed < max_jobs:
        want = (
            1
            if avg_cost is None
            else max(1, min(chunk_max, int(chunk_target / max(avg_cost, 1e-6))))
        )
        if max_jobs is not None:
            want = min(want, max_jobs - executed)
        chunk = transport.claim_chunk(worker_id, max_jobs=want)
        if not chunk:
            if exit_when_idle and transport.all_done():
                break
            time.sleep(poll_interval)
            continue
        telemetry.count("worker.claims")
        telemetry.observe("worker.chunk_size", len(chunk))
        telemetry.event(
            "chunk.claimed", cat="worker", jobs=len(chunk), want=want
        )
        leased = {job.job_id for job in chunk}
        with _LeaseHeartbeat(transport, leased, heartbeat):
            for job in chunk:
                try:
                    result, duration = timed_run(job.scenario)
                except Exception as exc:
                    # Deterministic scenarios fail deterministically
                    # (unknown policy, bad kwargs): re-queueing the job
                    # would crash the next worker too, one process at a
                    # time, until the fleet is dead.  Record the failure
                    # and keep serving.
                    transport.mark_failed(
                        job.job_id, error=f"{type(exc).__name__}: {exc}",
                        worker_id=worker_id,
                    )
                    telemetry.count("worker.failed")
                    telemetry.event(
                        "job.failed", cat="worker", job=job.job_id,
                        error=type(exc).__name__,
                    )
                    leased.discard(job.job_id)
                    executed += 1
                    continue
                except BaseException:
                    # Shutdown mid-chunk: hand the unfinished remainder back.
                    transport.release_many(sorted(leased))
                    telemetry_flush()
                    raise
                cache.put(cache.key(job.scenario), result)
                transport.mark_done(
                    job.job_id, key=cache.key(job.scenario), duration=duration,
                    worker_id=worker_id,
                )
                telemetry.count("worker.done")
                leased.discard(job.job_id)
                executed += 1
                avg_cost = (
                    duration
                    if avg_cost is None
                    else 0.5 * avg_cost + 0.5 * duration
                )
        # Re-flush after every chunk so `sweep status --watch` (and a
        # collector racing worker exit) sees a near-live shard.
        telemetry_flush()
    telemetry_flush()
    return executed


class DistributedBackend(ExecutionBackend):
    """Execute scenarios through a shared broker and worker fleet.

    ``execute`` submits jobs, optionally spawns ``local_workers`` worker
    processes (``python -m repro.sweep worker``) against the broker, then
    polls done markers and reads each result back from the shared cache
    by its config hash.  ``spool`` names the transport: a filesystem
    spool directory, a ``tcp://host:port`` broker address, or an
    explicit :class:`~repro.sweep.backends.base.BrokerTransport`.
    Remote hosts join the same sweep by running workers against the same
    spool/broker and cache paths — no code changes.
    """

    name = "distributed"

    def __init__(
        self,
        spool: BrokerTransport | Path | str,
        cache: SweepCache | None = None,
        lease_ttl: float = 30.0,
        poll_interval: float = 0.05,
        timeout: float | None = None,
        local_workers: int = 0,
        import_modules: tuple[str, ...] = (),
    ) -> None:
        self._spool_spec = spool
        self._cache = cache if cache is not None else SweepCache()
        self._lease_ttl = lease_ttl
        self._poll_interval = poll_interval
        self._timeout = timeout
        self._local_workers = local_workers
        self._import_modules = tuple(import_modules)

    @property
    def cache(self) -> SweepCache:
        return self._cache

    def result_store(self) -> SweepCache:
        return self._cache

    def transport(self) -> BrokerTransport:
        return transport_from_spec(self._spool_spec, lease_ttl=self._lease_ttl)

    @property
    def spool_spec(self) -> str:
        """The ``--spool`` string workers reconnect with."""
        if isinstance(self._spool_spec, BrokerTransport):
            return self._spool_spec.spec
        return str(self._spool_spec)

    @property
    def spool_root(self) -> Path:
        """The filesystem spool directory (filesystem transport only)."""
        spec = self.spool_spec
        if spec.startswith("tcp://"):
            raise ValueError(
                f"backend speaks {spec}: a TCP broker has no spool directory"
            )
        return Path(spec)

    def _log_dir(self) -> Path:
        if not self.spool_spec.startswith("tcp://"):
            return self.spool_root / "logs"
        return self._cache.root / "worker-logs"

    def spawn_local_worker(
        self, index: int = 0, exit_when_idle: bool = True
    ) -> subprocess.Popen:
        """Start one worker subprocess against this backend's broker."""
        import repro

        src_dir = str(Path(repro.__file__).resolve().parents[1])
        env = dict(os.environ)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_dir if not existing else os.pathsep.join([src_dir, existing])
        )
        log_dir = self._log_dir()
        log_dir.mkdir(parents=True, exist_ok=True)
        log_path = log_dir / f"worker-{os.getpid()}-{index}.log"
        cmd = [
            sys.executable,
            "-m",
            "repro.sweep",
            "worker",
            "--spool", self.spool_spec,
            "--cache", str(self._cache.root),
            "--lease-ttl", str(self._lease_ttl),
            "--poll", str(max(self._poll_interval, 0.01)),
        ]
        if exit_when_idle:
            cmd.append("--exit-when-idle")
        for module in self._import_modules:
            cmd += ["--import", module]
        with open(log_path, "ab") as log:
            return subprocess.Popen(cmd, stdout=log, stderr=log, env=env)

    def execute(self, scenarios: Sequence[Scenario]) -> list[tuple]:
        scenarios = list(scenarios)
        if not scenarios:
            return []
        transport = self.transport()
        job_ids = transport.submit_many(scenarios)
        workers = [
            self.spawn_local_worker(i) for i in range(self._local_workers)
        ]
        try:
            return self._collect(transport, job_ids, workers)
        finally:
            for proc in workers:
                if proc.poll() is None:
                    proc.terminate()
                try:
                    proc.wait(timeout=10)
                except subprocess.TimeoutExpired:  # pragma: no cover
                    proc.kill()
                    proc.wait()

    def _collect(
        self,
        transport: BrokerTransport,
        job_ids: list[str],
        workers: list[subprocess.Popen],
    ) -> list[tuple]:
        deadline = (
            time.monotonic() + self._timeout if self._timeout is not None else None
        )
        collected: dict[str, tuple] = {}
        outstanding = dict.fromkeys(job_ids)  # preserves order, dedupes
        exited_strikes = 0
        telemetry = get_recorder()
        next_gauge = 0.0  # monotonic deadline for the next census sample
        while True:
            if telemetry.enabled and time.monotonic() >= next_gauge:
                # Sampling the census is a full spool scan — throttle it
                # well below the collect poll rate.
                census = transport.status()
                telemetry.gauge("broker.queue_depth", census.pending)
                telemetry.gauge("broker.running", census.running)
                telemetry.gauge("broker.expired", census.expired)
                next_gauge = time.monotonic() + max(self._poll_interval, 0.5)
            waiting = [j for j in outstanding if j not in collected]
            for job_id, info in transport.done_info_many(waiting).items():
                if "error" in info:
                    raise RuntimeError(
                        f"job {job_id} failed on worker "
                        f"{info.get('worker', '?')}: {info['error']} "
                        f"(transport.reset_job({job_id!r}) re-queues it)"
                    )
                result = self._cache.get(info["key"], record=False)
                if result is None:
                    # Done marker outlived its cache entry (pruned or torn):
                    # forget the completion so a worker recomputes it.
                    transport.reset_job(job_id)
                    telemetry.count("collector.requeued")
                    telemetry.event("job.requeued", cat="collector", job=job_id)
                    continue
                collected[job_id] = (result, float(info.get("duration", 0.0)))
            if all(job_id in collected for job_id in outstanding):
                break
            if deadline is not None and time.monotonic() > deadline:
                missing = [j for j in outstanding if j not in collected]
                raise TimeoutError(
                    f"distributed sweep timed out with {len(missing)} of "
                    f"{len(outstanding)} jobs outstanding (spool: "
                    f"{self.spool_spec}, first missing: {missing[0]})"
                )
            if workers and all(proc.poll() is not None for proc in workers):
                # Every locally spawned worker exited with jobs outstanding
                # (exit-when-idle only fires on a drained spool) — crashed
                # workers would otherwise hang the submitter forever when
                # no external fleet is attached.  A worker can also exit in
                # the gap between our collect pass and this check, so only
                # raise after a second pass confirms nothing new landed.
                exited_strikes += 1
                if exited_strikes >= 2:
                    missing = [j for j in outstanding if j not in collected]
                    raise RuntimeError(
                        f"all {len(workers)} local workers exited with "
                        f"{len(missing)} jobs outstanding; see logs under "
                        f"{self._log_dir()}"
                    )
            time.sleep(self._poll_interval)
        return [collected[job_id] for job_id in job_ids]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DistributedBackend(spool={self.spool_spec!r}, "
            f"local_workers={self._local_workers})"
        )
