"""Fault-tolerant broker/worker execution over a shared job spool.

The distributed backend turns a sweep into datacenter-shaped work: the
submitting host spills scenario jobs into a **spool** (a directory on
storage every participant can reach), stateless **workers** claim jobs
via atomic leases, execute them, and publish results into the shared
content-addressed :class:`~repro.sweep.cache.SweepCache`; the submitter
polls done markers and reads results back by config hash.

Spool layout (all writes atomic: tmp + rename, or ``O_CREAT|O_EXCL``)::

    <spool>/jobs/<job_id>.json     scenario payload (content-addressed id)
    <spool>/leases/<job_id>.lease  owner token; mtime is the heartbeat
    <spool>/done/<job_id>.json     {key, duration, worker} once finished
    <spool>/logs/worker-*.log      stdout/stderr of locally spawned workers

Lease semantics
---------------
* **Claim**: creating the lease file with ``O_CREAT | O_EXCL`` — a true
  filesystem-level mutex, so two racing workers claim a fresh job exactly
  once.
* **Heartbeat**: the owner touches the lease mtime on a background
  thread while the job runs.
* **Expiry / steal**: a lease whose mtime is older than ``lease_ttl`` is
  presumed dead (worker crashed mid-job); any worker may steal it by
  atomically replacing the lease and verifying its own token read back.
  The verification window still admits a rare double-execution — which is
  *safe*, because results are a pure function of the scenario config and
  cache writes are idempotent.  Leases guarantee at-least-once execution
  and best-effort exactly-once; determinism upgrades that to
  exactly-once *semantics*.
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import sys
import threading
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro.cas import atomic_write_bytes, stable_hash
from repro.sweep.backends.base import ExecutionBackend, timed_run
from repro.sweep.cache import SweepCache
from repro.sweep.grid import Scenario

__all__ = [
    "DistributedBackend",
    "JobSpool",
    "SpoolJob",
    "SpoolStatus",
    "default_worker_id",
    "run_worker",
]


def default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


@dataclass(frozen=True)
class SpoolJob:
    """One claimed unit of work."""

    job_id: str
    scenario: Scenario


@dataclass(frozen=True)
class SpoolStatus:
    """Point-in-time census of a spool.

    ``done`` counts every job with a completion marker, including the
    ``failed`` ones (a failed job is drained — it will not be retried
    until explicitly re-queued).
    """

    total: int
    done: int
    running: int
    expired: int
    pending: int
    failed: int = 0

    def to_payload(self) -> dict:
        return {
            "total": self.total,
            "done": self.done,
            "running": self.running,
            "expired": self.expired,
            "pending": self.pending,
            "failed": self.failed,
        }


class JobSpool:
    """Filesystem broker: submit, claim, heartbeat, complete.

    Every operation is a small atomic filesystem action, so any number of
    submitters and workers can share one spool with no coordinator
    process.  Job ids are content-addressed (a stable hash of the
    scenario payload), which dedupes identical scenarios across
    submitters for free.
    """

    def __init__(self, root: Path | str, lease_ttl: float = 30.0) -> None:
        if lease_ttl <= 0:
            raise ValueError("lease_ttl must be positive")
        self._root = Path(root)
        self.lease_ttl = lease_ttl
        for sub in ("jobs", "leases", "done"):
            (self._root / sub).mkdir(parents=True, exist_ok=True)

    @property
    def root(self) -> Path:
        return self._root

    # -- paths -----------------------------------------------------------

    def job_id(self, scenario: Scenario) -> str:
        return stable_hash(scenario.key_payload(), length=24)

    def job_path(self, job_id: str) -> Path:
        return self._root / "jobs" / f"{job_id}.json"

    def lease_path(self, job_id: str) -> Path:
        return self._root / "leases" / f"{job_id}.lease"

    def done_path(self, job_id: str) -> Path:
        return self._root / "done" / f"{job_id}.json"

    # -- submit side -----------------------------------------------------

    def submit(self, scenario: Scenario) -> str:
        """Spool one scenario; returns its job id (idempotent)."""
        job_id = self.job_id(scenario)
        path = self.job_path(job_id)
        if not path.exists():
            payload = json.dumps(scenario.to_payload(), sort_keys=True)
            atomic_write_bytes(path, payload.encode())
        return job_id

    def load_scenario(self, job_id: str) -> Scenario:
        return Scenario.from_payload(json.loads(self.job_path(job_id).read_text()))

    def job_ids(self) -> list[str]:
        return sorted(p.stem for p in (self._root / "jobs").glob("*.json"))

    # -- lease lifecycle -------------------------------------------------

    def lease_age(self, job_id: str) -> float | None:
        """Seconds since the owner's last heartbeat, or ``None`` if unleased."""
        try:
            return max(0.0, time.time() - self.lease_path(job_id).stat().st_mtime)
        except OSError:
            return None

    def try_claim(self, job_id: str, worker_id: str) -> bool:
        """Attempt to own ``job_id``; at most one claimer of a fresh job wins."""
        if self.done_path(job_id).exists():
            return False
        token = f"{worker_id}:{uuid.uuid4().hex}"
        lease = self.lease_path(job_id)
        try:
            fd = os.open(lease, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            age = self.lease_age(job_id)
            if age is None:
                return False  # released between the check and the stat
            if age <= self.lease_ttl:
                return False  # live owner
            return self._steal(job_id, token)
        with os.fdopen(fd, "w") as handle:
            handle.write(token)
        return True

    def _steal(self, job_id: str, token: str) -> bool:
        """Replace an expired lease; read-back verification breaks ties."""
        lease = self.lease_path(job_id)
        tmp = lease.with_suffix(f".steal-{uuid.uuid4().hex}")
        try:
            tmp.write_text(token)
            os.replace(tmp, lease)
            return lease.read_text() == token
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass
            return False

    def heartbeat(self, job_id: str) -> None:
        try:
            os.utime(self.lease_path(job_id))
        except OSError:
            pass  # lease stolen or spool pruned; the job re-runs harmlessly

    def release(self, job_id: str) -> None:
        """Drop a lease without completing the job (worker shutting down)."""
        try:
            self.lease_path(job_id).unlink()
        except OSError:
            pass

    def claim_next(self, worker_id: str) -> SpoolJob | None:
        """Claim the first available job, or ``None`` if nothing is claimable."""
        for job_id in self.job_ids():
            if self.done_path(job_id).exists():
                continue
            if self.try_claim(job_id, worker_id):
                try:
                    return SpoolJob(job_id=job_id, scenario=self.load_scenario(job_id))
                except (OSError, ValueError, KeyError, TypeError):
                    self.quarantine(job_id)  # torn or foreign job file
                    self.release(job_id)
        return None

    def quarantine(self, job_id: str) -> None:
        """Sideline a malformed job file so it stops being claimable.

        Renames ``jobs/<id>.json`` to ``jobs/<id>.json.bad`` (out of the
        ``*.json`` glob), otherwise a single torn or foreign job file
        would be claimed, fail to parse, and be released forever —
        livelocking every ``--exit-when-idle`` worker in the fleet.
        """
        path = self.job_path(job_id)
        try:
            os.replace(path, path.with_suffix(".json.bad"))
        except OSError:
            pass

    # -- completion ------------------------------------------------------

    def mark_done(
        self, job_id: str, key: str, duration: float, worker_id: str
    ) -> None:
        atomic_write_bytes(
            self.done_path(job_id),
            json.dumps(
                {"key": key, "duration": duration, "worker": worker_id}
            ).encode(),
        )

    def mark_failed(self, job_id: str, error: str, worker_id: str) -> None:
        """Record a permanent failure as a done marker with an error.

        A failed job must not go back in the queue: releasing it would
        hand the same poison scenario to the next worker, crashing the
        fleet one process at a time.  The submitter surfaces the error;
        :meth:`reset_job` (or fixing the config) makes it runnable again.
        """
        atomic_write_bytes(
            self.done_path(job_id),
            json.dumps({"error": error, "worker": worker_id}).encode(),
        )

    def done_info(self, job_id: str) -> dict | None:
        try:
            return json.loads(self.done_path(job_id).read_text())
        except (OSError, ValueError):
            return None

    def reset_job(self, job_id: str) -> None:
        """Forget a completion (e.g. its cache entry was pruned) so it re-runs."""
        for path in (self.done_path(job_id), self.lease_path(job_id)):
            try:
                path.unlink()
            except OSError:
                pass

    def all_done(self) -> bool:
        return all(self.done_path(job_id).exists() for job_id in self.job_ids())

    def status(self) -> SpoolStatus:
        total = done = running = expired = pending = failed = 0
        for job_id in self.job_ids():
            total += 1
            if self.done_path(job_id).exists():
                done += 1
                info = self.done_info(job_id)
                if info is not None and "error" in info:
                    failed += 1
                continue
            age = self.lease_age(job_id)
            if age is None:
                pending += 1
            elif age <= self.lease_ttl:
                running += 1
            else:
                expired += 1
        return SpoolStatus(
            total=total, done=done, running=running, expired=expired,
            pending=pending, failed=failed,
        )


class _LeaseHeartbeat:
    """Touches a lease on a daemon thread while its job executes."""

    def __init__(self, spool: JobSpool, job_id: str, interval: float) -> None:
        self._spool = spool
        self._job_id = job_id
        self._interval = interval
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name=f"lease-heartbeat-{job_id[:8]}", daemon=True
        )

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            self._spool.heartbeat(self._job_id)

    def __enter__(self) -> "_LeaseHeartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join()


def run_worker(
    spool: JobSpool | Path | str,
    cache: SweepCache | None = None,
    lease_ttl: float = 30.0,
    heartbeat_interval: float | None = None,
    poll_interval: float = 0.2,
    exit_when_idle: bool = False,
    max_jobs: int | None = None,
    worker_id: str | None = None,
) -> int:
    """Serve a spool: claim → execute → publish, until told to stop.

    Returns the number of jobs this worker executed.  ``exit_when_idle``
    makes the worker exit once every spooled job has a done marker (it
    keeps waiting while other workers hold live leases, so it can take
    over if they die).  Workers are stateless: killing one at any point
    loses nothing but the lease TTL.
    """
    if not isinstance(spool, JobSpool):
        spool = JobSpool(spool, lease_ttl=lease_ttl)
    cache = cache if cache is not None else SweepCache()
    worker_id = worker_id or default_worker_id()
    heartbeat = (
        heartbeat_interval
        if heartbeat_interval is not None
        else max(spool.lease_ttl / 4.0, 0.05)
    )
    executed = 0
    while max_jobs is None or executed < max_jobs:
        job = spool.claim_next(worker_id)
        if job is None:
            if exit_when_idle and spool.all_done():
                break
            time.sleep(poll_interval)
            continue
        try:
            with _LeaseHeartbeat(spool, job.job_id, heartbeat):
                result, duration = timed_run(job.scenario)
        except Exception as exc:
            # Deterministic scenarios fail deterministically (unknown
            # policy, bad kwargs): re-queueing the job would crash the
            # next worker too, one process at a time, until the fleet is
            # dead.  Record the failure and keep serving.
            spool.mark_failed(
                job.job_id, error=f"{type(exc).__name__}: {exc}",
                worker_id=worker_id,
            )
            executed += 1
            continue
        except BaseException:
            spool.release(job.job_id)  # shutdown: let another worker have it
            raise
        cache.put(cache.key(job.scenario), result)
        spool.mark_done(
            job.job_id, key=cache.key(job.scenario), duration=duration,
            worker_id=worker_id,
        )
        executed += 1
    return executed


class DistributedBackend(ExecutionBackend):
    """Execute scenarios through a shared spool and worker fleet.

    ``execute`` submits jobs, optionally spawns ``local_workers`` worker
    processes (``python -m repro.sweep worker``) against the spool, then
    polls done markers and reads each result back from the shared cache
    by its config hash.  Remote hosts join the same sweep by running
    workers against the same spool and cache paths — no code changes.
    """

    name = "distributed"

    def __init__(
        self,
        spool: Path | str,
        cache: SweepCache | None = None,
        lease_ttl: float = 30.0,
        poll_interval: float = 0.05,
        timeout: float | None = None,
        local_workers: int = 0,
        import_modules: tuple[str, ...] = (),
    ) -> None:
        self._spool_root = Path(spool)
        self._cache = cache if cache is not None else SweepCache()
        self._lease_ttl = lease_ttl
        self._poll_interval = poll_interval
        self._timeout = timeout
        self._local_workers = local_workers
        self._import_modules = tuple(import_modules)

    @property
    def cache(self) -> SweepCache:
        return self._cache

    def result_store(self) -> SweepCache:
        return self._cache

    @property
    def spool_root(self) -> Path:
        return self._spool_root

    def spawn_local_worker(self, index: int = 0) -> subprocess.Popen:
        """Start one worker subprocess against this backend's spool."""
        import repro

        src_dir = str(Path(repro.__file__).resolve().parents[1])
        env = dict(os.environ)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_dir if not existing else os.pathsep.join([src_dir, existing])
        )
        log_dir = self._spool_root / "logs"
        log_dir.mkdir(parents=True, exist_ok=True)
        log_path = log_dir / f"worker-{os.getpid()}-{index}.log"
        cmd = [
            sys.executable,
            "-m",
            "repro.sweep",
            "worker",
            "--spool", str(self._spool_root),
            "--cache", str(self._cache.root),
            "--lease-ttl", str(self._lease_ttl),
            "--poll", str(max(self._poll_interval, 0.01)),
            "--exit-when-idle",
        ]
        for module in self._import_modules:
            cmd += ["--import", module]
        with open(log_path, "ab") as log:
            return subprocess.Popen(cmd, stdout=log, stderr=log, env=env)

    def execute(self, scenarios: Sequence[Scenario]) -> list[tuple]:
        scenarios = list(scenarios)
        if not scenarios:
            return []
        spool = JobSpool(self._spool_root, lease_ttl=self._lease_ttl)
        job_ids = [spool.submit(scenario) for scenario in scenarios]
        workers = [
            self.spawn_local_worker(i) for i in range(self._local_workers)
        ]
        try:
            return self._collect(spool, scenarios, job_ids, workers)
        finally:
            for proc in workers:
                if proc.poll() is None:
                    proc.terminate()
                try:
                    proc.wait(timeout=10)
                except subprocess.TimeoutExpired:  # pragma: no cover
                    proc.kill()
                    proc.wait()

    def _collect(
        self,
        spool: JobSpool,
        scenarios: list[Scenario],
        job_ids: list[str],
        workers: list[subprocess.Popen],
    ) -> list[tuple]:
        deadline = (
            time.monotonic() + self._timeout if self._timeout is not None else None
        )
        collected: dict[str, tuple] = {}
        outstanding = dict.fromkeys(job_ids)  # preserves order, dedupes
        exited_strikes = 0
        while True:
            for job_id in [j for j in outstanding if j not in collected]:
                info = spool.done_info(job_id)
                if info is None:
                    continue
                if "error" in info:
                    raise RuntimeError(
                        f"job {job_id} failed on worker "
                        f"{info.get('worker', '?')}: {info['error']} "
                        f"(spool.reset_job({job_id!r}) re-queues it)"
                    )
                result = self._cache.get(info["key"], record=False)
                if result is None:
                    # Done marker outlived its cache entry (pruned or torn):
                    # forget the completion so a worker recomputes it.
                    spool.reset_job(job_id)
                    continue
                collected[job_id] = (result, float(info.get("duration", 0.0)))
            if all(job_id in collected for job_id in outstanding):
                break
            if deadline is not None and time.monotonic() > deadline:
                missing = [j for j in outstanding if j not in collected]
                raise TimeoutError(
                    f"distributed sweep timed out with {len(missing)} of "
                    f"{len(outstanding)} jobs outstanding (spool: "
                    f"{self._spool_root}, first missing: {missing[0]})"
                )
            if workers and all(proc.poll() is not None for proc in workers):
                # Every locally spawned worker exited with jobs outstanding
                # (exit-when-idle only fires on a drained spool) — crashed
                # workers would otherwise hang the submitter forever when
                # no external fleet is attached.  A worker can also exit in
                # the gap between our collect pass and this check, so only
                # raise after a second pass confirms nothing new landed.
                exited_strikes += 1
                if exited_strikes >= 2:
                    missing = [j for j in outstanding if j not in collected]
                    raise RuntimeError(
                        f"all {len(workers)} local workers exited with "
                        f"{len(missing)} jobs outstanding; see logs under "
                        f"{self._spool_root / 'logs'}"
                    )
            time.sleep(self._poll_interval)
        return [collected[job_id] for job_id in job_ids]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DistributedBackend(spool={str(self._spool_root)!r}, "
            f"local_workers={self._local_workers})"
        )
