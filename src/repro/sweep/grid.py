"""Declarative scenario grids.

A :class:`Scenario` is one fully-specified colocation experiment — enough
information to rebuild the engine from scratch inside a worker process
(everything is plain strings/numbers, so scenarios pickle cheaply and
hash stably).  A :class:`SweepGrid` is the cross product of axis values
(services x app mixes x policies x loads x decision intervals x seeds)
expanded in a deterministic order.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, fields, replace

from repro.core.runtime import ColocationConfig
from repro.services.loadgen import LOADGEN_SHAPES


def _normalize_mix(mix: str | tuple[str, ...] | list[str]) -> tuple[str, ...]:
    if isinstance(mix, str):
        return (mix,)
    return tuple(mix)


def _freeze(value):
    """Recursively turn lists into tuples so field values stay hashable."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(item) for item in value)
    return value


def _freeze_pairs(pairs) -> tuple[tuple[str, object], ...]:
    """Normalize a mapping / pair sequence into frozen ``(name, value)`` pairs."""
    items = pairs.items() if isinstance(pairs, dict) else pairs
    return tuple((str(key), _freeze(value)) for key, value in items)


def _canon(value):
    """Canonical JSON form for content addressing: floats via ``repr``."""
    if isinstance(value, bool):
        return value
    if isinstance(value, float):
        return repr(float(value))
    if isinstance(value, (list, tuple)):
        return [_canon(item) for item in value]
    return value


def _jsonify(value):
    """JSON-ready form of a frozen field value: tuples become lists."""
    if isinstance(value, (list, tuple)):
        return [_jsonify(item) for item in value]
    return value


@dataclass(frozen=True)
class Scenario:
    """One sweep coordinate: a colocation experiment as pure data.

    ``policy`` names a registered policy (see
    :data:`repro.sweep.engine.POLICY_REGISTRY`); ``policy_kwargs`` is a
    tuple of ``(name, value)`` pairs passed to its builder so the spec
    stays hashable and JSON-serializable.
    """

    service: str
    apps: tuple[str, ...]
    policy: str = "pliant"
    policy_kwargs: tuple[tuple[str, object], ...] = ()
    load_fraction: float = 0.775
    decision_interval: float = 1.0
    monitor_epoch: float = 0.1
    slack_threshold: float = 0.10
    horizon: float = 400.0
    seed: int = 0
    stop_when_apps_done: bool = True
    exploration_seed: int = 0
    loadgen_shape: str = "constant"
    loadgen_params: tuple[tuple[str, object], ...] = ()
    platform: str = "default"

    def __post_init__(self) -> None:
        object.__setattr__(self, "apps", _normalize_mix(self.apps))
        if not self.apps:
            raise ValueError("a scenario needs at least one approximate app")
        object.__setattr__(
            self, "policy_kwargs", _freeze_pairs(self.policy_kwargs)
        )
        object.__setattr__(
            self, "loadgen_params", _freeze_pairs(self.loadgen_params)
        )
        if self.loadgen_shape not in LOADGEN_SHAPES:
            raise ValueError(
                f"unknown loadgen shape {self.loadgen_shape!r} "
                f"(expected one of {', '.join(LOADGEN_SHAPES)})"
            )

    def has_default_loadgen(self) -> bool:
        """True when the scenario uses the legacy constant-load default."""
        return self.loadgen_shape == "constant" and not self.loadgen_params

    def config(self) -> ColocationConfig:
        """The engine config this scenario describes."""
        return ColocationConfig(
            load_fraction=self.load_fraction,
            decision_interval=self.decision_interval,
            monitor_epoch=self.monitor_epoch,
            slack_threshold=self.slack_threshold,
            horizon=self.horizon,
            seed=self.seed,
            stop_when_apps_done=self.stop_when_apps_done,
        )

    def key_payload(self) -> dict:
        """Canonical JSON-ready payload used for content addressing.

        New axes (``loadgen_*``, ``platform``) appear **only when they
        differ from their defaults**: a scenario that doesn't use them
        hashes exactly as it did before the axes existed, so the
        content-addressed cache stays hot across the API generalization.
        Pinned by the golden-payload test in ``tests/experiment``.
        """
        payload = {
            "service": self.service,
            "apps": list(self.apps),
            "policy": self.policy,
            "policy_kwargs": [[k, v] for k, v in self.policy_kwargs],
            "load_fraction": repr(float(self.load_fraction)),
            "decision_interval": repr(float(self.decision_interval)),
            "monitor_epoch": repr(float(self.monitor_epoch)),
            "slack_threshold": repr(float(self.slack_threshold)),
            "horizon": repr(float(self.horizon)),
            "seed": int(self.seed),
            "stop_when_apps_done": bool(self.stop_when_apps_done),
            "exploration_seed": int(self.exploration_seed),
        }
        if not self.has_default_loadgen():
            payload["loadgen"] = [
                self.loadgen_shape,
                [[k, _canon(v)] for k, v in self.loadgen_params],
            ]
        if self.platform != "default":
            payload["platform"] = self.platform
        return payload

    def to_payload(self) -> dict:
        """JSON-serializable form that :meth:`from_payload` inverts.

        This is how scenarios travel to remote workers through a job
        spool, so ``policy_kwargs`` values must themselves be
        JSON-serializable (tuples come back as lists — registered policy
        builders must accept either).
        """
        return {
            "service": self.service,
            "apps": list(self.apps),
            "policy": self.policy,
            "policy_kwargs": [[k, v] for k, v in self.policy_kwargs],
            "load_fraction": float(self.load_fraction),
            "decision_interval": float(self.decision_interval),
            "monitor_epoch": float(self.monitor_epoch),
            "slack_threshold": float(self.slack_threshold),
            "horizon": float(self.horizon),
            "seed": int(self.seed),
            "stop_when_apps_done": bool(self.stop_when_apps_done),
            "exploration_seed": int(self.exploration_seed),
            "loadgen_shape": self.loadgen_shape,
            "loadgen_params": [[k, _jsonify(v)] for k, v in self.loadgen_params],
            "platform": self.platform,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "Scenario":
        """Rebuild a scenario from :meth:`to_payload` output.

        Strict about keys: anything this version doesn't know is an
        error, not a silent drop — a spec naming an axis we can't honor
        must fail loudly, never run the wrong experiment.  Keys the
        payload *omits* keep their defaults, so pre-axis payloads load.
        """
        unknown = set(payload) - _SCENARIO_FIELDS
        if unknown:
            raise ValueError(
                f"unknown scenario field(s): {sorted(unknown)} "
                f"(known: {', '.join(sorted(_SCENARIO_FIELDS))})"
            )
        return cls(
            service=payload["service"],
            apps=tuple(payload["apps"]),
            policy=payload.get("policy", "pliant"),
            policy_kwargs=tuple(
                (k, v) for k, v in payload.get("policy_kwargs", ())
            ),
            load_fraction=float(payload.get("load_fraction", 0.775)),
            decision_interval=float(payload.get("decision_interval", 1.0)),
            monitor_epoch=float(payload.get("monitor_epoch", 0.1)),
            slack_threshold=float(payload.get("slack_threshold", 0.10)),
            horizon=float(payload.get("horizon", 400.0)),
            seed=int(payload.get("seed", 0)),
            stop_when_apps_done=bool(payload.get("stop_when_apps_done", True)),
            exploration_seed=int(payload.get("exploration_seed", 0)),
            loadgen_shape=payload.get("loadgen_shape", "constant"),
            loadgen_params=tuple(
                (k, v) for k, v in payload.get("loadgen_params", ())
            ),
            platform=payload.get("platform", "default"),
        )

    def label(self) -> str:
        """Short human-readable identifier for logs and tables."""
        apps = "+".join(self.apps)
        label = (
            f"{self.service}/{apps}/{self.policy}"
            f"@{self.load_fraction:g}/dt{self.decision_interval:g}/s{self.seed}"
        )
        if not self.has_default_loadgen():
            label += f"/{self.loadgen_shape}"
        if self.platform != "default":
            label += f"/{self.platform}"
        return label


#: Every sweepable axis name — any :class:`Scenario` field can be an
#: :class:`~repro.experiment.ExperimentSpec` axis or payload key.
_SCENARIO_FIELDS = frozenset(f.name for f in fields(Scenario))


def scenario_field_names() -> frozenset[str]:
    """Names of every Scenario field (the open axis vocabulary)."""
    return _SCENARIO_FIELDS


@dataclass(frozen=True)
class SweepGrid:
    """Cross product of scenario axes, expanded deterministically.

    Axis order in the expansion is (service, app mix, policy, load,
    decision interval, seed) — the slowest-varying axis first, so related
    scenarios are adjacent and cache/file locality follows the grid.
    """

    services: tuple[str, ...]
    app_mixes: tuple[tuple[str, ...], ...]
    policies: tuple[str, ...] = ("pliant",)
    load_fractions: tuple[float, ...] = (0.775,)
    decision_intervals: tuple[float, ...] = (1.0,)
    seeds: tuple[int, ...] = (0,)
    base: Scenario | None = None

    def __post_init__(self) -> None:
        if isinstance(self.services, str):
            object.__setattr__(self, "services", (self.services,))
        object.__setattr__(
            self,
            "app_mixes",
            tuple(_normalize_mix(mix) for mix in self.app_mixes),
        )
        if not self.services or not self.app_mixes:
            raise ValueError("grid needs at least one service and one app mix")
        if not self.policies or not self.load_fractions:
            raise ValueError("grid needs at least one policy and one load")
        if not self.decision_intervals or not self.seeds:
            raise ValueError("grid needs at least one interval and one seed")

    def __len__(self) -> int:
        return (
            len(self.services)
            * len(self.app_mixes)
            * len(self.policies)
            * len(self.load_fractions)
            * len(self.decision_intervals)
            * len(self.seeds)
        )

    def scenarios(self) -> list[Scenario]:
        """Expand the grid into scenarios (stable, documented order)."""
        template = self.base or Scenario(
            service=self.services[0], apps=self.app_mixes[0]
        )
        out = []
        for service, mix, policy, load, interval, seed in itertools.product(
            self.services,
            self.app_mixes,
            self.policies,
            self.load_fractions,
            self.decision_intervals,
            self.seeds,
        ):
            out.append(
                replace(
                    template,
                    service=service,
                    apps=mix,
                    policy=policy,
                    load_fraction=float(load),
                    decision_interval=float(interval),
                    seed=int(seed),
                )
            )
        return out

    def __iter__(self):
        return iter(self.scenarios())
