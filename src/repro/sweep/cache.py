"""On-disk content-addressed result cache.

Sweep results are memoized under a key derived from a stable hash of the
scenario's canonical config payload, so any change to the scenario —
load, seed, policy, app mix, horizon — lands in a different entry, while
re-running the identical sweep is a pure disk read.

Layout: ``<root>/<key[:2]>/<key>.pkl`` — pickled
:class:`~repro.core.runtime.ColocationResult` payloads, written
atomically (tmp file + rename) so a crashed worker never leaves a
half-written entry behind.  Reads treat *any* failure to load (truncated
file, foreign pickle, version skew) as a miss: the corrupted entry is
deleted and the scenario recomputed.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from functools import lru_cache
from pathlib import Path

from repro.cas import atomic_write_bytes, stable_hash

__all__ = [
    "FORMAT_VERSION",
    "SweepCache",
    "atomic_write_bytes",
    "default_sweep_cache_dir",
    "stable_hash",
]

#: Bump when the pickled payload layout changes; old entries become misses.
FORMAT_VERSION = 1

_CACHE_ENV = "REPRO_SWEEP_CACHE"


def default_sweep_cache_dir() -> Path:
    env = os.environ.get(_CACHE_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-pliant" / "sweeps"


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Digest of every ``repro`` source file.

    Folded into cache keys so a simulator code change can never serve
    stale pre-change results — the memoization contract is "same config
    *and* same code".  Computed once per process (~100 small files).
    """
    import repro

    package_root = Path(repro.__file__).parent
    digest = hashlib.sha256()
    for source in sorted(package_root.rglob("*.py")):
        digest.update(str(source.relative_to(package_root)).encode())
        digest.update(source.read_bytes())
    return digest.hexdigest()[:16]


class SweepCache:
    """Content-addressed store of completed scenario results."""

    def __init__(self, root: Path | str | None = None) -> None:
        self._root = Path(root) if root is not None else default_sweep_cache_dir()
        self.hits = 0
        self.misses = 0

    @property
    def root(self) -> Path:
        return self._root

    def key(self, scenario) -> str:
        """Content address of one scenario's result."""
        return stable_hash(
            {
                "format": FORMAT_VERSION,
                "code": code_fingerprint(),
                "scenario": scenario.key_payload(),
            }
        )

    def path(self, key: str) -> Path:
        return self._root / key[:2] / f"{key}.pkl"

    def get(self, key: str):
        """Return the cached result or ``None``; corrupt entries self-heal."""
        path = self.path(key)
        try:
            data = path.read_bytes()
            envelope = pickle.loads(data)
            if envelope["format"] != FORMAT_VERSION:
                raise ValueError("cache format version mismatch")
            result = envelope["result"]
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            # Truncated write, foreign payload, version skew: drop and recompute.
            try:
                path.unlink()
            except OSError:
                pass
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, result) -> None:
        envelope = {"format": FORMAT_VERSION, "result": result}
        atomic_write_bytes(
            self.path(key), pickle.dumps(envelope, protocol=pickle.HIGHEST_PROTOCOL)
        )

    def __contains__(self, key: str) -> bool:
        return self.path(key).exists()

    def entry_count(self) -> int:
        if not self._root.exists():
            return 0
        return sum(1 for _ in self._root.glob("*/*.pkl"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if not self._root.exists():
            return 0
        for entry in self._root.glob("*/*.pkl"):
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        return removed
