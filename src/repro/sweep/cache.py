"""On-disk content-addressed result cache.

Sweep results are memoized under a key derived from a stable hash of the
scenario's canonical config payload, so any change to the scenario —
load, seed, policy, app mix, horizon — lands in a different entry, while
re-running the identical sweep is a pure disk read.

Layout: ``<root>/<key[:2]>/<key>.pkl`` — pickled
:class:`~repro.core.runtime.ColocationResult` payloads, written
atomically (tmp file + rename) so a crashed worker never leaves a
half-written entry behind.  Reads treat *any* failure to load (truncated
file, foreign pickle, version skew) as a miss: the corrupted entry is
deleted and the scenario recomputed.

The cache is shared: every local sweep, every distributed worker, and
every submitting host memoizes through the same directory (point
``REPRO_SWEEP_CACHE`` at shared storage to pool results across hosts).
Because it grows without bound, :meth:`SweepCache.stats` and
:meth:`SweepCache.prune` expose bookkeeping and LRU eviction — reads
touch the entry mtime, so recently-used results survive a prune.
"""

from __future__ import annotations

import fcntl
import hashlib
import json
import os
import pickle
import time
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path

from repro.cas import atomic_write_bytes, stable_hash

__all__ = [
    "FORMAT_VERSION",
    "CacheStats",
    "PruneResult",
    "SweepCache",
    "atomic_write_bytes",
    "default_sweep_cache_dir",
    "stable_hash",
]

#: Bump when the pickled payload layout changes; old entries become misses.
FORMAT_VERSION = 1

_CACHE_ENV = "REPRO_SWEEP_CACHE"


def default_sweep_cache_dir() -> Path:
    env = os.environ.get(_CACHE_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-pliant" / "sweeps"


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Digest of every ``repro`` source file.

    Folded into cache keys so a simulator code change can never serve
    stale pre-change results — the memoization contract is "same config
    *and* same code".  Computed once per process (~100 small files).
    """
    import repro

    package_root = Path(repro.__file__).parent
    digest = hashlib.sha256()
    for source in sorted(package_root.rglob("*.py")):
        digest.update(str(source.relative_to(package_root)).encode())
        digest.update(source.read_bytes())
    return digest.hexdigest()[:16]


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time view of one cache directory."""

    entries: int
    total_bytes: int
    hits: int
    misses: int

    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def to_payload(self) -> dict:
        return {
            "entries": self.entries,
            "total_bytes": self.total_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
        }


@dataclass(frozen=True)
class PruneResult:
    """What one :meth:`SweepCache.prune` pass removed."""

    removed: int
    freed_bytes: int
    remaining: int
    remaining_bytes: int

    def to_payload(self) -> dict:
        return {
            "removed": self.removed,
            "freed_bytes": self.freed_bytes,
            "remaining": self.remaining,
            "remaining_bytes": self.remaining_bytes,
        }


class SweepCache:
    """Content-addressed store of completed scenario results."""

    #: Pending lookup records to accumulate before an on-disk counter flush.
    STATS_FLUSH_EVERY = 64

    def __init__(self, root: Path | str | None = None) -> None:
        self._root = Path(root) if root is not None else default_sweep_cache_dir()
        self.hits = 0
        self.misses = 0
        self._pending_hits = 0
        self._pending_misses = 0
        self._atexit_registered = False

    @property
    def root(self) -> Path:
        return self._root

    def key(self, scenario) -> str:
        """Content address of one scenario's result."""
        return stable_hash(
            {
                "format": FORMAT_VERSION,
                "code": code_fingerprint(),
                "scenario": scenario.key_payload(),
            }
        )

    def path(self, key: str) -> Path:
        return self._root / key[:2] / f"{key}.pkl"

    def get(self, key: str, record: bool = True):
        """Return the cached result or ``None``; corrupt entries self-heal.

        ``record=False`` skips the hit/miss accounting — for internal
        transport reads (e.g. the distributed submitter collecting a
        result a worker just published) that are not cache *lookups* in
        any meaningful sense.
        """
        path = self.path(key)
        try:
            data = path.read_bytes()
            envelope = pickle.loads(data)
            if envelope["format"] != FORMAT_VERSION:
                raise ValueError("cache format version mismatch")
            result = envelope["result"]
        except FileNotFoundError:
            if record:
                self._record(hit=False)
            return None
        except Exception:
            # Truncated write, foreign payload, version skew: drop and recompute.
            try:
                path.unlink()
            except OSError:
                pass
            if record:
                self._record(hit=False)
            return None
        if record:
            self._record(hit=True)
        try:
            os.utime(path)  # refresh recency so LRU pruning spares hot entries
        except OSError:
            pass
        return result

    def put(self, key: str, result) -> None:
        envelope = {"format": FORMAT_VERSION, "result": result}
        atomic_write_bytes(
            self.path(key), pickle.dumps(envelope, protocol=pickle.HIGHEST_PROTOCOL)
        )

    def __contains__(self, key: str) -> bool:
        return self.path(key).exists()

    def entry_count(self) -> int:
        if not self._root.exists():
            return 0
        return sum(1 for _ in self._root.glob("*/*.pkl"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if not self._root.exists():
            return 0
        for entry in self._root.glob("*/*.pkl"):
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    # -- bookkeeping -----------------------------------------------------

    @property
    def _stats_path(self) -> Path:
        return self._root / "stats.json"

    def _record(self, hit: bool) -> None:
        """Count one lookup, in this process and (batched) on disk.

        The on-disk counters are what ``python -m repro.sweep cache stats``
        reports — a fresh CLI process has no in-memory history, and
        distributed workers each run in their own process, so the lifetime
        hit rate only exists on disk.  The locked read-modify-write is
        deliberately *not* per-lookup: deltas accumulate in memory and
        flush every :data:`STATS_FLUSH_EVERY` records, on :meth:`stats`,
        and at process exit, so the warm hot path stays a bare disk read.
        """
        if hit:
            self.hits += 1
            self._pending_hits += 1
        else:
            self.misses += 1
            self._pending_misses += 1
        if not self._atexit_registered:
            import atexit

            atexit.register(self.flush_stats)
            self._atexit_registered = True
        if self._pending_hits + self._pending_misses >= self.STATS_FLUSH_EVERY:
            self.flush_stats()

    def flush_stats(self) -> None:
        """Fold pending lookup counts into the shared counter file."""
        if not (self._pending_hits or self._pending_misses):
            return
        try:
            self._root.mkdir(parents=True, exist_ok=True)
            with open(self._root / "stats.lock", "w") as lock:
                fcntl.flock(lock, fcntl.LOCK_EX)
                counters = self._read_counters()
                counters["hits"] += self._pending_hits
                counters["misses"] += self._pending_misses
                atomic_write_bytes(
                    self._stats_path, json.dumps(counters).encode()
                )
            self._pending_hits = 0
            self._pending_misses = 0
        except OSError:
            pass  # stats are best-effort; never fail a lookup over them

    def _read_counters(self) -> dict:
        try:
            loaded = json.loads(self._stats_path.read_text())
            return {
                "hits": int(loaded.get("hits", 0)),
                "misses": int(loaded.get("misses", 0)),
            }
        except (OSError, ValueError):
            return {"hits": 0, "misses": 0}

    def _entries(self) -> list[tuple[Path, os.stat_result]]:
        if not self._root.exists():
            return []
        out = []
        for entry in self._root.glob("*/*.pkl"):
            try:
                out.append((entry, entry.stat()))
            except OSError:
                pass  # pruned concurrently
        return out

    def stats(self) -> CacheStats:
        """Entry count, on-disk bytes, and lifetime hit/miss counters."""
        self.flush_stats()
        entries = self._entries()
        counters = self._read_counters()
        return CacheStats(
            entries=len(entries),
            total_bytes=sum(st.st_size for _, st in entries),
            hits=counters["hits"],
            misses=counters["misses"],
        )

    def prune(
        self,
        older_than: float | None = None,
        max_bytes: int | None = None,
    ) -> PruneResult:
        """Evict entries by age and/or total size (LRU by mtime).

        ``older_than`` removes entries not read or written for that many
        seconds; ``max_bytes`` then evicts least-recently-used entries
        until the cache fits.  Reads touch mtime (:meth:`get`), so "used"
        means used, not just written.
        """
        entries = sorted(self._entries(), key=lambda item: item[1].st_mtime)
        removed = 0
        freed = 0
        survivors: list[tuple[Path, os.stat_result]] = []
        # Entry ages are wall-clock minus on-disk mtime by necessity: prune
        # runs in a fresh process, so the only shared recency clock is the
        # filesystem's.  That is fine here — eviction is advisory
        # housekeeping, skew merely shifts *when* an entry is evicted, and
        # results never depend on it (a pruned entry is just a recompute).
        # repro-lint: ignore[no-wallclock] -- advisory LRU ages over on-disk mtimes; results never depend on them
        now = time.time()
        for path, st in entries:
            if older_than is not None and now - st.st_mtime > older_than:
                removed += 1
                freed += st.st_size
                try:
                    path.unlink()
                except OSError:
                    pass
            else:
                survivors.append((path, st))
        if max_bytes is not None:
            total = sum(st.st_size for _, st in survivors)
            while survivors and total > max_bytes:
                path, st = survivors.pop(0)  # oldest mtime first
                removed += 1
                freed += st.st_size
                total -= st.st_size
                try:
                    path.unlink()
                except OSError:
                    pass
        return PruneResult(
            removed=removed,
            freed_bytes=freed,
            remaining=len(survivors),
            remaining_bytes=sum(st.st_size for _, st in survivors),
        )
