"""``python -m repro.sweep`` — drive multi-host sweeps without code.

Subcommands::

    submit   expand a grid or spec file into broker jobs (opt. wait)
    worker   serve a broker: claim chunks, execute, publish to the cache
    broker   run the asyncio TCP broker (tcp:// spools point at it)
    status   census of a spool/broker (pending / running / expired / done)
    cache    stats | prune — inspect and bound the result cache

Every ``--spool`` flag accepts either a shared spool *directory* (the
zero-daemon filesystem transport) or ``tcp://host:port`` naming a
running broker.  A two-host sweep over shared storage is two shell
lines::

    host-a$ python -m repro.sweep submit --spool /share/spool \\
                --services memcached --apps kmeans+canneal \\
                --loads 0.5,0.7,0.9 --seeds 0,1 --wait --workers 2
    host-b$ python -m repro.sweep worker --spool /share/spool \\
                --cache /share/cache --exit-when-idle

and the same sweep through the TCP broker (no shared spool storage;
the cache still has to be shared) is three::

    host-a$ python -m repro.sweep broker --port 7077
    host-a$ python -m repro.sweep submit --spool tcp://host-a:7077 \\
                --services memcached --apps kmeans+canneal \\
                --loads 0.5,0.7,0.9 --seeds 0,1 --wait
    host-b$ python -m repro.sweep worker --spool tcp://host-a:7077 \\
                --cache /share/cache --exit-when-idle

Grid flags only reach the six axes ``SweepGrid`` hard-codes; ``--spec
exp.json`` submits a full :class:`~repro.experiment.ExperimentSpec` —
any scenario field as an axis (load shape, platform, slack threshold,
...), written once and shared between hosts, figures, and scripts.

``--strategy`` / ``--budget`` / ``--objective`` / ``--rng-seed`` turn a
submit into a budgeted search (:mod:`repro.search`): the submitter
proposes rounds from observed results (so it needs ``--wait``) while
workers keep doing the evaluating, and every point still lands in the
shared cache.
"""

from __future__ import annotations

import argparse
import importlib
import json
import sys
import time

from repro import telemetry
from repro.experiment import ExperimentSpec, run_experiment
from repro.sweep.backends import (
    DistributedBackend,
    run_worker,
    transport_from_spec,
)
from repro.sweep.backends.distributed import (
    DEFAULT_CHUNK_MAX,
    DEFAULT_CHUNK_TARGET,
)
from repro.sweep.backends.tcp import TcpBroker
from repro.sweep.cache import SweepCache
from repro.sweep.grid import Scenario, SweepGrid

__all__ = ["build_parser", "build_spec", "main"]


def _floats(text: str) -> tuple[float, ...]:
    return tuple(float(part) for part in text.split(",") if part)


def _ints(text: str) -> tuple[int, ...]:
    return tuple(int(part) for part in text.split(",") if part)


def _names(text: str) -> tuple[str, ...]:
    return tuple(part.strip() for part in text.split(",") if part.strip())


def _import_modules(names) -> None:
    """Import policy/app modules so their registrations run in this process."""
    for name in names or ():
        importlib.import_module(name)


def _cache_from(args) -> SweepCache:
    return SweepCache(args.cache) if args.cache else SweepCache()


#: Grid flags and their parser defaults — --spec is exclusive with *any*
#: of them being set (a silently ignored flag runs the wrong experiment).
_GRID_FLAG_DEFAULTS = {
    "apps": None,
    "services": ("memcached",),
    "policies": ("pliant",),
    "loads": (0.775,),
    "intervals": (1.0,),
    "seeds": (0,),
    "horizon": 400.0,
    "monitor_epoch": 0.1,
    "slack_threshold": 0.10,
}


def _fold_search_flags(spec: ExperimentSpec, args) -> ExperimentSpec:
    """Overlay --strategy/--budget/--objective/--rng-seed onto the spec.

    Unlike the grid flags these *compose* with --spec: a spec file fixes
    the axes while the command line picks how hard to search them.
    """
    return spec.with_search(
        strategy=args.strategy,
        budget=args.budget,
        objective=tuple(args.objective) if args.objective else None,
        rng_seed=args.rng_seed,
    )


def build_spec(args) -> ExperimentSpec:
    """The experiment to submit: ``--spec`` file, or grid flags lifted."""
    if args.spec:
        overridden = [
            f"--{flag.replace('_', '-')}"
            for flag, default in _GRID_FLAG_DEFAULTS.items()
            if getattr(args, flag) != default
        ]
        if overridden:
            raise SystemExit(
                f"--spec is exclusive with grid flags; drop "
                f"{', '.join(overridden)} or fold them into the spec file"
            )
        return _fold_search_flags(ExperimentSpec.load(args.spec), args)
    if not args.apps:
        raise SystemExit(
            "submit needs --apps (grid flags) or --spec exp.json"
        )
    base = Scenario(
        service=args.services[0],
        apps=args.apps[0],
        horizon=args.horizon,
        monitor_epoch=args.monitor_epoch,
        slack_threshold=args.slack_threshold,
    )
    grid = SweepGrid(
        services=args.services,
        app_mixes=tuple(args.apps),
        policies=args.policies,
        load_fractions=args.loads,
        decision_intervals=args.intervals,
        seeds=args.seeds,
        base=base,
    )
    return _fold_search_flags(ExperimentSpec.from_grid(grid), args)


def cmd_submit(args) -> int:
    if args.out and not args.wait:
        raise SystemExit(
            "--out needs --wait: results only exist locally once the "
            "sweep has been collected"
        )
    _import_modules(args.import_modules)
    spec = build_spec(args)
    if spec.search_requested and not args.wait:
        raise SystemExit(
            "a budgeted search needs --wait: the submitter proposes each "
            "round from the previous round's results, so it must stay "
            "attached (workers still do the evaluating)"
        )
    if not args.wait:
        scenarios = spec.scenarios()
        transport = transport_from_spec(args.spool, lease_ttl=args.lease_ttl)
        transport.submit_many(scenarios)
        status = transport.status()
        print(
            f"spooled {len(scenarios)} scenarios into {transport.spec} "
            f"({status.done} already done, {status.pending} pending)"
        )
        print(
            "start workers with: python -m repro.sweep worker "
            f"--spool {transport.spec} --cache {_cache_from(args).root}"
        )
        return 0
    cache = _cache_from(args)
    backend = DistributedBackend(
        args.spool,
        cache=cache,
        lease_ttl=args.lease_ttl,
        timeout=args.timeout,
        local_workers=args.workers,
        import_modules=tuple(args.import_modules or ()),
    )
    recorder = telemetry.get_recorder()
    if recorder.enabled and recorder.process == "main":
        recorder.process = "submitter"
    try:
        results = run_experiment(spec, backend=backend, cache=cache)
    except (RuntimeError, TimeoutError) as exc:
        telemetry.flush()
        print(f"sweep failed: {exc}", file=sys.stderr)
        return 1
    shard = telemetry.flush()
    if shard is not None:
        print(f"telemetry shard: {shard} (python -m repro.telemetry report)")
    if spec.search_requested:
        best = results.best()
        print(
            f"search '{results.strategy}' evaluated {results.evaluations} of "
            f"{results.space_size} points "
            f"({100 * results.fraction_evaluated:.1f}%) in "
            f"{len(results.rounds)} rounds"
        )
        print(
            f"best point: {best.scenario.label()} "
            f"({results.objectives[0].spec} = {results.best_value():.4g})"
        )
    print(
        f"{len(results)} scenarios complete ({results.cache_hits} from cache)"
    )
    for outcome in results:
        source = "cache" if outcome.from_cache else f"{outcome.duration:.2f}s"
        print(f"  {outcome.scenario.label():<60} {source}")
    if args.out:
        results.save(args.out)
        print(f"result set saved to {args.out}")
    return 0


def cmd_worker(args) -> int:
    _import_modules(args.import_modules)
    executed = run_worker(
        args.spool,
        cache=_cache_from(args),
        lease_ttl=args.lease_ttl,
        poll_interval=args.poll,
        exit_when_idle=args.exit_when_idle,
        max_jobs=args.max_jobs,
        worker_id=args.worker_id,
        chunk_target=args.chunk_target,
        chunk_max=args.chunk_max,
    )
    print(f"worker drained: executed {executed} jobs")
    return 0


def cmd_broker(args) -> int:
    recorder = telemetry.get_recorder()
    if recorder.enabled and recorder.process == "main":
        recorder.process = "broker"
    try:
        TcpBroker(
            host=args.host, port=args.port, lease_ttl=args.lease_ttl
        ).serve_forever()
    finally:
        telemetry.flush()
    return 0


def _census_line(spool: str, status) -> str:
    failed = f" ({status.failed} failed)" if status.failed else ""
    return (
        f"spool {spool}: {status.total} jobs — "
        f"{status.done} done{failed}, {status.running} running, "
        f"{status.expired} expired leases, {status.pending} pending"
    )


def _watch_frame(transport, spool: str, shard_dir) -> str:
    """One ``--watch`` refresh: broker census + per-process telemetry."""
    lines = [_census_line(spool, transport.status())]
    for shard in telemetry.read_shards(shard_dir):
        meta = shard["meta"]
        counters = meta.get("counters", {})
        done = int(counters.get("worker.done", 0))
        claims = int(counters.get("worker.claims", 0))
        if not (done or claims):
            continue
        chunk = meta.get("hists", {}).get("worker.chunk_size", {})
        failed = int(counters.get("worker.failed", 0))
        failed_note = f", {failed} failed" if failed else ""
        lines.append(
            f"  {meta['process']}: {done} done{failed_note}, "
            f"{claims} claims, mean chunk {chunk.get('mean', 0.0):.1f}"
        )
    return "\n".join(lines)


def cmd_status(args) -> int:
    transport = transport_from_spec(args.spool, lease_ttl=args.lease_ttl)
    if args.watch:
        shard_dir = (
            args.telemetry_dir
            if args.telemetry_dir
            else telemetry.default_dir()
        )
        try:
            while True:
                print(_watch_frame(transport, args.spool, shard_dir), flush=True)
                status = transport.status()
                if status.total and status.done == status.total:
                    break
                time.sleep(args.interval)
        except KeyboardInterrupt:
            pass
        return 0
    status = transport.status()
    if args.json:
        print(json.dumps(status.to_payload()))
    else:
        print(_census_line(args.spool, status))
    return 0


def cmd_cache_stats(args) -> int:
    stats = _cache_from(args).stats()
    if args.json:
        print(json.dumps(stats.to_payload()))
    else:
        print(
            f"cache {_cache_from(args).root}: {stats.entries} entries, "
            f"{stats.total_bytes} bytes, "
            f"{stats.hits} hits / {stats.misses} misses "
            f"({100 * stats.hit_rate:.1f}% lifetime hit rate)"
        )
    return 0


def cmd_cache_prune(args) -> int:
    if args.older_than is None and args.max_bytes is None:
        print("nothing to do: pass --older-than and/or --max-bytes", file=sys.stderr)
        return 2
    pruned = _cache_from(args).prune(
        older_than=args.older_than, max_bytes=args.max_bytes
    )
    if args.json:
        print(json.dumps(pruned.to_payload()))
    else:
        print(
            f"pruned {pruned.removed} entries ({pruned.freed_bytes} bytes); "
            f"{pruned.remaining} entries ({pruned.remaining_bytes} bytes) remain"
        )
    return 0


def _add_cache_arg(parser) -> None:
    parser.add_argument(
        "--cache",
        default=None,
        metavar="DIR",
        help="result cache directory (default: REPRO_SWEEP_CACHE or "
        "~/.cache/repro-pliant/sweeps)",
    )


def _add_spool_args(parser) -> None:
    parser.add_argument("--spool", required=True, metavar="DIR|tcp://H:P",
                        help="shared spool directory (jobs/leases/done) or "
                        "tcp://host:port of a running broker")
    parser.add_argument("--lease-ttl", type=float, default=30.0, metavar="SEC",
                        help="heartbeats older than this mark a worker dead")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sweep",
        description="Distributed sweep control plane: submit scenario grids, "
        "run workers, inspect spool and cache state.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    submit = sub.add_parser(
        "submit", help="expand a grid or spec file into spool jobs"
    )
    _add_spool_args(submit)
    _add_cache_arg(submit)
    submit.add_argument("--spec", default=None, metavar="FILE",
                        help="ExperimentSpec JSON file; any scenario field "
                        "as an axis (exclusive with grid flags)")
    submit.add_argument("--out", default=None, metavar="FILE",
                        help="with --wait: save the full ResultSet "
                        "(pickle) here for later querying")
    submit.add_argument("--services", type=_names, default=("memcached",),
                        metavar="A,B", help="comma-separated service names")
    submit.add_argument("--apps", action="append", type=lambda s: tuple(s.split("+")),
                        metavar="APP[+APP...]",
                        help="one app mix per flag; '+' joins apps in a mix")
    submit.add_argument("--policies", type=_names, default=("pliant",),
                        metavar="P,Q")
    submit.add_argument("--loads", type=_floats, default=(0.775,), metavar="F,F")
    submit.add_argument("--intervals", type=_floats, default=(1.0,), metavar="S,S")
    submit.add_argument("--seeds", type=_ints, default=(0,), metavar="N,N")
    submit.add_argument("--horizon", type=float, default=400.0)
    submit.add_argument("--monitor-epoch", type=float, default=0.1)
    submit.add_argument("--slack-threshold", type=float, default=0.10)
    submit.add_argument("--strategy", default=None,
                        metavar="grid|random|halving|pareto",
                        help="search strategy instead of the exhaustive "
                        "grid (see repro.search); composes with --spec")
    submit.add_argument("--budget", type=int, default=None, metavar="N",
                        help="hard ceiling on unique scenario evaluations")
    submit.add_argument("--objective", action="append", default=None,
                        metavar="[min:|max:]METRIC",
                        help="objective metric ranking points; repeat for "
                        "multi-objective (first is primary)")
    submit.add_argument("--rng-seed", type=int, default=None, metavar="N",
                        help="seed for stochastic strategies (default 0; "
                        "fixes the proposal sequence on every backend)")
    submit.add_argument("--wait", action="store_true",
                        help="block until every result is in the cache")
    submit.add_argument("--workers", type=int, default=0, metavar="N",
                        help="with --wait: also spawn N local workers")
    submit.add_argument("--timeout", type=float, default=None, metavar="SEC",
                        help="with --wait: give up after this long")
    submit.add_argument("--import", dest="import_modules", action="append",
                        metavar="MODULE",
                        help="import MODULE first (custom policy registration)")
    submit.set_defaults(func=cmd_submit)

    worker = sub.add_parser("worker", help="serve a spool until drained/killed")
    _add_spool_args(worker)
    _add_cache_arg(worker)
    worker.add_argument("--poll", type=float, default=0.2, metavar="SEC",
                        help="idle sleep between claim attempts")
    worker.add_argument("--exit-when-idle", action="store_true",
                        help="exit once every spooled job is done")
    worker.add_argument("--max-jobs", type=int, default=None, metavar="N",
                        help="exit after executing N jobs")
    worker.add_argument("--worker-id", default=None,
                        help="override the hostname-pid worker id")
    worker.add_argument("--chunk-target", type=float,
                        default=DEFAULT_CHUNK_TARGET, metavar="SEC",
                        help="lease chunks sized to roughly this many "
                        "seconds of measured scenario work")
    worker.add_argument("--chunk-max", type=int, default=DEFAULT_CHUNK_MAX,
                        metavar="N",
                        help="never claim more than N jobs per lease")
    worker.add_argument("--import", dest="import_modules", action="append",
                        metavar="MODULE",
                        help="import MODULE first (custom policy registration)")
    worker.set_defaults(func=cmd_worker)

    broker = sub.add_parser(
        "broker", help="run the asyncio TCP broker in the foreground"
    )
    broker.add_argument("--host", default="127.0.0.1",
                        help="bind address (0.0.0.0 for a multi-host fleet)")
    broker.add_argument("--port", type=int, default=0, metavar="N",
                        help="listen port (0 picks a free one and prints it)")
    broker.add_argument("--lease-ttl", type=float, default=30.0, metavar="SEC",
                        help="heartbeats older than this mark a worker dead")
    broker.set_defaults(func=cmd_broker)

    status = sub.add_parser("status", help="census of a spool or broker")
    _add_spool_args(status)
    status.add_argument("--json", action="store_true")
    status.add_argument("--watch", action="store_true",
                        help="refresh until the spool drains; adds per-worker "
                        "telemetry lines when shards are being written")
    status.add_argument("--interval", type=float, default=2.0, metavar="SEC",
                        help="with --watch: seconds between refreshes")
    status.add_argument("--telemetry-dir", default=None, metavar="DIR",
                        help="with --watch: shard directory (default: "
                        "$REPRO_TELEMETRY_DIR or .repro-telemetry)")
    status.set_defaults(func=cmd_status)

    cache = sub.add_parser("cache", help="inspect or bound the result cache")
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)

    stats = cache_sub.add_parser("stats", help="entries, bytes, hit rate")
    _add_cache_arg(stats)
    stats.add_argument("--json", action="store_true")
    stats.set_defaults(func=cmd_cache_stats)

    prune = cache_sub.add_parser("prune", help="evict entries (LRU by mtime)")
    _add_cache_arg(prune)
    prune.add_argument("--older-than", type=float, default=None, metavar="SEC",
                       help="evict entries unused for this many seconds")
    prune.add_argument("--max-bytes", type=int, default=None, metavar="N",
                       help="evict least-recently-used entries past N bytes")
    prune.add_argument("--json", action="store_true")
    prune.set_defaults(func=cmd_cache_prune)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
