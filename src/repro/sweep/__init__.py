"""Parallel experiment/sweep subsystem.

The evaluation figures all reduce to sweeping a grid of colocation
scenarios — (service, app mix, load, policy, decision interval, seed) —
and aggregating the per-scenario :class:`~repro.core.runtime.ColocationResult`.
This package makes that grid a first-class object:

* :mod:`repro.sweep.grid` — declarative scenario grids
  (:class:`Scenario`, :class:`SweepGrid`),
* :mod:`repro.sweep.cache` — on-disk content-addressed result cache
  (:class:`SweepCache`), keyed by a stable hash of the scenario config,
  with stats and LRU pruning,
* :mod:`repro.sweep.backends` — pluggable execution backends: inline
  (:class:`SerialBackend`), local process fan-out
  (:class:`ProcessBackend`), and a fault-tolerant broker/worker queue
  (:class:`DistributedBackend`) over a pluggable
  :class:`BrokerTransport` — a shared filesystem spool
  (:class:`JobSpool`) or an asyncio TCP broker (:class:`TcpBroker`,
  spool spec ``tcp://host:port``) — with chunked leases that claim ~1s
  of work at a time,
* :mod:`repro.sweep.engine` — :class:`SweepEngine`, the facade that
  probes the cache and hands misses to a backend, plus the policy
  registry (:func:`register_policy`),
* :mod:`repro.sweep.cli` — ``python -m repro.sweep``: submit grids,
  serve a spool as a worker, inspect spool/cache state.

Results are bit-identical between serial, process-parallel, and
distributed execution because every scenario derives its random streams
purely from its own config (see :mod:`repro.rng`) — never from execution
order, placement, or wall-clock time.
"""

from repro.sweep.backends import (
    BrokerTransport,
    DistributedBackend,
    ExecutionBackend,
    JobSpool,
    ProcessBackend,
    SerialBackend,
    TcpBroker,
    TcpTransport,
    backend_from_env,
    run_worker,
    transport_from_spec,
)
from repro.sweep.cache import (
    CacheStats,
    PruneResult,
    SweepCache,
    default_sweep_cache_dir,
    stable_hash,
)
from repro.sweep.engine import (
    SweepEngine,
    SweepOutcome,
    register_policy,
    registered_policies,
    results_identical,
    run_scenario,
)
from repro.sweep.grid import Scenario, SweepGrid

__all__ = [
    "BrokerTransport",
    "CacheStats",
    "DistributedBackend",
    "ExecutionBackend",
    "JobSpool",
    "ProcessBackend",
    "PruneResult",
    "Scenario",
    "SerialBackend",
    "SweepCache",
    "SweepEngine",
    "SweepGrid",
    "SweepOutcome",
    "TcpBroker",
    "TcpTransport",
    "backend_from_env",
    "default_sweep_cache_dir",
    "register_policy",
    "registered_policies",
    "results_identical",
    "run_scenario",
    "run_worker",
    "stable_hash",
    "transport_from_spec",
]
