"""Parallel experiment/sweep subsystem.

The evaluation figures all reduce to sweeping a grid of colocation
scenarios — (service, app mix, load, policy, decision interval, seed) —
and aggregating the per-scenario :class:`~repro.core.runtime.ColocationResult`.
This package makes that grid a first-class object:

* :mod:`repro.sweep.grid` — declarative scenario grids
  (:class:`Scenario`, :class:`SweepGrid`),
* :mod:`repro.sweep.cache` — on-disk content-addressed result cache
  (:class:`SweepCache`), keyed by a stable hash of the scenario config,
* :mod:`repro.sweep.engine` — :class:`SweepEngine`, which fans scenarios
  out across worker processes with deterministic per-scenario seeding and
  memoizes completed results through the cache.

Results are bit-identical between serial and parallel execution because
every scenario derives its random streams purely from its own config
(see :mod:`repro.rng`) — never from execution order or wall-clock time.
"""

from repro.sweep.cache import SweepCache, default_sweep_cache_dir, stable_hash
from repro.sweep.engine import (
    SweepEngine,
    SweepOutcome,
    results_identical,
    run_scenario,
)
from repro.sweep.grid import Scenario, SweepGrid

__all__ = [
    "Scenario",
    "SweepCache",
    "SweepEngine",
    "SweepGrid",
    "SweepOutcome",
    "default_sweep_cache_dir",
    "results_identical",
    "run_scenario",
    "stable_hash",
]
