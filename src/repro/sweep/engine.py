"""The sweep engine: a facade over pluggable execution backends.

``SweepEngine.run`` takes a :class:`~repro.sweep.grid.SweepGrid` (or any
iterable of scenarios), satisfies what it can from the result cache,
hands the misses to an :class:`~repro.sweep.backends.ExecutionBackend`
(inline, local process pool, or a distributed broker/worker queue), and
returns outcomes in grid order.  Scenario results are a pure function of
the scenario config — every random stream inside a run derives from the
scenario's own seed via :mod:`repro.rng` — so every backend produces
bit-identical results and caching is sound.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.core.arbiter import ImpactAwareArbiter
from repro.telemetry import get_recorder
from repro.core.baselines import (
    CoreReclaimOnlyPolicy,
    PrecisePolicy,
    StaticLevelPolicy,
    StaticMostApproxPolicy,
)
from repro.core.policy import PliantPolicy, RuntimePolicy
from repro.core.runtime import ColocationResult
from repro.sweep.backends import ExecutionBackend, ProcessBackend, SerialBackend
from repro.sweep.cache import SweepCache
from repro.sweep.grid import Scenario, SweepGrid

#: Builders from (scenario, kwargs) to a policy instance.  Keyed by the
#: policy's display name so ``Scenario.policy`` round-trips through
#: ``RuntimePolicy.name``.  Backing store for :func:`register_policy` —
#: prefer the function over mutating this dict directly.
POLICY_REGISTRY: dict[str, Callable[[Scenario, dict], RuntimePolicy]] = {
    "pliant": lambda sc, kw: PliantPolicy(seed=sc.seed, **kw),
    "pliant-impact": lambda sc, kw: PliantPolicy(
        seed=sc.seed, arbiter=ImpactAwareArbiter(), **kw
    ),
    "precise": lambda sc, kw: PrecisePolicy(),
    "static-most-approx": lambda sc, kw: StaticMostApproxPolicy(),
    "static-level": lambda sc, kw: StaticLevelPolicy(dict(kw["levels"])),
    "core-reclaim-only": lambda sc, kw: CoreReclaimOnlyPolicy(**kw),
}


def register_policy(
    name: str,
    builder: Callable[[Scenario, dict], RuntimePolicy],
    overwrite: bool = False,
) -> Callable[[Scenario, dict], RuntimePolicy]:
    """Register a policy builder under ``name`` for scenarios to reference.

    ``builder(scenario, kwargs)`` must return a fresh policy instance.
    Scenarios carry only the *name* (plus JSON-safe kwargs), which is what
    lets them travel to remote workers: a worker re-resolves the name at
    execution time, so the module calling ``register_policy`` must be
    importable there too (``python -m repro.sweep worker --import
    your.module``).  Returns ``builder`` so it can be used as a decorator
    via ``functools.partial(register_policy, "name")``.
    """
    if not callable(builder):
        raise TypeError(f"policy builder for {name!r} must be callable")
    if not overwrite and name in POLICY_REGISTRY:
        raise ValueError(
            f"policy {name!r} is already registered; pass overwrite=True "
            "to replace it"
        )
    POLICY_REGISTRY[name] = builder
    return builder


def registered_policies() -> tuple[str, ...]:
    """Sorted names of every registered policy."""
    return tuple(sorted(POLICY_REGISTRY))


def make_policy(scenario: Scenario) -> RuntimePolicy:
    """Instantiate the policy a scenario names."""
    try:
        builder = POLICY_REGISTRY[scenario.policy]
    except KeyError:
        known = ", ".join(sorted(POLICY_REGISTRY))
        raise ValueError(
            f"unknown policy {scenario.policy!r} (known: {known}); "
            "custom policies must be registered with "
            "repro.sweep.register_policy(name, builder) — and the "
            "registering module imported inside remote workers "
            "(worker --import)"
        ) from None
    return builder(scenario, dict(scenario.policy_kwargs))


def run_scenario(scenario: Scenario) -> ColocationResult:
    """Run one scenario to completion (used directly by worker processes)."""
    # Imported lazily: repro.cluster re-exports sweep helpers that import
    # this module, so a top-level import would be circular.
    from repro.cluster.colocation import build_engine

    engine = build_engine(
        scenario.service,
        scenario.apps,
        make_policy(scenario),
        config=scenario.config(),
        exploration_seed=scenario.exploration_seed,
        platform=scenario.platform,
        loadgen_spec=(
            None
            if scenario.has_default_loadgen()
            else (scenario.loadgen_shape, scenario.loadgen_params)
        ),
    )
    return engine.run()


def results_identical(a: ColocationResult, b: ColocationResult) -> bool:
    """Strict bit-level equality of two colocation results.

    Used to assert that serial and parallel sweeps of the same grid are
    indistinguishable (the determinism contract of the engine).
    """
    import numpy as np

    if (
        a.service_name != b.service_name
        or a.policy_name != b.policy_name
        or a.qos != b.qos
        or a.offered_qps != b.offered_qps
    ):
        return False
    for x, y in (
        (a.epoch_times, b.epoch_times),
        (a.epoch_p99, b.epoch_p99),
        (a.epoch_service_cores, b.epoch_service_cores),
    ):
        if not np.array_equal(x, y):
            return False
    for mapping_a, mapping_b in (
        (a.epoch_app_levels, b.epoch_app_levels),
        (a.epoch_app_cores, b.epoch_app_cores),
    ):
        if mapping_a.keys() != mapping_b.keys():
            return False
        if any(not np.array_equal(mapping_a[k], mapping_b[k]) for k in mapping_a):
            return False
    if len(a.intervals) != len(b.intervals) or len(a.apps) != len(b.apps):
        return False
    for ra, rb in zip(a.intervals, b.intervals):
        if ra.observation != rb.observation or ra.action_summary != rb.action_summary:
            return False
    for oa, ob in zip(a.apps, b.apps):
        if (
            oa.name != ob.name
            or oa.finish_time != ob.finish_time
            or oa.inaccuracy_pct != ob.inaccuracy_pct
            or oa.switches != ob.switches
            or oa.min_cores != ob.min_cores
            or oa.max_reclaimed != ob.max_reclaimed
            or oa.level_trace != ob.level_trace
        ):
            return False
    return True


@dataclass
class SweepOutcome:
    """One scenario's result plus execution provenance."""

    scenario: Scenario
    result: ColocationResult
    from_cache: bool
    duration: float


class SweepEngine:
    """Facade: cache probing + an execution backend, in grid order.

    Parameters
    ----------
    workers:
        Worker process count for the *default local* backend.  ``None``
        uses ``os.cpu_count()``; ``0`` or ``1`` runs inline (serial
        backend).  Ignored when ``backend`` is given.  Parallelism never
        changes results — only wall-clock.
    cache:
        A :class:`SweepCache` to memoize results in, or ``None`` (default)
        to recompute every scenario.  Benchmarks pass an explicit cache so
        reruns are near-free; unit tests default to uncached runs.
    backend:
        An explicit :class:`~repro.sweep.backends.ExecutionBackend`
        (e.g. :class:`~repro.sweep.backends.DistributedBackend` for
        multi-host fan-out).  ``None`` picks
        :class:`~repro.sweep.backends.SerialBackend` or
        :class:`~repro.sweep.backends.ProcessBackend` from ``workers``.
    """

    def __init__(
        self,
        workers: int | None = None,
        cache: SweepCache | None = None,
        backend: ExecutionBackend | None = None,
    ) -> None:
        self._workers = workers
        self._cache = cache
        self._backend = backend

    @property
    def cache(self) -> SweepCache | None:
        return self._cache

    @property
    def backend(self) -> ExecutionBackend | None:
        """The explicit backend, or ``None`` when resolved per-run."""
        return self._backend

    def effective_workers(self, pending: int) -> int:
        workers = self._workers if self._workers is not None else os.cpu_count() or 1
        return max(1, min(workers, pending)) if pending else 1

    def resolve_backend(self, pending: int) -> ExecutionBackend:
        """The backend a run with ``pending`` cache misses would use."""
        if self._backend is not None:
            return self._backend
        if self.effective_workers(pending) <= 1 or pending <= 1:
            return SerialBackend()
        # The backend applies the pending/cpu clamp itself (worker_budget
        # is the same rule as effective_workers) — don't clamp twice.
        return ProcessBackend(self._workers)

    def run(
        self,
        grid: SweepGrid | Iterable[Scenario],
        force: bool = False,
    ) -> list[SweepOutcome]:
        """Evaluate every scenario; outcomes come back in grid order.

        ``force`` bypasses cache *reads* (results are still written back),
        which is how benchmarks measure a guaranteed-cold pass.
        """
        scenarios = list(grid.scenarios() if isinstance(grid, SweepGrid) else grid)
        outcomes: dict[int, SweepOutcome] = {}
        pending: list[tuple[int, Scenario]] = []
        telemetry = get_recorder()

        with telemetry.span("sweep.run", cat="engine", scenarios=len(scenarios)):
            for index, scenario in enumerate(scenarios):
                cached = None
                if self._cache is not None and not force:
                    cached = self._cache.get(self._cache.key(scenario))
                if cached is not None:
                    telemetry.count("sweep.cache.hit")
                    outcomes[index] = SweepOutcome(
                        scenario=scenario,
                        result=cached,
                        from_cache=True,
                        duration=0.0,
                    )
                else:
                    telemetry.count("sweep.cache.miss")
                    pending.append((index, scenario))

            if pending:
                backend = self.resolve_backend(len(pending))
                with telemetry.span(
                    "sweep.execute",
                    cat="engine",
                    backend=backend.name,
                    pending=len(pending),
                ):
                    computed = backend.execute([s for _, s in pending])
                # Skip the write-back when the backend's workers already
                # published into this very cache (same root): re-pickling
                # every distributed result would double the disk traffic.
                store = backend.result_store()
                write_back = self._cache is not None and (
                    store is None or store.root != self._cache.root
                )
                for (index, scenario), (result, duration) in zip(pending, computed):
                    if write_back:
                        self._cache.put(self._cache.key(scenario), result)
                    # Per-scenario durations reach the engine even when
                    # they ran in pool children that never flush a shard.
                    telemetry.observe("sweep.scenario_s", duration)
                    outcomes[index] = SweepOutcome(
                        scenario=scenario,
                        result=result,
                        from_cache=False,
                        duration=duration,
                    )

        return [outcomes[i] for i in range(len(scenarios))]

    def run_results(
        self,
        grid: SweepGrid | Iterable[Scenario],
        force: bool = False,
    ) -> list[ColocationResult]:
        """Like :meth:`run`, returning bare results."""
        return [outcome.result for outcome in self.run(grid, force=force)]

    def run_one(self, scenario: Scenario, force: bool = False) -> ColocationResult:
        """Evaluate a single scenario through the cache."""
        return self.run([scenario], force=force)[0].result
