"""Platform model: the physical server the colocations run on.

Follows the paper's methodology (Section 5): a single socket hosts all
tenants, a fixed number of cores is dedicated to network interrupt handling,
and the remaining cores are partitioned among tenants via pinning.  Tenants
on the same socket share the LLC, memory bandwidth, disk and NIC.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import PlatformSpec


@dataclass(frozen=True)
class Platform:
    """Usable view of one socket of the :class:`~repro.config.PlatformSpec`."""

    spec: PlatformSpec

    @property
    def allocatable_cores(self) -> int:
        """Cores available for tenant pinning on the active socket."""
        return self.spec.usable_cores_per_socket

    @property
    def llc_bytes(self) -> float:
        return self.spec.llc_bytes

    @property
    def memory_bandwidth(self) -> float:
        """Memory bandwidth (bytes/s) visible to the active socket."""
        return self.spec.memory_bandwidth_bytes

    @property
    def disk_bandwidth(self) -> float:
        return self.spec.disk_bandwidth_bytes

    @property
    def network_bandwidth(self) -> float:
        return self.spec.network_bandwidth_bytes

    def fair_share(self, tenants: int) -> list[int]:
        """Split allocatable cores fairly among ``tenants``.

        The first tenants receive the remainder cores, matching how a fair
        cpuset split is done in practice (e.g. 16 cores over 3 tenants ->
        [6, 5, 5]).
        """
        if tenants <= 0:
            raise ValueError("tenants must be positive")
        if tenants > self.allocatable_cores:
            raise ValueError(
                f"cannot split {self.allocatable_cores} cores over {tenants} tenants"
            )
        base, remainder = divmod(self.allocatable_cores, tenants)
        return [base + (1 if index < remainder else 0) for index in range(tenants)]


def default_platform() -> Platform:
    """The paper's server (Table 1)."""
    return Platform(spec=PlatformSpec())
