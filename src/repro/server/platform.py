"""Platform model: the physical server the colocations run on.

Follows the paper's methodology (Section 5): a single socket hosts all
tenants, a fixed number of cores is dedicated to network interrupt handling,
and the remaining cores are partitioned among tenants via pinning.  Tenants
on the same socket share the LLC, memory bandwidth, disk and NIC.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

from repro.config import PlatformSpec


@dataclass(frozen=True)
class Platform:
    """Usable view of one socket of the :class:`~repro.config.PlatformSpec`."""

    spec: PlatformSpec

    @property
    def allocatable_cores(self) -> int:
        """Cores available for tenant pinning on the active socket."""
        return self.spec.usable_cores_per_socket

    @property
    def llc_bytes(self) -> float:
        return self.spec.llc_bytes

    @property
    def memory_bandwidth(self) -> float:
        """Memory bandwidth (bytes/s) visible to the active socket."""
        return self.spec.memory_bandwidth_bytes

    @property
    def disk_bandwidth(self) -> float:
        return self.spec.disk_bandwidth_bytes

    @property
    def network_bandwidth(self) -> float:
        return self.spec.network_bandwidth_bytes

    def fair_share(self, tenants: int) -> list[int]:
        """Split allocatable cores fairly among ``tenants``.

        The first tenants receive the remainder cores, matching how a fair
        cpuset split is done in practice (e.g. 16 cores over 3 tenants ->
        [6, 5, 5]).
        """
        if tenants <= 0:
            raise ValueError("tenants must be positive")
        if tenants > self.allocatable_cores:
            raise ValueError(
                f"cannot split {self.allocatable_cores} cores over {tenants} tenants"
            )
        base, remainder = divmod(self.allocatable_cores, tenants)
        return [base + (1 if index < remainder else 0) for index in range(tenants)]


def default_platform() -> Platform:
    """The paper's server (Table 1)."""
    return Platform(spec=PlatformSpec())


def _half_llc_platform() -> Platform:
    """Table 1 server with half the LLC — a cache-starved variant."""
    spec = PlatformSpec()
    return Platform(
        spec=replace(spec, llc_bytes=spec.llc_bytes / 2, llc_ways=spec.llc_ways // 2)
    )


def _ddr4_3200_platform() -> Platform:
    """Table 1 server with DDR4-3200: memory bandwidth scaled 3200/2400."""
    spec = PlatformSpec()
    return Platform(
        spec=replace(
            spec,
            memory_speed_mhz=3200,
            memory_bandwidth_bytes=spec.memory_bandwidth_bytes * 3200 / 2400,
        )
    )


#: Named platform variants scenarios can sweep over.  Factories (not
#: instances) so every engine gets a fresh Platform and registration
#: stays cheap at import time.
PLATFORM_REGISTRY: dict[str, Callable[[], Platform]] = {
    "default": default_platform,
    "half-llc": _half_llc_platform,
    "ddr4-3200": _ddr4_3200_platform,
}


def register_platform(
    name: str, factory: Callable[[], Platform], overwrite: bool = False
) -> Callable[[], Platform]:
    """Register a platform factory under ``name`` for scenarios to reference.

    Like policy registration, scenarios carry only the *name* — remote
    sweep workers re-resolve it, so the registering module must be
    importable there too (``worker --import``).
    """
    if not callable(factory):
        raise TypeError(f"platform factory for {name!r} must be callable")
    if not overwrite and name in PLATFORM_REGISTRY:
        raise ValueError(
            f"platform {name!r} is already registered; pass overwrite=True "
            "to replace it"
        )
    PLATFORM_REGISTRY[name] = factory
    return factory


def registered_platforms() -> tuple[str, ...]:
    """Sorted names of every registered platform."""
    return tuple(sorted(PLATFORM_REGISTRY))


def make_platform(name: str) -> Platform:
    """Instantiate the platform a scenario names."""
    try:
        factory = PLATFORM_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(PLATFORM_REGISTRY))
        raise ValueError(
            f"unknown platform {name!r} (known: {known}); custom platforms "
            "must be registered with "
            "repro.server.platform.register_platform(name, factory)"
        ) from None
    return factory()
