"""Resource demand profiles.

A :class:`ResourceProfile` describes how a tenant stresses the shared parts
of the server *per core it runs on*: last-level-cache footprint and access
intensity, memory bandwidth, disk and network demand.  The interference
model combines the profiles of all co-located tenants into pressure values
that inflate the interactive service's request latency and slow down the
batch applications themselves.

Approximate variants scale a profile through :meth:`ResourceProfile.scaled`:
loop perforation skips memory accesses along with work, precision reduction
shrinks both footprint and traffic, and synchronization elision removes
coherence traffic (see ``repro.apps.knobs``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro import units


@dataclass(frozen=True)
class ResourceProfile:
    """Per-core shared-resource demands of a tenant.

    Attributes
    ----------
    cpu_fraction:
        Fraction of a core's cycles the tenant actually burns (1.0 for
        compute-bound batch work; below 1 for I/O-heavy tenants).
    llc_footprint_bytes:
        Working-set size competing for LLC capacity (whole-tenant, not
        per-core; working sets are shared across threads).
    llc_intensity:
        Relative rate of LLC accesses (0..1 scale, 1 = cache-thrashing).
    membw_per_core:
        Memory bandwidth demand per running core, bytes/s.
    disk_bw:
        Disk bandwidth demand, bytes/s (whole tenant).
    network_bw:
        NIC demand, bytes/s (whole tenant).
    """

    cpu_fraction: float = 1.0
    llc_footprint_bytes: float = units.mb(8)
    llc_intensity: float = 0.5
    membw_per_core: float = units.gbytes_per_sec(1.0)
    disk_bw: float = 0.0
    network_bw: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.cpu_fraction <= 1.0:
            raise ValueError("cpu_fraction must lie in [0, 1]")
        for name in ("llc_footprint_bytes", "llc_intensity", "membw_per_core",
                     "disk_bw", "network_bw"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    def scaled(
        self,
        traffic_factor: float = 1.0,
        footprint_factor: float = 1.0,
    ) -> "ResourceProfile":
        """Scale memory traffic and/or cache footprint (approximate variants)."""
        if traffic_factor < 0 or footprint_factor < 0:
            raise ValueError("scale factors must be non-negative")
        return replace(
            self,
            llc_intensity=min(1.0, self.llc_intensity * traffic_factor),
            membw_per_core=self.membw_per_core * traffic_factor,
            llc_footprint_bytes=self.llc_footprint_bytes * footprint_factor,
        )

    def total_membw(self, cores: int) -> float:
        """Memory bandwidth demand when running on ``cores`` cores."""
        if cores < 0:
            raise ValueError("cores must be non-negative")
        return self.membw_per_core * cores * self.cpu_fraction
