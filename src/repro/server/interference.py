"""Shared-resource contention model.

Combines the resource profiles of all tenants on a node into *pressure*
values for each shared resource; interactive services convert pressures into
service-time inflation through per-service sensitivities
(:class:`repro.services.base.InterferenceSensitivity`), and approximate
applications into a slowdown of their own progress.

Modeling choices
----------------
LLC: aggressors pollute the victim's cache at a rate proportional to their
footprint x access intensity relative to the LLC size (a linearized
proportional-occupancy model).  The victim's own access intensity weighs how
much it cares.  Pollution scales sublinearly with the aggressor's core count
(more cores touch the working set faster, with diminishing overlap).

Memory bandwidth: two components.  A *linear* term — the aggressors' share
of bus utilization — captures the steady rise of memory access latency with
bus load; a *quadratic overload* term kicks in when total utilization passes
a knee, capturing memory-controller queueing near saturation.  The quadratic
term is what makes small traffic reductions from approximation so effective
when the bus is nearly saturated.

Disk / network: same linear + overload shape on the respective capacities.

Pressures are *marginal*: the victim's own contribution is subtracted,
because each service's latency curve is calibrated against isolation runs.
Core contention is absent by construction — tenants are pinned to disjoint
physical cores, as in the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.server.platform import Platform
from repro.server.resources import ResourceProfile

#: Reference core count for LLC pollution-rate scaling (the nominal fair
#: share of one tenant in the paper's single-app colocations).
_REFERENCE_CORES = 8

#: Bus utilization where overload queueing starts.
_OVERLOAD_KNEE = 0.60


@dataclass(frozen=True)
class PressureBreakdown:
    """Per-resource marginal contention pressure felt by one tenant."""

    llc: float = 0.0
    membw_linear: float = 0.0
    membw_overload: float = 0.0
    disk: float = 0.0
    network: float = 0.0

    @property
    def total(self) -> float:
        return (
            self.llc
            + self.membw_linear
            + self.membw_overload
            + self.disk
            + self.network
        )


def _overload(utilization: float, knee: float = _OVERLOAD_KNEE) -> float:
    """Quadratic queueing pressure above the ``knee`` utilization."""
    if utilization <= knee:
        return 0.0
    return ((utilization - knee) / (1.0 - knee)) ** 2


class InterferenceModel:
    """Computes contention pressures for tenants sharing a platform."""

    def __init__(self, platform: Platform) -> None:
        self._platform = platform

    def llc_pollution(self, aggressors: list[tuple[ResourceProfile, int]]) -> float:
        """Aggregate cache-pollution rate of ``aggressors`` (fraction of LLC)."""
        llc = self._platform.llc_bytes
        if llc <= 0:
            return 0.0
        demand = 0.0
        for profile, cores in aggressors:
            if cores <= 0:
                continue
            rate_scale = math.sqrt(cores / _REFERENCE_CORES)
            demand += profile.llc_footprint_bytes * profile.llc_intensity * rate_scale
        return min(1.5, demand / llc)

    def pressure_on(
        self,
        victim: ResourceProfile,
        victim_cores: int,
        aggressors: list[tuple[ResourceProfile, int]],
    ) -> PressureBreakdown:
        """Marginal pressure the ``aggressors`` exert on ``victim``."""
        llc = self.llc_pollution(aggressors) * victim.llc_intensity

        capacity = self._platform.memory_bandwidth
        own_bw = victim.total_membw(victim_cores)
        aggressor_bw = sum(p.total_membw(c) for p, c in aggressors if c > 0)
        total_util = (own_bw + aggressor_bw) / capacity if capacity > 0 else 0.0
        own_util = own_bw / capacity if capacity > 0 else 0.0
        membw_linear = max(0.0, total_util - own_util)
        membw_overload = max(0.0, _overload(total_util) - _overload(own_util))

        disk = self._bw_pressure(
            victim.disk_bw,
            sum(p.disk_bw for p, c in aggressors if c > 0),
            self._platform.disk_bandwidth,
        )
        network = self._bw_pressure(
            victim.network_bw,
            sum(p.network_bw for p, c in aggressors if c > 0),
            self._platform.network_bandwidth,
        )
        return PressureBreakdown(
            llc=llc,
            membw_linear=membw_linear,
            membw_overload=membw_overload,
            disk=disk,
            network=network,
        )

    @staticmethod
    def _bw_pressure(
        victim_demand: float, aggressor_demand: float, capacity: float
    ) -> float:
        """Linear + overload pressure on a simple shared-bandwidth resource."""
        if capacity <= 0:
            return 0.0
        own = victim_demand / capacity
        total = (victim_demand + aggressor_demand) / capacity
        linear = max(0.0, total - own)
        overload = max(0.0, _overload(total) - _overload(own))
        return linear + overload
