"""Tenants: the container-like unit of colocation.

Mirrors the paper's setup: the interactive service and the approximate
applications run in separate containers pinned to disjoint physical cores of
the same socket.  A tenant's core allocation changes at runtime when Pliant
reclaims or returns cores; the resource profile changes when the active
approximate variant changes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.server.resources import ResourceProfile


class TenantKind(enum.Enum):
    """Role of a tenant on the shared node."""

    INTERACTIVE = "interactive"
    APPROXIMATE = "approximate"


@dataclass
class Tenant:
    """A pinned workload sharing the node.

    ``cores`` is the current allocation; ``nominal_cores`` records the fair
    share assigned at startup so reclamation can be expressed relative to it.
    """

    name: str
    kind: TenantKind
    profile: ResourceProfile
    cores: int
    nominal_cores: int = field(default=0)

    def __post_init__(self) -> None:
        if self.cores < 0:
            raise ValueError("cores must be non-negative")
        if self.nominal_cores == 0:
            self.nominal_cores = self.cores

    @property
    def reclaimed_cores(self) -> int:
        """Cores taken away relative to the nominal fair share (>= 0)."""
        return max(0, self.nominal_cores - self.cores)

    @property
    def extra_cores(self) -> int:
        """Cores gained relative to the nominal fair share (>= 0)."""
        return max(0, self.cores - self.nominal_cores)

    def give_core(self) -> None:
        self.cores += 1

    def take_core(self) -> None:
        if self.cores <= 1:
            raise ValueError(f"tenant {self.name!r} cannot drop below 1 core")
        self.cores -= 1

    def set_profile(self, profile: ResourceProfile) -> None:
        self.profile = profile
