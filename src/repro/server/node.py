"""ServerNode: allocation bookkeeping for one shared server.

A node holds one interactive tenant plus one or more approximate tenants,
tracks core assignments (always disjoint, always summing to at most the
platform's allocatable cores) and answers interference queries through the
:class:`~repro.server.interference.InterferenceModel`.
"""

from __future__ import annotations

from repro.server.interference import InterferenceModel, PressureBreakdown
from repro.server.platform import Platform, default_platform
from repro.server.tenant import Tenant, TenantKind


class ServerNode:
    """One physical server hosting a colocation."""

    def __init__(self, platform: Platform | None = None) -> None:
        self._platform = platform or default_platform()
        self._interference = InterferenceModel(self._platform)
        self._tenants: list[Tenant] = []

    @property
    def platform(self) -> Platform:
        return self._platform

    @property
    def tenants(self) -> list[Tenant]:
        return list(self._tenants)

    @property
    def interactive(self) -> Tenant:
        for tenant in self._tenants:
            if tenant.kind is TenantKind.INTERACTIVE:
                return tenant
        raise LookupError("node has no interactive tenant")

    @property
    def approximate_tenants(self) -> list[Tenant]:
        return [t for t in self._tenants if t.kind is TenantKind.APPROXIMATE]

    def add_tenant(self, tenant: Tenant) -> None:
        if any(t.name == tenant.name for t in self._tenants):
            raise ValueError(f"duplicate tenant name {tenant.name!r}")
        if tenant.kind is TenantKind.INTERACTIVE and any(
            t.kind is TenantKind.INTERACTIVE for t in self._tenants
        ):
            raise ValueError("node already has an interactive tenant")
        if self.allocated_cores + tenant.cores > self._platform.allocatable_cores:
            raise ValueError(
                f"allocating {tenant.cores} cores exceeds platform capacity "
                f"({self.allocated_cores} already allocated, "
                f"{self._platform.allocatable_cores} total)"
            )
        self._tenants.append(tenant)

    @property
    def allocated_cores(self) -> int:
        return sum(t.cores for t in self._tenants)

    def tenant(self, name: str) -> Tenant:
        for candidate in self._tenants:
            if candidate.name == name:
                return candidate
        raise LookupError(f"no tenant named {name!r}")

    # -- core movement -------------------------------------------------------

    def reclaim_core(self, source: str, destination: str) -> None:
        """Move one core from tenant ``source`` to tenant ``destination``."""
        src = self.tenant(source)
        dst = self.tenant(destination)
        src.take_core()
        dst.give_core()

    # -- interference queries ------------------------------------------------

    def pressure_on(self, name: str) -> PressureBreakdown:
        """Contention pressure the other tenants exert on tenant ``name``."""
        victim = self.tenant(name)
        aggressors = [
            (t.profile, t.cores) for t in self._tenants if t.name != name
        ]
        return self._interference.pressure_on(
            victim.profile, victim.cores, aggressors
        )

    def fair_allocation(self, approx_apps: int) -> list[int]:
        """Fair core split for 1 interactive + ``approx_apps`` tenants."""
        return self._platform.fair_share(1 + approx_apps)
