"""Shared-server substrate.

Models the paper's experimental platform: a socket's worth of cores shared
by one interactive service and one or more approximate applications, with
contention in the last-level cache and memory bandwidth
(:mod:`repro.server.interference`).
"""

from repro.server.interference import InterferenceModel, PressureBreakdown
from repro.server.node import ServerNode
from repro.server.platform import (
    Platform,
    default_platform,
    make_platform,
    register_platform,
    registered_platforms,
)
from repro.server.resources import ResourceProfile
from repro.server.tenant import Tenant, TenantKind

__all__ = [
    "InterferenceModel",
    "Platform",
    "PressureBreakdown",
    "ResourceProfile",
    "ServerNode",
    "Tenant",
    "TenantKind",
    "default_platform",
    "make_platform",
    "register_platform",
    "registered_platforms",
]
