"""repro: a reproduction of Pliant (HPCA 2019).

Pliant is an online cloud runtime that co-locates latency-critical
interactive services with approximate-computing applications, dialing
approximation up (and reclaiming cores when needed) to keep the interactive
service inside its tail-latency QoS while sacrificing the minimum output
quality.

Public API tour
---------------
``repro.apps``         -- 24 approximable application kernels
``repro.services``     -- NGINX / memcached / MongoDB models
``repro.server``       -- shared-server platform + interference model
``repro.search``       -- budgeted design-space search: scenario
                          strategies (grid/random/halving/pareto) plus
                          the paper's Section 3 variant exploration
                          (``repro.exploration`` is a deprecated front)
``repro.core``         -- the Pliant runtime (monitor, actuator, controller)
``repro.cluster``      -- colocation experiment harness and sweeps
``repro.experiment``   -- declarative specs, run_experiment, ResultSet
``repro.analysis``     -- repro-lint: AST invariant checker (zones,
                          pluggable rules, baseline; ``python -m
                          repro.analysis``)
"""

__version__ = "1.0.0"

from repro.config import DEFAULT_CONFIG, PlatformSpec, QosTargets, ReproConfig

__all__ = [
    "DEFAULT_CONFIG",
    "PlatformSpec",
    "QosTargets",
    "ReproConfig",
    "__version__",
]
