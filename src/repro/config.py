"""Project-wide configuration: the experimental platform (paper Table 1),
QoS targets, and runtime defaults.

The platform numbers mirror the paper's dual-socket Intel Xeon E5-2699 v4
server.  As in the paper's methodology (Section 5), experiments use a single
socket: 22 physical cores, of which 6 are reserved for network interrupts and
the remaining 16 are shared fairly among the co-scheduled tenants.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import units


@dataclass(frozen=True)
class PlatformSpec:
    """Hardware parameters of the simulated server (paper Table 1)."""

    model: str = "Intel Xeon E5-2699 v4 (simulated)"
    sockets: int = 2
    cores_per_socket: int = 22
    threads_per_core: int = 2
    base_frequency_ghz: float = 2.2
    max_turbo_frequency_ghz: float = 3.6
    l1i_kb: int = 32
    l1d_kb: int = 32
    l2_kb: int = 256
    llc_bytes: float = units.mb(55)
    llc_ways: int = 20
    memory_bytes: float = units.gb(128)
    memory_channels: int = 8
    memory_speed_mhz: int = 2400
    # 8 channels x 2400 MT/s x 8 B = 153.6 GB/s across both sockets;
    # one socket sees half of that.
    memory_bandwidth_bytes: float = units.gbytes_per_sec(76.8)
    disk_desc: str = "1TB 7200RPM HDD"
    disk_bandwidth_bytes: float = units.gbytes_per_sec(0.16)
    network_bandwidth_bytes: float = units.gbps(10)
    irq_cores: int = 6

    @property
    def total_physical_cores(self) -> int:
        return self.sockets * self.cores_per_socket

    @property
    def usable_cores_per_socket(self) -> int:
        """Cores available to tenants on one socket after irq reservation."""
        return self.cores_per_socket - self.irq_cores


@dataclass(frozen=True)
class QosTargets:
    """Tail-latency (99th percentile) QoS targets from Section 5."""

    nginx: float = units.msec(10)
    memcached: float = units.usec(200)
    mongodb: float = units.msec(100)


@dataclass(frozen=True)
class RuntimeDefaults:
    """Pliant runtime defaults (Section 4.3)."""

    decision_interval: float = 1.0
    monitor_epoch: float = 0.1
    slack_threshold: float = 0.10
    max_inaccuracy_pct: float = 5.0
    load_fraction: float = 0.775  # "75-80% of saturation"


@dataclass(frozen=True)
class ReproConfig:
    """Bundle of all experiment-independent configuration."""

    platform: PlatformSpec = field(default_factory=PlatformSpec)
    qos: QosTargets = field(default_factory=QosTargets)
    runtime: RuntimeDefaults = field(default_factory=RuntimeDefaults)
    seed: int = 0x517A


DEFAULT_CONFIG = ReproConfig()
