"""Experiment harness: builds colocations, runs policies, aggregates."""

from repro.cluster.colocation import (
    build_engine,
    compare_policies,
    ladder_for,
    run_colocation,
)
from repro.cluster.metrics import ColocationSummary, ViolinStats, summarize_pair
from repro.cluster.placement import PlacementAdvisor, PlacementPrediction
from repro.cluster.sweeps import (
    breakdown_outcomes,
    combination_mixes,
    interval_sweep,
    load_sweep,
)

__all__ = [
    "ColocationSummary",
    "PlacementAdvisor",
    "PlacementPrediction",
    "ViolinStats",
    "breakdown_outcomes",
    "build_engine",
    "combination_mixes",
    "compare_policies",
    "interval_sweep",
    "ladder_for",
    "load_sweep",
    "run_colocation",
    "summarize_pair",
]
