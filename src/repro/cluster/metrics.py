"""Result aggregation: summaries and distribution statistics."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.runtime import ColocationResult


@dataclass(frozen=True)
class ColocationSummary:
    """One row of a Fig. 5-style comparison for a single app."""

    service: str
    app: str
    precise_p99: float
    pliant_p99: float
    qos: float
    relative_exec_time: float
    inaccuracy_pct: float
    dynrio_overhead: float
    switches: int
    max_cores_reclaimed: int

    @property
    def precise_ratio(self) -> float:
        return self.precise_p99 / self.qos

    @property
    def pliant_ratio(self) -> float:
        return self.pliant_p99 / self.qos

    @property
    def pliant_meets_qos(self) -> bool:
        return self.pliant_p99 <= self.qos


def summarize_pair(
    precise: ColocationResult,
    pliant: ColocationResult,
    app_name: str,
    dynrio_overhead: float,
) -> ColocationSummary:
    """Fold a (precise, pliant) result pair into a Fig. 5 row."""
    precise_outcome = precise.app_outcome(app_name)
    pliant_outcome = pliant.app_outcome(app_name)
    if precise_outcome.finish_time and pliant_outcome.finish_time:
        relative = pliant_outcome.finish_time / precise_outcome.finish_time
    else:
        relative = float("nan")
    return ColocationSummary(
        service=precise.service_name,
        app=app_name,
        precise_p99=precise.aggregate_p99,
        pliant_p99=pliant.aggregate_p99,
        qos=precise.qos,
        relative_exec_time=relative,
        inaccuracy_pct=pliant_outcome.inaccuracy_pct,
        dynrio_overhead=dynrio_overhead,
        switches=pliant_outcome.switches,
        max_cores_reclaimed=pliant.max_cores_reclaimed(),
    )


@dataclass(frozen=True)
class ViolinStats:
    """Five-number-plus-mean summary of a metric distribution (Fig. 7)."""

    minimum: float
    p25: float
    median: float
    p75: float
    maximum: float
    mean: float
    count: int

    @classmethod
    def from_values(cls, values) -> "ViolinStats":
        arr = np.asarray(list(values), dtype=np.float64)
        if arr.size == 0:
            nan = float("nan")
            return cls(nan, nan, nan, nan, nan, nan, 0)
        return cls(
            minimum=float(arr.min()),
            p25=float(np.percentile(arr, 25)),
            median=float(np.percentile(arr, 50)),
            p75=float(np.percentile(arr, 75)),
            maximum=float(arr.max()),
            mean=float(arr.mean()),
            count=int(arr.size),
        )

    def spread(self) -> float:
        """Max - min; the paper's violin 'limits'."""
        return self.maximum - self.minimum
