"""Placement advisor: Pliant outcomes as a cluster-scheduler signal.

Section 6 closes with: "This information can be incorporated in the cluster
scheduler when deciding which applications to place on the same physical
node."  This module implements that extension: a static *compatibility
model* predicts, from an app's ladder and a service's sensitivity, how deep
Pliant will have to escalate — and a greedy scheduler uses the prediction
to assign approximate apps across a set of nodes so total escalation (and
therefore quality loss and core churn) is minimized.

The prediction is analytic (no simulation): it evaluates the service's
inflation at the app's precise and most-decontended admissible variants and
converts the residual into an escalation-depth estimate, mirroring the
static calibration the runtime itself is built on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.search.ladder import ApproxLadder
from repro.server.node import ServerNode
from repro.server.platform import Platform, default_platform
from repro.server.resources import ResourceProfile
from repro.server.tenant import Tenant, TenantKind
from repro.services.base import InteractiveService


@dataclass(frozen=True)
class PlacementPrediction:
    """Predicted Pliant behavior for one (service, app) colocation."""

    app_name: str
    service_name: str
    precise_ratio: float
    best_approx_ratio: float
    predicted_cores: int

    @property
    def approx_alone_suffices(self) -> bool:
        return self.predicted_cores == 0

    @property
    def compatibility(self) -> float:
        """Higher is better; used to rank candidate placements."""
        return -(self.predicted_cores + max(0.0, self.best_approx_ratio - 1.0))


class PlacementAdvisor:
    """Predicts escalation depth and advises app-to-node placement."""

    def __init__(self, platform: Platform | None = None) -> None:
        self._platform = platform or default_platform()

    # -- single-pair prediction ---------------------------------------------

    def predict(
        self,
        service: InteractiveService,
        app_profile: ResourceProfile,
        ladder: ApproxLadder,
        load_fraction: float = 0.775,
        app_cores: int = 8,
        service_cores: int = 8,
    ) -> PlacementPrediction:
        """Analytic escalation estimate for one colocation."""
        qps = load_fraction * service.saturation_qps(service_cores)

        def ratio(profile: ResourceProfile, svc_cores: int, a_cores: int) -> float:
            node = ServerNode(self._platform)
            node.add_tenant(
                Tenant(
                    service.name,
                    TenantKind.INTERACTIVE,
                    service.profile(qps, svc_cores),
                    svc_cores,
                )
            )
            node.add_tenant(
                Tenant("app", TenantKind.APPROXIMATE, profile, a_cores)
            )
            pressure = node.pressure_on(service.name)
            return service.p99_at(qps, svc_cores, pressure) / service.qos

        precise_ratio = ratio(app_profile, service_cores, app_cores)
        # The most contention-relieving admissible variant.
        best_variant = min(
            (ladder.variant(level) for level in range(ladder.max_level + 1)),
            key=lambda v: v.traffic_rate_factor,
        )
        best_profile = best_variant.scaled_profile(app_profile)
        best_ratio = ratio(best_profile, service_cores, app_cores)

        cores = 0
        while best_ratio > 1.0 and cores < app_cores - 1:
            cores += 1
            best_ratio_candidate = ratio(
                best_profile, service_cores + cores, app_cores - cores
            )
            if best_ratio_candidate <= best_ratio:
                best_ratio = best_ratio_candidate
            else:
                break
        return PlacementPrediction(
            app_name=ladder.app_name,
            service_name=service.name,
            precise_ratio=precise_ratio,
            best_approx_ratio=ratio(best_profile, service_cores, app_cores),
            predicted_cores=cores,
        )

    # -- fleet placement ------------------------------------------------------

    def assign(
        self,
        services: list[InteractiveService],
        apps: list[tuple[ResourceProfile, ApproxLadder]],
        load_fraction: float = 0.775,
    ) -> dict[str, list[str]]:
        """Greedily place each app on the node whose service tolerates it
        best, balancing app counts across nodes.

        Returns service name -> list of app names.  ``len(apps)`` may exceed
        ``len(services)``; nodes receive at most ``ceil(n_apps/n_nodes)``.
        """
        if not services:
            raise ValueError("need at least one service node")
        capacity = -(-len(apps) // len(services))  # ceil division
        assignment: dict[str, list[str]] = {svc.name: [] for svc in services}
        # Hardest-to-place apps first: worst average compatibility.
        scored = []
        for profile, ladder in apps:
            predictions = {
                svc.name: self.predict(svc, profile, ladder, load_fraction)
                for svc in services
            }
            average = sum(p.compatibility for p in predictions.values()) / len(
                predictions
            )
            scored.append((average, ladder.app_name, predictions))
        scored.sort(key=lambda item: item[0])
        for _, app_name, predictions in scored:
            open_nodes = [
                name for name, placed in assignment.items() if len(placed) < capacity
            ]
            best = max(open_nodes, key=lambda name: predictions[name].compatibility)
            assignment[best].append(app_name)
        return assignment
