"""Colocation experiment builders.

Convenience layer over :class:`repro.core.runtime.ColocationEngine`: build a
service + N apps (ladders from the cached design-space exploration), attach
a policy, run, and return the result.
"""

from __future__ import annotations

from functools import lru_cache

from repro.apps import make_app
from repro.core.policy import PliantPolicy, RuntimePolicy
from repro.core.runtime import ColocationConfig, ColocationEngine, ColocationResult
from repro.exploration import DesignSpaceExplorer
from repro.exploration.pareto import ApproxLadder
from repro.services import make_service
from repro.services.loadgen import LoadGenerator


@lru_cache(maxsize=64)
def ladder_for(app_name: str, seed: int = 0) -> ApproxLadder:
    """The (cached) approximation ladder of one app."""
    app = make_app(app_name)
    return DesignSpaceExplorer(app, seed=seed).explore().ladder


def build_engine(
    service_name: str,
    app_names: list[str] | tuple[str, ...],
    policy: RuntimePolicy,
    config: ColocationConfig | None = None,
    loadgen: LoadGenerator | None = None,
    exploration_seed: int = 0,
) -> ColocationEngine:
    """Assemble an engine for one colocation scenario."""
    service = make_service(service_name)
    apps = [
        (make_app(name), ladder_for(name, seed=exploration_seed))
        for name in app_names
    ]
    return ColocationEngine(
        service=service,
        apps=apps,
        policy=policy,
        config=config,
        loadgen=loadgen,
    )


def run_colocation(
    service_name: str,
    app_names: list[str] | tuple[str, ...],
    policy: RuntimePolicy | None = None,
    config: ColocationConfig | None = None,
    loadgen: LoadGenerator | None = None,
) -> ColocationResult:
    """Run one colocation under ``policy`` (Pliant by default)."""
    chosen = policy or PliantPolicy(seed=(config.seed if config else 0))
    engine = build_engine(
        service_name, app_names, chosen, config=config, loadgen=loadgen
    )
    return engine.run()


def compare_policies(
    service_name: str,
    app_names: list[str] | tuple[str, ...],
    policies: list[RuntimePolicy],
    config: ColocationConfig | None = None,
) -> dict[str, ColocationResult]:
    """Run the same scenario under several policies; key by policy name."""
    results: dict[str, ColocationResult] = {}
    for policy in policies:
        engine = build_engine(service_name, app_names, policy, config=config)
        results[policy.name] = engine.run()
    return results
