"""Colocation experiment builders.

Convenience layer over :class:`repro.core.runtime.ColocationEngine`: build a
service + N apps (ladders from the cached design-space exploration), attach
a policy, run, and return the result.
"""

from __future__ import annotations

from functools import lru_cache

from repro.apps import make_app
from repro.core.policy import PliantPolicy, RuntimePolicy
from repro.core.runtime import ColocationConfig, ColocationEngine, ColocationResult
from repro.search.ladder import ApproxLadder
from repro.search.variants import DesignSpaceExplorer
from repro.server.platform import Platform, default_platform, make_platform
from repro.services import make_service
from repro.services.loadgen import LoadGenerator, loadgen_from_spec


@lru_cache(maxsize=64)
def ladder_for(app_name: str, seed: int = 0) -> ApproxLadder:
    """The (cached) approximation ladder of one app."""
    app = make_app(app_name)
    return DesignSpaceExplorer(app, seed=seed).explore().ladder


def _resolve_platform(platform: Platform | str | None) -> Platform:
    if platform is None:
        return default_platform()
    if isinstance(platform, str):
        return make_platform(platform)
    return platform


def build_engine(
    service_name: str,
    app_names: list[str] | tuple[str, ...],
    policy: RuntimePolicy,
    config: ColocationConfig | None = None,
    loadgen: LoadGenerator | None = None,
    exploration_seed: int = 0,
    platform: Platform | str | None = None,
    loadgen_spec: tuple[str, tuple] | None = None,
) -> ColocationEngine:
    """Assemble an engine for one colocation scenario.

    ``platform`` is a registered platform name or an instance (default:
    the paper's Table 1 server).  ``loadgen_spec`` is a declarative
    ``(shape, params)`` pair — see
    :func:`repro.services.loadgen.loadgen_from_spec` — whose QPS-valued
    parameters are fractions of the service's saturation at its nominal
    fair-share core count; an explicit ``loadgen`` object wins over it.
    """
    service = make_service(service_name)
    resolved_platform = _resolve_platform(platform)
    apps = [
        (make_app(name), ladder_for(name, seed=exploration_seed))
        for name in app_names
    ]
    if loadgen is None and loadgen_spec is not None:
        shape, params = loadgen_spec
        nominal_cores = resolved_platform.fair_share(1 + len(apps))[0]
        loadgen = loadgen_from_spec(
            shape, params, service.saturation_qps(nominal_cores)
        )
    return ColocationEngine(
        service=service,
        apps=apps,
        policy=policy,
        config=config,
        platform=resolved_platform,
        loadgen=loadgen,
    )


def run_colocation(
    service_name: str,
    app_names: list[str] | tuple[str, ...],
    policy: RuntimePolicy | None = None,
    config: ColocationConfig | None = None,
    loadgen: LoadGenerator | None = None,
) -> ColocationResult:
    """Run one colocation under ``policy`` (Pliant by default)."""
    chosen = policy or PliantPolicy(seed=(config.seed if config else 0))
    engine = build_engine(
        service_name, app_names, chosen, config=config, loadgen=loadgen
    )
    return engine.run()


def compare_policies(
    service_name: str,
    app_names: list[str] | tuple[str, ...],
    policies: list[RuntimePolicy],
    config: ColocationConfig | None = None,
) -> dict[str, ColocationResult]:
    """Run the same scenario under several policies; key by policy name."""
    results: dict[str, ColocationResult] = {}
    for policy in policies:
        engine = build_engine(service_name, app_names, policy, config=config)
        results[policy.name] = engine.run()
    return results
