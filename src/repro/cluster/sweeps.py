"""Parameter sweeps and mix enumeration for the evaluation figures.

The axis-shaped helpers (:func:`load_sweep`, :func:`interval_sweep`) are
thin fronts over :class:`repro.sweep.SweepEngine`: they build a
one-axis :class:`repro.sweep.SweepGrid` and hand it to an engine.  The
default engine runs inline and uncached (the old contract of these
helpers); pass ``engine=SweepEngine(cache=SweepCache())`` to fan out
across cores and memoize results on disk, or ``backend=`` any
:class:`repro.sweep.ExecutionBackend` (e.g. a
:class:`~repro.sweep.DistributedBackend`) to run the same sweep on a
worker fleet.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.core.runtime import ColocationConfig, ColocationResult
from repro.rng import child_generator
from repro.sweep.backends import ExecutionBackend
from repro.sweep.engine import SweepEngine
from repro.sweep.grid import Scenario, SweepGrid


def _resolve_engine(
    engine: SweepEngine | None, backend: ExecutionBackend | None
) -> SweepEngine:
    """Explicit engine wins; a bare backend gets wrapped; default is inline."""
    if engine is not None:
        return engine
    if backend is not None:
        return SweepEngine(backend=backend)
    return SweepEngine(workers=1)


@dataclass(frozen=True)
class SweepPoint:
    """One sweep coordinate and its result."""

    value: float
    result: ColocationResult


def _scenario_base(
    service_name: str,
    app_names: tuple[str, ...],
    base: ColocationConfig,
    policy: str,
) -> Scenario:
    return Scenario(
        service=service_name,
        apps=tuple(app_names),
        policy=policy,
        load_fraction=base.load_fraction,
        decision_interval=base.decision_interval,
        monitor_epoch=base.monitor_epoch,
        slack_threshold=base.slack_threshold,
        horizon=base.horizon,
        seed=base.seed,
        stop_when_apps_done=base.stop_when_apps_done,
    )


def _legacy_factory_sweep(
    service_name: str,
    app_names: tuple[str, ...],
    scenarios: list[Scenario],
    policy_factory,
) -> list[ColocationResult]:
    """Run scenarios with a caller-supplied policy factory, in process.

    A factory can close over arbitrary constructor arguments that the
    declarative :data:`POLICY_REGISTRY` path cannot reconstruct, so each
    point gets a fresh ``policy_factory()`` instance and runs inline —
    exact legacy semantics, at the cost of fan-out and caching (use
    policy *names* on a grid to get those).
    """
    from repro.cluster.colocation import build_engine

    return [
        build_engine(
            service_name, app_names, policy_factory(), config=scenario.config()
        ).run()
        for scenario in scenarios
    ]


def load_sweep(
    service_name: str,
    app_names: tuple[str, ...],
    load_fractions: tuple[float, ...] = (0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0),
    policy_factory=None,
    base_config: ColocationConfig | None = None,
    engine: SweepEngine | None = None,
    backend: ExecutionBackend | None = None,
) -> list[SweepPoint]:
    """Fig. 8: sweep offered load as a fraction of saturation."""
    base = base_config or ColocationConfig()
    grid = SweepGrid(
        services=(service_name,),
        app_mixes=(tuple(app_names),),
        policies=("pliant",),
        load_fractions=tuple(float(v) for v in load_fractions),
        decision_intervals=(base.decision_interval,),
        seeds=(base.seed,),
        base=_scenario_base(service_name, app_names, base, "pliant"),
    )
    scenarios = grid.scenarios()
    if policy_factory is not None:
        results = _legacy_factory_sweep(
            service_name, app_names, scenarios, policy_factory
        )
        return [
            SweepPoint(value=s.load_fraction, result=r)
            for s, r in zip(scenarios, results)
        ]
    outcomes = _resolve_engine(engine, backend).run(grid)
    return [
        SweepPoint(value=o.scenario.load_fraction, result=o.result)
        for o in outcomes
    ]


def interval_sweep(
    service_name: str,
    app_names: tuple[str, ...],
    intervals: tuple[float, ...] = (0.2, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0),
    base_config: ColocationConfig | None = None,
    engine: SweepEngine | None = None,
    backend: ExecutionBackend | None = None,
) -> list[SweepPoint]:
    """Fig. 9: sweep Pliant's decision interval."""
    base = base_config or ColocationConfig()
    grid = SweepGrid(
        services=(service_name,),
        app_mixes=(tuple(app_names),),
        policies=("pliant",),
        load_fractions=(base.load_fraction,),
        decision_intervals=tuple(float(v) for v in intervals),
        seeds=(base.seed,),
        base=_scenario_base(service_name, app_names, base, "pliant"),
    )
    outcomes = _resolve_engine(engine, backend).run(grid)
    return [
        SweepPoint(value=o.scenario.decision_interval, result=o.result)
        for o in outcomes
    ]


def combination_mixes(
    app_names: tuple[str, ...],
    k: int,
    sample: int | None = None,
    seed: int = 0,
) -> list[tuple[str, ...]]:
    """All k-way app mixes, optionally subsampled deterministically.

    The paper examines every 2- and 3-way combination of the 24 apps;
    ``sample`` bounds the cost for routine runs (the full set stays
    available by passing ``None``).
    """
    mixes = list(itertools.combinations(app_names, k))
    if sample is None or sample >= len(mixes):
        return mixes
    rng = child_generator(seed, f"mixes/{k}")
    chosen = rng.choice(len(mixes), size=sample, replace=False)
    return [mixes[i] for i in sorted(chosen)]


@dataclass(frozen=True)
class OutcomeBreakdown:
    """Fig. 10: how far Pliant had to escalate per colocation."""

    approx_only: int = 0
    one_core: int = 0
    two_cores: int = 0
    three_cores: int = 0
    four_plus_cores: int = 0

    @property
    def total(self) -> int:
        return (
            self.approx_only
            + self.one_core
            + self.two_cores
            + self.three_cores
            + self.four_plus_cores
        )

    def fractions(self) -> dict[str, float]:
        total = max(self.total, 1)
        return {
            "approx_only": self.approx_only / total,
            "1_core": self.one_core / total,
            "2_cores": self.two_cores / total,
            "3_cores": self.three_cores / total,
            "4+_cores": self.four_plus_cores / total,
        }


def breakdown_outcomes(results: list[ColocationResult]) -> OutcomeBreakdown:
    """Classify runs by the escalation Pliant needed in steady state."""
    counts = [0, 0, 0, 0, 0]
    for result in results:
        bucket = min(result.sustained_cores_reclaimed(), 4)
        counts[bucket] += 1
    return OutcomeBreakdown(
        approx_only=counts[0],
        one_core=counts[1],
        two_cores=counts[2],
        three_cores=counts[3],
        four_plus_cores=counts[4],
    )
