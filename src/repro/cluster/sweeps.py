"""Parameter sweeps and mix enumeration for the evaluation figures.

.. deprecated::
    The axis-shaped helpers (:func:`load_sweep`, :func:`interval_sweep`)
    are thin compatibility fronts over the declarative experiment API:
    each builds a one-axis :class:`repro.experiment.ExperimentSpec` and
    hands it to :func:`repro.experiment.run_experiment`.  New code
    should build specs directly — any scenario field is an axis there,
    not just load and decision interval.  The default engine runs inline
    and uncached (the old contract of these helpers); pass
    ``engine=SweepEngine(cache=SweepCache())`` to fan out across cores
    and memoize on disk, or ``backend=`` any
    :class:`repro.sweep.ExecutionBackend`.
"""

from __future__ import annotations

import functools
import itertools
import warnings
from dataclasses import dataclass

from repro.core.runtime import ColocationConfig, ColocationResult
from repro.experiment import ExperimentSpec, run_experiment
from repro.rng import child_generator
from repro.sweep.backends import ExecutionBackend
from repro.sweep.engine import SweepEngine, register_policy
from repro.sweep.grid import Scenario


def _resolve_engine(
    engine: SweepEngine | None, backend: ExecutionBackend | None
) -> SweepEngine:
    """Explicit engine wins; a bare backend gets wrapped; default is inline."""
    if engine is not None:
        return engine
    if backend is not None:
        return SweepEngine(backend=backend)
    return SweepEngine(workers=1)


@dataclass(frozen=True)
class SweepPoint:
    """One sweep coordinate and its result."""

    value: float
    result: ColocationResult


def _config_base(base: ColocationConfig) -> dict:
    """Spec base fields carrying a legacy config's knobs."""
    return {
        "load_fraction": base.load_fraction,
        "decision_interval": base.decision_interval,
        "monitor_epoch": base.monitor_epoch,
        "slack_threshold": base.slack_threshold,
        "horizon": base.horizon,
        "seed": base.seed,
        "stop_when_apps_done": base.stop_when_apps_done,
    }


def _build_from_factory(policy_factory, scenario, kwargs):
    """Module-level adapter from a legacy zero-arg factory to a builder.

    Policy builders take ``(scenario, kwargs)``; the legacy factories
    take nothing.  Binding the factory with :func:`functools.partial`
    (instead of a closure/lambda) keeps the registered builder
    picklable, so a transient factory registration degrades exactly like
    any other local-only policy rather than poisoning a process-pool
    submission with an unpicklable callable.
    """
    return policy_factory()


def _factory_policy_name(policy_factory, engine: SweepEngine) -> str:
    """Route a legacy ``policy_factory`` through the policy registry.

    Registers ``policy_factory`` under a name derived from its qualified
    name and returns that name, so factory-based sweeps run through the
    engine and get fan-out, per-scenario seeding, and caching like every
    other sweep.  Deprecated because the name is only as unique as the
    factory's qualname: two different closures with the same qualname
    (or one closing over changing state) would share cache entries —
    register the policy explicitly with ``register_policy`` to control
    identity, and to make it resolvable inside distributed workers
    (``worker --import``).
    """
    from repro.sweep.backends import DistributedBackend

    if isinstance(engine.backend, DistributedBackend):
        # The transient registration only exists in this process; remote
        # workers would fail every job with "unknown policy".  Fail loudly
        # here instead.
        raise ValueError(
            "policy_factory= cannot run on a distributed backend: the "
            "factory is registered only in the submitting process.  "
            "Register the policy in an importable module with "
            "repro.sweep.register_policy(name, builder), pass "
            "policy=name, and start workers with --import that.module"
        )
    name = (
        f"factory:{getattr(policy_factory, '__module__', 'unknown')}."
        f"{getattr(policy_factory, '__qualname__', repr(policy_factory))}"
    )
    warnings.warn(
        "policy_factory= is deprecated: register the policy with "
        f"repro.sweep.register_policy(...) and pass its name (sweeping "
        f"through transient registration {name!r}; beware that cached "
        "results are keyed by that name, not by what the factory closes "
        "over)",
        DeprecationWarning,
        stacklevel=3,
    )
    register_policy(
        name,
        functools.partial(_build_from_factory, policy_factory),
        overwrite=True,
    )
    return name


def load_sweep(
    service_name: str,
    app_names: tuple[str, ...],
    load_fractions: tuple[float, ...] = (0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0),
    policy_factory=None,
    base_config: ColocationConfig | None = None,
    engine: SweepEngine | None = None,
    backend: ExecutionBackend | None = None,
) -> list[SweepPoint]:
    """Fig. 8: sweep offered load as a fraction of saturation."""
    base = base_config or ColocationConfig()
    resolved = _resolve_engine(engine, backend)
    policy = (
        "pliant" if policy_factory is None
        else _factory_policy_name(policy_factory, resolved)
    )
    shared = _config_base(base)
    shared.pop("load_fraction")  # the axis owns it
    spec = ExperimentSpec(
        name=f"load-sweep/{service_name}",
        base={
            **shared,
            "service": service_name,
            "apps": tuple(app_names),
            "policy": policy,
        },
        axes={"load_fraction": tuple(float(v) for v in load_fractions)},
    )
    results = run_experiment(spec, engine=resolved)
    return [
        SweepPoint(value=o.scenario.load_fraction, result=o.result)
        for o in results
    ]


def interval_sweep(
    service_name: str,
    app_names: tuple[str, ...],
    intervals: tuple[float, ...] = (0.2, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0),
    base_config: ColocationConfig | None = None,
    engine: SweepEngine | None = None,
    backend: ExecutionBackend | None = None,
) -> list[SweepPoint]:
    """Fig. 9: sweep Pliant's decision interval."""
    base = base_config or ColocationConfig()
    shared = _config_base(base)
    shared.pop("decision_interval")  # the axis owns it
    spec = ExperimentSpec(
        name=f"interval-sweep/{service_name}",
        base={
            **shared,
            "service": service_name,
            "apps": tuple(app_names),
            "policy": "pliant",
        },
        axes={"decision_interval": tuple(float(v) for v in intervals)},
    )
    results = run_experiment(spec, engine=_resolve_engine(engine, backend))
    return [
        SweepPoint(value=o.scenario.decision_interval, result=o.result)
        for o in results
    ]


def combination_mixes(
    app_names: tuple[str, ...],
    k: int,
    sample: int | None = None,
    seed: int = 0,
) -> list[tuple[str, ...]]:
    """All k-way app mixes, optionally subsampled deterministically.

    The paper examines every 2- and 3-way combination of the 24 apps;
    ``sample`` bounds the cost for routine runs (the full set stays
    available by passing ``None``).
    """
    mixes = list(itertools.combinations(app_names, k))
    if sample is None or sample >= len(mixes):
        return mixes
    rng = child_generator(seed, f"mixes/{k}")
    chosen = rng.choice(len(mixes), size=sample, replace=False)
    return [mixes[i] for i in sorted(chosen)]


@dataclass(frozen=True)
class OutcomeBreakdown:
    """Fig. 10: how far Pliant had to escalate per colocation."""

    approx_only: int = 0
    one_core: int = 0
    two_cores: int = 0
    three_cores: int = 0
    four_plus_cores: int = 0

    @property
    def total(self) -> int:
        return (
            self.approx_only
            + self.one_core
            + self.two_cores
            + self.three_cores
            + self.four_plus_cores
        )

    def fractions(self) -> dict[str, float]:
        total = max(self.total, 1)
        return {
            "approx_only": self.approx_only / total,
            "1_core": self.one_core / total,
            "2_cores": self.two_cores / total,
            "3_cores": self.three_cores / total,
            "4+_cores": self.four_plus_cores / total,
        }


def breakdown_outcomes(results: list[ColocationResult]) -> OutcomeBreakdown:
    """Classify runs by the escalation Pliant needed in steady state."""
    counts = [0, 0, 0, 0, 0]
    for result in results:
        bucket = min(result.sustained_cores_reclaimed(), 4)
        counts[bucket] += 1
    return OutcomeBreakdown(
        approx_only=counts[0],
        one_core=counts[1],
        two_cores=counts[2],
        three_cores=counts[3],
        four_plus_cores=counts[4],
    )
