"""Parameter sweeps and mix enumeration for the evaluation figures."""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.core.policy import PliantPolicy, RuntimePolicy
from repro.core.runtime import ColocationConfig, ColocationResult
from repro.cluster.colocation import build_engine
from repro.rng import child_generator
from repro.services import make_service


@dataclass(frozen=True)
class SweepPoint:
    """One sweep coordinate and its result."""

    value: float
    result: ColocationResult


def load_sweep(
    service_name: str,
    app_names: tuple[str, ...],
    load_fractions: tuple[float, ...] = (0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0),
    policy_factory=None,
    base_config: ColocationConfig | None = None,
) -> list[SweepPoint]:
    """Fig. 8: sweep offered load as a fraction of saturation."""
    base = base_config or ColocationConfig()
    points = []
    for load in load_fractions:
        config = ColocationConfig(
            load_fraction=load,
            decision_interval=base.decision_interval,
            monitor_epoch=base.monitor_epoch,
            slack_threshold=base.slack_threshold,
            horizon=base.horizon,
            seed=base.seed,
            stop_when_apps_done=base.stop_when_apps_done,
        )
        policy = (
            policy_factory() if policy_factory else PliantPolicy(seed=base.seed)
        )
        engine = build_engine(service_name, app_names, policy, config=config)
        points.append(SweepPoint(value=load, result=engine.run()))
    return points


def interval_sweep(
    service_name: str,
    app_names: tuple[str, ...],
    intervals: tuple[float, ...] = (0.2, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0),
    base_config: ColocationConfig | None = None,
) -> list[SweepPoint]:
    """Fig. 9: sweep Pliant's decision interval."""
    base = base_config or ColocationConfig()
    points = []
    for interval in intervals:
        config = ColocationConfig(
            load_fraction=base.load_fraction,
            decision_interval=interval,
            monitor_epoch=base.monitor_epoch,
            slack_threshold=base.slack_threshold,
            horizon=base.horizon,
            seed=base.seed,
            stop_when_apps_done=base.stop_when_apps_done,
        )
        engine = build_engine(
            service_name, app_names, PliantPolicy(seed=base.seed), config=config
        )
        points.append(SweepPoint(value=interval, result=engine.run()))
    return points


def combination_mixes(
    app_names: tuple[str, ...],
    k: int,
    sample: int | None = None,
    seed: int = 0,
) -> list[tuple[str, ...]]:
    """All k-way app mixes, optionally subsampled deterministically.

    The paper examines every 2- and 3-way combination of the 24 apps;
    ``sample`` bounds the cost for routine runs (the full set stays
    available by passing ``None``).
    """
    mixes = list(itertools.combinations(app_names, k))
    if sample is None or sample >= len(mixes):
        return mixes
    rng = child_generator(seed, f"mixes/{k}")
    chosen = rng.choice(len(mixes), size=sample, replace=False)
    return [mixes[i] for i in sorted(chosen)]


@dataclass(frozen=True)
class OutcomeBreakdown:
    """Fig. 10: how far Pliant had to escalate per colocation."""

    approx_only: int = 0
    one_core: int = 0
    two_cores: int = 0
    three_cores: int = 0
    four_plus_cores: int = 0

    @property
    def total(self) -> int:
        return (
            self.approx_only
            + self.one_core
            + self.two_cores
            + self.three_cores
            + self.four_plus_cores
        )

    def fractions(self) -> dict[str, float]:
        total = max(self.total, 1)
        return {
            "approx_only": self.approx_only / total,
            "1_core": self.one_core / total,
            "2_cores": self.two_cores / total,
            "3_cores": self.three_cores / total,
            "4+_cores": self.four_plus_cores / total,
        }


def breakdown_outcomes(results: list[ColocationResult]) -> OutcomeBreakdown:
    """Classify runs by the escalation Pliant needed in steady state."""
    counts = [0, 0, 0, 0, 0]
    for result in results:
        bucket = min(result.sustained_cores_reclaimed(), 4)
        counts[bucket] += 1
    return OutcomeBreakdown(
        approx_only=counts[0],
        one_core=counts[1],
        two_cores=counts[2],
        three_cores=counts[3],
        four_plus_cores=counts[4],
    )
