"""Calibrated tail-latency surface.

The epoch-level latency model is a hyperbolic latency-vs-utilization curve,

    p99(u) = L0 + A * u / (1 - u),

the standard shape of open-loop latency-throughput curves.  ``A`` is chosen
so the curve passes through the service's QoS target exactly at the *knee*
utilization, matching the paper's QoS definition ("the 99th percentile
latency before the knee of the latency-throughput curve").  Utilization
includes interference inflation of service time, so contention shifts the
operating point to the right along the same curve — which is how a 20 %
service-time inflation becomes a multi-x tail-latency blowup near the knee.

Epoch sampling applies lognormal noise whose magnitude shrinks with the
number of requests observed in the epoch (percentile-estimation error).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class LatencyCurveParams:
    """Parameters of one service's latency curve.

    ``base_p99`` is the tail latency at near-zero load; ``qos`` the target;
    ``knee_utilization`` where the curve crosses the QoS; ``mean_ratio`` the
    (roughly constant) mean/p99 ratio; ``noise_sigma`` the lognormal sigma of
    epoch-to-epoch tail noise at high request counts.
    """

    base_p99: float
    qos: float
    knee_utilization: float = 0.875
    max_utilization: float = 0.995
    mean_ratio: float = 0.25
    noise_sigma: float = 0.06

    def __post_init__(self) -> None:
        if self.base_p99 <= 0:
            raise ValueError("base_p99 must be positive")
        if self.qos <= self.base_p99:
            raise ValueError("qos must exceed base_p99")
        if not 0.0 < self.knee_utilization < self.max_utilization < 1.0:
            raise ValueError("need 0 < knee < max_utilization < 1")


class LatencyCurve:
    """p99-vs-utilization curve with epoch sampling."""

    def __init__(self, params: LatencyCurveParams) -> None:
        self._params = params
        knee = params.knee_utilization
        self._amplitude = (params.qos - params.base_p99) * (1.0 - knee) / knee

    @property
    def params(self) -> LatencyCurveParams:
        return self._params

    def p99(self, utilization: float) -> float:
        """Deterministic tail latency at ``utilization`` (can exceed 1)."""
        if utilization < 0:
            raise ValueError("utilization must be non-negative")
        u = min(utilization, self._params.max_utilization)
        return self._params.base_p99 + self._amplitude * u / (1.0 - u)

    def mean(self, utilization: float) -> float:
        return self.p99(utilization) * self._params.mean_ratio

    def utilization_for_p99(self, target: float) -> float:
        """Inverse of :meth:`p99`: utilization at which p99 hits ``target``."""
        if target <= self._params.base_p99:
            return 0.0
        x = (target - self._params.base_p99) / self._amplitude
        return x / (1.0 + x)

    def sample_p99(
        self,
        utilization: float,
        rng: np.random.Generator,
        requests_observed: float = 1e4,
        backlog_penalty: float = 0.0,
    ) -> float:
        """One noisy epoch observation of the tail latency.

        ``requests_observed`` controls the estimation error of the p99 (few
        samples -> noisier percentile).  ``backlog_penalty`` (seconds) adds
        queue-drain latency accumulated while the service was saturated.
        """
        base = self.p99(utilization) + backlog_penalty
        n = max(requests_observed, 10.0)
        sigma = self._params.noise_sigma * (1.0 + 30.0 / math.sqrt(n))
        noise = rng.lognormal(mean=-0.5 * sigma * sigma, sigma=sigma)
        return base * noise
