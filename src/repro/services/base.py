"""Interactive-service interface.

An :class:`InteractiveService` bundles everything the colocation simulator
needs to produce the latency stream the Pliant monitor observes:

* QoS target and saturation throughput as a function of allocated cores,
* a calibrated :class:`~repro.services.latency.LatencyCurve`,
* per-resource :class:`InterferenceSensitivity` coefficients that convert
  contention pressure into service-time inflation, and
* the resource profile the service itself presents to co-runners.

A :class:`BacklogTracker` models saturation episodes: when offered load
exceeds capacity, unserved requests accumulate and drain later, producing
the latency spikes visible in the paper's Fig. 4 timelines.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.server.interference import PressureBreakdown
from repro.server.resources import ResourceProfile
from repro.services.latency import LatencyCurve


@dataclass(frozen=True)
class InterferenceSensitivity:
    """Service-time inflation from contention pressure.

    Two components:

    * a *colocation floor* — the disruption any active co-runner causes
      (prefetcher pollution, TLB shootdowns, cache dirtying).  It ramps in
      over ``presence_ref``: a precise co-runner saturates it, while a
      deeply decontended approximate variant (low traffic rate) escapes
      most of it.  ``presence_ref`` therefore controls how often
      "approximation alone" can restore QoS for this service — small for
      memcached (almost always needs a core too), larger for MongoDB.
    * linear per-resource terms.  ``membw_linear`` responds to the
      aggressors' share of bus utilization; ``membw_overload`` to the
      quadratic queueing term near saturation (steep relief when
      approximation sheds a little bandwidth).
    """

    llc: float = 0.0
    membw_linear: float = 0.0
    membw_overload: float = 0.0
    disk: float = 0.0
    network: float = 0.0
    colocation_floor: float = 0.0
    presence_ref: float = 0.15
    #: Ceiling on total inflation: the memory-stall share of service time is
    #: finite, so interference cannot inflate it without bound.  Calibrated
    #: per service so that a precise co-runner pushes the operating point
    #: deep into the latency curve's tail without tipping the service into
    #: sustained overload (which the paper's precise baselines never show).
    max_inflation: float = 1.30

    def weighted_pressure(self, pressure: PressureBreakdown) -> float:
        return (
            self.llc * pressure.llc
            + self.membw_linear * pressure.membw_linear
            + self.membw_overload * pressure.membw_overload
            + self.disk * pressure.disk
            + self.network * pressure.network
        )

    def inflation(self, pressure: PressureBreakdown) -> float:
        """Multiplicative service-time inflation (>= 1)."""
        weighted = self.weighted_pressure(pressure)
        presence = min(1.0, weighted / self.presence_ref) if self.presence_ref else 1.0
        raw = 1.0 + self.colocation_floor * presence + weighted
        return min(raw, self.max_inflation)


class InteractiveService(ABC):
    """A latency-critical service colocated on the node."""

    #: service identifier ("nginx", "memcached", "mongodb")
    name: str

    def __init__(
        self,
        qos: float,
        curve: LatencyCurve,
        sensitivity: InterferenceSensitivity,
        saturation_qps_nominal: float,
        nominal_cores: int = 8,
        core_scaling_fraction: float = 0.9,
        max_scaleout: float = 1.20,
    ) -> None:
        if saturation_qps_nominal <= 0:
            raise ValueError("saturation_qps_nominal must be positive")
        if nominal_cores <= 0:
            raise ValueError("nominal_cores must be positive")
        if not 0.0 <= core_scaling_fraction <= 1.0:
            raise ValueError("core_scaling_fraction must lie in [0, 1]")
        if max_scaleout < 1.0:
            raise ValueError("max_scaleout must be at least 1.0")
        self.qos = qos
        self.curve = curve
        self.sensitivity = sensitivity
        self._saturation_nominal = saturation_qps_nominal
        self._nominal_cores = nominal_cores
        self._core_scaling = core_scaling_fraction
        self._max_scaleout = max_scaleout

    # -- capacity -------------------------------------------------------------

    @property
    def nominal_cores(self) -> int:
        """Reference core count the saturation throughput is quoted at."""
        return self._nominal_cores

    def saturation_qps(self, cores: int) -> float:
        """Saturation throughput on ``cores`` cores.

        Scales with an Amdahl-style model: a ``core_scaling_fraction`` of
        capacity scales linearly with cores, the rest (I/O, accept path) is
        fixed.  Exactly the nominal value at the nominal core count.
        Beyond the nominal allocation, capacity is additionally capped at
        ``max_scaleout`` x nominal — the NIC / interrupt path (the paper
        reserves a fixed six irq cores) bounds how far reclaimed cores can
        stretch a service.  This is why the paper's load sweep sees
        persistent violations above ~90 % load no matter what Pliant does.
        """
        if cores <= 0:
            raise ValueError("cores must be positive")
        linear = self._core_scaling * cores / self._nominal_cores
        raw = self._saturation_nominal * (linear + (1.0 - self._core_scaling))
        return min(raw, self._saturation_nominal * self._max_scaleout)

    def utilization(
        self,
        qps: float,
        cores: int,
        pressure: PressureBreakdown | None = None,
        inflation: float | None = None,
    ) -> float:
        """Effective utilization including interference inflation.

        ``inflation`` (when given) overrides the pressure-derived value —
        the engine uses this to feed a time-smoothed inflation.
        """
        if qps < 0:
            raise ValueError("qps must be non-negative")
        if inflation is None:
            inflation = (
                1.0 if pressure is None else self.sensitivity.inflation(pressure)
            )
        return qps * inflation / self.saturation_qps(cores)

    # -- latency ---------------------------------------------------------------

    def p99_at(
        self,
        qps: float,
        cores: int,
        pressure: PressureBreakdown | None = None,
        inflation: float | None = None,
    ) -> float:
        """Deterministic p99 at an operating point."""
        return self.curve.p99(self.utilization(qps, cores, pressure, inflation))

    def sample_p99(
        self,
        qps: float,
        cores: int,
        pressure: PressureBreakdown | None,
        rng: np.random.Generator,
        epoch: float,
        backlog_penalty: float = 0.0,
        inflation: float | None = None,
    ) -> float:
        """One noisy epoch observation (what the monitor's client sees)."""
        utilization = self.utilization(qps, cores, pressure, inflation)
        return self.curve.sample_p99(
            utilization,
            rng,
            requests_observed=max(qps * epoch, 10.0),
            backlog_penalty=backlog_penalty,
        )

    # -- contention the service generates --------------------------------------

    @abstractmethod
    def profile(self, qps: float, cores: int) -> ResourceProfile:
        """Resource demands of the service at the given operating point."""


class BacklogTracker:
    """Queue-buildup state for saturation episodes.

    While offered load exceeds capacity the unserved request backlog grows;
    once utilization falls below 1 the backlog drains at the spare capacity.
    ``penalty`` converts the backlog into extra queueing latency: the time a
    newly arriving request would wait behind the backlog.
    """

    def __init__(self) -> None:
        self._backlog_requests = 0.0

    @property
    def backlog(self) -> float:
        return self._backlog_requests

    def update(self, offered_qps: float, capacity_qps: float, dt: float) -> None:
        if dt < 0:
            raise ValueError("dt must be non-negative")
        delta = (offered_qps - capacity_qps) * dt
        self._backlog_requests = max(0.0, self._backlog_requests + delta)

    def penalty(self, capacity_qps: float) -> float:
        """Extra latency (seconds) due to the current backlog."""
        if capacity_qps <= 0:
            return 0.0
        return self._backlog_requests / capacity_qps

    def reset(self) -> None:
        self._backlog_requests = 0.0
