"""NGINX front-end web-server model.

Paper configuration (Section 5): static 1 KB HTML files, one million unique
objects, QoS = 10 ms p99 set at the knee of the isolation latency-throughput
curve.  Load sweeps in Fig. 8 span 300K-700K QPS and precise-only mode meets
QoS up to 340K QPS = 48 % of load, putting saturation at the nominal fair
share (8 cores) near 710K QPS.

NGINX is compute- and cache-sensitive (request parsing, page cache for the
hot file set) and pushes meaningful NIC bandwidth at high load.
"""

from __future__ import annotations

from repro import units
from repro.server.resources import ResourceProfile
from repro.services.base import InteractiveService, InterferenceSensitivity
from repro.services.latency import LatencyCurve, LatencyCurveParams

#: Saturation throughput at the nominal 8-core allocation.
SATURATION_QPS = 710_000.0

#: Effective bytes of memory traffic per request (file + headers + buffers).
_BYTES_PER_REQUEST = 4 * units.KB

#: Wire bytes per response (1 KB body + headers).
_WIRE_BYTES_PER_REQUEST = 1.3 * units.KB


class Nginx(InteractiveService):
    """Front-end web server serving static 1 KB pages."""

    name = "nginx"

    def __init__(self) -> None:
        super().__init__(
            qos=units.msec(10),
            curve=LatencyCurve(
                LatencyCurveParams(
                    base_p99=units.msec(1.6),
                    qos=units.msec(10),
                    max_utilization=0.990,
                )
            ),
            sensitivity=InterferenceSensitivity(
                llc=0.25,
                membw_linear=0.10,
                membw_overload=0.06,
                network=0.12,
                colocation_floor=0.145,
                presence_ref=0.15,
                max_inflation=1.275,
            ),
            saturation_qps_nominal=SATURATION_QPS,
            nominal_cores=8,
            core_scaling_fraction=0.95,
        )

    def profile(self, qps: float, cores: int) -> ResourceProfile:
        load_fraction = qps / self.saturation_qps(max(cores, 1))
        return ResourceProfile(
            cpu_fraction=min(1.0, max(0.1, load_fraction)),
            llc_footprint_bytes=units.mb(18),
            llc_intensity=0.65,
            membw_per_core=qps * _BYTES_PER_REQUEST / max(cores, 1),
            disk_bw=0.0,
            network_bw=qps * _WIRE_BYTES_PER_REQUEST,
        )
