"""MongoDB persistent NoSQL database model.

Paper configuration (Section 5): 160 million records x 10 fields x 100 B,
178 GB dataset on a 7200 RPM disk, QoS = 100 ms p99.  Fig. 8 sweeps 100-400
QPS and precise-only mode meets QoS up to 310 QPS = 77 % of load, putting
saturation near 400 QPS at the nominal 8-core allocation.

MongoDB is I/O bound: most of each request is disk access, so it scales
poorly with cores and tolerates cache pressure, but it *is* sensitive to
memory-bandwidth saturation (page-cache copies ride the same memory
controller).  That combination is why it violates QoS badly in precise mode
yet typically recovers with mild approximation alone — the bandwidth
pressure relief from even the least-approximate variant is enough.
"""

from __future__ import annotations

from repro import units
from repro.server.resources import ResourceProfile
from repro.services.base import InteractiveService, InterferenceSensitivity
from repro.services.latency import LatencyCurve, LatencyCurveParams

#: Saturation throughput at the nominal 8-core allocation.
SATURATION_QPS = 400.0

#: Effective memory bytes per query (document + page-cache traffic).
_BYTES_PER_QUERY = 1.5 * units.MB

#: Disk bytes per query (index walk + documents that miss the page cache).
_DISK_BYTES_PER_QUERY = 0.25 * units.MB

#: Wire bytes per response.
_WIRE_BYTES_PER_QUERY = 1.2 * units.KB


class MongoDB(InteractiveService):
    """Disk-backed document store with millisecond-scale service times."""

    name = "mongodb"

    def __init__(self) -> None:
        super().__init__(
            qos=units.msec(100),
            curve=LatencyCurve(
                LatencyCurveParams(
                    base_p99=units.msec(22),
                    qos=units.msec(100),
                    noise_sigma=0.05,
                    max_utilization=0.985,
                )
            ),
            sensitivity=InterferenceSensitivity(
                llc=0.06,
                membw_linear=0.08,
                membw_overload=0.30,
                disk=0.40,
                colocation_floor=0.185,
                presence_ref=0.075,
                max_inflation=1.26,
            ),
            saturation_qps_nominal=SATURATION_QPS,
            nominal_cores=8,
            core_scaling_fraction=0.35,
            max_scaleout=1.15,
        )

    def profile(self, qps: float, cores: int) -> ResourceProfile:
        load_fraction = qps / self.saturation_qps(max(cores, 1))
        return ResourceProfile(
            cpu_fraction=min(1.0, max(0.1, 0.5 * load_fraction)),
            llc_footprint_bytes=units.mb(30),
            llc_intensity=0.40,
            membw_per_core=qps * _BYTES_PER_QUERY / max(cores, 1),
            disk_bw=qps * _DISK_BYTES_PER_QUERY,
            network_bw=qps * _WIRE_BYTES_PER_QUERY,
        )
