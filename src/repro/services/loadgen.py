"""Open-loop workload generators.

The paper drives every service with open-loop clients at a configurable
fraction of saturation (default 75-80 %).  A generator maps simulation time
to offered QPS; the runtime samples it once per monitor epoch.  Loads are
expressed as a fraction of the service's saturation at its *nominal* core
count, so reclaiming cores does not silently change the offered load.

Generators expose both a scalar ``qps_at`` (the runtime's per-epoch probe)
and a vectorized ``qps_at_array`` (whole trace in one numpy expression),
which is what ``mean_qps`` and sweep-scale tooling sample through.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from bisect import bisect_right
from dataclasses import dataclass

import numpy as np


class LoadGenerator(ABC):
    """Offered load as a function of time."""

    @abstractmethod
    def qps_at(self, time: float) -> float:
        """Offered queries/second at simulation time ``time``."""

    def qps_at_array(self, times) -> np.ndarray:
        """Vectorized :meth:`qps_at` over an array of times.

        Subclasses override with a closed-form numpy expression; this
        fallback just loops, so custom generators stay correct without
        extra work.
        """
        times = np.asarray(times, dtype=float)
        flat = [self.qps_at(float(t)) for t in np.ravel(times)]
        return np.asarray(flat, dtype=float).reshape(times.shape)

    def mean_qps(self, horizon: float, resolution: float = 0.1) -> float:
        """Average offered load over ``[0, horizon]`` (numeric, for tests)."""
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        steps = max(1, int(horizon / resolution))
        times = np.arange(steps, dtype=float) * horizon / steps
        return float(self.qps_at_array(times).mean())


@dataclass(frozen=True)
class ConstantLoad(LoadGenerator):
    """Fixed offered load."""

    qps: float

    def __post_init__(self) -> None:
        if self.qps < 0:
            raise ValueError("qps must be non-negative")

    def qps_at(self, time: float) -> float:
        return self.qps

    def qps_at_array(self, times) -> np.ndarray:
        times = np.asarray(times, dtype=float)
        return np.full(times.shape, float(self.qps))


@dataclass(frozen=True)
class StepLoad(LoadGenerator):
    """Piecewise-constant load: ``steps`` is a list of (start_time, qps)."""

    steps: tuple[tuple[float, float], ...]

    def __post_init__(self) -> None:
        if not self.steps:
            raise ValueError("steps must be non-empty")
        times = [t for t, _ in self.steps]
        if times != sorted(times):
            raise ValueError("step times must be non-decreasing")
        if any(q < 0 for _, q in self.steps):
            raise ValueError("qps values must be non-negative")
        # Lookup tables for O(log n) probes; level 0 before the first step.
        object.__setattr__(self, "_starts", tuple(times))
        object.__setattr__(
            self, "_levels", (0.0,) + tuple(q for _, q in self.steps)
        )

    def qps_at(self, time: float) -> float:
        return self._levels[bisect_right(self._starts, time)]

    def qps_at_array(self, times) -> np.ndarray:
        times = np.asarray(times, dtype=float)
        levels = np.asarray(self._levels, dtype=float)
        return levels[np.searchsorted(self._starts, times, side="right")]


@dataclass(frozen=True)
class DiurnalLoad(LoadGenerator):
    """Sinusoidal load between ``low_qps`` and ``high_qps`` over ``period``."""

    low_qps: float
    high_qps: float
    period: float
    phase: float = 0.0

    def __post_init__(self) -> None:
        if self.low_qps < 0 or self.high_qps < self.low_qps:
            raise ValueError("need 0 <= low_qps <= high_qps")
        if self.period <= 0:
            raise ValueError("period must be positive")

    def qps_at(self, time: float) -> float:
        midpoint = (self.high_qps + self.low_qps) / 2.0
        amplitude = (self.high_qps - self.low_qps) / 2.0
        return midpoint + amplitude * math.sin(
            2.0 * math.pi * (time / self.period) + self.phase
        )

    def qps_at_array(self, times) -> np.ndarray:
        times = np.asarray(times, dtype=float)
        midpoint = (self.high_qps + self.low_qps) / 2.0
        amplitude = (self.high_qps - self.low_qps) / 2.0
        return midpoint + amplitude * np.sin(
            2.0 * np.pi * (times / self.period) + self.phase
        )


#: Declarative load shapes a :class:`~repro.sweep.grid.Scenario` can name.
#: QPS-valued parameters are *fractions of saturation* at the service's
#: nominal core count, so shapes compose with ``load_fraction`` semantics
#: and stay meaningful across services and platforms.
LOADGEN_SHAPES = ("constant", "step", "diurnal", "bursty")


def loadgen_from_spec(
    shape: str,
    params,
    saturation_qps: float,
) -> LoadGenerator | None:
    """Build a generator from a declarative ``(shape, params)`` spec.

    ``params`` is a mapping (or sequence of pairs) whose QPS-valued
    entries are fractions of ``saturation_qps``.  Returns ``None`` for a
    parameterless ``"constant"`` shape — the caller's default (offered
    load from ``load_fraction``) already covers it, and omitting the
    object keeps legacy cache keys intact.

    Shapes::

        constant  fraction                              (optional)
        step      steps=[[t0, f0], [t1, f1], ...]       piecewise-constant
        diurnal   low, high, period[, phase]            sinusoid
        bursty    base, burst, period, duration         square bursts
    """
    params = dict(params or ())
    if shape not in LOADGEN_SHAPES:
        raise ValueError(
            f"unknown loadgen shape {shape!r} "
            f"(expected one of {', '.join(LOADGEN_SHAPES)})"
        )

    def need(name: str) -> float:
        try:
            return float(params.pop(name))
        except KeyError:
            raise ValueError(
                f"loadgen shape {shape!r} needs a {name!r} parameter"
            ) from None

    def reject_leftovers() -> None:
        if params:
            raise ValueError(
                f"unknown parameters for loadgen shape {shape!r}: "
                f"{sorted(params)}"
            )

    if shape == "constant":
        if not params:
            return None
        value = need("fraction")
        reject_leftovers()
        return ConstantLoad(qps=value * saturation_qps)
    if shape == "step":
        try:
            steps = params.pop("steps")
        except KeyError:
            raise ValueError("loadgen shape 'step' needs a 'steps' parameter") from None
        reject_leftovers()
        return StepLoad(
            steps=tuple(
                (float(t), float(f) * saturation_qps) for t, f in steps
            )
        )
    if shape == "diurnal":
        low, high = need("low"), need("high")
        period = need("period")
        phase = float(params.pop("phase", 0.0))
        reject_leftovers()
        return DiurnalLoad(
            low_qps=low * saturation_qps,
            high_qps=high * saturation_qps,
            period=period,
            phase=phase,
        )
    base, burst = need("base"), need("burst")
    period, duration = need("period"), need("duration")
    reject_leftovers()
    return BurstyLoad(
        base_qps=base * saturation_qps,
        burst_qps=burst * saturation_qps,
        burst_period=period,
        burst_duration=duration,
    )


@dataclass(frozen=True)
class BurstyLoad(LoadGenerator):
    """Base load with periodic square bursts (models flash crowds)."""

    base_qps: float
    burst_qps: float
    burst_period: float
    burst_duration: float

    def __post_init__(self) -> None:
        if self.base_qps < 0 or self.burst_qps < self.base_qps:
            raise ValueError("need 0 <= base_qps <= burst_qps")
        if not 0 < self.burst_duration <= self.burst_period:
            raise ValueError("need 0 < burst_duration <= burst_period")

    def qps_at(self, time: float) -> float:
        position = time % self.burst_period
        return self.burst_qps if position < self.burst_duration else self.base_qps

    def qps_at_array(self, times) -> np.ndarray:
        times = np.asarray(times, dtype=float)
        in_burst = (times % self.burst_period) < self.burst_duration
        return np.where(in_burst, float(self.burst_qps), float(self.base_qps))
