"""Latency-critical interactive services.

Each service (NGINX, memcached, MongoDB) is modeled as a calibrated
p99-latency surface over (load, cores, interference pressure) — the same
observable the paper's client-side monitor samples — plus a resource profile
describing the contention the service itself generates.
"""

from repro.services.base import (
    BacklogTracker,
    InteractiveService,
    InterferenceSensitivity,
)
from repro.services.latency import LatencyCurve, LatencyCurveParams
from repro.services.loadgen import (
    ConstantLoad,
    DiurnalLoad,
    LoadGenerator,
    StepLoad,
)
from repro.services.memcached import Memcached
from repro.services.mongodb import MongoDB
from repro.services.nginx import Nginx

SERVICE_FACTORIES = {
    "nginx": Nginx,
    "memcached": Memcached,
    "mongodb": MongoDB,
}


def make_service(name: str) -> InteractiveService:
    """Instantiate one of the three paper services by name."""
    try:
        factory = SERVICE_FACTORIES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown service {name!r}; expected one of {sorted(SERVICE_FACTORIES)}"
        ) from None
    return factory()


__all__ = [
    "BacklogTracker",
    "ConstantLoad",
    "DiurnalLoad",
    "InteractiveService",
    "InterferenceSensitivity",
    "LatencyCurve",
    "LatencyCurveParams",
    "LoadGenerator",
    "Memcached",
    "MongoDB",
    "Nginx",
    "SERVICE_FACTORIES",
    "StepLoad",
    "make_service",
]
