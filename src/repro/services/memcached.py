"""memcached in-memory key-value store model.

Paper configuration (Section 5): 5 million items, 30 B keys / 200 B values,
QoS = 200 us p99.  Fig. 8 sweeps 300K-600K QPS and precise-only mode meets
QoS up to 280K QPS = 46 % of load, putting saturation near 610K QPS at the
nominal 8-core allocation.

memcached is the most interference-sensitive of the three services: its
service times are a few tens of microseconds, so every extra cache miss and
every bit of memory-controller queueing lands directly on the tail.  The
paper finds it almost always needs at least one reclaimed core in addition
to approximation.
"""

from __future__ import annotations

from repro import units
from repro.server.resources import ResourceProfile
from repro.services.base import InteractiveService, InterferenceSensitivity
from repro.services.latency import LatencyCurve, LatencyCurveParams

#: Saturation throughput at the nominal 8-core allocation.
SATURATION_QPS = 610_000.0

#: Effective memory bytes touched per operation (item + hash probe + stack).
_BYTES_PER_OP = 2 * units.KB

#: Wire bytes per response (230 B item + protocol overhead).
_WIRE_BYTES_PER_OP = 0.4 * units.KB


class Memcached(InteractiveService):
    """In-memory object cache with microsecond-scale service times."""

    name = "memcached"

    def __init__(self) -> None:
        super().__init__(
            qos=units.usec(200),
            curve=LatencyCurve(
                LatencyCurveParams(
                    base_p99=units.usec(70),
                    qos=units.usec(200),
                    noise_sigma=0.08,
                    max_utilization=0.973,
                )
            ),
            sensitivity=InterferenceSensitivity(
                llc=0.20,
                membw_linear=0.09,
                membw_overload=0.04,
                network=0.05,
                colocation_floor=0.155,
                presence_ref=0.055,
                max_inflation=1.26,
            ),
            saturation_qps_nominal=SATURATION_QPS,
            nominal_cores=8,
            core_scaling_fraction=0.90,
        )

    def profile(self, qps: float, cores: int) -> ResourceProfile:
        load_fraction = qps / self.saturation_qps(max(cores, 1))
        return ResourceProfile(
            cpu_fraction=min(1.0, max(0.1, load_fraction)),
            llc_footprint_bytes=units.mb(24),
            llc_intensity=0.90,
            membw_per_core=qps * _BYTES_PER_OP / max(cores, 1),
            disk_bw=0.0,
            network_bw=qps * _WIRE_BYTES_PER_OP,
        )
