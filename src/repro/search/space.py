"""A spec's cross product as a lazy, indexable design space.

:class:`DesignSpace` views an :class:`~repro.experiment.ExperimentSpec`
as a mixed-radix integer space — index ``i`` maps to one scenario, with
the first declared axis varying slowest, **exactly** the expansion order
of ``spec.scenarios()``.  Nothing is materialized: a 10^6-point space
costs a tuple of axis values, which is what lets strategies sample,
walk neighbors, and promote candidates without ever building the grid.
"""

from __future__ import annotations

from repro.sweep.grid import Scenario


class DesignSpace:
    """Lazy index <-> scenario mapping over a spec's axes."""

    def __init__(self, spec) -> None:
        self._spec = spec
        self._base = dict(spec.base)
        self._names: tuple[str, ...] = tuple(k for k, _ in spec.axes)
        self._values: tuple[tuple, ...] = tuple(v for _, v in spec.axes)
        self._sizes: tuple[int, ...] = tuple(len(v) for v in self._values)
        total = 1
        for size in self._sizes:
            total *= size
        self._size = total

    @property
    def spec(self):
        return self._spec

    @property
    def axis_names(self) -> tuple[str, ...]:
        return self._names

    def __len__(self) -> int:
        return self._size

    # -- index arithmetic -----------------------------------------------

    def coords(self, index: int) -> tuple[int, ...]:
        """Per-axis value indices for one point (first axis slowest)."""
        if not 0 <= index < self._size:
            raise IndexError(f"index {index} outside [0, {self._size})")
        out = []
        for size in reversed(self._sizes):
            index, digit = divmod(index, size)
            out.append(digit)
        return tuple(reversed(out))

    def index(self, coords) -> int:
        """Inverse of :meth:`coords`."""
        coords = tuple(coords)
        if len(coords) != len(self._sizes):
            raise ValueError(
                f"expected {len(self._sizes)} coordinates, got {len(coords)}"
            )
        index = 0
        for digit, size in zip(coords, self._sizes):
            if not 0 <= digit < size:
                raise IndexError(f"coordinate {digit} outside [0, {size})")
            index = index * size + digit
        return index

    # -- scenarios -------------------------------------------------------

    def scenario_at(self, index: int) -> Scenario:
        """The scenario at one integer point of the space."""
        coords = self.coords(index)
        fields = dict(self._base)
        for name, values, digit in zip(self._names, self._values, coords):
            fields[name] = values[digit]
        return Scenario(**fields)

    def index_of(self, scenario: Scenario) -> int | None:
        """The index of a scenario, or None when it lies off the grid.

        Off-grid includes both axis values the spec never declared *and*
        base-field deviations (e.g. a reduced-fidelity horizon a search
        strategy probed with) — those must never be mistaken for grid
        points when picking a best point or a frontier.
        """
        coords = []
        for name, values in zip(self._names, self._values):
            try:
                coords.append(values.index(getattr(scenario, name)))
            except ValueError:
                return None
        index = self.index(coords)
        return index if self.scenario_at(index) == scenario else None

    def contains(self, scenario: Scenario) -> bool:
        return self.index_of(scenario) is not None

    # -- neighborhoods ---------------------------------------------------

    def neighbors(self, index: int) -> list[int]:
        """Indices one axis step away (+-1 per axis), deterministic order."""
        coords = self.coords(index)
        out = []
        for axis, digit in enumerate(coords):
            for step in (-1, 1):
                moved = digit + step
                if 0 <= moved < self._sizes[axis]:
                    neighbor = list(coords)
                    neighbor[axis] = moved
                    out.append(self.index(neighbor))
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        axes = ", ".join(
            f"{name}[{size}]" for name, size in zip(self._names, self._sizes)
        )
        return f"DesignSpace({len(self)} points: {axes or 'base only'})"
