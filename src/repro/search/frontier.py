"""Generic Pareto-dominance machinery.

Shared by both search layers: scenario search uses
:func:`pareto_indices` to maintain the QoS/utilization front it samples
around, and the per-app variant selection
(:func:`repro.search.ladder.pareto_select`) uses
:func:`tolerance_frontier` for the paper's "close to the pareto-optimal
frontier" pruning.  Score vectors are **higher-is-better** throughout —
:class:`~repro.search.objective.Objective` already folds min/max
direction into the sign.
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

T = TypeVar("T")


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when ``a`` is at least as good everywhere and better somewhere."""
    if len(a) != len(b):
        raise ValueError(f"score vectors differ in length: {len(a)} vs {len(b)}")
    return all(x >= y for x, y in zip(a, b)) and any(x > y for x, y in zip(a, b))


def pareto_indices(rows: Sequence[Sequence[float]]) -> list[int]:
    """Indices of the non-dominated rows, in their original order.

    Duplicated score vectors all survive (none dominates its equal), so
    ties on the front are preserved rather than arbitrarily broken.
    """
    kept = []
    for i, row in enumerate(rows):
        if not any(dominates(other, row) for j, other in enumerate(rows) if j != i):
            kept.append(i)
    return kept


def tolerance_frontier(
    items: Sequence[T],
    key: Callable[[T], float],
    value: Callable[[T], float],
    tolerance: float,
) -> list[T]:
    """Items on the (key, value) frontier, minimizing ``value`` as ``key`` grows.

    Walking items in increasing ``key`` order, an item earns a slot only
    by strictly improving ``value`` beyond ``tolerance`` over everything
    at lower-or-equal ``key`` — "close to the frontier" points that add
    no distinct operating regime are dropped.  This is the paper's
    Section 3 pruning rule, generalized to any pair of axes.
    """
    ordered = sorted(items, key=lambda item: (key(item), value(item)))
    kept: list[T] = []
    best = float("inf")
    for item in ordered:
        current = value(item)
        if current < best - tolerance:
            kept.append(item)
            best = current
    return kept
