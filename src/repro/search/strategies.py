"""Pluggable search strategies over a :class:`~repro.search.space.DesignSpace`.

A strategy is a propose/observe/done loop: each round it proposes a
batch of scenarios, the driver evaluates them through the sweep engine
(any backend, every result cached), and the outcomes are observed back.
Everything random derives from ``rng_seed`` alone, and observations are
bit-identical across backends, so a strategy proposes the **same point
sequence** whether the batches run serial, process-parallel, or on a
distributed fleet — which is also what makes an interrupted search
resume from the cache for free.

Four built-ins ship (open via :func:`register_strategy`):

``grid``
    Exhaustive, in spec expansion order — bit-identical to the plain
    ``run_experiment`` path and the parity reference for the others.
``random``
    Seeded uniform sampling without replacement, ``budget`` points.
``halving``
    Successive halving: spend most of the budget on cheap low-fidelity
    probes (scaled-down ``horizon``), promote the top ``1/eta`` per rung,
    finish the survivors at full fidelity.
``pareto``
    Maintain the Pareto front of evaluated points (QoS x reclaimed
    cores by default) and sample the front's grid neighbors, plus an
    exploration fraction of fresh random points.
"""

from __future__ import annotations

import math
import random
from dataclasses import replace
from typing import Protocol, Type, runtime_checkable

from repro.search.frontier import pareto_indices
from repro.search.objective import DEFAULT_OBJECTIVE, resolve_objectives
from repro.search.space import DesignSpace
from repro.sweep.grid import Scenario


@runtime_checkable
class SearchStrategy(Protocol):
    """The round-based contract the search driver runs."""

    def propose(self, history) -> list[Scenario]:
        """The next batch to evaluate (empty = nothing left to ask)."""

    def observe(self, outcomes) -> None:
        """Feed back the outcomes of the last proposal, proposal order."""

    def done(self) -> bool:
        """True once the strategy has no further rounds."""


class StrategyBase:
    """Shared plumbing: space, budget, resolved objectives, seeded RNG."""

    name = "base"
    #: Objectives used when the caller gives none; subclasses override.
    default_objectives: tuple[str, ...] = (DEFAULT_OBJECTIVE,)

    def __init__(
        self,
        space: DesignSpace,
        budget: int | None = None,
        objectives=None,
        rng_seed: int = 0,
    ) -> None:
        if budget is not None and budget < 1:
            raise ValueError(f"budget must be a positive count, got {budget!r}")
        self._space = space
        self._budget = budget
        self._objectives = resolve_objectives(
            objectives, default=self.default_objectives
        )
        self._rng = random.Random(int(rng_seed))

    @property
    def objectives(self):
        return self._objectives

    @property
    def primary(self):
        return self._objectives[0]

    def _score(self, outcome) -> float:
        return self.primary.score(outcome.result)

    def observe(self, outcomes) -> None:  # default: stateless strategies
        pass


class GridStrategy(StrategyBase):
    """Exhaustive expansion — the parity reference for every other strategy."""

    name = "grid"

    def __init__(self, space, budget=None, objectives=None, rng_seed=0) -> None:
        super().__init__(space, budget=budget, objectives=objectives, rng_seed=rng_seed)
        if budget is not None and budget < len(space):
            raise ValueError(
                f"grid strategy is exhaustive: budget {budget} cannot cover "
                f"the {len(space)}-point space (use random/halving/pareto "
                "to search under a budget)"
            )
        self._proposed = False

    def propose(self, history) -> list[Scenario]:
        if self._proposed:
            return []
        self._proposed = True
        return [self._space.scenario_at(i) for i in range(len(self._space))]

    def done(self) -> bool:
        return self._proposed


class RandomStrategy(StrategyBase):
    """Seeded uniform sampling without replacement, in budget-sized rounds."""

    name = "random"

    def __init__(
        self, space, budget=None, objectives=None, rng_seed=0, batch_size: int = 32
    ) -> None:
        super().__init__(space, budget=budget, objectives=objectives, rng_seed=rng_seed)
        count = len(space) if budget is None else min(budget, len(space))
        # range() sampling is lazy: a 10^6-point space costs nothing here.
        self._indices = self._rng.sample(range(len(space)), count)
        self._batch_size = max(1, batch_size)
        self._cursor = 0

    def propose(self, history) -> list[Scenario]:
        batch = self._indices[self._cursor : self._cursor + self._batch_size]
        self._cursor += len(batch)
        return [self._space.scenario_at(i) for i in batch]

    def done(self) -> bool:
        return self._cursor >= len(self._indices)


class SuccessiveHalving(StrategyBase):
    """Budget allocation in rungs of increasing fidelity.

    ``horizon`` is the fidelity knob: rung ``i`` of ``r`` runs its
    candidates at ``horizon * eta**-(r-1-i)`` (floored so every run
    still spans a couple of decision intervals), and only the top
    ``1/eta`` by the primary objective are promoted.  The final rung
    runs at **full** fidelity, so the returned best point is directly
    comparable to the exhaustive optimum.  Rung sizes are chosen so the
    total number of evaluations never exceeds ``budget``.
    """

    name = "halving"

    def __init__(
        self,
        space,
        budget=None,
        objectives=None,
        rng_seed=0,
        eta: int = 3,
        rungs: int | None = None,
    ) -> None:
        super().__init__(space, budget=budget, objectives=objectives, rng_seed=rng_seed)
        if budget is None:
            raise ValueError(
                "halving allocates a fixed evaluation budget across rungs; "
                "pass budget=N"
            )
        if eta < 2:
            raise ValueError(f"eta must be >= 2, got {eta}")
        if "horizon" in space.axis_names:
            raise ValueError(
                "halving uses `horizon` as its fidelity knob, so a spec "
                "sweeping horizon as an axis cannot use it — pick "
                "random/pareto instead"
            )
        self._eta = eta
        self._rungs = rungs or max(
            2, min(4, int(math.log(max(budget, eta), eta)))
        )
        # Largest starting cohort whose rung series fits the budget:
        # rung i costs ceil(n0 / eta**i), summed over all rungs.
        n0 = min(len(space), budget)
        while n0 > 1 and self._series_cost(n0) > budget:
            over = self._series_cost(n0) - budget
            n0 = max(1, n0 - max(1, over // self._rungs))
        self._pool = sorted(self._rng.sample(range(len(space)), n0))
        self._rung = 0
        self._awaiting: dict[Scenario, int] = {}

    def _series_cost(self, n0: int) -> int:
        return sum(
            math.ceil(n0 / self._eta**i) for i in range(self._rungs)
        )

    def _fidelity(self, scenario: Scenario) -> Scenario:
        """The scenario scaled to this rung's fidelity fraction."""
        fraction = self._eta ** -(self._rungs - 1 - self._rung)
        if fraction >= 1.0:
            return scenario
        floor = max(
            2.0 * scenario.decision_interval, 4.0 * scenario.monitor_epoch
        )
        horizon = min(scenario.horizon, max(scenario.horizon * fraction, floor))
        return replace(scenario, horizon=horizon)

    def propose(self, history) -> list[Scenario]:
        if self.done():
            return []
        self._awaiting = {}
        batch = []
        for index in self._pool:
            probe = self._fidelity(self._space.scenario_at(index))
            self._awaiting[probe] = index
            batch.append(probe)
        return batch

    def observe(self, outcomes) -> None:
        scored = []
        for outcome in outcomes:
            index = self._awaiting.get(outcome.scenario)
            if index is not None:
                scored.append((-self._score(outcome), index))
        self._rung += 1
        if self._rung >= self._rungs:
            self._pool = []
            return
        promoted = max(1, math.ceil(len(self._pool) / self._eta))
        scored.sort()  # best score first; index breaks ties deterministically
        self._pool = sorted(index for _, index in scored[:promoted])

    def done(self) -> bool:
        return self._rung >= self._rungs or not self._pool


class ParetoGuided(StrategyBase):
    """Sample near the evolving Pareto front of the evaluated points.

    Each round: compute the non-dominated set under the objectives
    (default: QoS attainment x sustained reclaimed cores — the paper's
    quality-vs-utilization tension), propose its unevaluated grid
    neighbors, and blend in an exploration fraction of fresh random
    points so the search never wedges on a local front.
    """

    name = "pareto"
    default_objectives = (DEFAULT_OBJECTIVE, "max:sustained_cores_reclaimed")

    def __init__(
        self,
        space,
        budget=None,
        objectives=None,
        rng_seed=0,
        batch_size: int = 16,
        explore_fraction: float = 0.25,
    ) -> None:
        super().__init__(space, budget=budget, objectives=objectives, rng_seed=rng_seed)
        if not 0.0 <= explore_fraction <= 1.0:
            raise ValueError(
                f"explore_fraction must be in [0, 1], got {explore_fraction}"
            )
        self._batch_size = max(1, batch_size)
        self._explore = explore_fraction
        self._scores: dict[int, tuple[float, ...]] = {}
        self._proposed: set[int] = set()

    def _random_unproposed(self, count: int) -> list[int]:
        """Fresh random indices, deterministic under the seed."""
        total = len(self._space)
        picked: list[int] = []
        misses = 0
        while len(picked) < count and len(self._proposed) + len(picked) < total:
            candidate = self._rng.randrange(total)
            if candidate in self._proposed or candidate in picked:
                misses += 1
                # Dense coverage makes rejection sampling slow; fall back
                # to a deterministic scan of whatever is left.
                if misses > 16 * (count + 1):
                    remaining = [
                        i
                        for i in range(total)
                        if i not in self._proposed and i not in picked
                    ]
                    picked.extend(remaining[: count - len(picked)])
                    break
                continue
            picked.append(candidate)
        return picked

    def propose(self, history) -> list[Scenario]:
        batch: list[int] = []
        if self._scores:
            evaluated = sorted(self._scores)
            front = [
                evaluated[i]
                for i in pareto_indices([self._scores[i] for i in evaluated])
            ]
            candidates = []
            for index in front:
                for neighbor in self._space.neighbors(index):
                    if neighbor not in self._proposed and neighbor not in candidates:
                        candidates.append(neighbor)
            explore = min(
                self._batch_size, max(1, round(self._batch_size * self._explore))
            )
            keep = self._batch_size - explore
            if len(candidates) > keep:
                candidates = self._rng.sample(candidates, keep)
            batch.extend(candidates)
        self._proposed.update(batch)
        batch.extend(self._random_unproposed(self._batch_size - len(batch)))
        self._proposed.update(batch)
        return [self._space.scenario_at(i) for i in batch]

    def observe(self, outcomes) -> None:
        for outcome in outcomes:
            index = self._space.index_of(outcome.scenario)
            if index is not None:
                self._scores[index] = tuple(
                    objective.score(outcome.result) for objective in self._objectives
                )

    def done(self) -> bool:
        # Budget exhaustion is the driver's call; the strategy itself only
        # stops once the whole space has been proposed.
        return len(self._proposed) >= len(self._space)


#: Built-in strategies by CLI/spec name.  Open via register_strategy().
STRATEGIES: dict[str, Type[StrategyBase]] = {
    "grid": GridStrategy,
    "random": RandomStrategy,
    "halving": SuccessiveHalving,
    "pareto": ParetoGuided,
}


def register_strategy(
    name: str, strategy: Type[StrategyBase], overwrite: bool = False
) -> Type[StrategyBase]:
    """Register a strategy class under ``name`` for specs/CLI to reference."""
    if not callable(strategy):
        raise TypeError(f"strategy {name!r} must be a class or factory")
    if not overwrite and name in STRATEGIES:
        raise ValueError(
            f"strategy {name!r} is already registered; pass overwrite=True"
        )
    STRATEGIES[name] = strategy
    return strategy


def resolve_strategy(name: str) -> Type[StrategyBase]:
    """A registered strategy class from its name."""
    try:
        return STRATEGIES[name]
    except KeyError:
        known = ", ".join(sorted(STRATEGIES))
        raise ValueError(
            f"unknown search strategy {name!r} (known: {known}); custom "
            "strategies register via repro.search.register_strategy"
        ) from None
