"""The search driver: strategy rounds through the sweep engine.

:func:`run_search` is what ``run_experiment(spec, strategy=..., budget=N)``
delegates to.  Each round it asks the strategy for a batch, answers
already-evaluated proposals straight from the search history (they cost
no budget — and on a restarted search the engine's content-addressed
cache answers the rest, which is why killing and re-running a seeded
search completes almost entirely from cache), runs the fresh points
through the engine in one batch (serial, process, or distributed —
bit-identical either way), and feeds the outcomes back.  The budget is
a hard ceiling on unique evaluations.
"""

from __future__ import annotations

from repro.experiment.spec import ExperimentSpec
from repro.search.objective import resolve_objectives
from repro.search.result import RoundRecord, SearchHistory, SearchResult
from repro.search.space import DesignSpace
from repro.search.strategies import resolve_strategy
from repro.sweep.cache import SweepCache
from repro.sweep.grid import SweepGrid
from repro.telemetry import get_recorder


def run_search(
    spec,
    *,
    strategy=None,
    budget: int | None = None,
    objective=None,
    rng_seed: int | None = None,
    engine=None,
    backend=None,
    cache=None,
    workers: int | None = None,
    force: bool = False,
) -> SearchResult:
    """Explore a spec's design space under a budget; returns a SearchResult.

    Explicit keyword arguments override the spec's own ``strategy`` /
    ``budget`` / ``objective`` / ``rng_seed`` fields.  ``strategy`` may
    be a registered name or an already-constructed object implementing
    the :class:`~repro.search.strategies.SearchStrategy` protocol.
    """
    # Imported lazily for the same reason run_experiment defers to us
    # lazily: repro.experiment.run and this module are two doors into one
    # loop, not an import cycle.
    from repro.experiment.run import resolve_engine

    if isinstance(spec, SweepGrid):
        spec = ExperimentSpec.from_grid(spec)
    if not isinstance(spec, ExperimentSpec):
        raise TypeError(
            "budgeted search needs an ExperimentSpec (a raw scenario list "
            "has no axes to search over)"
        )

    name = strategy if strategy is not None else spec.strategy
    budget = budget if budget is not None else spec.budget
    objective = objective if objective is not None else (spec.objective or None)
    seed = int(rng_seed if rng_seed is not None else spec.rng_seed)

    space = DesignSpace(spec)
    if isinstance(name, str):
        chosen = resolve_strategy(name)(
            space, budget=budget, objectives=objective, rng_seed=seed
        )
    else:
        chosen = name  # a pre-built strategy object
    label = getattr(chosen, "name", type(chosen).__name__)

    if engine is None and cache is None:
        # The exhaustive path caches only when the caller wires a cache;
        # search caches *by default*: its contract is that every point
        # lands in the SweepCache so an interrupted search re-run with
        # the same seed completes from disk.  REPRO_SWEEP_CACHE still
        # picks the directory.
        cache = SweepCache()
    resolved_engine = resolve_engine(engine, backend, cache, workers)
    history = SearchHistory()
    rounds: list[RoundRecord] = []
    remaining = budget
    best_score = float("-inf")
    best_label = ""
    objectives = tuple(getattr(chosen, "objectives", ())) or resolve_objectives(
        objective
    )
    primary = objectives[0]

    telemetry = get_recorder()
    with telemetry.span(
        "search.run", cat="search", strategy=label,
        budget=-1 if budget is None else budget,
    ):
        while not chosen.done():
            with telemetry.span(
                "search.round", cat="search", round=len(rounds)
            ):
                proposals = chosen.propose(history)
                if not proposals:
                    break
                fresh, seen_in_batch = [], set()
                for scenario in proposals:
                    if scenario not in history and scenario not in seen_in_batch:
                        fresh.append(scenario)
                        seen_in_batch.add(scenario)
                truncated = False
                if remaining is not None and len(fresh) > remaining:
                    fresh, truncated = fresh[:remaining], True
                outcomes = resolved_engine.run(fresh, force=force) if fresh else []
                for outcome in outcomes:
                    history.record(outcome)
                if remaining is not None:
                    remaining -= len(outcomes)
                telemetry.count("search.proposals", len(proposals))
                telemetry.count("search.budget_spent", len(outcomes))
                telemetry.count(
                    "search.replayed", len(proposals) - len(fresh)
                )

                # Observed batch: proposal order, replayed points included,
                # any budget-truncated tail absent.
                batch = [history.get(s) for s in proposals]
                batch = [outcome for outcome in batch if outcome is not None]
                chosen.observe(batch)

                for outcome in outcomes:
                    if space.contains(outcome.scenario):
                        score = primary.score(outcome.result)
                        if score > best_score:
                            best_score = score
                            best_label = outcome.scenario.label()
                rounds.append(
                    RoundRecord(
                        round=len(rounds),
                        proposed=len(proposals),
                        evaluated=len(outcomes),
                        cache_hits=sum(1 for o in outcomes if o.from_cache),
                        best_score=best_score,
                        best_label=best_label,
                    )
                )
                telemetry.event(
                    "strategy.decision",
                    cat="search",
                    strategy=label,
                    round=len(rounds) - 1,
                    proposed=len(proposals),
                    evaluated=len(outcomes),
                    truncated=truncated,
                    best=best_label,
                )
                if truncated or (remaining is not None and remaining <= 0):
                    break

    return SearchResult(
        history.outcomes,
        spec=spec.with_search(
            strategy=label if isinstance(name, str) else spec.strategy,
            budget=budget,
            objective=tuple(o.spec for o in objectives),
            rng_seed=seed,
        ),
        strategy=label,
        budget=budget,
        objectives=objectives,
        rounds=rounds,
        space=space,
    )
