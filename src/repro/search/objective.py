"""Search objectives: named metrics plus an optimization direction.

An objective is ``"metric"`` / ``"max:metric"`` / ``"min:metric"`` where
the metric is any name in the :data:`repro.experiment.resultset.METRICS`
registry (open via ``register_metric``).  :meth:`Objective.score` folds
the direction into the sign, so every strategy and frontier computation
can treat scores as higher-is-better; missing or NaN metric values score
``-inf`` (worst), never crash a search round.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Union

from repro.experiment.resultset import resolve_metric

#: What a search optimizes when the caller doesn't say: the fraction of
#: decision intervals where the interactive service met its QoS.
DEFAULT_OBJECTIVE = "max:qos_met_fraction"

_MODES = ("max", "min")


@dataclass(frozen=True)
class Objective:
    """One scalar optimization target over a colocation result."""

    metric: str
    mode: str = "max"

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValueError(
                f"objective mode must be one of {_MODES}, got {self.mode!r}"
            )
        if not isinstance(self.metric, str) or not self.metric:
            raise ValueError(f"objective metric must be a name, got {self.metric!r}")

    @property
    def spec(self) -> str:
        """The ``mode:metric`` string this objective round-trips through."""
        return f"{self.mode}:{self.metric}"

    def value(self, result) -> float | None:
        """The raw metric value, or None when it is absent/non-numeric."""
        raw = resolve_metric(self.metric)(result)
        if raw is None:
            return None
        try:
            value = float(raw)
        except (TypeError, ValueError):
            return None
        return value

    def score(self, result) -> float:
        """Sign-adjusted value: higher is always better, worst is -inf."""
        value = self.value(result)
        if value is None or math.isnan(value):
            return float("-inf")
        return value if self.mode == "max" else -value


ObjectiveLike = Union[str, Objective]


def parse_objective(spec: ObjectiveLike) -> Objective:
    """``"metric"`` / ``"mode:metric"`` / an Objective -> an Objective."""
    if isinstance(spec, Objective):
        return spec
    if not isinstance(spec, str):
        raise TypeError(
            f"objective must be a 'mode:metric' string or Objective, got {spec!r}"
        )
    mode, sep, metric = spec.partition(":")
    if not sep:
        return Objective(metric=spec.strip(), mode="max")
    return Objective(metric=metric.strip(), mode=mode.strip())


def resolve_objectives(
    spec: Union[ObjectiveLike, Iterable[ObjectiveLike], None],
    default: Union[str, tuple[str, ...]] = DEFAULT_OBJECTIVE,
) -> tuple[Objective, ...]:
    """Normalize any objective spec to a non-empty Objective tuple.

    The first objective is *primary* — it ranks candidates and defines
    ``best()``; the rest only widen Pareto frontiers.
    """
    if spec is None or spec == () or spec == []:
        spec = default
    if isinstance(spec, (str, Objective)):
        spec = (spec,)
    objectives = tuple(parse_objective(entry) for entry in spec)
    if not objectives:
        raise ValueError("at least one objective is required")
    return objectives
