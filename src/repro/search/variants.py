"""Per-app variant exploration: enumerate, measure, prune, cache.

The original budgeted search in this codebase (paper Section 3): walk an
app's approximation-knob grid, measure quality/time/contention for every
variant, and prune to the near-frontier ladder the runtime climbs.
Exploration "only needs to happen once, unless the application design
changes" (Section 4.1), so results are cached on disk keyed by the app
name, seed, knob grid and quality threshold — the same
content-addressed-resume idea the scenario-space strategies get from
:class:`~repro.sweep.cache.SweepCache`.
"""

from __future__ import annotations

import itertools
import json
import os
from dataclasses import dataclass
from pathlib import Path

from repro.apps.base import ApproximableApp, MeasuredVariant, VariantSpec
from repro.apps.knobs import Knob
from repro.cas import atomic_write_bytes, stable_hash
from repro.search.ladder import ApproxLadder, pareto_select
from repro.search.profiler import WorkProfiler

_CACHE_ENV = "REPRO_EXPLORATION_CACHE"

#: Upper bound on enumerated variants per app; grids beyond this are
#: subsampled deterministically (every k-th combination).
MAX_VARIANTS = 96


def default_cache_dir() -> Path:
    env = os.environ.get(_CACHE_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-pliant" / "exploration"


def enumerate_variants(
    app: ApproximableApp,
    knobs: dict[str, Knob] | None = None,
    max_variants: int = MAX_VARIANTS,
) -> list[VariantSpec]:
    """All non-precise knob combinations for ``app``, precise-values allowed
    per knob so single-knob and mixed variants both appear."""
    knobs = knobs if knobs is not None else app.knobs()
    if not knobs:
        return []
    names = sorted(knobs)
    value_lists = [knobs[name].all_values() for name in names]
    specs: list[VariantSpec] = []
    for combo in itertools.product(*value_lists):
        settings = {
            name: value
            for name, value in zip(names, combo)
            if value != knobs[name].precise_value
        }
        if not settings:
            continue  # the all-precise point is handled separately
        specs.append(VariantSpec(settings))
    if len(specs) > max_variants:
        stride = len(specs) / max_variants
        specs = [specs[int(i * stride)] for i in range(max_variants)]
    return specs


@dataclass
class ExplorationResult:
    """Everything Section 3 produces for one app."""

    app_name: str
    all_variants: list[MeasuredVariant]
    selected: list[MeasuredVariant]
    ladder: ApproxLadder

    @property
    def selected_count(self) -> int:
        return len(self.selected)


class DesignSpaceExplorer:
    """Explores one app's approximation design space.

    ``use_profiler_hints`` restricts the grid to the profiler's hottest
    sites (the paper's gprof path for apps without ACCEPT support);
    otherwise the app's full declared knob set is used (the ACCEPT path).
    """

    def __init__(
        self,
        app: ApproximableApp,
        seed: int = 0,
        max_inaccuracy_pct: float = 5.0,
        use_profiler_hints: bool = False,
        cache_dir: Path | None = None,
    ) -> None:
        self._app = app
        self._seed = seed
        self._max_inaccuracy = max_inaccuracy_pct
        self._use_profiler = use_profiler_hints
        self._cache_dir = cache_dir if cache_dir is not None else default_cache_dir()

    # -- cache keys -----------------------------------------------------------

    def _grid_fingerprint(self) -> str:
        knobs = self._app.knobs()
        return stable_hash(
            {
                name: [repr(v) for v in knob.all_values()]
                for name, knob in sorted(knobs.items())
            },
            length=16,
        )

    def _cache_path(self) -> Path:
        key = (
            f"{self._app.name}-s{self._seed}-q{self._max_inaccuracy}"
            f"-p{int(self._use_profiler)}-{self._grid_fingerprint()}"
        )
        return self._cache_dir / f"{key}.json"

    # -- exploration ------------------------------------------------------------

    def explore(self, force: bool = False) -> ExplorationResult:
        """Measure every variant (cached) and select the ladder.

        Corrupted cache entries (truncated writes, foreign payloads) are
        deleted and remeasured instead of crashing the run.
        """
        path = self._cache_path()
        variants = None
        if not force and path.exists():
            variants = _load_variants(path, self._app.name)
        if variants is None:
            variants = self._measure_all()
            _store_variants(path, variants)
        selected = pareto_select(variants, self._max_inaccuracy)
        ladder = ApproxLadder.from_selection(self._app.precise_variant(), selected)
        return ExplorationResult(
            app_name=self._app.name,
            all_variants=variants,
            selected=selected,
            ladder=ladder,
        )

    def _measure_all(self) -> list[MeasuredVariant]:
        if self._use_profiler:
            knobs = WorkProfiler(self._app, seed=self._seed).hot_sites()
        else:
            knobs = self._app.knobs()
        specs = enumerate_variants(self._app, knobs=knobs)
        return [self._app.measure(spec, seed=self._seed) for spec in specs]


# -- (de)serialization -----------------------------------------------------


def _store_variants(path: Path, variants: list[MeasuredVariant]) -> None:
    payload = [
        {
            "settings": dict(v.spec),
            "inaccuracy_pct": v.inaccuracy_pct,
            "time_factor": v.time_factor,
            "traffic_rate_factor": v.traffic_rate_factor,
            "footprint_factor": v.footprint_factor,
        }
        for v in variants
    ]
    atomic_write_bytes(path, json.dumps(payload, indent=1).encode("utf-8"))


def _load_variants(path: Path, app_name: str) -> list[MeasuredVariant] | None:
    """Parse a cache entry; on any corruption, delete it and return None."""
    try:
        payload = json.loads(path.read_text())
        return [
            MeasuredVariant(
                app_name=app_name,
                spec=VariantSpec(entry["settings"]),
                inaccuracy_pct=entry["inaccuracy_pct"],
                time_factor=entry["time_factor"],
                traffic_rate_factor=entry["traffic_rate_factor"],
                footprint_factor=entry["footprint_factor"],
            )
            for entry in payload
        ]
    except (OSError, ValueError, KeyError, TypeError, AttributeError):
        try:
            path.unlink()
        except OSError:
            pass
        return None
