"""gprof-style work profiler.

For apps without ACCEPT hints, the paper profiles the application and
perforates the 2-4 functions that dominate execution time.  The analog
here: measure how much of the app's total work each knob's site accounts
for, by running each knob alone at its most aggressive setting and
attributing the work delta to that site.  Sites are then ranked and the top
``max_sites`` retained.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.base import ApproximableApp, VariantSpec
from repro.apps.knobs import Knob


@dataclass(frozen=True)
class SiteProfile:
    """Work attribution for one approximable site."""

    knob_name: str
    work_share: float  # fraction of total work attributable to the site

    def __post_init__(self) -> None:
        if not 0.0 <= self.work_share <= 1.0 + 1e-9:
            raise ValueError(f"work_share out of range: {self.work_share}")


class WorkProfiler:
    """Ranks an app's approximable sites by measured work contribution."""

    def __init__(self, app: ApproximableApp, seed: int = 0) -> None:
        self._app = app
        self._seed = seed

    def profile(self) -> list[SiteProfile]:
        """Per-knob work attribution, sorted hottest first."""
        precise = self._app.precise_run(seed=self._seed)
        total_work = precise.counters.work
        profiles = []
        for name, knob in self._app.knobs().items():
            aggressive = VariantSpec({name: knob.candidates[-1]})
            run = self._app.run(aggressive, seed=self._seed)
            saved = max(0.0, total_work - run.counters.work)
            # The work a site can shed bounds its share from below; scale by
            # the perforation depth so a 50%-keep knob doesn't half-count.
            depth = _perforation_depth(knob)
            share = min(1.0, saved / total_work / depth) if depth > 0 else 0.0
            profiles.append(SiteProfile(knob_name=name, work_share=share))
        profiles.sort(key=lambda p: p.work_share, reverse=True)
        return profiles

    def hot_sites(self, max_sites: int = 4) -> dict[str, Knob]:
        """The hottest ``max_sites`` knobs (the paper's 2-4 functions)."""
        knobs = self._app.knobs()
        ranked = self.profile()
        return {p.knob_name: knobs[p.knob_name] for p in ranked[:max_sites]}


def _perforation_depth(knob: Knob) -> float:
    """Fraction of the site's work removed at the most aggressive setting."""
    value = knob.candidates[-1]
    if isinstance(value, bool):
        return 0.5  # elision removes the synchronization half of the site
    if isinstance(value, (int, float)):
        return max(1e-6, 1.0 - float(value))
    return 0.5  # precision knobs shed roughly half the traffic, some work
