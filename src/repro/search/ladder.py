"""Variant selection and the approximation ladder (paper Section 3).

The paper keeps the approximate variants "close to the pareto-optimal
frontier" of (inaccuracy, execution time), discards anything beyond the
tolerable quality loss (5 % by default), and orders what remains so the
runtime can step between adjacent approximation degrees.  The frontier
math itself lives in :mod:`repro.search.frontier`, shared with the
scenario-space strategies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.base import MeasuredVariant
from repro.search.frontier import tolerance_frontier

#: A variant is "close to" the frontier if its time factor is within this
#: tolerance of the best time achievable at no greater inaccuracy.
FRONTIER_TOLERANCE = 0.03

#: The paper's richest apps expose eight selected variants (bayesian, PLSA).
MAX_SELECTED = 8


def _frontier(
    variants: list[MeasuredVariant],
    objective,
    tolerance: float,
) -> list[MeasuredVariant]:
    """Variants on the pareto frontier of (inaccuracy, objective).

    A point earns a slot only by strictly improving the objective beyond
    ``tolerance`` over everything at lower-or-equal inaccuracy — "close to
    the frontier" points that add no distinct operating regime would only
    pad the runtime's ladder with redundant levels.
    """
    return tolerance_frontier(
        variants,
        key=lambda v: v.inaccuracy_pct,
        value=objective,
        tolerance=tolerance,
    )


def pareto_select(
    variants: list[MeasuredVariant],
    max_inaccuracy_pct: float = 5.0,
    tolerance: float = FRONTIER_TOLERANCE,
    max_selected: int = MAX_SELECTED,
) -> list[MeasuredVariant]:
    """Select the admissible variants close to the pareto frontier.

    Two frontiers contribute: (inaccuracy, execution time) — the paper's
    scatter axes — and (inaccuracy, contention rate), because a variant that
    sheds shared-resource traffic at equal speed is exactly what the Pliant
    runtime climbs toward (SNP's synchronization-elision variants live on
    this second frontier).  Ties on (inaccuracy, time) keep the variant
    with the lower contention rate.

    Returns the selection ordered by increasing inaccuracy (the order the
    paper's Fig. 1 scatter plots use).  The precise point is not included —
    it is the ladder's level 0 and always available.
    """
    admissible = [
        v
        for v in variants
        if v.inaccuracy_pct <= max_inaccuracy_pct and not v.is_precise
    ]
    if not admissible:
        return []
    # Dedupe equal (inaccuracy, time) points, preferring lower contention.
    by_point: dict[tuple[float, float], MeasuredVariant] = {}
    for variant in admissible:
        key = (round(variant.inaccuracy_pct, 3), round(variant.time_factor, 3))
        incumbent = by_point.get(key)
        if (
            incumbent is None
            or variant.traffic_rate_factor < incumbent.traffic_rate_factor
        ):
            by_point[key] = variant
    candidates = list(by_point.values())

    time_front = _frontier(candidates, lambda v: v.time_factor, tolerance)
    contention_front = _frontier(
        candidates, lambda v: v.traffic_rate_factor, tolerance
    )
    union: dict[tuple[float, float, float], MeasuredVariant] = {}
    for variant in (*time_front, *contention_front):
        key = (
            round(variant.inaccuracy_pct, 3),
            round(variant.time_factor, 3),
            round(variant.traffic_rate_factor, 3),
        )
        union.setdefault(key, variant)
    selected = sorted(
        union.values(), key=lambda v: (v.inaccuracy_pct, v.time_factor)
    )
    if len(selected) > max_selected:
        # Keep the endpoints and evenly spaced interior points.
        stride = (len(selected) - 1) / (max_selected - 1)
        keep = sorted({int(round(i * stride)) for i in range(max_selected)})
        selected = [selected[i] for i in keep]
    return selected


@dataclass
class ApproxLadder:
    """Ordered approximation degrees for one app.

    Level 0 is precise execution; level ``max_level`` the most approximate
    selected variant.  The Pliant actuator moves between adjacent levels (or
    jumps straight to the top on a QoS violation).
    """

    app_name: str
    levels: list[MeasuredVariant] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.levels:
            raise ValueError("ladder requires at least the precise level")
        if not self.levels[0].is_precise:
            raise ValueError("ladder level 0 must be the precise variant")

    @property
    def max_level(self) -> int:
        return len(self.levels) - 1

    @property
    def approximate_count(self) -> int:
        """Number of approximate (non-precise) degrees."""
        return self.max_level

    def variant(self, level: int) -> MeasuredVariant:
        if not 0 <= level <= self.max_level:
            raise IndexError(f"level {level} outside [0, {self.max_level}]")
        return self.levels[level]

    @classmethod
    def from_selection(
        cls, precise: MeasuredVariant, selected: list[MeasuredVariant]
    ) -> "ApproxLadder":
        ordered = sorted(selected, key=lambda v: v.inaccuracy_pct)
        return cls(app_name=precise.app_name, levels=[precise, *ordered])
