"""Budgeted search over design spaces.

Pliant's contribution is navigating a huge approximation-knob x
colocation design space; this package turns that from a grid-size
problem into a search problem.  Two layers share one Pareto toolkit:

* **Scenario search** — :func:`run_search` drives a pluggable
  :class:`SearchStrategy` (``grid`` / ``random`` / ``halving`` /
  ``pareto``) in batched rounds through the existing
  :class:`~repro.sweep.engine.SweepEngine`, so proposals run on any
  backend unchanged and every evaluated point lands in the
  content-addressed :class:`~repro.sweep.cache.SweepCache` — killing
  and restarting a search resumes for free, and re-running with a
  larger budget only pays for new points.  The usual entrypoint is
  ``run_experiment(spec, strategy=..., budget=N)``, which returns a
  :class:`SearchResult` (a ResultSet plus trajectory / best-point /
  frontier accessors).
* **Variant exploration** — the paper's Section 3 per-app design-space
  exploration (:class:`DesignSpaceExplorer`, :class:`ApproxLadder`,
  :func:`pareto_select`), the original budgeted search this subsystem
  grew out of.  ``repro.exploration`` remains as a deprecated front.
"""

import importlib

from repro.search.frontier import dominates, pareto_indices, tolerance_frontier
from repro.search.ladder import ApproxLadder, pareto_select
from repro.search.profiler import SiteProfile, WorkProfiler
from repro.search.variants import (
    DesignSpaceExplorer,
    ExplorationResult,
    enumerate_variants,
)

#: The scenario-search layer resolves lazily (PEP 562): it reaches into
#: :mod:`repro.experiment`, whose import chain itself pulls the ladder
#: from this package — eager imports here would be a cycle.
_LAZY = {
    "run_search": "repro.search.driver",
    "DEFAULT_OBJECTIVE": "repro.search.objective",
    "Objective": "repro.search.objective",
    "parse_objective": "repro.search.objective",
    "resolve_objectives": "repro.search.objective",
    "RoundRecord": "repro.search.result",
    "SearchHistory": "repro.search.result",
    "SearchResult": "repro.search.result",
    "DesignSpace": "repro.search.space",
    "STRATEGIES": "repro.search.strategies",
    "GridStrategy": "repro.search.strategies",
    "ParetoGuided": "repro.search.strategies",
    "RandomStrategy": "repro.search.strategies",
    "SearchStrategy": "repro.search.strategies",
    "SuccessiveHalving": "repro.search.strategies",
    "register_strategy": "repro.search.strategies",
    "resolve_strategy": "repro.search.strategies",
}


def __getattr__(name: str):
    try:
        module = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    value = getattr(importlib.import_module(module), name)
    globals()[name] = value  # cache: resolve each name at most once
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))

__all__ = [
    "DEFAULT_OBJECTIVE",
    "STRATEGIES",
    "ApproxLadder",
    "DesignSpace",
    "DesignSpaceExplorer",
    "ExplorationResult",
    "GridStrategy",
    "Objective",
    "ParetoGuided",
    "RandomStrategy",
    "RoundRecord",
    "SearchHistory",
    "SearchResult",
    "SearchStrategy",
    "SiteProfile",
    "SuccessiveHalving",
    "WorkProfiler",
    "dominates",
    "enumerate_variants",
    "pareto_indices",
    "pareto_select",
    "parse_objective",
    "register_strategy",
    "resolve_objectives",
    "resolve_strategy",
    "run_search",
    "tolerance_frontier",
]
