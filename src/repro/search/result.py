"""Search results: a ResultSet plus the search's own story.

:class:`SearchResult` subclasses
:class:`~repro.experiment.resultset.ResultSet` — every query/export/
``identical()`` surface works unchanged — and adds what a budgeted
search knows that an exhaustive sweep doesn't: the per-round
trajectory, the best evaluated grid point, and the Pareto frontier of
the evaluated set.  Off-grid probes (e.g. halving's reduced-fidelity
rungs) are included in the outcome list (they were paid for and are
cached) but never win ``best()`` or enter ``frontier()``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.experiment.resultset import ResultSet
from repro.search.frontier import pareto_indices
from repro.search.objective import Objective, resolve_objectives
from repro.search.space import DesignSpace
from repro.sweep.engine import SweepOutcome
from repro.sweep.grid import Scenario


class SearchHistory:
    """Every evaluated point of a search, in evaluation order."""

    def __init__(self) -> None:
        self._by_scenario: dict[Scenario, SweepOutcome] = {}
        self._order: list[SweepOutcome] = []

    def record(self, outcome: SweepOutcome) -> None:
        if outcome.scenario not in self._by_scenario:
            self._by_scenario[outcome.scenario] = outcome
            self._order.append(outcome)

    def get(self, scenario: Scenario) -> SweepOutcome | None:
        return self._by_scenario.get(scenario)

    def __contains__(self, scenario: Scenario) -> bool:
        return scenario in self._by_scenario

    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self):
        return iter(self._order)

    @property
    def outcomes(self) -> list[SweepOutcome]:
        return list(self._order)


@dataclass(frozen=True)
class RoundRecord:
    """One propose/evaluate/observe round of a search."""

    round: int
    proposed: int
    evaluated: int
    cache_hits: int
    best_score: float
    best_label: str = ""


class SearchResult(ResultSet):
    """Evaluation-ordered outcomes plus trajectory/best/frontier accessors."""

    def __init__(
        self,
        outcomes: Sequence[SweepOutcome],
        spec=None,
        *,
        strategy: str = "",
        budget: int | None = None,
        objectives: tuple[Objective, ...] = (),
        rounds: Sequence[RoundRecord] = (),
        space: DesignSpace | None = None,
    ) -> None:
        super().__init__(outcomes, spec=spec)
        self.strategy = strategy
        self.budget = budget
        self.objectives = tuple(objectives)
        self.rounds = list(rounds)
        self._space = space if space is not None else (
            DesignSpace(spec) if spec is not None else None
        )

    # -- accounting ------------------------------------------------------

    @property
    def evaluations(self) -> int:
        """Unique points evaluated (cache hits included — they were proposed)."""
        return len(self)

    @property
    def space_size(self) -> int | None:
        return len(self._space) if self._space is not None else None

    @property
    def fraction_evaluated(self) -> float | None:
        size = self.space_size
        return len(self) / size if size else None

    def grid_outcomes(self) -> list[SweepOutcome]:
        """Outcomes that are actual grid points (off-grid probes dropped)."""
        if self._space is None:
            return self.outcomes
        return [o for o in self if self._space.contains(o.scenario)]

    # -- winners ---------------------------------------------------------

    def _resolved(self, objective) -> tuple[Objective, ...]:
        if objective is not None:
            return resolve_objectives(objective)
        return self.objectives or resolve_objectives(None)

    def best(self, objective=None) -> SweepOutcome:
        """The best grid-point outcome under the primary objective.

        Ties keep the earliest-evaluated point, so reruns of the same
        deterministic search return the same winner.
        """
        primary = self._resolved(objective)[0]
        candidates = self.grid_outcomes()
        if not candidates:
            raise LookupError("search evaluated no grid points")
        winner, winner_score = candidates[0], primary.score(candidates[0].result)
        for outcome in candidates[1:]:
            score = primary.score(outcome.result)
            if score > winner_score:
                winner, winner_score = outcome, score
        return winner

    @property
    def best_scenario(self) -> Scenario:
        return self.best().scenario

    @property
    def best_result(self):
        return self.best().result

    def best_value(self, objective=None) -> float | None:
        """The raw (unsigned) primary-objective value of the best point."""
        return self._resolved(objective)[0].value(self.best(objective).result)

    def frontier(self, objective=None) -> list[SweepOutcome]:
        """Non-dominated grid outcomes under the objectives, stable order."""
        objectives = self._resolved(objective)
        candidates = self.grid_outcomes()
        rows = [
            tuple(obj.score(outcome.result) for obj in objectives)
            for outcome in candidates
        ]
        return [candidates[i] for i in pareto_indices(rows)]

    def trajectory(self) -> list[float]:
        """Best-so-far primary score after each round."""
        return [record.best_score for record in self.rounds]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        size = self.space_size
        coverage = f"/{size}" if size else ""
        return (
            f"SearchResult(strategy={self.strategy!r}, "
            f"evaluations={len(self)}{coverage}, rounds={len(self.rounds)}, "
            f"cache_hits={self.cache_hits})"
        )
