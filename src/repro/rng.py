"""Seeded random-number discipline.

Every stochastic component in the reproduction draws from a
:class:`numpy.random.Generator` derived from an explicit seed, so that any
experiment is replayable bit-for-bit.  Components never touch global numpy
random state.

The helpers here derive independent child generators from a root seed and a
string label (e.g. ``"monitor/nginx"``), so adding a new consumer never
perturbs the streams of existing ones.
"""

from __future__ import annotations

import zlib

import numpy as np

DEFAULT_SEED = 0x517A  # arbitrary but fixed project-wide default


def generator(seed: int | None = None) -> np.random.Generator:
    """Return a fresh generator for ``seed`` (project default if ``None``)."""
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)


def derive_seed(root_seed: int, label: str) -> int:
    """Derive a stable child seed from ``root_seed`` and a string ``label``."""
    return (root_seed ^ zlib.crc32(label.encode("utf-8"))) & 0x7FFFFFFF


def child_generator(root_seed: int, label: str) -> np.random.Generator:
    """Return an independent generator keyed by ``(root_seed, label)``."""
    return np.random.default_rng(derive_seed(root_seed, label))
