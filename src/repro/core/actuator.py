"""Actuator: enforces controller decisions on the node (Section 4.1-4.2).

Two levers, exactly the paper's: switch an application's approximate
variant (a Linux signal trapped by the DynamoRIO analog, which retargets
the function table and re-scales the tenant's contention profile), and move
cores between an approximate application and the interactive service.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dynrio.overhead import OverheadModel


@dataclass
class ActuationLog:
    """Audit trail of everything the actuator did."""

    level_switches: list[tuple[float, str, int]] = field(default_factory=list)
    core_moves: list[tuple[float, str, int]] = field(default_factory=list)

    def switches_for(self, app_name: str) -> int:
        return sum(1 for _, name, _ in self.level_switches if name == app_name)


class Actuator:
    """Binds policy decisions to the simulated node.

    The engine provides callbacks for the actual state mutation; the
    actuator adds signal delivery, switch-pause accounting and the audit
    log.  Policies only ever talk to this object.
    """

    def __init__(self, engine, overhead: OverheadModel | None = None) -> None:
        self._engine = engine
        self._overhead = overhead or OverheadModel()
        self.log = ActuationLog()

    # -- observation ------------------------------------------------------

    def running_apps(self) -> list[str]:
        return self._engine.running_app_names()

    def level_of(self, app_name: str) -> int:
        return self._engine.app_sim(app_name).level

    def max_level(self, app_name: str) -> int:
        return self._engine.app_sim(app_name).ladder.max_level

    def cores_of(self, app_name: str) -> int:
        return self._engine.app_sim(app_name).tenant.cores

    def nominal_cores(self, app_name: str) -> int:
        return self._engine.app_sim(app_name).tenant.nominal_cores

    def app_view(self, app_name: str):
        return self._engine.arbiter_view(app_name)

    @property
    def service_cores(self) -> int:
        return self._engine.service_cores

    # -- actuation ---------------------------------------------------------

    def set_level(self, app_name: str, level: int) -> None:
        """Signal the instrumented app to switch approximation degree."""
        sim = self._engine.app_sim(app_name)
        if level == sim.level:
            return
        if not 0 <= level <= sim.ladder.max_level:
            raise IndexError(
                f"{app_name}: level {level} outside [0, {sim.ladder.max_level}]"
            )
        self._engine.apply_level(app_name, level)
        sim.pause_remaining += self._overhead.switch_pause()
        self.log.level_switches.append((self._engine.now, app_name, level))

    def reclaim_core(self, app_name: str) -> None:
        """Move one core from the app to the interactive service."""
        self._engine.move_core(app_name, to_service=True)
        self.log.core_moves.append((self._engine.now, app_name, -1))

    def return_core(self, app_name: str) -> None:
        """Give one core back from the interactive service to the app."""
        self._engine.move_core(app_name, to_service=False)
        self.log.core_moves.append((self._engine.now, app_name, +1))
