"""Baseline and ablation policies.

* :class:`PrecisePolicy` — the paper's baseline: static fair allocation,
  precise execution, no runtime reaction (and no instrumentation overhead).
* :class:`StaticMostApproxPolicy` — ablation: jump every app to its most
  approximate variant immediately and stay there; never touch cores.
* :class:`StaticLevelPolicy` — pin chosen per-app levels (used by the
  Fig. 1 even-row experiments that colocate one fixed variant at a time).
* :class:`CoreReclaimOnlyPolicy` — ablation: the Fig. 3 loop with the
  approximation lever removed; only cores move.
"""

from __future__ import annotations

from repro.core.actuator import Actuator
from repro.core.monitor import IntervalObservation
from repro.core.policy import RuntimePolicy


class PrecisePolicy(RuntimePolicy):
    """Do nothing: precise execution on the static fair allocation."""

    requires_instrumentation = False
    name = "precise"

    def on_interval(self, obs: IntervalObservation, actuator: Actuator) -> None:
        return


class StaticMostApproxPolicy(RuntimePolicy):
    """Pin every app at its most approximate variant from the start."""

    requires_instrumentation = True
    name = "static-most-approx"

    def __init__(self) -> None:
        self._applied = False

    def on_interval(self, obs: IntervalObservation, actuator: Actuator) -> None:
        if self._applied:
            return
        for name in actuator.running_apps():
            actuator.set_level(name, actuator.max_level(name))
        self._applied = True


class StaticLevelPolicy(RuntimePolicy):
    """Pin specific approximation levels per app (Fig. 1 static variants)."""

    requires_instrumentation = True
    name = "static-level"

    def __init__(self, levels: dict[str, int]) -> None:
        self._levels = dict(levels)
        self._applied = False

    def on_interval(self, obs: IntervalObservation, actuator: Actuator) -> None:
        if self._applied:
            return
        for name, level in self._levels.items():
            if name in actuator.running_apps():
                actuator.set_level(name, level)
        self._applied = True


class CoreReclaimOnlyPolicy(RuntimePolicy):
    """Ablation: react to QoS with cores only, never with approximation."""

    requires_instrumentation = False
    name = "core-reclaim-only"

    def __init__(self, slack_threshold: float = 0.10) -> None:
        self.slack_threshold = slack_threshold

    def on_interval(self, obs: IntervalObservation, actuator: Actuator) -> None:
        apps = actuator.running_apps()
        if not apps:
            return
        if not obs.qos_met:
            candidates = [n for n in apps if actuator.cores_of(n) > 1]
            if candidates:
                # Take from the app with the most cores remaining.
                target = max(candidates, key=lambda n: (actuator.cores_of(n), n))
                actuator.reclaim_core(target)
        elif obs.slack > self.slack_threshold:
            reclaimed = [
                n for n in apps if actuator.cores_of(n) < actuator.nominal_cores(n)
            ]
            if reclaimed:
                target = max(
                    reclaimed,
                    key=lambda n: (
                        actuator.nominal_cores(n) - actuator.cores_of(n),
                        n,
                    ),
                )
                actuator.return_core(target)
