"""The epoch-driven colocation engine.

Binds everything together: a server node hosting one interactive service
and one or more approximate applications, an open-loop load generator, the
interference model, the client-side monitor, and a runtime policy (Pliant
or a baseline).  Time advances in monitor epochs (100 ms); policies act at
decision-interval boundaries (1 s by default), exactly as in the paper.

Each epoch the engine:

1. samples the offered load and refreshes tenant resource profiles,
2. computes the contention pressure on the service, its service-time
   inflation, utilization and saturation backlog,
3. draws a noisy p99 latency observation for the monitor, and
4. advances each application's logical progress at a rate set by its core
   allocation (Amdahl), active variant (measured time factor), DynamoRIO
   overhead (when instrumented) and the contention it suffers itself.

An application's final output quality is the progress-weighted mix of the
inaccuracies of the variants it actually executed — running half the span
precise and half at 4 % loses ~2 % — plus a small nondeterministic term for
spans executed with synchronization elision (the mechanism behind the
paper's canneal+memcached 5.4 % worst case).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apps.base import ApproximableApp
from repro.config import RuntimeDefaults
from repro.core.actuator import Actuator
from repro.core.arbiter import AppView
from repro.core.monitor import IntervalObservation, PerformanceMonitor
from repro.core.policy import RuntimePolicy
from repro.dynrio.binary import FatBinary
from repro.dynrio.instrument import Instrumentor
from repro.dynrio.overhead import OverheadModel
from repro.dynrio.signals import SignalBus
from repro.search.ladder import ApproxLadder
from repro.rng import child_generator
from repro.server.node import ServerNode
from repro.server.platform import Platform, default_platform
from repro.server.resources import ResourceProfile
from repro.server.tenant import Tenant, TenantKind
from repro.services.base import BacklogTracker, InteractiveService
from repro.services.loadgen import ConstantLoad, LoadGenerator
from repro.telemetry import get_recorder

#: Slowdown an approximate app suffers per unit of contention pressure on
#: itself (batch apps tolerate interference far better than tail latency).
_APP_PRESSURE_SENSITIVITY = 0.25

#: Relative sigma of the nondeterministic quality noise for progress spans
#: executed with synchronization elision.
_ELISION_QUALITY_SIGMA = 0.35

#: Time constant (seconds) over which the service's effective inflation
#: tracks the raw contention-derived value (cache refill / queue drain).
#: Short enough that a variant switch is fully visible by the next decision
#: interval, long enough that mid-interval changes blur realistically.
_INFLATION_TIME_CONSTANT = 0.5

_IDLE_PROFILE = ResourceProfile(
    cpu_fraction=0.0,
    llc_footprint_bytes=0.0,
    llc_intensity=0.0,
    membw_per_core=0.0,
    disk_bw=0.0,
    network_bw=0.0,
)


@dataclass
class AppSim:
    """Simulation state of one approximate application."""

    app: ApproximableApp
    ladder: ApproxLadder
    tenant: Tenant
    instrumented: bool
    instrumentor: Instrumentor | None = None
    level: int = 0
    progress: float = 0.0
    pause_remaining: float = 0.0
    finished: bool = False
    finish_time: float | None = None
    inaccuracy_integral: float = 0.0
    elided_progress: float = 0.0
    level_trace: list[tuple[float, int]] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.app.name

    def variant(self):
        return self.ladder.variant(self.level)

    def active_profile(self) -> ResourceProfile:
        if self.finished:
            return _IDLE_PROFILE
        return self.variant().scaled_profile(self.app.metadata.profile)

    def uses_elision(self) -> bool:
        return any(value is True for value in self.variant().spec.values())


@dataclass
class AppOutcome:
    """Per-application results of one colocation run."""

    name: str
    finish_time: float | None
    inaccuracy_pct: float
    switches: int
    min_cores: int
    max_reclaimed: int
    level_trace: list[tuple[float, int]]

    @property
    def completed(self) -> bool:
        return self.finish_time is not None


@dataclass
class IntervalRecord:
    """One decision interval's observation and the action taken."""

    observation: IntervalObservation
    action_summary: str


@dataclass
class ColocationResult:
    """Everything a benchmark needs from one run."""

    service_name: str
    policy_name: str
    qos: float
    epoch_times: np.ndarray
    epoch_p99: np.ndarray
    epoch_service_cores: np.ndarray
    epoch_app_levels: dict[str, np.ndarray]
    epoch_app_cores: dict[str, np.ndarray]
    intervals: list[IntervalRecord]
    apps: list[AppOutcome]
    offered_qps: float

    #: Startup transient excluded from run-level aggregates: the runtime
    #: needs a couple of decision intervals to react from the cold precise
    #: start, and the paper's aggregate bars reflect steady state.
    warmup_seconds: float = 3.0

    def _post_warmup_p99(self) -> np.ndarray:
        mask = self.epoch_times >= self.warmup_seconds
        return self.epoch_p99[mask] if mask.any() else self.epoch_p99

    @property
    def aggregate_p99(self) -> float:
        """Run-level tail latency: the median epoch p99.

        The controller intentionally relaxes the operating point until the
        tail sits just under QoS, and it takes brief slack probes (visible
        as spikes in the paper's Fig. 4 traces while its Fig. 5 aggregate
        bars still sit under QoS).  The median reads through both the
        sampling noise around the steady state and those transients; a run
        violating QoS most of the time still reads as a violation.  Use
        :attr:`mean_epoch_p99` and :meth:`qos_met_fraction` for stricter
        views.
        """
        values = self._post_warmup_p99()
        if len(values) == 0:
            return 0.0
        return float(np.percentile(values, 50))

    @property
    def mean_epoch_p99(self) -> float:
        """Plain post-warmup mean of the epoch p99 observations."""
        values = self._post_warmup_p99()
        return float(np.mean(values)) if len(values) else 0.0

    @property
    def qos_ratio(self) -> float:
        return self.aggregate_p99 / self.qos

    @property
    def qos_met(self) -> bool:
        return self.aggregate_p99 <= self.qos

    def qos_met_fraction(self) -> float:
        if not self.intervals:
            return 1.0
        met = sum(1 for r in self.intervals if r.observation.qos_met)
        return met / len(self.intervals)

    def app_outcome(self, name: str) -> AppOutcome:
        for outcome in self.apps:
            if outcome.name == name:
                return outcome
        raise LookupError(f"no app named {name!r} in result")

    def max_cores_reclaimed(self) -> int:
        return max((a.max_reclaimed for a in self.apps), default=0)

    def sustained_cores_reclaimed(self) -> int:
        """Total cores held away from the apps in the steady second half of
        the run — the Fig. 10 notion of "needed cores" (a core borrowed for
        one transient interval during convergence does not count)."""
        if len(self.epoch_times) == 0:
            return 0
        halfway = self.epoch_times[-1] / 2.0
        mask = self.epoch_times >= halfway
        total = 0
        for name, cores in self.epoch_app_cores.items():
            nominal = max(cores[0], 1)
            reclaimed = np.maximum(0, nominal - cores[mask])
            total += int(reclaimed.max()) if reclaimed.size else 0
        return total


@dataclass
class ColocationConfig:
    """Knobs of one colocation experiment."""

    load_fraction: float = 0.775
    decision_interval: float = 1.0
    monitor_epoch: float = 0.1
    slack_threshold: float = 0.10
    horizon: float = 400.0
    seed: int = 0
    stop_when_apps_done: bool = True

    @classmethod
    def from_defaults(cls, defaults: RuntimeDefaults) -> "ColocationConfig":
        return cls(
            load_fraction=defaults.load_fraction,
            decision_interval=defaults.decision_interval,
            monitor_epoch=defaults.monitor_epoch,
            slack_threshold=defaults.slack_threshold,
        )


class ColocationEngine:
    """Runs one colocation experiment to completion."""

    def __init__(
        self,
        service: InteractiveService,
        apps: list[tuple[ApproximableApp, ApproxLadder]],
        policy: RuntimePolicy,
        config: ColocationConfig | None = None,
        platform: Platform | None = None,
        loadgen: LoadGenerator | None = None,
    ) -> None:
        if not apps:
            raise ValueError("a colocation needs at least one approximate app")
        self._service = service
        self._policy = policy
        self._config = config or ColocationConfig()
        self._platform = platform or default_platform()
        self._node = ServerNode(self._platform)
        self._rng = child_generator(self._config.seed, f"engine/{service.name}")
        self._overhead = OverheadModel()
        self._bus = SignalBus()
        self._now = 0.0

        shares = self._node.fair_allocation(len(apps))
        qps_ref = self._config.load_fraction * service.saturation_qps(shares[0])
        self._loadgen = loadgen or ConstantLoad(qps_ref)
        self._offered_reference = qps_ref

        self._service_tenant = Tenant(
            name=service.name,
            kind=TenantKind.INTERACTIVE,
            profile=service.profile(qps_ref, shares[0]),
            cores=shares[0],
        )
        self._node.add_tenant(self._service_tenant)

        self._apps: dict[str, AppSim] = {}
        for (app, ladder), cores in zip(apps, shares[1:]):
            tenant = Tenant(
                name=app.name,
                kind=TenantKind.APPROXIMATE,
                profile=app.metadata.profile,
                cores=cores,
            )
            self._node.add_tenant(tenant)
            instrumentor = None
            if policy.requires_instrumentation:
                instrumentor = Instrumentor(
                    FatBinary(app, ladder), self._bus, process=app.name
                )
            self._apps[app.name] = AppSim(
                app=app,
                ladder=ladder,
                tenant=tenant,
                instrumented=policy.requires_instrumentation,
                instrumentor=instrumentor,
            )

        self._monitor = PerformanceMonitor(qos=service.qos)
        self._backlog = BacklogTracker()
        self._actuator = Actuator(self, overhead=self._overhead)
        self._inflation_ema = 1.0

    # -- facade used by the actuator -------------------------------------

    @property
    def now(self) -> float:
        return self._now

    @property
    def service_cores(self) -> int:
        return self._service_tenant.cores

    def running_app_names(self) -> list[str]:
        return sorted(n for n, sim in self._apps.items() if not sim.finished)

    def app_sim(self, name: str) -> AppSim:
        return self._apps[name]

    def arbiter_view(self, name: str) -> AppView:
        sim = self._apps[name]
        return AppView(
            name=name,
            level=sim.level,
            max_level=sim.ladder.max_level,
            cores=sim.tenant.cores,
            nominal_cores=sim.tenant.nominal_cores,
            level_inaccuracies=tuple(
                v.inaccuracy_pct for v in sim.ladder.levels
            ),
            level_traffic_rates=tuple(
                v.traffic_rate_factor for v in sim.ladder.levels
            ),
        )

    def apply_level(self, name: str, level: int) -> None:
        telemetry = get_recorder()
        tick = telemetry.now() if telemetry.enabled else 0.0
        sim = self._apps[name]
        if sim.instrumentor is not None:
            sim.instrumentor.request_level(level)
        sim.level = level
        sim.level_trace.append((self._now, level))
        sim.tenant.set_profile(sim.active_profile())
        if telemetry.enabled:
            telemetry.observe("runtime.actuator_s", telemetry.now() - tick)
            telemetry.count("runtime.level_changes")

    def move_core(self, name: str, to_service: bool) -> None:
        telemetry = get_recorder()
        tick = telemetry.now() if telemetry.enabled else 0.0
        if to_service:
            self._node.reclaim_core(name, self._service.name)
        else:
            self._node.reclaim_core(self._service.name, name)
        if telemetry.enabled:
            telemetry.observe("runtime.actuator_s", telemetry.now() - tick)
            telemetry.count("runtime.core_moves")

    # -- simulation --------------------------------------------------------

    def run(self) -> ColocationResult:
        cfg = self._config
        epochs_per_interval = max(1, int(round(cfg.decision_interval / cfg.monitor_epoch)))
        times: list[float] = []
        p99s: list[float] = []
        service_cores: list[int] = []
        app_levels: dict[str, list[int]] = {n: [] for n in self._apps}
        app_cores: dict[str, list[int]] = {n: [] for n in self._apps}
        intervals: list[IntervalRecord] = []
        min_cores = {n: sim.tenant.cores for n, sim in self._apps.items()}
        max_reclaimed = {n: 0 for n in self._apps}

        # Phase timings (monitor epochs vs. policy decisions vs. actuator
        # work) are the profile that justifies the tensorization refactor.
        # The recorder's injected clock is the only clock named here —
        # simulation time (`self._now`) stays untouched, and everything
        # below is guarded so an uninstrumented run pays one bool check.
        telemetry = get_recorder()
        instrumented = telemetry.enabled
        monitor_spent = 0.0
        tick = 0.0

        epoch_index = 0
        while self._now < cfg.horizon:
            if instrumented:
                tick = telemetry.now()
            self._step_epoch(epoch_index, times, p99s, service_cores, app_levels, app_cores)
            if instrumented:
                monitor_spent += telemetry.now() - tick
            for name, sim in self._apps.items():
                min_cores[name] = min(min_cores[name], sim.tenant.cores)
                max_reclaimed[name] = max(
                    max_reclaimed[name], sim.tenant.reclaimed_cores
                )
            epoch_index += 1
            if epoch_index % epochs_per_interval == 0:
                if instrumented:
                    tick = telemetry.now()
                obs = self._monitor.close_interval(self._now)
                if instrumented:
                    monitor_spent += telemetry.now() - tick
                    telemetry.observe("runtime.monitor_phase_s", monitor_spent)
                    monitor_spent = 0.0
                    tick = telemetry.now()
                before = self._action_fingerprint()
                self._policy.on_interval(obs, self._actuator)
                summary = self._describe_action(before)
                if instrumented:
                    telemetry.observe(
                        "runtime.policy_phase_s", telemetry.now() - tick
                    )
                intervals.append(IntervalRecord(observation=obs, action_summary=summary))
            if cfg.stop_when_apps_done and all(
                sim.finished for sim in self._apps.values()
            ):
                break

        outcomes = [
            AppOutcome(
                name=name,
                finish_time=sim.finish_time,
                inaccuracy_pct=self._final_inaccuracy(sim),
                switches=(
                    sim.instrumentor.switches if sim.instrumentor is not None else 0
                ),
                min_cores=min_cores[name],
                max_reclaimed=max_reclaimed[name],
                level_trace=list(sim.level_trace),
            )
            for name, sim in self._apps.items()
        ]
        return ColocationResult(
            service_name=self._service.name,
            policy_name=self._policy.name,
            qos=self._service.qos,
            epoch_times=np.asarray(times),
            epoch_p99=np.asarray(p99s),
            epoch_service_cores=np.asarray(service_cores),
            epoch_app_levels={n: np.asarray(v) for n, v in app_levels.items()},
            epoch_app_cores={n: np.asarray(v) for n, v in app_cores.items()},
            intervals=intervals,
            apps=outcomes,
            offered_qps=self._offered_reference,
        )

    # -- internals --------------------------------------------------------

    def _step_epoch(
        self,
        epoch_index: int,
        times: list[float],
        p99s: list[float],
        service_cores: list[int],
        app_levels: dict[str, list[int]],
        app_cores: dict[str, list[int]],
    ) -> None:
        cfg = self._config
        dt = cfg.monitor_epoch
        qps = self._loadgen.qps_at(self._now)
        svc_cores = self._service_tenant.cores
        self._service_tenant.set_profile(self._service.profile(qps, svc_cores))
        for sim in self._apps.values():
            sim.tenant.set_profile(sim.active_profile())

        pressure = self._node.pressure_on(self._service.name)
        raw_inflation = self._service.sensitivity.inflation(pressure)
        # Tail-latency effects of an allocation or variant change develop
        # over cache-refill / queue-drain timescales (~1 s), not instantly.
        alpha = min(1.0, dt / _INFLATION_TIME_CONSTANT)
        self._inflation_ema += alpha * (raw_inflation - self._inflation_ema)
        inflation = self._inflation_ema
        capacity = self._service.saturation_qps(svc_cores) / inflation
        self._backlog.update(qps, capacity, dt)
        penalty = self._backlog.penalty(capacity)
        sample = self._service.sample_p99(
            qps,
            svc_cores,
            pressure,
            self._rng,
            dt,
            backlog_penalty=penalty,
            inflation=inflation,
        )
        if self._monitor.should_sample(epoch_index):
            self._monitor.record(sample)

        for sim in self._apps.values():
            self._advance_app(sim, dt)

        times.append(self._now)
        p99s.append(sample)
        service_cores.append(svc_cores)
        for name, sim in self._apps.items():
            app_levels[name].append(sim.level)
            app_cores[name].append(sim.tenant.cores)
        self._now += dt

    def _advance_app(self, sim: AppSim, dt: float) -> None:
        if sim.finished:
            return
        if sim.pause_remaining > 0:
            consumed = min(sim.pause_remaining, dt)
            sim.pause_remaining -= consumed
            dt -= consumed
            if dt <= 0:
                return
        metadata = sim.app.metadata
        cores = sim.tenant.cores
        nominal = sim.tenant.nominal_cores
        p = metadata.parallel_fraction
        amdahl_now = (1.0 - p) + p / max(cores, 1)
        amdahl_nominal = (1.0 - p) + p / max(nominal, 1)
        exec_time = metadata.nominal_exec_time * amdahl_now / amdahl_nominal
        exec_time *= sim.variant().time_factor
        if sim.instrumented:
            exec_time *= self._overhead.instrumentation_factor(metadata)
        pressure = self._node.pressure_on(sim.name)
        slowdown = 1.0 + _APP_PRESSURE_SENSITIVITY * (
            0.5 * pressure.llc + pressure.membw_linear + pressure.membw_overload
        )
        exec_time *= slowdown
        dp = dt / exec_time
        dp = min(dp, 1.0 - sim.progress)
        sim.progress += dp
        sim.inaccuracy_integral += dp * sim.variant().inaccuracy_pct
        if sim.uses_elision():
            sim.elided_progress += dp
        if sim.progress >= 1.0 - 1e-12:
            sim.finished = True
            sim.finish_time = self._now + dt
            sim.tenant.set_profile(_IDLE_PROFILE)

    def _final_inaccuracy(self, sim: AppSim) -> float:
        inaccuracy = sim.inaccuracy_integral
        if sim.elided_progress > 0:
            # Synchronization elision is racy: the realized quality loss
            # jitters around the measured value for the elided spans.
            noise = self._rng.normal(0.0, _ELISION_QUALITY_SIGMA)
            inaccuracy += abs(noise) * sim.elided_progress
        return float(max(0.0, inaccuracy))

    def _action_fingerprint(self) -> tuple:
        return tuple(
            (sim.level, sim.tenant.cores) for sim in self._apps.values()
        )

    def _describe_action(self, before: tuple) -> str:
        after = self._action_fingerprint()
        if before == after:
            return "hold"
        parts = []
        for (lvl0, c0), (lvl1, c1), name in zip(
            before, after, self._apps.keys()
        ):
            if lvl1 != lvl0:
                parts.append(f"{name}: level {lvl0}->{lvl1}")
            if c1 != c0:
                parts.append(f"{name}: cores {c0}->{c1}")
        return "; ".join(parts)
