"""Client-side performance monitor (Section 4.1).

The monitor lives with the workload generator, samples end-to-end latency
continuously, and reports per decision interval whether the interactive
service's QoS is met and how much latency slack remains.  It is designed to
add no measurable load: sampling backs off adaptively when the service is
comfortably inside (or hopelessly outside) its QoS and tightens near the
boundary, where decisions actually change.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class IntervalObservation:
    """What the monitor tells the controller at each decision boundary."""

    time: float
    p99: float
    qos: float
    sample_count: int

    @property
    def qos_met(self) -> bool:
        return self.p99 <= self.qos

    @property
    def slack(self) -> float:
        """Fractional latency headroom; negative when violating."""
        return (self.qos - self.p99) / self.qos

    @property
    def ratio(self) -> float:
        """Tail latency as a multiple of the QoS target."""
        return self.p99 / self.qos


@dataclass
class PerformanceMonitor:
    """Aggregates epoch latency samples into interval observations."""

    qos: float
    adaptive: bool = True
    _samples: list[float] = field(default_factory=list)
    _history: list[IntervalObservation] = field(default_factory=list)
    _last_slack: float = 1.0

    def __post_init__(self) -> None:
        if self.qos <= 0:
            raise ValueError("qos must be positive")

    def should_sample(self, epoch_index: int) -> bool:
        """Adaptive sampling: near the QoS boundary every epoch counts;
        far from it, every other epoch suffices."""
        if not self.adaptive:
            return True
        if abs(self._last_slack) <= 0.25:
            return True
        return epoch_index % 2 == 0

    def record(self, p99_sample: float) -> None:
        if p99_sample < 0:
            raise ValueError("latency samples must be non-negative")
        self._samples.append(p99_sample)

    @property
    def pending_samples(self) -> int:
        return len(self._samples)

    def close_interval(self, time: float) -> IntervalObservation:
        """Fold the pending samples into one observation and reset."""
        if self._samples:
            p99 = float(np.mean(self._samples))
            count = len(self._samples)
        else:
            # No samples this interval (fully backed-off monitor): assume
            # the last observation still holds.
            p99 = self._history[-1].p99 if self._history else 0.0
            count = 0
        observation = IntervalObservation(
            time=time, p99=p99, qos=self.qos, sample_count=count
        )
        self._samples.clear()
        self._history.append(observation)
        self._last_slack = observation.slack
        return observation

    @property
    def history(self) -> list[IntervalObservation]:
        return list(self._history)

    def qos_met_fraction(self) -> float:
        if not self._history:
            return 1.0
        met = sum(1 for obs in self._history if obs.qos_met)
        return met / len(self._history)
