"""The Fig. 3 single-application state machine.

State is (approximation level, reclaimed cores).  Transitions:

* QoS violated, level below max      -> jump to the MOST approximate level
  (including from intermediate levels — "it immediately reverts to its most
  approximate variant").
* QoS violated, already at max level -> reclaim one core (if any remain).
* QoS met with slack > threshold     -> undo: return a reclaimed core
  first; once all cores are back, step one level toward precise.
* QoS met without sufficient slack   -> hold state.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class ControllerAction(enum.Enum):
    """What the controller decided this interval."""

    HOLD = "hold"
    JUMP_TO_MOST_APPROX = "jump_to_most_approx"
    RECLAIM_CORE = "reclaim_core"
    RETURN_CORE = "return_core"
    STEP_TOWARD_PRECISE = "step_toward_precise"


@dataclass
class PliantController:
    """Single-app Pliant decision logic (paper Fig. 3)."""

    max_level: int
    max_reclaimable: int
    slack_threshold: float = 0.10
    level: int = 0
    reclaimed: int = 0

    def __post_init__(self) -> None:
        if self.max_level < 0:
            raise ValueError("max_level must be non-negative")
        if self.max_reclaimable < 0:
            raise ValueError("max_reclaimable must be non-negative")
        if not 0.0 <= self.slack_threshold < 1.0:
            raise ValueError("slack_threshold must lie in [0, 1)")

    def decide(self, qos_met: bool, slack: float) -> ControllerAction:
        """Advance the state machine one decision interval."""
        if not qos_met:
            if self.level < self.max_level:
                self.level = self.max_level
                return ControllerAction.JUMP_TO_MOST_APPROX
            if self.reclaimed < self.max_reclaimable:
                self.reclaimed += 1
                return ControllerAction.RECLAIM_CORE
            return ControllerAction.HOLD
        if slack > self.slack_threshold:
            if self.reclaimed > 0:
                self.reclaimed -= 1
                return ControllerAction.RETURN_CORE
            if self.level > 0:
                self.level -= 1
                return ControllerAction.STEP_TOWARD_PRECISE
        return ControllerAction.HOLD
