"""Multi-application arbitration (Section 4.4).

With several approximate applications on the node, Pliant escalates in a
round-robin fashion so no application is penalized disproportionately:
first each application (rotation order, random start) is switched to its
most approximate variant; only when all are maxed does core reclamation
begin, one application and one core at a time.  De-escalation mirrors it:
cores return first, then approximation steps down — always one unit per
decision interval.

:class:`ImpactAwareArbiter` is the Section 6.5 extension: instead of strict
rotation it escalates the application that pays the least for it (largest
contention relief per unit of quality lost).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.rng import child_generator


@dataclass(frozen=True)
class AppView:
    """What the arbiter knows about one approximate application."""

    name: str
    level: int
    max_level: int
    cores: int
    nominal_cores: int
    # Per-level measured factors, for impact-aware policies.
    level_inaccuracies: tuple[float, ...] = ()
    level_traffic_rates: tuple[float, ...] = ()

    @property
    def at_max_level(self) -> bool:
        return self.level >= self.max_level

    @property
    def reclaimed(self) -> int:
        return max(0, self.nominal_cores - self.cores)


@dataclass(frozen=True)
class ArbiterDecision:
    """One action against one application (or nothing)."""

    action: str  # "none" | "set_level" | "reclaim_core" | "return_core"
    app_name: str = ""
    level: int = 0

    @classmethod
    def none(cls) -> "ArbiterDecision":
        return cls(action="none")


class Arbiter(ABC):
    """Chooses which application to escalate or relax."""

    @abstractmethod
    def escalate(self, apps: list[AppView]) -> ArbiterDecision:
        """Pick the next escalation step after a QoS violation."""

    @abstractmethod
    def deescalate(self, apps: list[AppView]) -> ArbiterDecision:
        """Pick the next relaxation step when slack is plentiful."""


class RoundRobinArbiter(Arbiter):
    """The paper's simple, scalable round-robin policy."""

    def __init__(self, seed: int = 0) -> None:
        self._pointer = int(child_generator(seed, "arbiter").integers(0, 1 << 16))

    def _rotate(self, names: list[str]) -> str:
        name = names[self._pointer % len(names)]
        self._pointer += 1
        return name

    def escalate(self, apps: list[AppView]) -> ArbiterDecision:
        below_max = [a for a in apps if not a.at_max_level]
        if below_max:
            chosen = self._rotate(sorted(a.name for a in below_max))
            target = next(a for a in below_max if a.name == chosen)
            return ArbiterDecision(
                action="set_level", app_name=target.name, level=target.max_level
            )
        reclaimable = [a for a in apps if a.cores > 1]
        if reclaimable:
            chosen = self._rotate(sorted(a.name for a in reclaimable))
            return ArbiterDecision(action="reclaim_core", app_name=chosen)
        return ArbiterDecision.none()

    def deescalate(self, apps: list[AppView]) -> ArbiterDecision:
        # Cores come back first (most-reclaimed application first, so the
        # round-robin fairness holds in reverse).
        reclaimed = [a for a in apps if a.reclaimed > 0]
        if reclaimed:
            target = max(reclaimed, key=lambda a: (a.reclaimed, a.name))
            return ArbiterDecision(action="return_core", app_name=target.name)
        approximated = [a for a in apps if a.level > 0]
        if approximated:
            target = max(approximated, key=lambda a: (a.level, a.name))
            return ArbiterDecision(
                action="set_level", app_name=target.name, level=target.level - 1
            )
        return ArbiterDecision.none()


class ImpactAwareArbiter(Arbiter):
    """Section 6.5 extension: escalate where it hurts least, help most.

    Scores each candidate by the contention relief its most-approximate
    variant offers per percent of output quality it sacrifices, and
    escalates the best scorer instead of rotating blindly.
    """

    def escalate(self, apps: list[AppView]) -> ArbiterDecision:
        below_max = [a for a in apps if not a.at_max_level]
        if below_max:
            target = max(below_max, key=self._relief_per_quality)
            return ArbiterDecision(
                action="set_level", app_name=target.name, level=target.max_level
            )
        reclaimable = [a for a in apps if a.cores > 1]
        if reclaimable:
            # Take the core from the app with the most cores left.
            target = max(reclaimable, key=lambda a: (a.cores, a.name))
            return ArbiterDecision(action="reclaim_core", app_name=target.name)
        return ArbiterDecision.none()

    def deescalate(self, apps: list[AppView]) -> ArbiterDecision:
        reclaimed = [a for a in apps if a.reclaimed > 0]
        if reclaimed:
            target = max(reclaimed, key=lambda a: (a.reclaimed, a.name))
            return ArbiterDecision(action="return_core", app_name=target.name)
        approximated = [a for a in apps if a.level > 0]
        if approximated:
            # Relax the app sacrificing the most quality right now.
            target = max(approximated, key=self._current_quality_cost)
            return ArbiterDecision(
                action="set_level", app_name=target.name, level=target.level - 1
            )
        return ArbiterDecision.none()

    @staticmethod
    def _relief_per_quality(app: AppView) -> float:
        if not app.level_traffic_rates or not app.level_inaccuracies:
            return 0.0
        top = len(app.level_traffic_rates) - 1
        relief = 1.0 - app.level_traffic_rates[top]
        quality_cost = max(app.level_inaccuracies[top], 0.1)
        return relief / quality_cost

    @staticmethod
    def _current_quality_cost(app: AppView) -> float:
        if not app.level_inaccuracies:
            return 0.0
        return app.level_inaccuracies[min(app.level, len(app.level_inaccuracies) - 1)]
