"""The Pliant runtime (the paper's contribution).

* :mod:`repro.core.monitor` — client-side latency monitor (Section 4.1)
* :mod:`repro.core.actuator` — variant switching + core reallocation
* :mod:`repro.core.controller` — the Fig. 3 single-app state machine
* :mod:`repro.core.arbiter` — Section 4.4 round-robin multi-app policy
* :mod:`repro.core.runtime` — the epoch-driven colocation engine
* :mod:`repro.core.baselines` — Precise / ablation policies
"""

from repro.core.actuator import Actuator
from repro.core.arbiter import ImpactAwareArbiter, RoundRobinArbiter
from repro.core.baselines import (
    CoreReclaimOnlyPolicy,
    PrecisePolicy,
    StaticLevelPolicy,
    StaticMostApproxPolicy,
)
from repro.core.controller import ControllerAction, PliantController
from repro.core.monitor import IntervalObservation, PerformanceMonitor
from repro.core.policy import PliantPolicy, RuntimePolicy
from repro.core.runtime import (
    AppOutcome,
    ColocationConfig,
    ColocationEngine,
    ColocationResult,
)

__all__ = [
    "Actuator",
    "AppOutcome",
    "ColocationConfig",
    "ColocationEngine",
    "ColocationResult",
    "ControllerAction",
    "CoreReclaimOnlyPolicy",
    "ImpactAwareArbiter",
    "IntervalObservation",
    "PerformanceMonitor",
    "PliantController",
    "PliantPolicy",
    "PrecisePolicy",
    "RoundRobinArbiter",
    "RuntimePolicy",
    "StaticLevelPolicy",
    "StaticMostApproxPolicy",
]
