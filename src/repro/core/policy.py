"""Runtime policies: the decision layer invoked once per interval.

:class:`PliantPolicy` is the paper's algorithm — the Fig. 3 state machine
generalized to N co-scheduled applications via an arbiter (Section 4.4).
Baseline and ablation policies live in :mod:`repro.core.baselines`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.core.actuator import Actuator
from repro.core.arbiter import Arbiter, RoundRobinArbiter
from repro.core.monitor import IntervalObservation


class RuntimePolicy(ABC):
    """Per-interval decision logic."""

    #: Whether apps run under the DynamoRIO analog (and pay its overhead).
    requires_instrumentation: bool = False

    #: Display name for results tables.
    name: str = "policy"

    @abstractmethod
    def on_interval(self, obs: IntervalObservation, actuator: Actuator) -> None:
        """React to one decision interval's observation."""


class PliantPolicy(RuntimePolicy):
    """The Pliant runtime algorithm (Fig. 3 + Section 4.4).

    On a QoS violation: escalate one unit (jump an app to its most
    approximate variant; once all apps are maxed, reclaim one core).  On
    ample slack: de-escalate one unit (return a core first, then step
    approximation down).  Otherwise hold.

    De-escalation follows the paper's "if slack *remains* high" reading
    with an adaptive backoff: when relaxing immediately re-triggers a
    violation, the runtime waits exponentially longer before probing that
    direction again (up to ``max_backoff`` intervals), and the backoff
    decays during sustained stability.  Without it, configurations whose
    only QoS-meeting state has slack above the threshold would ping-pong
    between violation and relaxation forever — the instability the paper
    reports when the slack threshold is set too low.
    """

    requires_instrumentation = True
    name = "pliant"

    def __init__(
        self,
        slack_threshold: float = 0.10,
        arbiter: Arbiter | None = None,
        seed: int = 0,
        min_backoff: int = 2,
        max_backoff: int = 32,
    ) -> None:
        if not 0.0 <= slack_threshold < 1.0:
            raise ValueError("slack_threshold must lie in [0, 1)")
        if not 1 <= min_backoff <= max_backoff:
            raise ValueError("need 1 <= min_backoff <= max_backoff")
        self.slack_threshold = slack_threshold
        self._arbiter = arbiter or RoundRobinArbiter(seed=seed)
        self._min_backoff = min_backoff
        self._max_backoff = max_backoff
        self._backoff = min_backoff
        self._block_remaining = 0
        self._since_deescalation = 1 << 30
        self._stable_intervals = 0

    def on_interval(self, obs: IntervalObservation, actuator: Actuator) -> None:
        apps = [actuator.app_view(name) for name in actuator.running_apps()]
        self._since_deescalation += 1
        if not apps:
            return
        if not obs.qos_met:
            self._stable_intervals = 0
            if self._since_deescalation <= 2:
                # The last relaxation backfired: probe less eagerly.
                self._backoff = min(
                    self._max_backoff, max(self._min_backoff, self._backoff * 4)
                )
            self._block_remaining = self._backoff
            self._apply(self._arbiter.escalate(apps), actuator)
            return
        self._stable_intervals += 1
        if self._stable_intervals >= 16 and self._backoff > self._min_backoff:
            self._backoff //= 2
            self._stable_intervals = 0
        if obs.slack > self.slack_threshold:
            if self._block_remaining > 0:
                self._block_remaining -= 1
                return
            self._apply(self._arbiter.deescalate(apps), actuator)
            self._since_deescalation = 0

    @staticmethod
    def _apply(decision, actuator: Actuator) -> None:
        if decision.action == "set_level":
            actuator.set_level(decision.app_name, decision.level)
        elif decision.action == "reclaim_core":
            actuator.reclaim_core(decision.app_name)
        elif decision.action == "return_core":
            actuator.return_core(decision.app_name)
