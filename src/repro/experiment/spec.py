"""Declarative experiment specifications.

An :class:`ExperimentSpec` describes a whole sweep as data: a ``base``
of shared scenario fields plus named, open-ended ``axes`` — **any**
:class:`~repro.sweep.grid.Scenario` field can be an axis, including the
load-shape (``loadgen_shape``/``loadgen_params``), ``platform``,
``slack_threshold`` and ``horizon`` axes, not just the handful the old
:class:`~repro.sweep.grid.SweepGrid` hard-codes.  Specs round-trip
through JSON, so the same experiment definition drives an in-process
sweep, the distributed CLI (``python -m repro.sweep submit --spec``),
and a saved artifact next to its results.

Expansion order is deterministic: the cross product iterates axes in
declaration order, first axis slowest — the same contract as
``SweepGrid``, so related scenarios stay adjacent for cache locality.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass
from pathlib import Path

from repro.sweep.grid import (
    Scenario,
    SweepGrid,
    _freeze,
    _jsonify,
    _normalize_mix,
    scenario_field_names,
)

#: Bump when the spec JSON layout changes; old files fail loudly.
SPEC_FORMAT = 1

_PAIR_FIELDS = ("policy_kwargs", "loadgen_params")


def _normalize_value(field: str, value):
    """Freeze one field value into its canonical hashable form."""
    if field == "apps":
        return _normalize_mix(value)
    if field in _PAIR_FIELDS:
        items = value.items() if isinstance(value, dict) else value
        return tuple((str(k), _freeze(v)) for k, v in items)
    return _freeze(value)


def _as_pairs(mapping_or_pairs) -> list[tuple[str, object]]:
    if mapping_or_pairs is None:
        return []
    if isinstance(mapping_or_pairs, dict):
        return list(mapping_or_pairs.items())
    return [(k, v) for k, v in mapping_or_pairs]


@dataclass(frozen=True)
class ExperimentSpec:
    """One sweep, declared as named open axes over scenario fields.

    Parameters
    ----------
    axes:
        Mapping (or pair sequence — order is preserved either way) from a
        scenario field name to the values it sweeps over.  ``apps`` axis
        values are app mixes: a bare string is a single-app mix, a list
        is a multi-app mix.
    base:
        Scenario fields shared by every point.  ``service`` and ``apps``
        must appear in ``base`` or ``axes``.
    name / description:
        Free-form labels carried through serialization.
    strategy / budget / objective / rng_seed:
        How to *explore* the axes: a registered search strategy name
        (``grid`` — the exhaustive default — ``random``, ``halving``,
        ``pareto``, see :mod:`repro.search`), a hard ceiling on unique
        evaluations, the ``[min:|max:]metric`` objective(s) ranking
        points, and the seed every stochastic proposal derives from.
        A spec with a non-grid strategy or a budget runs as a budgeted
        search through ``run_experiment`` and the CLI alike.
    """

    axes: tuple[tuple[str, tuple], ...] = ()
    base: tuple[tuple[str, object], ...] = ()
    name: str = ""
    description: str = ""
    strategy: str = "grid"
    budget: int | None = None
    objective: tuple[str, ...] = ()
    rng_seed: int = 0

    def __post_init__(self) -> None:
        known = scenario_field_names()
        base_pairs = _as_pairs(self.base)
        axis_pairs = _as_pairs(self.axes)

        unknown = [k for k, _ in base_pairs + axis_pairs if k not in known]
        if unknown:
            raise ValueError(
                f"unknown scenario field(s): {sorted(set(unknown))} "
                f"(sweepable fields: {', '.join(sorted(known))})"
            )
        axis_names = [k for k, _ in axis_pairs]
        if len(axis_names) != len(set(axis_names)):
            raise ValueError(f"duplicate axis name in {axis_names}")
        overlap = set(axis_names) & {k for k, _ in base_pairs}
        if overlap:
            raise ValueError(
                f"field(s) {sorted(overlap)} appear in both base and axes; "
                "pick one"
            )
        # Materialize axis values exactly once: a generator would be
        # exhausted by the emptiness check and silently expand to zero
        # scenarios.
        materialized = []
        for axis, values in axis_pairs:
            if isinstance(values, str) or not hasattr(values, "__iter__"):
                raise ValueError(
                    f"axis {axis!r} needs an iterable of values, "
                    f"got {values!r}"
                )
            values = tuple(values)
            if not values:
                raise ValueError(f"axis {axis!r} has no values")
            materialized.append((axis, values))
        axis_pairs = materialized
        declared = set(axis_names) | {k for k, _ in base_pairs}
        missing = {"service", "apps"} - declared
        if missing:
            raise ValueError(
                f"spec must declare {sorted(missing)} in base or axes"
            )

        object.__setattr__(
            self,
            "base",
            tuple((k, _normalize_value(k, v)) for k, v in base_pairs),
        )
        object.__setattr__(
            self,
            "axes",
            tuple(
                (k, tuple(_normalize_value(k, v) for v in values))
                for k, values in axis_pairs
            ),
        )
        self._validate_search()

    def _validate_search(self) -> None:
        """Shape-check the search fields (strategy names resolve at run time,
        and objective *metrics* stay open via ``register_metric``)."""
        if not isinstance(self.strategy, str) or not self.strategy:
            raise ValueError(
                f"strategy must be a registered strategy name, "
                f"got {self.strategy!r}"
            )
        if self.budget is not None:
            if isinstance(self.budget, bool) or not isinstance(self.budget, int):
                raise ValueError(f"budget must be an int, got {self.budget!r}")
            if self.budget < 1:
                raise ValueError(f"budget must be >= 1, got {self.budget}")
        objective = self.objective
        if isinstance(objective, str):
            objective = (objective,)
        objective = tuple(objective)
        for entry in objective:
            if not isinstance(entry, str) or not entry:
                raise ValueError(
                    f"objective entries must be '[min:|max:]metric' strings, "
                    f"got {entry!r}"
                )
            mode, sep, metric = entry.partition(":")
            if sep and (mode not in ("min", "max") or not metric.strip()):
                raise ValueError(
                    f"objective {entry!r} must look like 'metric', "
                    "'min:metric' or 'max:metric'"
                )
        object.__setattr__(self, "objective", objective)
        object.__setattr__(self, "rng_seed", int(self.rng_seed))

    @property
    def search_requested(self) -> bool:
        """True when running this spec means a budgeted search, not a grid."""
        return self.strategy != "grid" or self.budget is not None

    # -- introspection ---------------------------------------------------

    @property
    def axis_names(self) -> tuple[str, ...]:
        return tuple(k for k, _ in self.axes)

    def axis(self, name: str) -> tuple:
        """The declared values of one axis."""
        for axis, values in self.axes:
            if axis == name:
                return values
        raise KeyError(f"no axis named {name!r} (axes: {self.axis_names})")

    def __len__(self) -> int:
        total = 1
        for _, values in self.axes:
            total *= len(values)
        return total

    # -- expansion -------------------------------------------------------

    def scenarios(self) -> list[Scenario]:
        """The cross product, first declared axis varying slowest."""
        shared = dict(self.base)
        names = [k for k, _ in self.axes]
        out = []
        for combo in itertools.product(*(v for _, v in self.axes)):
            out.append(Scenario(**shared, **dict(zip(names, combo))))
        return out

    def __iter__(self):
        return iter(self.scenarios())

    # -- builders --------------------------------------------------------

    def _replace(self, **overrides) -> "ExperimentSpec":
        fields = {
            "axes": self.axes,
            "base": self.base,
            "name": self.name,
            "description": self.description,
            "strategy": self.strategy,
            "budget": self.budget,
            "objective": self.objective,
            "rng_seed": self.rng_seed,
        }
        fields.update(overrides)
        return ExperimentSpec(**fields)

    def with_base(self, **fields) -> "ExperimentSpec":
        """A copy with ``fields`` merged into (and overriding) the base."""
        merged = dict(self.base)
        merged.update(fields)
        return self._replace(base=merged)

    def with_axis(self, axis: str, values) -> "ExperimentSpec":
        """A copy with one axis appended (or replaced, keeping its slot)."""
        axes = list(self.axes)
        for index, (existing, _) in enumerate(axes):
            if existing == axis:
                axes[index] = (axis, tuple(values))
                break
        else:
            axes.append((axis, tuple(values)))
        base = dict(self.base)
        base.pop(axis, None)  # the axis now owns this field
        return self._replace(axes=axes, base=base)

    def with_search(
        self,
        strategy: str | None = None,
        budget: int | None = None,
        objective=None,
        rng_seed: int | None = None,
    ) -> "ExperimentSpec":
        """A copy with the given search fields overridden (None = keep)."""
        return self._replace(
            strategy=self.strategy if strategy is None else strategy,
            budget=self.budget if budget is None else budget,
            objective=self.objective if objective is None else objective,
            rng_seed=self.rng_seed if rng_seed is None else rng_seed,
        )

    @classmethod
    def from_grid(cls, grid: SweepGrid, name: str = "") -> "ExperimentSpec":
        """Lift a legacy :class:`SweepGrid` into an equivalent spec.

        Axis order mirrors the grid's documented expansion order, so
        ``spec.scenarios() == grid.scenarios()``.
        """
        template = grid.base or Scenario(
            service=grid.services[0], apps=grid.app_mixes[0]
        )
        base = {
            field: getattr(template, field)
            for field in scenario_field_names()
            if field
            not in (
                "service", "apps", "policy", "load_fraction",
                "decision_interval", "seed",
            )
        }
        return cls(
            axes=[
                ("service", grid.services),
                ("apps", grid.app_mixes),
                ("policy", grid.policies),
                ("load_fraction", grid.load_fractions),
                ("decision_interval", grid.decision_intervals),
                ("seed", grid.seeds),
            ],
            base=base,
            name=name,
        )

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> dict:
        payload = {
            "format": SPEC_FORMAT,
            "name": self.name,
            "description": self.description,
            "base": {k: _jsonify(v) for k, v in self.base},
            "axes": [[k, [_jsonify(v) for v in values]] for k, values in self.axes],
        }
        # Search fields appear only when set, so pre-search spec files and
        # their goldens are byte-stable.
        if self.strategy != "grid":
            payload["strategy"] = self.strategy
        if self.budget is not None:
            payload["budget"] = self.budget
        if self.objective:
            payload["objective"] = list(self.objective)
        if self.rng_seed:
            payload["rng_seed"] = self.rng_seed
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "ExperimentSpec":
        if not isinstance(payload, dict):
            raise ValueError(f"spec payload must be an object, got {type(payload).__name__}")
        allowed = {
            "format", "name", "description", "base", "axes",
            "strategy", "budget", "objective", "rng_seed",
        }
        unknown = set(payload) - allowed
        if unknown:
            raise ValueError(
                f"unknown spec field(s): {sorted(unknown)} "
                f"(known: {', '.join(sorted(allowed))})"
            )
        version = payload.get("format", SPEC_FORMAT)
        if version != SPEC_FORMAT:
            raise ValueError(
                f"unsupported spec format {version!r} (this build reads "
                f"format {SPEC_FORMAT})"
            )
        return cls(
            axes=[(k, tuple(v)) for k, v in payload.get("axes", [])],
            base=payload.get("base", {}),
            name=payload.get("name", ""),
            description=payload.get("description", ""),
            strategy=payload.get("strategy", "grid"),
            budget=payload.get("budget"),
            objective=tuple(payload.get("objective", ())),
            rng_seed=payload.get("rng_seed", 0),
        )

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        return cls.from_dict(json.loads(text))

    def save(self, path: Path | str) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def load(cls, path: Path | str) -> "ExperimentSpec":
        return cls.from_json(Path(path).read_text())
