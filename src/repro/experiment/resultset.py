"""Queryable, serializable sweep results.

A :class:`ResultSet` wraps the grid-ordered
:class:`~repro.sweep.engine.SweepOutcome` list a sweep produces and
gives every figure driver the same select-and-reshape vocabulary —
``filter`` / ``lookup`` / ``group_by`` / ``aggregate`` — plus tabular
export (``to_records`` / ``to_json`` / ``to_csv``) and full-fidelity
persistence (``save`` / ``load``, bit-identical round trip).

Metrics are named projections of a
:class:`~repro.core.runtime.ColocationResult`; :data:`METRICS` holds the
standard set and :func:`register_metric` opens it to callers.
"""

from __future__ import annotations

import csv
import io
import json
import pickle
from pathlib import Path
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.cas import atomic_write_bytes
from repro.core.runtime import ColocationResult
from repro.sweep.engine import SweepOutcome, results_identical
from repro.sweep.grid import Scenario, _jsonify, scenario_field_names

#: Bump when the pickled save() layout changes; old files fail loudly.
RESULTSET_FORMAT = 1


def _mean_inaccuracy(result: ColocationResult) -> float:
    return float(np.mean([a.inaccuracy_pct for a in result.apps]))


def _max_finish_time(result: ColocationResult) -> float | None:
    finishes = [a.finish_time for a in result.apps if a.finish_time is not None]
    return max(finishes) if finishes else None


#: Named projections from a result to one scalar (the table columns).
METRICS: dict[str, Callable[[ColocationResult], object]] = {
    "qos": lambda r: r.qos,
    "aggregate_p99": lambda r: r.aggregate_p99,
    "mean_epoch_p99": lambda r: r.mean_epoch_p99,
    "qos_ratio": lambda r: r.qos_ratio,
    "qos_met": lambda r: r.qos_met,
    "qos_met_fraction": lambda r: r.qos_met_fraction(),
    "offered_qps": lambda r: r.offered_qps,
    "max_cores_reclaimed": lambda r: r.max_cores_reclaimed(),
    "sustained_cores_reclaimed": lambda r: r.sustained_cores_reclaimed(),
    "mean_inaccuracy_pct": _mean_inaccuracy,
    "max_inaccuracy_pct": lambda r: max(a.inaccuracy_pct for a in r.apps),
    "max_finish_time": _max_finish_time,
}


def register_metric(
    name: str,
    projection: Callable[[ColocationResult], object],
    overwrite: bool = False,
) -> Callable[[ColocationResult], object]:
    """Add a named metric usable in ``aggregate``/``to_records`` calls."""
    if not callable(projection):
        raise TypeError(f"metric {name!r} must be callable")
    if not overwrite and name in METRICS:
        raise ValueError(
            f"metric {name!r} is already registered; pass overwrite=True"
        )
    METRICS[name] = projection
    return projection


def resolve_metric(metric) -> Callable[[ColocationResult], object]:
    """A metric name or callable, resolved to the projection function."""
    if callable(metric):
        return metric
    try:
        return METRICS[metric]
    except KeyError:
        known = ", ".join(sorted(METRICS))
        raise ValueError(f"unknown metric {metric!r} (known: {known})") from None


_REDUCERS: dict[str, Callable] = {
    "mean": lambda v: float(np.mean(v)),
    "median": lambda v: float(np.median(v)),
    "min": lambda v: float(np.min(v)),
    "max": lambda v: float(np.max(v)),
    "sum": lambda v: float(np.sum(v)),
    "count": len,
}


def _axis_value(scenario: Scenario, name: str):
    # Field-name check, not getattr: a bare getattr would happily return
    # a bound method for names like "label", making a typo'd filter
    # silently match nothing instead of raising.
    if name not in scenario_field_names():
        raise ValueError(
            f"unknown scenario axis {name!r} "
            f"(axes: {', '.join(sorted(scenario_field_names()))})"
        )
    return getattr(scenario, name)


def _normalize_match(name: str, value):
    if name == "apps":
        return (value,) if isinstance(value, str) else tuple(value)
    return value


class ResultSet:
    """Grid-ordered sweep outcomes with a query/export surface."""

    def __init__(
        self,
        outcomes: Sequence[SweepOutcome],
        spec=None,
    ) -> None:
        self._outcomes = list(outcomes)
        self.spec = spec

    # -- sequence protocol ----------------------------------------------

    def __len__(self) -> int:
        return len(self._outcomes)

    def __iter__(self):
        return iter(self._outcomes)

    def __getitem__(self, index: int) -> SweepOutcome:
        return self._outcomes[index]

    @property
    def outcomes(self) -> list[SweepOutcome]:
        return list(self._outcomes)

    @property
    def scenarios(self) -> list[Scenario]:
        return [o.scenario for o in self._outcomes]

    @property
    def results(self) -> list[ColocationResult]:
        return [o.result for o in self._outcomes]

    @property
    def cache_hits(self) -> int:
        return sum(1 for o in self._outcomes if o.from_cache)

    @property
    def compute_seconds(self) -> float:
        return sum(o.duration for o in self._outcomes)

    # -- querying --------------------------------------------------------

    def filter(self, predicate=None, **axes) -> "ResultSet":
        """Outcomes whose scenario matches every ``axis=value`` (and the
        optional ``predicate(outcome)``), keeping grid order."""
        matches = {k: _normalize_match(k, v) for k, v in axes.items()}
        kept = []
        for outcome in self._outcomes:
            if any(
                _axis_value(outcome.scenario, k) != v for k, v in matches.items()
            ):
                continue
            if predicate is not None and not predicate(outcome):
                continue
            kept.append(outcome)
        return ResultSet(kept, spec=self.spec)

    def lookup(self, **axes) -> ColocationResult:
        """The single result matching ``axes`` exactly; raises otherwise."""
        found = self.filter(**axes)
        if len(found) != 1:
            raise LookupError(
                f"expected exactly one outcome for {axes}, "
                f"found {len(found)}"
            )
        return found[0].result

    def group_by(self, *names: str) -> dict:
        """Split into sub-sets keyed by axis value(s), grid order kept.

        One name keys by its bare value; several key by tuples.
        """
        if not names:
            raise ValueError("group_by needs at least one axis name")
        groups: dict = {}
        for outcome in self._outcomes:
            values = tuple(_axis_value(outcome.scenario, n) for n in names)
            key = values[0] if len(names) == 1 else values
            groups.setdefault(key, []).append(outcome)
        return {
            key: ResultSet(outcomes, spec=self.spec)
            for key, outcomes in groups.items()
        }

    def values(self, metric) -> list:
        """The metric column, in grid order."""
        projection = resolve_metric(metric)
        return [projection(o.result) for o in self._outcomes]

    def aggregate(self, metric, by=None, reduce: str = "mean"):
        """Reduce a metric over the whole set, or per group of ``by``.

        ``by`` is an axis name or tuple of names; ``reduce`` one of
        mean / median / min / max / sum / count.  Returns a scalar, or a
        dict keyed like :meth:`group_by`.
        """
        try:
            reducer = _REDUCERS[reduce]
        except KeyError:
            raise ValueError(
                f"unknown reducer {reduce!r} "
                f"(known: {', '.join(sorted(_REDUCERS))})"
            ) from None
        if by is None:
            return reducer(self.values(metric))
        names = (by,) if isinstance(by, str) else tuple(by)
        return {
            key: reducer(subset.values(metric))
            for key, subset in self.group_by(*names).items()
        }

    # -- tabular export --------------------------------------------------

    def to_records(self, metrics: Iterable | None = None) -> list[dict]:
        """Flat dicts: every scenario axis, provenance, and the metrics.

        Compound fields flatten CSV-friendly: ``apps`` joins with ``+``,
        pair fields (``policy_kwargs``, ``loadgen_params``) become JSON
        strings when non-empty.
        """
        chosen = list(METRICS) if metrics is None else list(metrics)
        projections = [
            (getattr(m, "__name__", "metric"), m)
            if callable(m)
            else (str(m), resolve_metric(m))
            for m in chosen
        ]
        records = []
        for outcome in self._outcomes:
            scenario = outcome.scenario
            record: dict = {}
            for field in sorted(scenario_field_names()):
                value = getattr(scenario, field)
                if field == "apps":
                    value = "+".join(value)
                elif field in ("policy_kwargs", "loadgen_params"):
                    value = json.dumps(_jsonify(value)) if value else ""
                record[field] = value
            record["from_cache"] = outcome.from_cache
            record["duration"] = outcome.duration
            for name, projection in projections:
                record[name] = projection(outcome.result)
            records.append(record)
        return records

    def to_json(
        self, path: Path | str | None = None, metrics: Iterable | None = None
    ) -> str:
        """Records as a JSON array; also written to ``path`` when given."""
        text = json.dumps(self.to_records(metrics), indent=2, default=str)
        if path is not None:
            Path(path).write_text(text + "\n")
        return text

    def to_csv(
        self, path: Path | str | None = None, metrics: Iterable | None = None
    ) -> str:
        """Records as CSV text; also written to ``path`` when given."""
        records = self.to_records(metrics)
        buffer = io.StringIO()
        if records:
            writer = csv.DictWriter(
                buffer, fieldnames=list(records[0]), lineterminator="\n"
            )
            writer.writeheader()
            writer.writerows(records)
        if path is not None:
            Path(path).write_text(buffer.getvalue())
        return buffer.getvalue()

    # -- persistence -----------------------------------------------------

    def save(self, path: Path | str) -> Path:
        """Pickle the full set (results included) for lossless reload."""
        from repro.experiment.spec import ExperimentSpec

        envelope = {
            "format": RESULTSET_FORMAT,
            "spec": (
                self.spec.to_dict()
                if isinstance(self.spec, ExperimentSpec)
                else None
            ),
            "outcomes": self._outcomes,
        }
        path = Path(path)
        atomic_write_bytes(
            path, pickle.dumps(envelope, protocol=pickle.HIGHEST_PROTOCOL)
        )
        return path

    @classmethod
    def load(cls, path: Path | str) -> "ResultSet":
        from repro.experiment.spec import ExperimentSpec

        envelope = pickle.loads(Path(path).read_bytes())
        if envelope.get("format") != RESULTSET_FORMAT:
            raise ValueError(
                f"unsupported result-set format {envelope.get('format')!r} "
                f"(this build reads format {RESULTSET_FORMAT})"
            )
        spec = envelope.get("spec")
        return cls(
            envelope["outcomes"],
            spec=ExperimentSpec.from_dict(spec) if spec else None,
        )

    # -- comparison ------------------------------------------------------

    def identical(self, other: "ResultSet") -> bool:
        """Bit-level equality: same scenarios, bit-identical results.

        The cross-backend contract: a spec run on the serial, process,
        or distributed backend must produce identical() result sets.
        """
        if len(self) != len(other):
            return False
        for a, b in zip(self._outcomes, other._outcomes):
            if a.scenario != b.scenario:
                return False
            if not results_identical(a.result, b.result):
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f", spec={self.spec.name!r}" if getattr(self.spec, "name", "") else ""
        return (
            f"ResultSet(n={len(self)}, cache_hits={self.cache_hits}{label})"
        )
