"""Declarative experiment API.

The evaluation is a matrix of colocation experiments; this package makes
the whole matrix data:

* :mod:`repro.experiment.spec` — :class:`ExperimentSpec`: a sweep as
  named open axes over **any** :class:`~repro.sweep.grid.Scenario`
  field (load shape, platform, slack threshold, horizon, ... — not just
  the six the legacy :class:`~repro.sweep.grid.SweepGrid` hard-codes),
  with a JSON round trip for the distributed CLI,
* :mod:`repro.experiment.run` — :func:`run_experiment`, the single
  entrypoint that resolves engine/backend/cache once and runs any spec,
* :mod:`repro.experiment.resultset` — :class:`ResultSet`: grid-order
  outcomes with ``filter``/``lookup``/``group_by``/``aggregate`` and
  tabular/pickled export, so figure drivers stop re-implementing
  select-and-reshape loops.

Quick tour::

    from repro.experiment import ExperimentSpec, run_experiment

    spec = ExperimentSpec(
        name="slack-sensitivity-under-diurnal-load",
        base={
            "service": "memcached",
            "apps": "canneal",
            "seed": 2,
            "loadgen_shape": "diurnal",
            "loadgen_params": {"low": 0.5, "high": 0.95, "period": 120.0},
        },
        axes={
            "slack_threshold": [0.05, 0.10, 0.20],
            "platform": ["default", "half-llc"],
        },
    )
    results = run_experiment(spec)           # serial / process / distributed
    results.aggregate("qos_ratio", by="slack_threshold")
"""

from repro.experiment.resultset import (
    METRICS,
    ResultSet,
    register_metric,
    resolve_metric,
)
from repro.experiment.run import resolve_engine, run_experiment, run_point
from repro.experiment.spec import SPEC_FORMAT, ExperimentSpec

__all__ = [
    "METRICS",
    "SPEC_FORMAT",
    "ExperimentSpec",
    "ResultSet",
    "register_metric",
    "resolve_engine",
    "resolve_metric",
    "run_experiment",
    "run_point",
]
