"""The one entrypoint every figure, example, and CLI sweep goes through.

:func:`run_experiment` resolves the execution substrate exactly once —
explicit engine, or (backend, cache, workers) assembled into a fresh
:class:`~repro.sweep.engine.SweepEngine`, falling back to the
``REPRO_SWEEP_*`` environment — expands the spec, and returns a
:class:`~repro.experiment.resultset.ResultSet`.  Because scenario
results are a pure function of the scenario config, the choice of
backend can never change the returned bits, only the wall-clock.
"""

from __future__ import annotations

from typing import Iterable, Union

from repro.experiment.resultset import ResultSet
from repro.experiment.spec import ExperimentSpec
from repro.sweep.backends import ExecutionBackend, backend_from_env
from repro.sweep.cache import SweepCache
from repro.sweep.engine import SweepEngine
from repro.sweep.grid import Scenario, SweepGrid
from repro.telemetry import get_recorder

Runnable = Union[ExperimentSpec, SweepGrid, Iterable[Scenario]]


def resolve_engine(
    engine: SweepEngine | None = None,
    backend: ExecutionBackend | None = None,
    cache: SweepCache | None = None,
    workers: int | None = None,
) -> SweepEngine:
    """One engine from whichever substrate knobs the caller provided.

    An explicit ``engine`` is exclusive with the other knobs (they would
    silently be ignored — error instead).  With no knobs at all the
    ``REPRO_SWEEP_BACKEND`` environment decides, so any driver can be
    re-pointed at another substrate without code changes.
    """
    if engine is not None:
        if backend is not None or cache is not None or workers is not None:
            raise ValueError(
                "pass either engine= or backend=/cache=/workers=, not both "
                "(an explicit engine already fixes the substrate)"
            )
        return engine
    return SweepEngine(
        workers=workers,
        cache=cache,
        backend=backend if backend is not None else backend_from_env(),
    )


def run_experiment(
    spec: Runnable,
    *,
    engine: SweepEngine | None = None,
    backend: ExecutionBackend | None = None,
    cache: SweepCache | None = None,
    workers: int | None = None,
    force: bool = False,
    strategy=None,
    budget: int | None = None,
    objective=None,
    rng_seed: int | None = None,
) -> ResultSet:
    """Run an experiment spec (or grid, or raw scenarios) to a ResultSet.

    ``force`` bypasses cache *reads* (results are still written back) —
    the guaranteed-cold pass benchmarks measure.

    ``strategy`` / ``budget`` / ``objective`` / ``rng_seed`` switch from
    exhaustive expansion to a budgeted search over the spec's axes (see
    :mod:`repro.search`): points are proposed in rounds instead of
    materialized, and the returned
    :class:`~repro.search.result.SearchResult` adds trajectory /
    best-point / frontier accessors on top of the ResultSet surface.
    Passing any of them — or a spec whose own search fields say so —
    takes this path; ``strategy="grid"`` is the exhaustive reference,
    bit-identical to the plain path.
    """
    wants_search = any(
        value is not None for value in (strategy, budget, objective, rng_seed)
    ) or (isinstance(spec, ExperimentSpec) and spec.search_requested)
    if wants_search:
        # Deferred import: repro.search drives its rounds back through
        # this module's engine resolution.
        from repro.search.driver import run_search

        return run_search(
            spec,
            strategy=strategy,
            budget=budget,
            objective=objective,
            rng_seed=rng_seed,
            engine=engine,
            backend=backend,
            cache=cache,
            workers=workers,
            force=force,
        )
    resolved = resolve_engine(engine, backend, cache, workers)
    if isinstance(spec, ExperimentSpec):
        scenarios, attached = spec.scenarios(), spec
    elif isinstance(spec, SweepGrid):
        scenarios, attached = spec.scenarios(), ExperimentSpec.from_grid(spec)
    else:
        scenarios, attached = list(spec), None
    with get_recorder().span(
        "experiment.run", cat="experiment", scenarios=len(scenarios)
    ):
        outcomes = resolved.run(scenarios, force=force)
    return ResultSet(outcomes, spec=attached)


def run_point(force: bool = False, engine: SweepEngine | None = None, **fields):
    """One scenario through :func:`run_experiment`; returns its result.

    Keyword fields are :class:`Scenario` fields — the single-point
    convenience figure drivers use for probes outside their main grid.
    """
    outcomes = run_experiment([Scenario(**fields)], engine=engine, force=force)
    return outcomes[0].result
