"""The analyzer: parse files, run rules, honor pragmas, stay warm.

Per-file pass: one parse per file; every registered per-file rule whose
zone set contains the file's zone runs over the shared tree, and the
same tree is summarized for the project pass.  Project pass: the module
summaries are stitched into a symbol table and call graph, and every
registered :class:`~repro.analysis.registry.ProjectRule` (transitive
taint, lock order, schema drift) runs once over the whole program.

Findings can be suppressed inline with a pragma anywhere in the
*enclosing statement* (or on a comment line directly above it)::

    now = time.time()  # repro-lint: ignore[no-wallclock] -- why it's ok

Pragma scope is the statement's span, so a pragma above a decorator
waives the decorated ``def``, and one on the first line of a wrapped
call waives the whole call.  The pragma names the rule id (or ``*``);
everything after ``--`` is the justification, kept next to the code it
excuses.  Grandfathered findings that should *eventually* be fixed
belong in the baseline file instead (:mod:`repro.analysis.baseline`),
which expires entries as they are fixed.

With a cache (:mod:`repro.analysis.incremental`), unchanged files are
never re-parsed, and a run where *nothing* changed returns the previous
findings without even building the call graph.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from repro.analysis.callgraph import CallGraph, ProjectContext
from repro.analysis.findings import Finding, fingerprinted
from repro.analysis.incremental import AnalysisCache, reverse_cone
from repro.analysis.registry import FileContext, iter_project_rules, iter_rules
from repro.analysis.symbols import ModuleSummary, SymbolTable, summarize_module
from repro.analysis.zones import Zone, zone_for

__all__ = [
    "AnalysisReport",
    "analyze_paths",
    "analyze_source",
    "build_waivers",
    "iter_python_files",
]

_PRAGMA = re.compile(r"#\s*repro-lint:\s*ignore\[([^\]]*)\]")

#: Rule id reserved for files the parser rejects (never registered — a
#: syntactically broken file can't be rule-checked at all).
PARSE_ERROR_RULE = "parse-error"


@dataclass
class AnalysisReport:
    """Everything one analyzer pass produced."""

    findings: list[Finding] = field(default_factory=list)
    files_scanned: int = 0
    suppressed: int = 0  # pragma-silenced findings
    cache_hits: int = 0
    cache_misses: int = 0

    def to_payload(self) -> dict:
        return {
            "findings": [finding.to_payload() for finding in self.findings],
            "files_scanned": self.files_scanned,
            "suppressed": self.suppressed,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
        }


def iter_python_files(paths: Iterable[Path | str]) -> list[Path]:
    """Every ``*.py`` under ``paths`` (files pass through), sorted."""
    out: set[Path] = set()
    for path in paths:
        path = Path(path)
        if path.is_dir():
            out.update(
                p for p in path.rglob("*.py") if "__pycache__" not in p.parts
            )
        elif path.suffix == ".py":
            out.add(path)
    return sorted(out)


def _pragma_ids(text: str) -> frozenset[str]:
    match = _PRAGMA.search(text)
    if not match:
        return frozenset()
    return frozenset(
        part.strip() for part in match.group(1).split(",") if part.strip()
    )


def _stmt_span(stmt: ast.stmt) -> tuple[int, int]:
    """The lines a pragma anywhere within waives, for one statement.

    Defs and classes span their decorators through the header (a pragma
    above a decorator covers the whole signature); other compound
    statements cover their (possibly multi-line) header; simple
    statements cover their full source extent, so a pragma on the first
    line of a wrapped call waives the violation reported three lines
    down.
    """
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        start = min(
            [deco.lineno for deco in stmt.decorator_list] + [stmt.lineno]
        )
        end = max(stmt.lineno, stmt.body[0].lineno - 1) if stmt.body else stmt.lineno
        return start, end
    if isinstance(
        stmt,
        (ast.If, ast.For, ast.AsyncFor, ast.While, ast.With, ast.AsyncWith, ast.Try),
    ):
        end = max(stmt.lineno, stmt.body[0].lineno - 1) if stmt.body else stmt.lineno
        return stmt.lineno, end
    return stmt.lineno, stmt.end_lineno or stmt.lineno


def build_waivers(
    tree: ast.Module, lines: Sequence[str]
) -> dict[int, frozenset[str]]:
    """Map each source line to the rule ids pragmas waive on it.

    A pragma binds to the statement span containing it (plus the span
    directly below when the pragma sits on its own comment line), and
    the waiver applies to every line of that span — so findings reported
    anywhere inside a multi-line statement or decorated def see it.
    """
    pragma_lines: dict[int, frozenset[str]] = {}
    for lineno, text in enumerate(lines, start=1):
        ids = _pragma_ids(text)
        if ids:
            pragma_lines[lineno] = ids
    if not pragma_lines:
        return {}

    waivers: dict[int, set[str]] = {
        lineno: set(ids) for lineno, ids in pragma_lines.items()
    }

    def comment_above(lineno: int) -> frozenset[str]:
        index = lineno - 2
        if 0 <= index < len(lines) and lines[index].lstrip().startswith("#"):
            return pragma_lines.get(lineno - 1, frozenset())
        return frozenset()

    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        start, end = _stmt_span(node)
        ids: set[str] = set()
        for lineno in range(start, end + 1):
            ids |= pragma_lines.get(lineno, frozenset())
        ids |= comment_above(start)
        if not ids:
            continue
        for lineno in range(start, end + 1):
            waivers.setdefault(lineno, set()).update(ids)
    # A pragma on a bare comment line also covers the line below it even
    # when that line starts no statement we walked (e.g. a continuation).
    for lineno, ids in pragma_lines.items():
        waivers.setdefault(lineno + 1, set()).update(ids)
    return {lineno: frozenset(ids) for lineno, ids in waivers.items()}


def _waived(rule: str, line: int, waivers: Mapping[int, frozenset[str]]) -> bool:
    ids = waivers.get(line)
    return bool(ids) and (rule in ids or "*" in ids)


def _analyze_tree(
    ctx: FileContext, waivers: Mapping[int, frozenset[str]]
) -> tuple[list[Finding], int]:
    kept: list[Finding] = []
    suppressed = 0
    for rule in iter_rules():
        if ctx.zone not in rule.zones:
            continue
        for finding in rule.check(ctx):
            if _waived(finding.rule, finding.line, waivers):
                suppressed += 1
            else:
                kept.append(finding)
    return kept, suppressed


def _parse_error_finding(
    exc: SyntaxError, relpath: str, lines: Sequence[str]
) -> Finding:
    line = exc.lineno or 1
    return Finding(
        rule=PARSE_ERROR_RULE,
        path=relpath,
        line=line,
        col=exc.offset or 0,
        message=f"file does not parse: {exc.msg}",
        code=lines[line - 1].strip() if line <= len(lines) else "",
    )


def analyze_source(
    source: str, relpath: str, zone: Zone | None = None
) -> list[Finding]:
    """Analyze one source string (fixture tests and editor integrations).

    Runs the per-file rules only — cross-file rules need a project to
    cross, so they live in :func:`analyze_paths`.  ``zone`` defaults to
    whatever :func:`zone_for` derives from ``relpath``.  Findings come
    back fingerprinted and sorted.
    """
    zone = zone if zone is not None else zone_for(relpath)
    lines = tuple(source.splitlines())
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return fingerprinted([_parse_error_finding(exc, relpath, lines)])
    ctx = FileContext(relpath=relpath, zone=zone, tree=tree, lines=lines)
    kept, _ = _analyze_tree(ctx, build_waivers(tree, lines))
    return fingerprinted(kept)


def _run_project_rules(
    summaries: list[ModuleSummary],
    waivers_by_path: Mapping[str, Mapping[int, frozenset[str]]],
    affected: frozenset[str] | None,
) -> tuple[list[Finding], int]:
    table = SymbolTable(summaries)
    graph = CallGraph.build(table)
    ctx = ProjectContext(table=table, graph=graph, affected=affected)
    kept: list[Finding] = []
    suppressed = 0
    for rule in iter_project_rules():
        for finding in rule.check(ctx):
            file_waivers = waivers_by_path.get(finding.path, {})
            if _waived(finding.rule, finding.line, file_waivers):
                suppressed += 1
            else:
                kept.append(finding)
    return kept, suppressed


def analyze_paths(
    paths: Iterable[Path | str],
    root: Path | str | None = None,
    zone: Zone | None = None,
    cache: AnalysisCache | None = None,
) -> AnalysisReport:
    """Analyze every Python file under ``paths``, then the whole program.

    ``root`` anchors the repo-relative paths used in reports and baseline
    fingerprints (default: the current directory — ``make lint`` runs
    from the repo root).  ``zone`` forces a single zone for every file
    (fixture checking); by default each file's zone comes from the zone
    map.  ``cache`` enables incremental analysis: unchanged files reuse
    their cached findings and module summaries, and a fully-unchanged
    run short-circuits to the previous report.
    """
    root = Path(root) if root is not None else Path.cwd()
    zone_tag = zone.value if zone is not None else ""
    report = AnalysisReport()

    records: list[tuple[Path, str, Zone]] = []
    for path in iter_python_files(paths):
        try:
            relpath = path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            relpath = path.as_posix()
        file_zone = zone if zone is not None else zone_for(relpath)
        records.append((path, relpath, file_zone))

    data_by_path: dict[str, bytes] = {}
    keys: dict[str, str] = {}
    if cache is not None:
        for path, relpath, file_zone in records:
            data = path.read_bytes()
            data_by_path[relpath] = data
            keys[relpath] = cache.file_key(relpath, file_zone.value, data)
        state = cache.load_state(root, zone_tag)
        if state is not None and state.get("files") == keys:
            # Nothing changed since the last clean run: the previous
            # findings are, byte for byte, this run's findings.
            cache.hits += len(keys)
            report.findings = [
                Finding.from_payload(p) for p in state["findings"]
            ]
            report.files_scanned = state["files_scanned"]
            report.suppressed = state["suppressed"]
            report.cache_hits = cache.hits
            report.cache_misses = cache.misses
            return report

    collected: list[Finding] = []
    summaries: list[ModuleSummary] = []
    waivers_by_path: dict[str, Mapping[int, frozenset[str]]] = {}
    changed: set[str] = set()
    for path, relpath, file_zone in records:
        report.files_scanned += 1
        entry = (
            cache.load_entry(keys[relpath]) if cache is not None else None
        )
        if entry is not None:
            collected.extend(
                Finding.from_payload(p) for p in entry["findings"]
            )
            report.suppressed += entry["suppressed"]
            if entry["summary"] is not None:
                summaries.append(ModuleSummary.from_payload(entry["summary"]))
            waivers_by_path[relpath] = {
                int(lineno): frozenset(ids)
                for lineno, ids in entry["waivers"].items()
            }
            continue
        changed.add(relpath)
        if relpath in data_by_path:
            source = data_by_path[relpath].decode("utf-8")
        else:
            source = path.read_text(encoding="utf-8")
        lines = tuple(source.splitlines())
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            finding = _parse_error_finding(exc, relpath, lines)
            collected.append(finding)
            if cache is not None:
                cache.store_entry(
                    keys[relpath],
                    {
                        "findings": [finding.to_payload()],
                        "suppressed": 0,
                        "summary": None,
                        "waivers": {},
                    },
                )
            continue
        waivers = build_waivers(tree, lines)
        waivers_by_path[relpath] = waivers
        ctx = FileContext(
            relpath=relpath, zone=file_zone, tree=tree, lines=lines
        )
        kept, suppressed = _analyze_tree(ctx, waivers)
        summary = summarize_module(
            tree, relpath, lines, zone=file_zone, waivers=waivers
        )
        collected.extend(kept)
        summaries.append(summary)
        report.suppressed += suppressed
        if cache is not None:
            cache.store_entry(
                keys[relpath],
                {
                    "findings": [f.to_payload() for f in kept],
                    "suppressed": suppressed,
                    "summary": summary.to_payload(),
                    "waivers": {
                        str(lineno): sorted(ids)
                        for lineno, ids in waivers.items()
                    },
                },
            )

    if summaries:
        affected = (
            reverse_cone(summaries, changed) if cache is not None else None
        )
        project_findings, project_suppressed = _run_project_rules(
            summaries, waivers_by_path, affected
        )
        collected.extend(project_findings)
        report.suppressed += project_suppressed

    report.findings = fingerprinted(collected)
    if cache is not None:
        report.cache_hits = cache.hits
        report.cache_misses = cache.misses
        cache.store_state(
            root,
            zone_tag,
            {
                "files": keys,
                "findings": [f.to_payload() for f in report.findings],
                "files_scanned": report.files_scanned,
                "suppressed": report.suppressed,
            },
        )
    return report
