"""The analyzer: parse files, run zone-matched rules, honor pragmas.

One pass parses each file once; every registered rule whose zone set
contains the file's zone runs over the shared tree.  Findings can be
suppressed inline with a pragma on the offending line (or the comment
line directly above it)::

    now = time.time()  # repro-lint: ignore[no-wallclock] -- why it's ok

The pragma names the rule id (or ``*``); everything after ``--`` is the
justification, kept next to the code it excuses.  Grandfathered findings
that should *eventually* be fixed belong in the baseline file instead
(:mod:`repro.analysis.baseline`), which expires entries as they are
fixed.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.findings import Finding, fingerprinted
from repro.analysis.registry import FileContext, iter_rules
from repro.analysis.zones import Zone, zone_for

__all__ = [
    "AnalysisReport",
    "analyze_paths",
    "analyze_source",
    "iter_python_files",
]

_PRAGMA = re.compile(r"#\s*repro-lint:\s*ignore\[([^\]]*)\]")

#: Rule id reserved for files the parser rejects (never registered — a
#: syntactically broken file can't be rule-checked at all).
PARSE_ERROR_RULE = "parse-error"


@dataclass
class AnalysisReport:
    """Everything one analyzer pass produced."""

    findings: list[Finding] = field(default_factory=list)
    files_scanned: int = 0
    suppressed: int = 0  # pragma-silenced findings

    def to_payload(self) -> dict:
        return {
            "findings": [finding.to_payload() for finding in self.findings],
            "files_scanned": self.files_scanned,
            "suppressed": self.suppressed,
        }


def iter_python_files(paths: Iterable[Path | str]) -> list[Path]:
    """Every ``*.py`` under ``paths`` (files pass through), sorted."""
    out: set[Path] = set()
    for path in paths:
        path = Path(path)
        if path.is_dir():
            out.update(
                p for p in path.rglob("*.py") if "__pycache__" not in p.parts
            )
        elif path.suffix == ".py":
            out.add(path)
    return sorted(out)


def _pragma_ids(text: str) -> set[str]:
    match = _PRAGMA.search(text)
    if not match:
        return set()
    return {part.strip() for part in match.group(1).split(",") if part.strip()}


def _suppressed(finding: Finding, lines: Sequence[str]) -> bool:
    """True if the finding's line (or the comment line above) waives it."""
    candidates = []
    if 1 <= finding.line <= len(lines):
        candidates.append(lines[finding.line - 1])
    above = finding.line - 2
    if 0 <= above < len(lines) and lines[above].lstrip().startswith("#"):
        candidates.append(lines[above])
    for text in candidates:
        ids = _pragma_ids(text)
        if finding.rule in ids or "*" in ids:
            return True
    return False


def _analyze_tree(ctx: FileContext) -> tuple[list[Finding], int]:
    kept: list[Finding] = []
    suppressed = 0
    for rule in iter_rules():
        if ctx.zone not in rule.zones:
            continue
        for finding in rule.check(ctx):
            if _suppressed(finding, ctx.lines):
                suppressed += 1
            else:
                kept.append(finding)
    return kept, suppressed


def analyze_source(
    source: str, relpath: str, zone: Zone | None = None
) -> list[Finding]:
    """Analyze one source string (fixture tests and editor integrations).

    ``zone`` defaults to whatever :func:`zone_for` derives from
    ``relpath``.  Findings come back fingerprinted and sorted.
    """
    zone = zone if zone is not None else zone_for(relpath)
    lines = tuple(source.splitlines())
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        line = exc.lineno or 1
        return fingerprinted(
            [
                Finding(
                    rule=PARSE_ERROR_RULE,
                    path=relpath,
                    line=line,
                    col=exc.offset or 0,
                    message=f"file does not parse: {exc.msg}",
                    code=lines[line - 1].strip() if line <= len(lines) else "",
                )
            ]
        )
    ctx = FileContext(relpath=relpath, zone=zone, tree=tree, lines=lines)
    kept, _ = _analyze_tree(ctx)
    return fingerprinted(kept)


def analyze_paths(
    paths: Iterable[Path | str],
    root: Path | str | None = None,
    zone: Zone | None = None,
) -> AnalysisReport:
    """Analyze every Python file under ``paths``.

    ``root`` anchors the repo-relative paths used in reports and baseline
    fingerprints (default: the current directory — ``make lint`` runs
    from the repo root).  ``zone`` forces a single zone for every file
    (fixture checking); by default each file's zone comes from the zone
    map.
    """
    root = Path(root) if root is not None else Path.cwd()
    report = AnalysisReport()
    collected: list[Finding] = []
    for path in iter_python_files(paths):
        try:
            relpath = path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            relpath = path.as_posix()
        file_zone = zone if zone is not None else zone_for(relpath)
        source = path.read_text(encoding="utf-8")
        lines = tuple(source.splitlines())
        report.files_scanned += 1
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            line = exc.lineno or 1
            collected.append(
                Finding(
                    rule=PARSE_ERROR_RULE,
                    path=relpath,
                    line=line,
                    col=exc.offset or 0,
                    message=f"file does not parse: {exc.msg}",
                    code=lines[line - 1].strip() if line <= len(lines) else "",
                )
            )
            continue
        ctx = FileContext(
            relpath=relpath, zone=file_zone, tree=tree, lines=lines
        )
        kept, suppressed = _analyze_tree(ctx)
        collected.extend(kept)
        report.suppressed += suppressed
    report.findings = fingerprinted(collected)
    return report
