"""Shared AST helpers: dotted names and import-alias resolution.

Rules never match on raw identifier spellings alone — ``import time as
t; t.time()`` must be caught and a local variable that happens to be
called ``time`` must not.  :class:`ImportAliases` records what every
top-level name in a module actually refers to, and :func:`canonical`
resolves an attribute chain through that map to its importable dotted
path (``np.random.default_rng`` → ``numpy.random.default_rng``).
"""

from __future__ import annotations

import ast

__all__ = ["ImportAliases", "canonical", "dotted"]


def dotted(node: ast.expr) -> str | None:
    """``a.b.c`` for a pure Name/Attribute chain, else ``None``.

    Chains rooted in calls or subscripts (``x().attr``, ``d[k].attr``)
    are not resolvable to a module path and return ``None``.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class ImportAliases(ast.NodeVisitor):
    """Map of local names to the importable paths they are bound to.

    ``import numpy as np`` binds ``np`` → ``numpy``; ``from time import
    time`` binds ``time`` → ``time.time``; a relative ``from .x import
    y`` binds ``y`` → ``.x.y`` (kept distinct so it can never collide
    with an absolute module path a rule matches on).
    """

    def __init__(self) -> None:
        self.names: dict[str, str] = {}

    @classmethod
    def collect(cls, tree: ast.AST) -> "ImportAliases":
        aliases = cls()
        aliases.visit(tree)
        return aliases

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.asname:
                self.names[alias.asname] = alias.name
            else:
                # ``import a.b`` binds only ``a`` in the namespace.
                top = alias.name.split(".", 1)[0]
                self.names[top] = top

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        base = "." * node.level + (node.module or "")
        for alias in node.names:
            if alias.name == "*":
                continue
            target = f"{base}.{alias.name}" if base else alias.name
            self.names[alias.asname or alias.name] = target


def canonical(node: ast.expr, aliases: ImportAliases) -> str | None:
    """The importable dotted path an expression refers to, if knowable.

    Resolves the chain's head through the module's import aliases; a head
    that was never imported (a local variable, ``self``) yields ``None``
    rather than a guess.
    """
    path = dotted(node)
    if path is None:
        return None
    head, _, rest = path.partition(".")
    base = aliases.names.get(head)
    if base is None:
        return None
    return f"{base}.{rest}" if rest else base
