"""Enforcement zones: which invariants apply where.

The repo's correctness story is not uniform.  The simulation, search,
and experiment layers promise *bit-reproducible* results — any clock or
unseeded RNG read there is a latent nondeterminism bug.  The distributed
broker/worker layer deliberately reads clocks and sockets, but must obey
the lease-clock and lock disciplines that PR 6 established the hard way.
Figures, scripts, and benchmarks time things on purpose and answer to
neither contract.

``zone_for`` maps a file path onto one of three zones by longest
directory-fragment match, so a rule can say "I apply in deterministic
code" without every rule re-encoding the package layout.
"""

from __future__ import annotations

from enum import Enum
from pathlib import Path

__all__ = ["Zone", "ZONE_MAP", "zone_for"]


class Zone(str, Enum):
    """One enforcement regime; every analyzed file belongs to exactly one."""

    #: Results must be bit-identical across backends, hosts, and reruns:
    #: no ambient clocks, no unseeded randomness.
    DETERMINISTIC = "deterministic"
    #: Broker/worker code: clocks and sockets are the job, but lease ages
    #: must be monotonic dwell and shared state must respect the lock.
    DISTRIBUTED = "distributed"
    #: Presentation, tooling, and benchmarks: timing and I/O at will.
    FREE = "free"


#: Directory fragments → zone, matched longest-fragment-first against the
#: analyzed file's path.  Anything unmatched is FREE — the map names what
#: carries a contract, not everything that exists.
ZONE_MAP: dict[str, Zone] = {
    "repro/sweep/backends": Zone.DISTRIBUTED,
    # The sweep CLI is entry-point tooling: it sleeps in --watch loops and
    # flushes telemetry shards; nothing it computes is a result payload.
    "repro/sweep/cli.py": Zone.FREE,
    "repro/viz": Zone.FREE,
    # The linter itself walks filesystems and is not part of any result.
    "repro/analysis": Zone.FREE,
    # Telemetry is the side channel: it reads real clocks at shard-write
    # time by design and never feeds values back into results (the
    # telemetry-side-channel rule polices the consumers, not this module).
    "repro/telemetry": Zone.FREE,
    # Everything else under the package computes (or feeds) results that
    # must reproduce bit-identically: sim, search, experiment, core,
    # apps, services, server, cluster, sweep's cache/engine/grid, rng.
    "repro": Zone.DETERMINISTIC,
    "benchmarks": Zone.FREE,
    "examples": Zone.FREE,
    "scripts": Zone.FREE,
    "tests": Zone.FREE,
}

#: Longest fragment first so ``repro/sweep/backends`` beats ``repro``.
_ORDERED = sorted(ZONE_MAP.items(), key=lambda item: -len(item[0]))


def zone_for(path: Path | str) -> Zone:
    """The enforcement zone of one file path.

    Matching is purely on path segments (``repro/sweep/backends`` matches
    wherever that directory chain appears), so the answer is the same for
    absolute paths, repo-relative paths, and copies of the tree.
    """
    joined = "/" + Path(path).as_posix().strip("/") + "/"
    for fragment, zone in _ORDERED:
        if f"/{fragment}/" in joined:
            return zone
    return Zone.FREE
