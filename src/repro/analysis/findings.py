"""Findings: one rule violation at one source location.

A finding's identity for baseline purposes is its *fingerprint* — a
stable hash of the rule id, the file path, and the offending source line
text (plus an occurrence index for identical lines), deliberately **not**
the line number: inserting a docstring above a grandfathered violation
must not expire its baseline entry, and fixing the violation must.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable

from repro.cas import stable_hash

__all__ = ["Finding", "fingerprinted"]


@dataclass(frozen=True)
class Finding:
    """One rule violation, pinned to a source line."""

    rule: str
    path: str  # repo-relative posix path, as reported and baselined
    line: int
    col: int
    message: str
    code: str  # stripped source line text (fingerprint ingredient)
    fingerprint: str = ""

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_payload(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "code": self.code,
            "fingerprint": self.fingerprint,
        }


def _sort_key(finding: Finding) -> tuple:
    return (finding.path, finding.line, finding.col, finding.rule)


def fingerprinted(findings: Iterable[Finding]) -> list[Finding]:
    """Sorted findings with stable fingerprints assigned.

    Identical (rule, path, code) triples are disambiguated by their
    occurrence index in line order, so two copies of the same offending
    line baseline independently and fixing one expires exactly one entry.
    """
    counts: dict[tuple[str, str, str], int] = {}
    out = []
    for finding in sorted(findings, key=_sort_key):
        key = (finding.rule, finding.path, finding.code)
        index = counts.get(key, 0)
        counts[key] = index + 1
        out.append(
            replace(
                finding,
                fingerprint=stable_hash(
                    {
                        "rule": finding.rule,
                        "path": finding.path,
                        "code": finding.code,
                        "occurrence": index,
                    },
                    length=16,
                ),
            )
        )
    return out
