"""Findings: one rule violation at one source location.

A finding's identity for baseline purposes is its *fingerprint* — a
stable hash of the rule id, the file path, and the offending source line
text (plus an occurrence index for identical lines), deliberately **not**
the line number: inserting a docstring above a grandfathered violation
must not expire its baseline entry, and fixing the violation must.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable

from repro.cas import stable_hash

__all__ = ["Finding", "fingerprinted"]


@dataclass(frozen=True)
class Finding:
    """One rule violation, pinned to a source line.

    Interprocedural findings additionally carry a ``chain``: the call
    path from the flagged location down to the underlying source, as
    ``(label, path, line)`` hops.  The chain's labels and paths join the
    fingerprint (line numbers do not — moving a chain must not expire a
    baseline entry, rerouting it must); chainless findings keep the
    exact PR 8 fingerprint recipe so existing baselines stay stable.
    """

    rule: str
    path: str  # repo-relative posix path, as reported and baselined
    line: int
    col: int
    message: str
    code: str  # stripped source line text (fingerprint ingredient)
    fingerprint: str = ""
    chain: tuple[tuple[str, str, int], ...] = ()

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def render_chain(self) -> str:
        """``a (p:1) -> b (q:2)`` rendering, empty for chainless findings."""
        return " -> ".join(
            f"{label} ({path}:{line})" for label, path, line in self.chain
        )

    def to_payload(self) -> dict:
        payload = {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "code": self.code,
            "fingerprint": self.fingerprint,
        }
        if self.chain:
            payload["chain"] = [list(hop) for hop in self.chain]
        return payload

    @classmethod
    def from_payload(cls, payload: dict) -> "Finding":
        return cls(
            rule=payload["rule"],
            path=payload["path"],
            line=payload["line"],
            col=payload["col"],
            message=payload["message"],
            code=payload["code"],
            fingerprint=payload.get("fingerprint", ""),
            chain=tuple(
                (hop[0], hop[1], hop[2]) for hop in payload.get("chain", ())
            ),
        )


def _sort_key(finding: Finding) -> tuple:
    return (finding.path, finding.line, finding.col, finding.rule)


def fingerprinted(findings: Iterable[Finding]) -> list[Finding]:
    """Sorted findings with stable fingerprints assigned.

    Identical (rule, path, code) triples are disambiguated by their
    occurrence index in line order, so two copies of the same offending
    line baseline independently and fixing one expires exactly one entry.
    """
    counts: dict[tuple[str, str, str], int] = {}
    out = []
    for finding in sorted(findings, key=_sort_key):
        key = (finding.rule, finding.path, finding.code)
        index = counts.get(key, 0)
        counts[key] = index + 1
        ingredients: dict = {
            "rule": finding.rule,
            "path": finding.path,
            "code": finding.code,
            "occurrence": index,
        }
        if finding.chain:
            # Labels and paths only: a chain that merely shifts lines is
            # the same violation; one that routes differently is not.
            ingredients["chain"] = [
                [label, path] for label, path, _line in finding.chain
            ]
        out.append(
            replace(
                finding,
                fingerprint=stable_hash(ingredients, length=16),
            )
        )
    return out
