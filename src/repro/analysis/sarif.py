"""SARIF 2.1.0 output: findings as GitHub code-scanning results.

One run, one tool (``repro-lint``), one result per *new* finding —
baselined and pragma-waived findings are already accepted debt and do
not belong in a PR annotation.  Each result carries the finding's
fingerprint as a ``partialFingerprints`` entry (so GitHub deduplicates
across pushes exactly as the baseline does) and, for chain-shaped
findings, a ``codeFlows`` thread walking the call chain from the
boundary down to the nondeterminism source.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.analysis.findings import Finding
from repro.analysis.registry import PROJECT_RULE_REGISTRY, RULE_REGISTRY

__all__ = ["to_sarif"]

_SARIF_VERSION = "2.1.0"
_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _rule_metadata(rule_ids: Iterable[str]) -> list[dict]:
    rules = []
    for rule_id in sorted(set(rule_ids)):
        rule = RULE_REGISTRY.get(rule_id) or PROJECT_RULE_REGISTRY.get(rule_id)
        description = rule.summary if rule is not None else rule_id
        rules.append(
            {
                "id": rule_id,
                "shortDescription": {"text": description or rule_id},
            }
        )
    return rules


def _location(path: str, line: int, col: int = 0) -> dict:
    region: dict = {"startLine": max(1, line)}
    if col:
        region["startColumn"] = col + 1  # SARIF columns are 1-based
    return {
        "physicalLocation": {
            "artifactLocation": {"uri": path, "uriBaseId": "SRCROOT"},
            "region": region,
        }
    }


def _code_flow(finding: Finding) -> dict:
    return {
        "threadFlows": [
            {
                "locations": [
                    {
                        "location": {
                            **_location(path, line),
                            "message": {"text": label},
                        }
                    }
                    for label, path, line in finding.chain
                ]
            }
        ]
    }


def to_sarif(findings: Sequence[Finding]) -> dict:
    """The SARIF log (as a JSON-ready dict) for ``findings``."""
    results = []
    for finding in findings:
        result: dict = {
            "ruleId": finding.rule,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [_location(finding.path, finding.line, finding.col)],
            "partialFingerprints": {
                "reproLintFingerprint/v1": finding.fingerprint
            },
        }
        if finding.chain:
            result["codeFlows"] = [_code_flow(finding)]
        results.append(result)
    return {
        "$schema": _SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "rules": _rule_metadata(f.rule for f in findings),
                    }
                },
                "originalUriBaseIds": {
                    "SRCROOT": {"uri": "file:///"}
                },
                "results": results,
            }
        ],
    }
