"""The project call graph: resolved edges over module summaries.

Static edges come from resolving each function's recorded call sites
through the :class:`~repro.analysis.symbols.SymbolTable` — absolute
imports, bare local names (enclosing scopes, then module, then module
imports), and ``self.method()`` through the enclosing class and its
bases.  Dynamic edges come from the repo's registry idiom: a function
that reads ``POLICY_REGISTRY`` dispatches to *every* target passed to
``register_policy`` anywhere in the project, so it gets an edge to each
(class targets expand to all their methods).  Calls to a class get an
edge to its ``__init__``.

The graph is what every cross-file rule walks; ``to_dot`` dumps it for
``python -m repro.analysis --graph dot``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.symbols import (
    CallSite,
    ModuleSummary,
    SymbolTable,
)

__all__ = ["CallGraph", "Edge", "ProjectContext"]


@dataclass(frozen=True)
class Edge:
    """One resolved call edge, annotated with how it was discovered."""

    caller: str
    callee: str
    line: int  # call-site line in the caller's file
    held: tuple[str, ...] = ()  # locks held at the call site
    via: str = "call"  # "call" | "registry:<family>"


def _class_of(table: SymbolTable, qualname: str):
    entry = table.classes.get(qualname)
    return entry[1] if entry else None


def _resolve_class_ref(
    table: SymbolTable, summary: ModuleSummary, kind: str, target: str
) -> str | None:
    """Resolve a base-class reference recorded in ``summary``."""
    if kind == "abs":
        return table.resolve(target)
    if kind == "local":
        candidate = f"{summary.module}.{target}"
        if candidate in table.classes:
            return candidate
        via = summary.exports.get(target)
        if via is not None:
            return table.resolve(via)
    return None


class CallGraph:
    """Directed call graph with forward and reverse adjacency."""

    def __init__(self, table: SymbolTable) -> None:
        self.table = table
        self.edges: dict[str, list[Edge]] = {}
        self.reverse: dict[str, list[Edge]] = {}
        #: family → qualnames of every registered target (methods expanded)
        self.registry_targets: dict[str, tuple[str, ...]] = {}

    # -- construction --------------------------------------------------

    @classmethod
    def build(cls, table: SymbolTable) -> "CallGraph":
        graph = cls(table)
        graph._collect_registry_targets()
        for qualname, (summary, info) in table.functions.items():
            for site in info.calls:
                callee = graph.resolve_call(summary, info.cls, site)
                if callee is not None:
                    graph._add(
                        Edge(
                            caller=qualname,
                            callee=callee,
                            line=site.line,
                            held=site.held,
                        )
                    )
            for family in info.registry_reads:
                for target in graph.registry_targets.get(family, ()):
                    graph._add(
                        Edge(
                            caller=qualname,
                            callee=target,
                            line=info.line,
                            via=f"registry:{family}",
                        )
                    )
        return graph

    def _add(self, edge: Edge) -> None:
        self.edges.setdefault(edge.caller, []).append(edge)
        self.reverse.setdefault(edge.callee, []).append(edge)

    def _collect_registry_targets(self) -> None:
        found: dict[str, list[str]] = {}
        for summary in self.table.modules.values():
            for reg in summary.registrations:
                qual = self._resolve_ref(
                    summary, "", reg.target_kind, reg.target
                )
                if qual is None:
                    continue
                targets = found.setdefault(reg.family, [])
                cls_info = _class_of(self.table, qual)
                if cls_info is not None:
                    targets.extend(
                        f"{qual}.{method}" for method in cls_info.methods
                    )
                else:
                    targets.append(qual)
        self.registry_targets = {
            family: tuple(sorted(set(targets)))
            for family, targets in found.items()
        }

    # -- resolution ----------------------------------------------------

    def resolve_call(
        self, summary: ModuleSummary, caller_cls: str, site: CallSite
    ) -> str | None:
        """The qualname a call site lands on, or ``None`` (opaque)."""
        qual = self._resolve_ref(summary, caller_cls, site.kind, site.target)
        if qual is None:
            return None
        if qual in self.table.classes:
            init = f"{qual}.__init__"
            return init if init in self.table.functions else None
        return qual

    def _resolve_ref(
        self, summary: ModuleSummary, caller_cls: str, kind: str, target: str
    ) -> str | None:
        table = self.table
        if kind == "abs":
            qual = table.resolve(target)
            if qual is not None:
                return qual
            return self._resolve_instance_method(summary, target)
        if kind == "local":
            candidate = f"{summary.module}.{target}"
            if candidate in table.functions or candidate in table.classes:
                return candidate
            via = summary.exports.get(target)
            if via is not None:
                return table.resolve(via)
            return self._resolve_instance_method(
                summary, f"{summary.module}.{target}"
            )
        if kind == "self" and caller_cls:
            return self._resolve_method(
                summary, f"{summary.module}.{caller_cls}", target, set()
            )
        return None

    def _resolve_instance_method(
        self, summary: ModuleSummary, target: str
    ) -> str | None:
        """``Timer().read()`` where ``read`` is inherited from a base.

        The direct qualname lookup already covers methods the class
        defines itself; this peels the method name off and walks the
        class's bases for the defining class.
        """
        if "." not in target:
            return None
        class_ref, method = target.rsplit(".", 1)
        class_qual = self.table.resolve(class_ref)
        if class_qual is None or class_qual not in self.table.classes:
            return None
        base_summary = self.table.classes[class_qual][0]
        return self._resolve_method(base_summary, class_qual, method, set())

    def _resolve_method(
        self,
        summary: ModuleSummary,
        class_qual: str,
        method: str,
        seen: set[str],
    ) -> str | None:
        """``self.method()`` → the defining class, walking bases (MRO-ish)."""
        if class_qual in seen:
            return None
        seen.add(class_qual)
        entry = self.table.classes.get(class_qual)
        if entry is None:
            return None
        base_summary, info = entry
        if method in info.methods:
            return f"{class_qual}.{method}"
        for kind, target in info.bases:
            base_qual = _resolve_class_ref(
                self.table, base_summary, kind, target
            )
            if base_qual is None:
                continue
            found = self._resolve_method(base_summary, base_qual, method, seen)
            if found is not None:
                return found
        return None

    # -- output --------------------------------------------------------

    def to_dot(self) -> str:
        """GraphViz rendering (call edges solid, registry edges dashed)."""
        lines = ["digraph callgraph {", "  rankdir=LR;"]
        nodes: set[str] = set()
        for edges in self.edges.values():
            for edge in edges:
                nodes.update((edge.caller, edge.callee))
        for node in sorted(nodes):
            lines.append(f'  "{node}";')
        for caller in sorted(self.edges):
            for edge in sorted(
                self.edges[caller], key=lambda e: (e.callee, e.line)
            ):
                attrs = f'label="{edge.via}", style=dashed' if edge.via != "call" else ""
                suffix = f" [{attrs}]" if attrs else ""
                lines.append(f'  "{edge.caller}" -> "{edge.callee}"{suffix};')
        lines.append("}")
        return "\n".join(lines) + "\n"


@dataclass
class ProjectContext:
    """Everything a :class:`~repro.analysis.registry.ProjectRule` sees."""

    table: SymbolTable
    graph: CallGraph
    #: relpaths restricted by the incremental engine this run, or None
    #: when the whole project was (re)analyzed.  Rules may use this to
    #: skip work, never to widen it.
    affected: frozenset[str] | None = None
    _extra: dict = field(default_factory=dict)
