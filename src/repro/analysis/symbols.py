"""Per-module symbol extraction: the unit of interprocedural analysis.

One parse of one file produces one :class:`ModuleSummary` — every
function with its outgoing call references, nondeterminism sources, lock
acquisitions (with the locks lexically held at each), registry
registrations and reads, plus class layouts and payload-schema facts.
Summaries are plain data (JSON-round-trippable via ``to_payload`` /
``from_payload``) precisely so the incremental cache can persist them:
a warm run rebuilds the project call graph from cached summaries without
re-parsing a single unchanged file.

A :class:`SymbolTable` stitches summaries together and resolves absolute
dotted names to definitions, following re-export chains (``from x import
y as z``) across modules with a cycle guard.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import PurePosixPath
from typing import Iterable, Mapping

from repro.analysis.astutil import ImportAliases, dotted
from repro.analysis.sources import (
    REGISTRY_CALLS,
    REGISTRY_DICTS,
    clock_call,
    rng_violation,
)
from repro.analysis.zones import Zone, zone_for

__all__ = [
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "LockSite",
    "ModuleSummary",
    "Registration",
    "SourceSite",
    "SymbolTable",
    "module_name",
    "summarize_module",
]

#: Pseudo-function holding a module's top-level statements.
MODULE_BODY = "<module>"

#: Rules whose pragmas kill a clock taint source at its site.
_CLOCK_WAIVERS = frozenset(
    {"transitive-wallclock", "no-wallclock", "lease-clock", "*"}
)
#: Rules whose pragmas kill an RNG taint source at its site.
_RNG_WAIVERS = frozenset({"transitive-rng", "seeded-rng", "*"})


def module_name(relpath: str) -> tuple[str, bool]:
    """``(dotted module name, is_package)`` for a repo-relative path.

    A leading ``src/`` component is stripped (the repo's layout), and
    ``pkg/__init__.py`` names the package itself.
    """
    parts = list(PurePosixPath(relpath).parts)
    if parts and parts[0] == "src":
        parts = parts[1:]
    if not parts:
        return "", False
    is_package = parts[-1] == "__init__.py"
    if is_package:
        parts = parts[:-1]
    elif parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    return ".".join(parts), is_package


@dataclass(frozen=True)
class CallSite:
    """One outgoing call reference, pre-resolution.

    ``kind`` says how ``target`` should be resolved: ``"abs"`` is an
    alias-resolved absolute dotted path, ``"local"`` a bare name looked
    up in the caller's module, ``"self"`` a method name resolved through
    the enclosing class (then its bases).  ``held`` is the lexical stack
    of canonical lock names held at the call — the hook the lock-order
    analysis hangs interprocedural edges on.
    """

    kind: str
    target: str
    line: int
    held: tuple[str, ...] = ()

    def to_payload(self) -> dict:
        return {
            "kind": self.kind,
            "target": self.target,
            "line": self.line,
            "held": list(self.held),
        }

    @classmethod
    def from_payload(cls, payload: Mapping) -> "CallSite":
        return cls(
            kind=payload["kind"],
            target=payload["target"],
            line=payload["line"],
            held=tuple(payload["held"]),
        )


@dataclass(frozen=True)
class SourceSite:
    """One nondeterminism source: a clock read or an RNG violation."""

    rule: str  # the transitive rule this site feeds
    target: str  # canonical offending call, e.g. "time.time"
    line: int
    detail: str  # why this call is nondeterministic

    def to_payload(self) -> dict:
        return {
            "rule": self.rule,
            "target": self.target,
            "line": self.line,
            "detail": self.detail,
        }

    @classmethod
    def from_payload(cls, payload: Mapping) -> "SourceSite":
        return cls(
            rule=payload["rule"],
            target=payload["target"],
            line=payload["line"],
            detail=payload["detail"],
        )


@dataclass(frozen=True)
class LockSite:
    """One lock acquisition, with the locks already held at that point."""

    lock: str  # canonical lock name, e.g. "repro.sweep.backends.tcp.TcpTransport._lock"
    line: int
    held: tuple[str, ...] = ()

    def to_payload(self) -> dict:
        return {"lock": self.lock, "line": self.line, "held": list(self.held)}

    @classmethod
    def from_payload(cls, payload: Mapping) -> "LockSite":
        return cls(
            lock=payload["lock"],
            line=payload["line"],
            held=tuple(payload["held"]),
        )


@dataclass(frozen=True)
class Registration:
    """One ``register_*`` call: a dynamic edge source for the call graph."""

    family: str  # "policy" | "strategy" | "platform" | "metric" | "rule"
    name: str  # registered name when it is a string literal, else ""
    target_kind: str  # "abs" | "local" | "self" | "opaque"
    target: str
    line: int

    def to_payload(self) -> dict:
        return {
            "family": self.family,
            "name": self.name,
            "target_kind": self.target_kind,
            "target": self.target,
            "line": self.line,
        }

    @classmethod
    def from_payload(cls, payload: Mapping) -> "Registration":
        return cls(
            family=payload["family"],
            name=payload["name"],
            target_kind=payload["target_kind"],
            target=payload["target"],
            line=payload["line"],
        )


@dataclass(frozen=True)
class FunctionInfo:
    """Everything the project pass needs to know about one function."""

    name: str  # dotted path within the module, e.g. "Scenario.key_payload"
    line: int
    code: str  # stripped ``def`` line, used when a finding anchors here
    cls: str = ""  # enclosing class path within the module, "" for free fns
    calls: tuple[CallSite, ...] = ()
    sources: tuple[SourceSite, ...] = ()
    locks: tuple[LockSite, ...] = ()
    registry_reads: tuple[str, ...] = ()  # registry families dispatched on

    def to_payload(self) -> dict:
        return {
            "name": self.name,
            "line": self.line,
            "code": self.code,
            "cls": self.cls,
            "calls": [c.to_payload() for c in self.calls],
            "sources": [s.to_payload() for s in self.sources],
            "locks": [s.to_payload() for s in self.locks],
            "registry_reads": list(self.registry_reads),
        }

    @classmethod
    def from_payload(cls, payload: Mapping) -> "FunctionInfo":
        return cls(
            name=payload["name"],
            line=payload["line"],
            code=payload["code"],
            cls=payload["cls"],
            calls=tuple(CallSite.from_payload(p) for p in payload["calls"]),
            sources=tuple(
                SourceSite.from_payload(p) for p in payload["sources"]
            ),
            locks=tuple(LockSite.from_payload(p) for p in payload["locks"]),
            registry_reads=tuple(payload["registry_reads"]),
        )


@dataclass(frozen=True)
class ClassInfo:
    """A class: bases, methods, and (for payload classes) schema facts.

    ``schema`` is populated only for classes that define ``key_payload``
    — the duck type the spec-schema-drift rule checks.  Each entry maps a
    method name to the facts the rule consumes: which ``self.X``
    attributes it reads, which sibling methods it calls through ``self``,
    which string literals it uses as keys, and its default-elision
    guards as ``(field, op, literal)`` triples.
    """

    name: str  # dotted path within the module
    line: int
    code: str
    bases: tuple[tuple[str, str], ...] = ()  # (kind, target) refs
    methods: tuple[str, ...] = ()
    fields: tuple[tuple[str, str], ...] = ()  # (name, default or "")
    schema: Mapping[str, dict] = field(default_factory=dict)

    def to_payload(self) -> dict:
        return {
            "name": self.name,
            "line": self.line,
            "code": self.code,
            "bases": [list(b) for b in self.bases],
            "methods": list(self.methods),
            "fields": [list(f) for f in self.fields],
            "schema": {k: dict(v) for k, v in self.schema.items()},
        }

    @classmethod
    def from_payload(cls, payload: Mapping) -> "ClassInfo":
        return cls(
            name=payload["name"],
            line=payload["line"],
            code=payload["code"],
            bases=tuple((b[0], b[1]) for b in payload["bases"]),
            methods=tuple(payload["methods"]),
            fields=tuple((f[0], f[1]) for f in payload["fields"]),
            schema={k: dict(v) for k, v in payload["schema"].items()},
        )


@dataclass
class ModuleSummary:
    """The interprocedural facts of one module, and nothing else."""

    module: str
    relpath: str
    zone: str
    is_package: bool = False
    exports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    registrations: tuple[Registration, ...] = ()
    imported_modules: tuple[str, ...] = ()

    def to_payload(self) -> dict:
        return {
            "module": self.module,
            "relpath": self.relpath,
            "zone": self.zone,
            "is_package": self.is_package,
            "exports": dict(self.exports),
            "functions": {
                k: v.to_payload() for k, v in self.functions.items()
            },
            "classes": {k: v.to_payload() for k, v in self.classes.items()},
            "registrations": [r.to_payload() for r in self.registrations],
            "imported_modules": list(self.imported_modules),
        }

    @classmethod
    def from_payload(cls, payload: Mapping) -> "ModuleSummary":
        return cls(
            module=payload["module"],
            relpath=payload["relpath"],
            zone=payload["zone"],
            is_package=payload["is_package"],
            exports=dict(payload["exports"]),
            functions={
                k: FunctionInfo.from_payload(v)
                for k, v in payload["functions"].items()
            },
            classes={
                k: ClassInfo.from_payload(v)
                for k, v in payload["classes"].items()
            },
            registrations=tuple(
                Registration.from_payload(p) for p in payload["registrations"]
            ),
            imported_modules=tuple(payload["imported_modules"]),
        )


def _absolutize(target: str, package: str) -> str:
    """Resolve a leading-dots relative import target against ``package``."""
    if not target.startswith("."):
        return target
    level = len(target) - len(target.lstrip("."))
    rest = target[level:]
    parts = package.split(".") if package else []
    if level > 1:
        parts = parts[: max(0, len(parts) - (level - 1))]
    if not parts:
        return rest
    return f"{'.'.join(parts)}.{rest}" if rest else ".".join(parts)


def _is_lockish(name: str) -> bool:
    return "lock" in name.rsplit(".", 1)[-1].lower()


class _Extractor:
    """One recursive walk of a module tree, scope-aware."""

    def __init__(
        self,
        module: str,
        package: str,
        lines: tuple[str, ...],
        aliases: ImportAliases,
        exports: dict[str, str],
        waivers: Mapping[int, frozenset[str]],
    ) -> None:
        self.module = module
        self.package = package
        self.lines = lines
        self.aliases = aliases
        self.exports = exports
        self.waivers = waivers
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.registrations: list[Registration] = []
        self._path: list[str] = []  # mixed class/function name stack
        self._class: list[str] = []  # enclosing class paths
        self._held: list[str] = []  # lexical lock stack
        self._calls: list[CallSite] = []
        self._sources: list[SourceSite] = []
        self._locks: list[LockSite] = []
        self._reads: set[str] = set()

    # -- scope plumbing ------------------------------------------------

    def _line_code(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def _flush(self, name: str, line: int, code: str, cls: str) -> None:
        self.functions[name] = FunctionInfo(
            name=name,
            line=line,
            code=code,
            cls=cls,
            calls=tuple(self._calls),
            sources=tuple(self._sources),
            locks=tuple(self._locks),
            registry_reads=tuple(sorted(self._reads)),
        )
        self._calls, self._sources, self._locks = [], [], []
        self._reads = set()

    def run(self, tree: ast.Module) -> None:
        for stmt in tree.body:
            self._visit(stmt)
        self._flush(MODULE_BODY, 1, "", "")

    # -- node dispatch -------------------------------------------------

    def _visit(self, node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._visit_function(node)
            return
        if isinstance(node, ast.ClassDef):
            self._visit_class(node)
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            self._visit_with(node)
            return
        if isinstance(node, ast.Call):
            self._record_call(node)
        elif isinstance(node, ast.Name) and node.id in REGISTRY_DICTS:
            self._reads.add(REGISTRY_DICTS[node.id])
        elif isinstance(node, ast.Attribute) and node.attr in REGISTRY_DICTS:
            self._reads.add(REGISTRY_DICTS[node.attr])
        for child in ast.iter_child_nodes(node):
            self._visit(child)

    def _visit_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        # Decorators and argument defaults execute in the enclosing
        # scope, at definition time — their calls belong to it.
        for deco in node.decorator_list:
            self._visit(deco)
        for default in [*node.args.defaults, *node.args.kw_defaults]:
            if default is not None:
                self._visit(default)
        funcpath = ".".join([*self._path, node.name])
        cls = self._class[-1] if self._class else ""
        outer = (self._calls, self._sources, self._locks, self._reads)
        held = self._held
        self._calls, self._sources, self._locks = [], [], []
        self._reads = set()
        self._held = []
        self._path.append(node.name)
        try:
            for stmt in node.body:
                self._visit(stmt)
        finally:
            self._path.pop()
            self._flush(
                funcpath, node.lineno, self._line_code(node.lineno), cls
            )
            self._calls, self._sources, self._locks, self._reads = outer
            self._held = held

    def _visit_class(self, node: ast.ClassDef) -> None:
        for deco in node.decorator_list:
            self._visit(deco)
        classpath = ".".join([*self._path, node.name])
        bases = []
        for base in node.bases:
            ref = self._expr_ref(base)
            if ref is not None:
                bases.append(ref)
        methods = tuple(
            stmt.name
            for stmt in node.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        )
        fields = tuple(
            (stmt.target.id, ast.unparse(stmt.value) if stmt.value else "")
            for stmt in node.body
            if isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
        )
        schema = _schema_facts(node) if "key_payload" in methods else {}
        self.classes[classpath] = ClassInfo(
            name=classpath,
            line=node.lineno,
            code=self._line_code(node.lineno),
            bases=tuple(bases),
            methods=methods,
            fields=fields,
            schema=schema,
        )
        self._path.append(node.name)
        self._class.append(classpath)
        try:
            for stmt in node.body:
                self._visit(stmt)
        finally:
            self._path.pop()
            self._class.pop()

    def _visit_with(self, node: ast.With | ast.AsyncWith) -> None:
        pushed = 0
        for item in node.items:
            self._visit(item.context_expr)
            if item.optional_vars is not None:
                self._visit(item.optional_vars)
            lock = self._lock_name(item.context_expr)
            if lock is not None:
                self._locks.append(
                    LockSite(
                        lock=lock,
                        line=item.context_expr.lineno,
                        held=tuple(self._held),
                    )
                )
                self._held.append(lock)
                pushed += 1
        try:
            for stmt in node.body:
                self._visit(stmt)
        finally:
            for _ in range(pushed):
                self._held.pop()

    # -- expression facts ----------------------------------------------

    def _expr_ref(self, expr: ast.expr) -> tuple[str, str] | None:
        """``(kind, target)`` for a callable/base reference, if resolvable."""
        if isinstance(expr, ast.Lambda):
            return ("opaque", "<lambda>")
        if isinstance(expr, ast.Attribute) and isinstance(
            expr.value, ast.Call
        ):
            # ``Timer().read()``: a method on a just-constructed instance
            # resolves like a method on the class itself.
            inner = self._expr_ref(expr.value.func)
            if inner is not None and inner[0] in ("abs", "local"):
                return (inner[0], f"{inner[1]}.{expr.attr}")
            return None
        path = dotted(expr)
        if path is None:
            return None
        parts = path.split(".")
        head = parts[0]
        if head == "self" and self._class:
            if len(parts) == 2:
                return ("self", parts[1])
            return None
        if head in self.exports:
            rest = parts[1:]
            base = self.exports[head]
            return ("abs", ".".join([base, *rest]) if rest else base)
        if len(parts) == 1:
            return ("local", head)
        return None

    def _record_call(self, node: ast.Call) -> None:
        raw = dotted(node.func)
        last = raw.rsplit(".", 1)[-1] if raw else ""
        if last in REGISTRY_CALLS and len(node.args) >= 2:
            name_arg = node.args[0]
            name = (
                name_arg.value
                if isinstance(name_arg, ast.Constant)
                and isinstance(name_arg.value, str)
                else ""
            )
            ref = self._expr_ref(node.args[1]) or ("opaque", "<expr>")
            self.registrations.append(
                Registration(
                    family=REGISTRY_CALLS[last],
                    name=name,
                    target_kind=ref[0],
                    target=ref[1],
                    line=node.lineno,
                )
            )
        ref = self._expr_ref(node.func)
        if ref is not None and ref[0] != "opaque":
            self._calls.append(
                CallSite(
                    kind=ref[0],
                    target=ref[1],
                    line=node.lineno,
                    held=tuple(self._held),
                )
            )
        self._record_sources(node)
        if raw is not None and raw.endswith(".acquire"):
            lock = self._lock_name(node.func.value)  # type: ignore[union-attr]
            if lock is not None:
                self._locks.append(
                    LockSite(
                        lock=lock, line=node.lineno, held=tuple(self._held)
                    )
                )

    def _record_sources(self, node: ast.Call) -> None:
        waived = self.waivers.get(node.lineno, frozenset())
        clock = clock_call(node, self.aliases)
        if clock is not None and not (waived & _CLOCK_WAIVERS):
            self._sources.append(
                SourceSite(
                    rule="transitive-wallclock",
                    target=clock,
                    line=node.lineno,
                    detail=f"{clock}() reads the process clock",
                )
            )
        rng = rng_violation(node, self.aliases)
        if rng is not None and not (waived & _RNG_WAIVERS):
            self._sources.append(
                SourceSite(
                    rule="transitive-rng",
                    target=rng[0],
                    line=node.lineno,
                    detail=f"{rng[0]}() draws nondeterministic randomness",
                )
            )

    def _lock_name(self, expr: ast.expr) -> str | None:
        path = dotted(expr)
        if path is None or not _is_lockish(path):
            return None
        parts = path.split(".")
        if parts[0] == "self":
            rest = ".".join(parts[1:])
            cls = self._class[-1] if self._class else "self"
            return f"{self.module}.{cls}.{rest}"
        if parts[0] in self.exports:
            base = self.exports[parts[0]]
            rest = parts[1:]
            return ".".join([base, *rest]) if rest else base
        return f"{self.module}.{path}"


def _schema_facts(node: ast.ClassDef) -> dict[str, dict]:
    """Per-method facts for the spec-schema-drift rule."""
    facts: dict[str, dict] = {}
    for stmt in node.body:
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        self_reads: set[str] = set()
        self_calls: set[str] = set()
        str_keys: set[str] = set()
        guards: list[list[str]] = []
        for sub in ast.walk(stmt):
            if (
                isinstance(sub, ast.Attribute)
                and isinstance(sub.value, ast.Name)
                and sub.value.id == "self"
            ):
                self_reads.add(sub.attr)
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and isinstance(sub.func.value, ast.Name)
                and sub.func.value.id == "self"
            ):
                self_calls.add(sub.func.attr)
            if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
                str_keys.add(sub.value)
            if isinstance(sub, ast.Compare) and len(sub.ops) == 1:
                left, op, right = sub.left, sub.ops[0], sub.comparators[0]
                attr = None
                lit = None
                if (
                    isinstance(left, ast.Attribute)
                    and isinstance(left.value, ast.Name)
                    and left.value.id == "self"
                ):
                    attr, lit = left.attr, right
                elif (
                    isinstance(right, ast.Attribute)
                    and isinstance(right.value, ast.Name)
                    and right.value.id == "self"
                ):
                    attr, lit = right.attr, left
                if attr is not None and isinstance(op, (ast.Eq, ast.NotEq)):
                    symbol = "==" if isinstance(op, ast.Eq) else "!="
                    guards.append([attr, symbol, ast.unparse(lit)])
            if (
                isinstance(sub, ast.UnaryOp)
                and isinstance(sub.op, ast.Not)
                and isinstance(sub.operand, ast.Attribute)
                and isinstance(sub.operand.value, ast.Name)
                and sub.operand.value.id == "self"
            ):
                guards.append([sub.operand.attr, "not", ""])
        facts[stmt.name] = {
            "self_reads": sorted(self_reads),
            "self_calls": sorted(self_calls),
            "str_keys": sorted(str_keys),
            "guards": sorted(guards),
        }
    return facts


def summarize_module(
    tree: ast.Module,
    relpath: str,
    lines: tuple[str, ...],
    zone: Zone | None = None,
    waivers: Mapping[int, frozenset[str]] | None = None,
) -> ModuleSummary:
    """Extract the :class:`ModuleSummary` of one parsed file."""
    zone = zone if zone is not None else zone_for(relpath)
    mod, is_package = module_name(relpath)
    package = mod if is_package else mod.rpartition(".")[0]
    aliases = ImportAliases.collect(tree)
    exports = {
        name: _absolutize(target, package)
        for name, target in aliases.names.items()
    }
    imported: set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, ast.Import):
            imported.update(alias.name for alias in stmt.names)
        elif isinstance(stmt, ast.ImportFrom):
            base = "." * stmt.level + (stmt.module or "")
            imported.add(_absolutize(base, package))
    imported.discard("")
    extractor = _Extractor(
        module=mod,
        package=package,
        lines=lines,
        aliases=aliases,
        exports=exports,
        waivers=waivers or {},
    )
    extractor.run(tree)
    return ModuleSummary(
        module=mod,
        relpath=relpath,
        zone=zone.value,
        is_package=is_package,
        exports=exports,
        functions=extractor.functions,
        classes=extractor.classes,
        registrations=tuple(extractor.registrations),
        imported_modules=tuple(sorted(imported)),
    )


class SymbolTable:
    """Project-wide name resolution over a set of module summaries."""

    def __init__(self, summaries: Iterable[ModuleSummary]) -> None:
        self.modules: dict[str, ModuleSummary] = {}
        self.functions: dict[str, tuple[ModuleSummary, FunctionInfo]] = {}
        self.classes: dict[str, tuple[ModuleSummary, ClassInfo]] = {}
        for summary in summaries:
            self.modules[summary.module] = summary
            for path, info in summary.functions.items():
                self.functions[f"{summary.module}.{path}"] = (summary, info)
            for path, info in summary.classes.items():
                self.classes[f"{summary.module}.{path}"] = (summary, info)

    def resolve(self, target: str, _seen: set[str] | None = None) -> str | None:
        """Absolute dotted name → qualname of a known function or class.

        Follows re-export chains: if ``repro.api`` does ``from .impl
        import run as launch``, then ``repro.api.launch`` resolves to
        ``repro.impl.run``.  Cycles in the re-export graph terminate via
        the ``_seen`` guard.
        """
        seen = _seen if _seen is not None else set()
        if target in seen:
            return None
        seen.add(target)
        if target in self.functions or target in self.classes:
            return target
        parts = target.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            mod = ".".join(parts[:cut])
            summary = self.modules.get(mod)
            if summary is None:
                continue
            via = summary.exports.get(parts[cut])
            if via is None:
                return None
            rest = parts[cut + 1 :]
            return self.resolve(".".join([via, *rest]) if rest else via, seen)
        return None

    def function(self, qualname: str) -> FunctionInfo | None:
        entry = self.functions.get(qualname)
        return entry[1] if entry else None

    def summary_of(self, qualname: str) -> ModuleSummary | None:
        entry = self.functions.get(qualname) or self.classes.get(qualname)
        return entry[0] if entry else None
