"""The ``Rule`` protocol and its registry.

Mirrors the repo's ``register_policy`` / ``register_strategy`` idiom: a
rule is a named object in an open registry, built-ins pre-populate it,
and third parties extend it with :func:`register_rule` — duplicate names
are an error unless explicitly overwritten.

A rule sees one :class:`FileContext` per analyzed file (parsed tree,
source lines, resolved import aliases, and the file's enforcement
:class:`~repro.analysis.zones.Zone`) and yields
:class:`~repro.analysis.findings.Finding` objects, usually via
:meth:`FileContext.finding` which fills in location and source text.
"""

from __future__ import annotations

import ast
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis.astutil import ImportAliases
from repro.analysis.findings import Finding
from repro.analysis.zones import Zone

__all__ = [
    "ALL_ZONES",
    "FileContext",
    "RULE_REGISTRY",
    "Rule",
    "iter_rules",
    "register_rule",
    "registered_rules",
]

#: Convenience for rules that apply everywhere (import hygiene and the
#: serialization rule care about call shape, not zone).
ALL_ZONES = frozenset(Zone)


@dataclass
class FileContext:
    """Everything a rule may inspect about one file."""

    relpath: str  # repo-relative posix path used in reports and baselines
    zone: Zone
    tree: ast.Module
    lines: tuple[str, ...]
    aliases: ImportAliases = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.aliases is None:
            self.aliases = ImportAliases.collect(self.tree)

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def finding(self, rule_id: str, node: ast.AST, message: str) -> Finding:
        """A finding pinned to ``node``'s source line."""
        line = getattr(node, "lineno", 1)
        return Finding(
            rule=rule_id,
            path=self.relpath,
            line=line,
            col=getattr(node, "col_offset", 0),
            message=message,
            code=self.line_text(line).strip(),
        )


class Rule(ABC):
    """One machine-checked invariant.

    ``zones`` names where the invariant holds; the analyzer only calls
    :meth:`check` for files whose zone is in the set.  Rules that need
    finer path logic (e.g. excluding the module they deprecate) apply it
    inside ``check`` via ``ctx.relpath``.
    """

    #: Stable identifier used in reports, pragmas, and baseline entries.
    id: str = "abstract"
    #: One-line description shown by ``--list-rules``.
    summary: str = ""
    #: Zones in which this rule runs.
    zones: frozenset[Zone] = ALL_ZONES

    @abstractmethod
    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield every violation in ``ctx``."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(id={self.id!r})"


#: Backing store for :func:`register_rule` — prefer the function over
#: mutating this dict directly.
RULE_REGISTRY: dict[str, Rule] = {}


def register_rule(rule: Rule, overwrite: bool = False) -> Rule:
    """Register ``rule`` under its ``id`` so the analyzer runs it.

    Returns ``rule`` so subclass definitions can chain registration.
    """
    if not isinstance(rule, Rule):
        raise TypeError(f"expected a Rule instance, got {type(rule).__name__}")
    if not rule.id or rule.id == "abstract":
        raise ValueError(f"rule {rule!r} must define a stable id")
    if not overwrite and rule.id in RULE_REGISTRY:
        raise ValueError(
            f"rule {rule.id!r} is already registered; pass overwrite=True "
            "to replace it"
        )
    RULE_REGISTRY[rule.id] = rule
    return rule


def registered_rules() -> tuple[str, ...]:
    """Sorted ids of every registered rule."""
    return tuple(sorted(RULE_REGISTRY))


def iter_rules() -> tuple[Rule, ...]:
    """Every registered rule, in id order."""
    return tuple(RULE_REGISTRY[name] for name in registered_rules())
