"""The ``Rule`` protocol and its registry.

Mirrors the repo's ``register_policy`` / ``register_strategy`` idiom: a
rule is a named object in an open registry, built-ins pre-populate it,
and third parties extend it with :func:`register_rule` — duplicate names
are an error unless explicitly overwritten.

A rule sees one :class:`FileContext` per analyzed file (parsed tree,
source lines, resolved import aliases, and the file's enforcement
:class:`~repro.analysis.zones.Zone`) and yields
:class:`~repro.analysis.findings.Finding` objects, usually via
:meth:`FileContext.finding` which fills in location and source text.
"""

from __future__ import annotations

import ast
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis.astutil import ImportAliases
from repro.analysis.findings import Finding
from repro.analysis.zones import Zone

__all__ = [
    "ALL_ZONES",
    "FileContext",
    "PROJECT_RULE_REGISTRY",
    "ProjectRule",
    "RULE_REGISTRY",
    "Rule",
    "iter_project_rules",
    "iter_rules",
    "register_rule",
    "registered_rules",
]

#: Convenience for rules that apply everywhere (import hygiene and the
#: serialization rule care about call shape, not zone).
ALL_ZONES = frozenset(Zone)


@dataclass
class FileContext:
    """Everything a rule may inspect about one file."""

    relpath: str  # repo-relative posix path used in reports and baselines
    zone: Zone
    tree: ast.Module
    lines: tuple[str, ...]
    aliases: ImportAliases = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.aliases is None:
            self.aliases = ImportAliases.collect(self.tree)

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def finding(self, rule_id: str, node: ast.AST, message: str) -> Finding:
        """A finding pinned to ``node``'s source line."""
        line = getattr(node, "lineno", 1)
        return Finding(
            rule=rule_id,
            path=self.relpath,
            line=line,
            col=getattr(node, "col_offset", 0),
            message=message,
            code=self.line_text(line).strip(),
        )


class Rule(ABC):
    """One machine-checked invariant.

    ``zones`` names where the invariant holds; the analyzer only calls
    :meth:`check` for files whose zone is in the set.  Rules that need
    finer path logic (e.g. excluding the module they deprecate) apply it
    inside ``check`` via ``ctx.relpath``.
    """

    #: Stable identifier used in reports, pragmas, and baseline entries.
    id: str = "abstract"
    #: One-line description shown by ``--list-rules``.
    summary: str = ""
    #: Zones in which this rule runs.
    zones: frozenset[Zone] = ALL_ZONES

    @abstractmethod
    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield every violation in ``ctx``."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(id={self.id!r})"


class ProjectRule(ABC):
    """One machine-checked *whole-program* invariant.

    Where a :class:`Rule` sees one file at a time, a project rule sees
    the stitched-together view of every analyzed file — a
    :class:`~repro.analysis.callgraph.ProjectContext` holding the symbol
    table and call graph — and yields findings that may span files (via
    ``Finding.chain``).  Project rules run once per analysis pass, after
    every file has been summarized.

    ``incremental`` declares whether a warm run may carry this rule's
    findings forward for files outside the changed set's dependency
    cone; rules whose findings depend on genuinely global structure
    (lock cycles) set it ``False`` and are recomputed every pass.
    """

    #: Stable identifier used in reports, pragmas, and baseline entries.
    id: str = "abstract"
    #: One-line description shown by ``--list-rules``.
    summary: str = ""
    #: Whether cached findings may be carried across warm runs.
    incremental: bool = True

    @abstractmethod
    def check(self, ctx) -> Iterator[Finding]:
        """Yield every violation visible in the project context."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(id={self.id!r})"


#: Backing store for :func:`register_rule` — prefer the function over
#: mutating this dict directly.
RULE_REGISTRY: dict[str, Rule] = {}

#: Project-wide rules, registered separately: the analyzer runs them
#: once per pass, not once per file.
PROJECT_RULE_REGISTRY: dict[str, ProjectRule] = {}


def register_rule(
    rule: Rule | ProjectRule, overwrite: bool = False
) -> Rule | ProjectRule:
    """Register ``rule`` under its ``id`` so the analyzer runs it.

    Per-file :class:`Rule` and whole-program :class:`ProjectRule`
    instances land in separate registries but share the id namespace —
    a pragma or baseline entry never needs to know which kind produced
    a finding.  Returns ``rule`` so definitions can chain registration.
    """
    if not isinstance(rule, (Rule, ProjectRule)):
        raise TypeError(f"expected a Rule instance, got {type(rule).__name__}")
    if not rule.id or rule.id == "abstract":
        raise ValueError(f"rule {rule!r} must define a stable id")
    if not overwrite and (
        rule.id in RULE_REGISTRY or rule.id in PROJECT_RULE_REGISTRY
    ):
        raise ValueError(
            f"rule {rule.id!r} is already registered; pass overwrite=True "
            "to replace it"
        )
    if isinstance(rule, ProjectRule):
        PROJECT_RULE_REGISTRY[rule.id] = rule
    else:
        RULE_REGISTRY[rule.id] = rule
    return rule


def registered_rules() -> tuple[str, ...]:
    """Sorted ids of every registered rule, per-file and project-wide."""
    return tuple(sorted({*RULE_REGISTRY, *PROJECT_RULE_REGISTRY}))


def iter_rules() -> tuple[Rule, ...]:
    """Every registered per-file rule, in id order."""
    return tuple(RULE_REGISTRY[name] for name in sorted(RULE_REGISTRY))


def iter_project_rules() -> tuple[ProjectRule, ...]:
    """Every registered project rule, in id order."""
    return tuple(
        PROJECT_RULE_REGISTRY[name] for name in sorted(PROJECT_RULE_REGISTRY)
    )
