"""``python -m repro.analysis`` — run repro-lint from the shell.

Usage::

    # lint the default roots (src benchmarks examples scripts) against
    # the committed baseline; non-zero exit on any new finding
    python -m repro.analysis

    # CI gate: expired (stale) baseline entries fail too
    python -m repro.analysis --strict

    # machine-readable output
    python -m repro.analysis --format json

    # check one file as if it lived in a zone (fixture checking)
    python -m repro.analysis --zone deterministic --no-baseline bad.py

    # grandfather today's findings with a shared justification
    python -m repro.analysis --update-baseline \\
        --justification "pre-lint code, tracked for burn-down"

Exit status: ``0`` clean, ``1`` findings (or, with ``--strict``, expired
baseline entries), ``2`` usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.baseline import DEFAULT_BASELINE_NAME, Baseline
from repro.analysis.engine import analyze_paths
from repro.analysis.registry import RULE_REGISTRY, registered_rules
from repro.analysis.zones import Zone, zone_for

__all__ = ["build_parser", "main"]

#: Scanned when no paths are given: everything that carries invariants.
DEFAULT_ROOTS = ("src", "benchmarks", "examples", "scripts")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "repro-lint: AST-based enforcement of the repo's determinism, "
            "lease-clock, and distributed-safety invariants"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=f"files or directories to analyze (default: {' '.join(DEFAULT_ROOTS)})",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="also fail on expired baseline entries (the CI mode)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=f"baseline file (default: ./{DEFAULT_BASELINE_NAME})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file (every finding reports)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help=(
            "rewrite the baseline: keep matched entries, drop expired "
            "ones, add current findings under --justification"
        ),
    )
    parser.add_argument(
        "--justification",
        default="",
        help="one-line reason recorded on entries --update-baseline adds",
    )
    parser.add_argument(
        "--zone",
        choices=tuple(zone.value for zone in Zone),
        default=None,
        help="force every analyzed file into one enforcement zone",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="base directory for reported paths (default: cwd)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every registered rule and exit",
    )
    parser.add_argument(
        "--zone-of",
        metavar="PATH",
        default=None,
        help="print the enforcement zone of one path and exit",
    )
    return parser


def _print_rules(out) -> None:
    for rule_id in registered_rules():
        rule = RULE_REGISTRY[rule_id]
        zones = ",".join(sorted(zone.value for zone in rule.zones))
        print(f"{rule_id:24s} [{zones}] {rule.summary}", file=out)


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    out = sys.stdout

    if args.list_rules:
        _print_rules(out)
        return 0
    if args.zone_of is not None:
        print(zone_for(args.zone_of).value, file=out)
        return 0
    if args.update_baseline and args.no_baseline:
        parser.error("--update-baseline conflicts with --no-baseline")

    paths = args.paths or [p for p in DEFAULT_ROOTS if Path(p).exists()]
    if not paths:
        parser.error("no paths given and none of the default roots exist")
    zone = Zone(args.zone) if args.zone else None
    report = analyze_paths(paths, root=args.root, zone=zone)

    baseline_path = args.baseline or Path(DEFAULT_BASELINE_NAME)
    if args.no_baseline:
        baseline = Baseline()
    else:
        try:
            baseline = Baseline.load(baseline_path)
        except ValueError as exc:
            print(f"repro-lint: {exc}", file=sys.stderr)
            return 2
    new, waived, expired = baseline.partition(report.findings)

    if args.update_baseline:
        if new and not args.justification.strip():
            parser.error(
                "--update-baseline needs --justification when it would "
                "add entries"
            )
        baseline.updated(report.findings, args.justification or "-").save(
            baseline_path
        )
        print(
            f"repro-lint: baseline {baseline_path} updated — "
            f"{len(new)} added, {len(expired)} expired, {len(waived)} kept",
            file=out,
        )
        return 0

    failed = bool(new) or (args.strict and bool(expired))
    if args.format == "json":
        payload = {
            "findings": [finding.to_payload() for finding in new],
            "waived": len(waived),
            "expired": [entry.to_payload() for entry in expired],
            "files_scanned": report.files_scanned,
            "suppressed": report.suppressed,
            "rules": list(registered_rules()),
            "ok": not failed,
        }
        print(json.dumps(payload, indent=2), file=out)
        return 1 if failed else 0

    for finding in new:
        print(f"{finding.location}: {finding.rule}: {finding.message}", file=out)
        if finding.code:
            print(f"    {finding.code}", file=out)
    for entry in expired:
        print(
            f"{entry.path}: expired baseline entry {entry.fingerprint} "
            f"({entry.rule}): the finding it waived is gone — remove it "
            "with --update-baseline",
            file=out,
        )
    status = "FAILED" if failed else "ok"
    print(
        f"repro-lint: {status} — {len(new)} new finding(s), "
        f"{len(waived)} baselined, {len(expired)} expired entr(y/ies), "
        f"{report.suppressed} pragma-waived, {report.files_scanned} "
        f"file(s) scanned",
        file=out,
    )
    return 1 if failed else 0
