"""``python -m repro.analysis`` — run repro-lint from the shell.

Usage::

    # lint the default roots (src benchmarks examples scripts) against
    # the committed baseline; non-zero exit on any new finding
    python -m repro.analysis

    # CI gate: expired (stale) baseline entries fail too
    python -m repro.analysis --strict

    # machine-readable output
    python -m repro.analysis --format json

    # check one file as if it lived in a zone (fixture checking)
    python -m repro.analysis --zone deterministic --no-baseline bad.py

    # grandfather today's findings with a shared justification
    python -m repro.analysis --update-baseline \\
        --justification "pre-lint code, tracked for burn-down"

Exit status: ``0`` clean, ``1`` findings (or, with ``--strict``, expired
baseline entries), ``2`` usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.analysis.baseline import DEFAULT_BASELINE_NAME, Baseline
from repro.analysis.callgraph import CallGraph
from repro.analysis.dataflow import build_lock_graph, lock_graph_dot
from repro.analysis.engine import analyze_paths, iter_python_files
from repro.analysis.incremental import AnalysisCache, resolve_cache
from repro.analysis.registry import (
    PROJECT_RULE_REGISTRY,
    RULE_REGISTRY,
    registered_rules,
)
from repro.analysis.sarif import to_sarif
from repro.analysis.zones import Zone, zone_for

__all__ = ["build_parser", "main"]

#: Scanned when no paths are given: everything that carries invariants.
DEFAULT_ROOTS = ("src", "benchmarks", "examples", "scripts")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "repro-lint: AST-based enforcement of the repo's determinism, "
            "lease-clock, and distributed-safety invariants"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=f"files or directories to analyze (default: {' '.join(DEFAULT_ROOTS)})",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--sarif",
        type=Path,
        metavar="PATH",
        default=None,
        help=(
            "additionally write a SARIF 2.1.0 log of the new findings to "
            "PATH (for GitHub code scanning); does not change the exit code"
        ),
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="also fail on expired baseline entries (the CI mode)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=f"baseline file (default: ./{DEFAULT_BASELINE_NAME})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file (every finding reports)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help=(
            "rewrite the baseline: keep matched entries, drop expired "
            "ones, add current findings under --justification"
        ),
    )
    parser.add_argument(
        "--justification",
        default="",
        help="one-line reason recorded on entries --update-baseline adds",
    )
    parser.add_argument(
        "--zone",
        choices=tuple(zone.value for zone in Zone),
        default=None,
        help="force every analyzed file into one enforcement zone",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="base directory for reported paths (default: cwd)",
    )
    parser.add_argument(
        "--cache",
        type=Path,
        metavar="DIR",
        default=None,
        help=(
            "incremental-cache directory (default: <root>/.repro-lint-cache, "
            "or $REPRO_LINT_CACHE; set REPRO_LINT_CACHE=off to disable)"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the incremental cache for this run",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every registered rule and exit",
    )
    parser.add_argument(
        "--zone-of",
        metavar="PATH",
        default=None,
        help="print the enforcement zone of one path and exit",
    )
    parser.add_argument(
        "--graph",
        choices=("dot", "lock-dot"),
        default=None,
        help=(
            "instead of linting, dump the project call graph (dot) or the "
            "lock-order graph (lock-dot) in GraphViz format and exit"
        ),
    )
    return parser


def _print_rules(out) -> None:
    for rule_id in registered_rules():
        rule = RULE_REGISTRY.get(rule_id)
        if rule is not None:
            scope = ",".join(sorted(zone.value for zone in rule.zones))
        else:
            rule = PROJECT_RULE_REGISTRY[rule_id]
            scope = "project"
        print(f"{rule_id:24s} [{scope}] {rule.summary}", file=out)


def _dump_graph(kind: str, paths, root, zone, out) -> int:
    """Summarize the project and print a GraphViz graph (no linting)."""
    import ast

    from repro.analysis.engine import build_waivers
    from repro.analysis.symbols import SymbolTable, summarize_module

    root = Path(root) if root is not None else Path.cwd()
    summaries = []
    for path in iter_python_files(paths):
        try:
            relpath = path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            relpath = path.as_posix()
        source = path.read_text(encoding="utf-8")
        lines = tuple(source.splitlines())
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError:
            continue
        summaries.append(
            summarize_module(
                tree,
                relpath,
                lines,
                zone=zone,
                waivers=build_waivers(tree, lines),
            )
        )
    table = SymbolTable(summaries)
    graph = CallGraph.build(table)
    if kind == "lock-dot":
        print(lock_graph_dot(build_lock_graph(table, graph)), end="", file=out)
    else:
        print(graph.to_dot(), end="", file=out)
    return 0


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    out = sys.stdout

    if args.list_rules:
        _print_rules(out)
        return 0
    if args.zone_of is not None:
        print(zone_for(args.zone_of).value, file=out)
        return 0
    if args.update_baseline and args.no_baseline:
        parser.error("--update-baseline conflicts with --no-baseline")

    paths = args.paths or [p for p in DEFAULT_ROOTS if Path(p).exists()]
    if not paths:
        parser.error("no paths given and none of the default roots exist")
    zone = Zone(args.zone) if args.zone else None
    if args.graph is not None:
        return _dump_graph(args.graph, paths, args.root, zone, out)
    if args.no_cache:
        cache = None
    elif args.cache is not None:
        cache = AnalysisCache(args.cache)
    else:
        cache = resolve_cache(args.root or Path.cwd())
    started = time.monotonic()
    report = analyze_paths(paths, root=args.root, zone=zone, cache=cache)
    elapsed = time.monotonic() - started

    baseline_path = args.baseline or Path(DEFAULT_BASELINE_NAME)
    if args.no_baseline:
        baseline = Baseline()
    else:
        try:
            baseline = Baseline.load(baseline_path)
        except ValueError as exc:
            print(f"repro-lint: {exc}", file=sys.stderr)
            return 2
    new, waived, expired = baseline.partition(report.findings)

    if args.update_baseline:
        if new and not args.justification.strip():
            parser.error(
                "--update-baseline needs --justification when it would "
                "add entries"
            )
        baseline.updated(report.findings, args.justification or "-").save(
            baseline_path
        )
        print(
            f"repro-lint: baseline {baseline_path} updated — "
            f"{len(new)} added, {len(expired)} expired, {len(waived)} kept",
            file=out,
        )
        return 0

    failed = bool(new) or (args.strict and bool(expired))
    if args.sarif is not None:
        args.sarif.parent.mkdir(parents=True, exist_ok=True)
        args.sarif.write_text(
            json.dumps(to_sarif(new), indent=2) + "\n", encoding="utf-8"
        )
    if args.format == "sarif":
        print(json.dumps(to_sarif(new), indent=2), file=out)
        return 1 if failed else 0
    if args.format == "json":
        payload = {
            "findings": [finding.to_payload() for finding in new],
            "waived": len(waived),
            "expired": [entry.to_payload() for entry in expired],
            "files_scanned": report.files_scanned,
            "suppressed": report.suppressed,
            "cache_hits": report.cache_hits,
            "cache_misses": report.cache_misses,
            "wall_time_s": round(elapsed, 3),
            "rules": list(registered_rules()),
            "ok": not failed,
        }
        print(json.dumps(payload, indent=2), file=out)
        return 1 if failed else 0

    for finding in new:
        print(f"{finding.location}: {finding.rule}: {finding.message}", file=out)
        if finding.code:
            print(f"    {finding.code}", file=out)
        if finding.chain:
            print(f"    chain: {finding.render_chain()}", file=out)
    for entry in expired:
        print(
            f"{entry.path}: expired baseline entry {entry.fingerprint} "
            f"({entry.rule}): the finding it waived is gone — remove it "
            "with --update-baseline",
            file=out,
        )
    status = "FAILED" if failed else "ok"
    cache_note = (
        f", cache {report.cache_hits} hit(s)/{report.cache_misses} miss(es)"
        if cache is not None
        else ""
    )
    print(
        f"repro-lint: {status} — {len(new)} new finding(s), "
        f"{len(waived)} baselined, {len(expired)} expired entr(y/ies), "
        f"{report.suppressed} pragma-waived, {report.files_scanned} "
        f"file(s) scanned in {elapsed:.2f}s{cache_note}",
        file=out,
    )
    return 1 if failed else 0
