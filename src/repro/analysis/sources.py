"""The shared vocabulary of nondeterminism sources and registry spellings.

Both the per-file rules (:mod:`repro.analysis.rules`) and the
interprocedural extractor (:mod:`repro.analysis.symbols`) need to answer
the same questions — "is this call a clock read?", "is this an unseeded
RNG draw?", "is this a registry registration?" — so the answers live
here, below both, with no dependency on the rule registry.  A spelling
added here is picked up by the direct rule *and* the taint analysis in
one edit.
"""

from __future__ import annotations

import ast

from repro.analysis.astutil import ImportAliases, canonical

__all__ = [
    "MONOTONIC_CALLS",
    "REGISTRY_CALLS",
    "REGISTRY_DICTS",
    "WALLCLOCK_CALLS",
    "clock_call",
    "rng_violation",
]

#: Wall clocks: readings are comparable across hosts only up to skew.
WALLCLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Monotonic/CPU clocks: skew-free but still nondeterministic inputs.
MONOTONIC_CALLS = frozenset(
    {
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.thread_time",
        "time.thread_time_ns",
        "time.clock_gettime",
        "time.clock_gettime_ns",
    }
)

#: Registration entry points (matched on the last name component, so
#: fixture modules defining their own ``register_policy`` participate),
#: mapped to the registry family they populate.
REGISTRY_CALLS: dict[str, str] = {
    "register_policy": "policy",
    "register_strategy": "strategy",
    "register_platform": "platform",
    "register_metric": "metric",
    "register_rule": "rule",
}

#: Backing-dict spellings: a function that reads one of these dispatches
#: through that registry, so the call graph gives it an edge to every
#: registered target.
REGISTRY_DICTS: dict[str, str] = {
    "POLICY_REGISTRY": "policy",
    "STRATEGY_REGISTRY": "strategy",
    "PLATFORM_REGISTRY": "platform",
    "METRIC_REGISTRY": "metric",
    "RULE_REGISTRY": "rule",
}

#: Constructors that are fine *if* they take an explicit seed argument.
_SEEDED_CONSTRUCTORS = frozenset({"numpy.random.default_rng", "random.Random"})

#: Seed parameter names accepted by the constructors above.
_SEED_KWARGS = frozenset({"seed", "x"})

#: ``numpy.random`` attributes that do not touch the legacy global state.
_NUMPY_ALLOWED = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.Generator",
        "numpy.random.SeedSequence",
        "numpy.random.BitGenerator",
        "numpy.random.PCG64",
        "numpy.random.PCG64DXSM",
        "numpy.random.Philox",
        "numpy.random.SFC64",
        "numpy.random.MT19937",
    }
)

#: ``random`` module attributes that construct independent streams rather
#: than drawing from the module-level global generator.
_RANDOM_ALLOWED = frozenset({"random.Random", "random.SystemRandom"})


def clock_call(node: ast.Call, aliases: ImportAliases) -> str | None:
    """The canonical clock this call reads, or ``None`` (any flavor)."""
    target = canonical(node.func, aliases)
    if target in WALLCLOCK_CALLS or target in MONOTONIC_CALLS:
        return target
    return None


def rng_violation(node: ast.Call, aliases: ImportAliases) -> tuple[str, str] | None:
    """``(target, why)`` when this call breaks the seeded-RNG contract.

    Three failure shapes, mirroring :class:`~repro.analysis.rules.rng.
    SeededRngRule`: an explicit-stream constructor called without a seed,
    a draw from numpy's hidden module-level generator, and a draw from
    the ``random`` module's global state.
    """
    target = canonical(node.func, aliases)
    if target is None:
        return None
    if target in _SEEDED_CONSTRUCTORS:
        seeded = bool(node.args) or any(
            kw.arg in _SEED_KWARGS for kw in node.keywords
        )
        if not seeded:
            return (
                target,
                f"{target}() without an explicit seed: the stream is "
                "OS-entropy-seeded and the result can never be reproduced "
                "— derive the seed from the scenario (see repro.rng)",
            )
        return None
    if target.startswith("numpy.random.") and target not in _NUMPY_ALLOWED:
        return (
            target,
            f"{target}() draws from numpy's hidden module-level generator: "
            "shared mutable state makes results depend on call order across "
            "the whole process — use numpy.random.default_rng(seed)",
        )
    if target.startswith("random.") and target not in _RANDOM_ALLOWED:
        return (
            target,
            f"{target}() draws from the random module's global state: "
            "results depend on every other draw in the process — construct "
            "random.Random(seed) instead",
        )
    return None
