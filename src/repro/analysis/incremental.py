"""Incremental analysis: a content-addressed per-file result cache.

The analyzer's work per file is a pure function of (analyzer code, file
path, enforcement zone, file bytes) — so the cache key is exactly that
hash, built on :func:`repro.cas.stable_hash` like every other
content-addressed artifact in this repo.  A cache entry stores the
file's per-file findings, its suppression count, its pragma-waiver map,
and its :class:`~repro.analysis.symbols.ModuleSummary`; a warm run
re-parses only files whose bytes changed and rebuilds the project pass
from cached summaries.

On top of the per-file entries sits one *state* record per (root, zone)
pair: the exact file→key map of the last clean run plus its final
findings.  When nothing at all changed, the engine returns those
findings verbatim without parsing a single file or building the call
graph — that fast path is what makes warm ``make lint`` a different
order of magnitude from cold.

The ``REPRO_LINT_CACHE`` environment variable points the cache at a
directory (default ``<root>/.repro-lint-cache``); setting it to ``off``
or ``0`` disables caching entirely.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Iterable, Mapping

from repro.cas import atomic_write_bytes, stable_hash

__all__ = [
    "AnalysisCache",
    "analyzer_signature",
    "resolve_cache",
    "reverse_cone",
]

_CACHE_ENV = "REPRO_LINT_CACHE"
_DISABLED = frozenset({"off", "0", "false", "no", "none"})

#: Memoized per rule-set: hashing the analyzer's own source is cheap but
#: not free, and every file key includes it.
_signature_memo: dict[tuple[str, ...], str] = {}


def analyzer_signature() -> str:
    """Hash of the analyzer's own source plus the active rule set.

    Any edit to ``repro/analysis`` (a rule tweak, a new message) or any
    change in which rules are registered invalidates every cached
    result — stale findings from an older analyzer must never survive.
    """
    from repro.analysis.registry import registered_rules

    rules = registered_rules()
    memo = _signature_memo.get(rules)
    if memo is not None:
        return memo
    package = Path(__file__).resolve().parent
    sources: dict[str, str] = {}
    for path in sorted(package.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        sources[path.relative_to(package).as_posix()] = hashlib.sha256(
            path.read_bytes()
        ).hexdigest()
    signature = stable_hash({"sources": sources, "rules": list(rules)})
    _signature_memo[rules] = signature
    return signature


def resolve_cache(
    root: Path | str, env: Mapping[str, str] | None = None
) -> "AnalysisCache | None":
    """The cache the CLI should use, honoring ``REPRO_LINT_CACHE``."""
    value = (env if env is not None else os.environ).get(_CACHE_ENV, "")
    if value.strip().lower() in _DISABLED:
        return None
    if value.strip():
        return AnalysisCache(Path(value.strip()))
    return AnalysisCache(Path(root) / ".repro-lint-cache")


class AnalysisCache:
    """Content-hash keyed store of per-file results and run states.

    ``hits``/``misses`` count per-file lookups in this process — the
    observable the incremental tests (and the CLI's timing report)
    assert against.
    """

    def __init__(self, directory: Path | str) -> None:
        self.directory = Path(directory)
        self.hits = 0
        self.misses = 0

    # -- per-file entries ----------------------------------------------

    def file_key(self, relpath: str, zone: str, data: bytes) -> str:
        return stable_hash(
            {
                "signature": analyzer_signature(),
                "relpath": relpath,
                "zone": zone,
                "content": hashlib.sha256(data).hexdigest(),
            }
        )

    def load_entry(self, key: str) -> dict | None:
        try:
            payload = json.loads(
                (self.directory / f"{key}.json").read_text(encoding="utf-8")
            )
        except (OSError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def store_entry(self, key: str, payload: dict) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        atomic_write_bytes(
            self.directory / f"{key}.json",
            json.dumps(payload, sort_keys=True).encode("utf-8"),
        )

    # -- whole-run state -----------------------------------------------

    def _state_path(self, root: Path, zone: str) -> Path:
        key = stable_hash(
            {"root": str(Path(root).resolve()), "zone": zone}, length=16
        )
        return self.directory / f"state-{key}.json"

    def load_state(self, root: Path, zone: str) -> dict | None:
        try:
            payload = json.loads(
                self._state_path(root, zone).read_text(encoding="utf-8")
            )
        except (OSError, ValueError):
            return None
        if payload.get("signature") != analyzer_signature():
            return None
        return payload

    def store_state(self, root: Path, zone: str, payload: dict) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        payload = {"signature": analyzer_signature(), **payload}
        atomic_write_bytes(
            self._state_path(root, zone),
            json.dumps(payload, sort_keys=True).encode("utf-8"),
        )


def reverse_cone(
    summaries: Iterable, changed_relpaths: Iterable[str]
) -> frozenset[str]:
    """``changed`` plus every file that (transitively) imports one.

    The import relation is matched on module-name prefixes in both
    directions (``from pkg import sub`` records ``pkg`` even when the
    change is in ``pkg.sub``), deliberately over-approximating: a file
    wrongly *in* the cone costs a re-check, one wrongly outside could
    hide a finding.
    """
    summaries = list(summaries)
    affected_paths = set(changed_relpaths)
    affected_modules = {
        s.module for s in summaries if s.relpath in affected_paths
    }

    def related(imported: str, module: str) -> bool:
        return (
            imported == module
            or imported.startswith(module + ".")
            or module.startswith(imported + ".")
        )

    changed = True
    while changed:
        changed = False
        for summary in summaries:
            if summary.relpath in affected_paths:
                continue
            if any(
                related(imported, module)
                for imported in summary.imported_modules
                for module in affected_modules
            ):
                affected_paths.add(summary.relpath)
                affected_modules.add(summary.module)
                changed = True
    return frozenset(affected_paths)
