"""The committed findings baseline: grandfathered, justified, expiring.

A baseline entry waives exactly one finding (by fingerprint) and must
say *why* — loading an entry without a justification is an error, so a
waiver can never be silently minted.  Matching is by fingerprint (rule +
path + offending line text + occurrence), so unrelated edits leave
entries alone, while fixing the violation *expires* its entry: strict
runs then fail until the stale entry is removed (``--update-baseline``),
keeping the baseline a shrinking debt list rather than a growing one.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.findings import Finding
from repro.cas import atomic_write_bytes

__all__ = ["Baseline", "BaselineEntry", "DEFAULT_BASELINE_NAME"]

#: Committed at the repo root; ``python -m repro.analysis`` finds it there.
DEFAULT_BASELINE_NAME = ".repro-lint-baseline.json"

_FORMAT_VERSION = 1


@dataclass(frozen=True)
class BaselineEntry:
    """One waived finding and the reason it is waived."""

    fingerprint: str
    rule: str
    path: str
    code: str
    justification: str

    def to_payload(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "rule": self.rule,
            "path": self.path,
            "code": self.code,
            "justification": self.justification,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "BaselineEntry":
        entry = cls(
            fingerprint=str(payload["fingerprint"]),
            rule=str(payload["rule"]),
            path=str(payload["path"]),
            code=str(payload.get("code", "")),
            justification=str(payload.get("justification", "")).strip(),
        )
        if not entry.justification:
            raise ValueError(
                f"baseline entry {entry.fingerprint} ({entry.rule} at "
                f"{entry.path}) has no justification — every waiver must "
                "say why"
            )
        return entry

    @classmethod
    def from_finding(cls, finding: Finding, justification: str) -> "BaselineEntry":
        justification = justification.strip()
        if not justification:
            raise ValueError("a baseline entry needs a justification")
        return cls(
            fingerprint=finding.fingerprint,
            rule=finding.rule,
            path=finding.path,
            code=finding.code,
            justification=justification,
        )


class Baseline:
    """An ordered set of :class:`BaselineEntry`, round-tripping via JSON."""

    def __init__(self, entries: Iterable[BaselineEntry] = ()) -> None:
        self.entries: list[BaselineEntry] = list(entries)

    def __len__(self) -> int:
        return len(self.entries)

    @classmethod
    def load(cls, path: Path | str) -> "Baseline":
        """Load a baseline file; a missing file is an empty baseline."""
        path = Path(path)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return cls()
        except ValueError as exc:
            raise ValueError(f"baseline {path} is not valid JSON: {exc}") from exc
        version = payload.get("version")
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"baseline {path} has format version {version!r}; this "
                f"tool reads version {_FORMAT_VERSION}"
            )
        return cls(
            BaselineEntry.from_payload(entry)
            for entry in payload.get("entries", [])
        )

    def save(self, path: Path | str) -> None:
        payload = {
            "version": _FORMAT_VERSION,
            "entries": [
                entry.to_payload()
                for entry in sorted(
                    self.entries, key=lambda e: (e.path, e.rule, e.fingerprint)
                )
            ],
        }
        atomic_write_bytes(
            Path(path), (json.dumps(payload, indent=2) + "\n").encode("utf-8")
        )

    def partition(
        self, findings: Sequence[Finding]
    ) -> tuple[list[Finding], list[Finding], list[BaselineEntry]]:
        """Split findings against the baseline.

        Returns ``(new, waived, expired)``: findings with no entry,
        findings an entry waives, and entries whose finding no longer
        exists (fixed code — the entry should be removed).
        """
        by_fingerprint = {entry.fingerprint: entry for entry in self.entries}
        new: list[Finding] = []
        waived: list[Finding] = []
        matched: set[str] = set()
        for finding in findings:
            if finding.fingerprint in by_fingerprint:
                waived.append(finding)
                matched.add(finding.fingerprint)
            else:
                new.append(finding)
        expired = [
            entry for entry in self.entries if entry.fingerprint not in matched
        ]
        return new, waived, expired

    def updated(
        self, findings: Sequence[Finding], justification: str
    ) -> "Baseline":
        """The baseline after grandfathering ``findings`` now.

        Entries still matched by a finding are kept (with their original
        justifications); unmatched entries expire; findings without an
        entry are added under ``justification``.
        """
        new, waived, _expired = self.partition(findings)
        by_fingerprint = {entry.fingerprint: entry for entry in self.entries}
        kept = [by_fingerprint[f.fingerprint] for f in waived]
        added = [BaselineEntry.from_finding(f, justification) for f in new]
        return Baseline(kept + added)
