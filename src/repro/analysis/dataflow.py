"""Interprocedural dataflow over the call graph.

Two analyses live here, both pure functions of a
:class:`~repro.analysis.symbols.SymbolTable` and a
:class:`~repro.analysis.callgraph.CallGraph`:

* **Determinism taint** — a nondeterminism source (clock read, unseeded
  RNG) in a *free*-zone function taints every free-zone function that
  can reach it; a deterministic-zone function with an edge into a
  tainted free function is a **boundary violation**.  Findings anchor at
  the boundary (the one place a fix — injecting a clock, passing a seed
  — belongs) and carry the full shortest call chain down to the source.
  Sources *inside* deterministic or distributed zones are deliberately
  not seeds: the per-file rules already flag those lines directly, and
  the distributed zone reads clocks as its job.

* **Lock order** — every lock acquisition is recorded with the lexical
  stack of locks already held; calls made under a lock propagate to the
  callee's transitive acquisitions.  The resulting held→acquired graph
  must be acyclic: a strongly-connected component means two code paths
  can take the same locks in opposite orders, i.e. a potential deadlock.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.analysis.callgraph import CallGraph
from repro.analysis.symbols import SourceSite, SymbolTable
from repro.analysis.zones import Zone

__all__ = [
    "LockCycle",
    "TaintChain",
    "build_lock_graph",
    "compute_taint",
    "lock_cycles",
    "lock_graph_dot",
]


@dataclass(frozen=True)
class TaintChain:
    """One boundary violation with its full call chain to the source."""

    rule: str  # "transitive-wallclock" | "transitive-rng"
    boundary: str  # qualname of the deterministic-zone function
    boundary_path: str
    boundary_line: int  # the function's def line (finding anchor)
    boundary_code: str  # stripped def line (fingerprint ingredient)
    #: (label, path, line) hops: boundary at its call site, each free
    #: function at the line it calls the next hop, then the source call.
    chain: tuple[tuple[str, str, int], ...]
    source: SourceSite


def _zone(table: SymbolTable, qualname: str) -> str:
    summary = table.summary_of(qualname)
    return summary.zone if summary is not None else Zone.FREE.value


def compute_taint(table: SymbolTable, graph: CallGraph) -> list[TaintChain]:
    """Every deterministic→free boundary that reaches a source."""
    # Seed: source sites in free-zone functions.  BFS order makes every
    # recorded chain a shortest one, and sorting the seeds makes the
    # chosen chain deterministic across runs.
    taint: dict[tuple[str, str], tuple[SourceSite, str | None, int]] = {}
    queue: deque[tuple[str, str]] = deque()
    for qualname in sorted(table.functions):
        summary, info = table.functions[qualname]
        if summary.zone != Zone.FREE.value:
            continue
        for site in sorted(info.sources, key=lambda s: (s.rule, s.line)):
            key = (qualname, site.rule)
            if key not in taint:
                taint[key] = (site, None, site.line)
                queue.append(key)

    # Propagate backwards through free-zone callers only: the taint
    # stops at a zone boundary, where it becomes a finding instead.
    while queue:
        qualname, rule = queue.popleft()
        source, _, _ = taint[(qualname, rule)]
        for edge in sorted(
            graph.reverse.get(qualname, ()), key=lambda e: (e.caller, e.line)
        ):
            if _zone(table, edge.caller) != Zone.FREE.value:
                continue
            key = (edge.caller, rule)
            if key in taint:
                continue
            taint[key] = (source, qualname, edge.line)
            queue.append(key)

    # Boundary scan: deterministic functions with an edge into taint.
    results: list[TaintChain] = []
    seen: set[tuple[str, str, str]] = set()
    for qualname in sorted(table.functions):
        summary, info = table.functions[qualname]
        if summary.zone != Zone.DETERMINISTIC.value:
            continue
        for edge in sorted(
            graph.edges.get(qualname, ()), key=lambda e: (e.line, e.callee)
        ):
            for rule in ("transitive-wallclock", "transitive-rng"):
                record = taint.get((edge.callee, rule))
                if record is None:
                    continue
                if _zone(table, edge.callee) != Zone.FREE.value:
                    continue
                source = record[0]
                dedup = (qualname, rule, source.target)
                if dedup in seen:
                    continue
                seen.add(dedup)
                chain = [(qualname, summary.relpath, edge.line)]
                cursor: str | None = edge.callee
                while cursor is not None:
                    hop_summary = table.summary_of(cursor)
                    hop_path = (
                        hop_summary.relpath if hop_summary else "<unknown>"
                    )
                    src, nxt, hop_line = taint[(cursor, rule)]
                    chain.append((cursor, hop_path, hop_line))
                    if nxt is None:
                        chain.append((src.target, hop_path, src.line))
                    cursor = nxt
                results.append(
                    TaintChain(
                        rule=rule,
                        boundary=qualname,
                        boundary_path=summary.relpath,
                        boundary_line=info.line,
                        boundary_code=info.code,
                        chain=tuple(chain),
                        source=source,
                    )
                )
    return results


# -- lock order --------------------------------------------------------


@dataclass(frozen=True)
class LockCycle:
    """One strongly-connected component of the held→acquired graph."""

    locks: tuple[str, ...]  # sorted members of the cycle
    #: (held→acquired arrow, witnessing function, line) for each edge
    #: of the cycle, one witness per edge.
    witnesses: tuple[tuple[str, str, int], ...]


def _transitive_acquires(
    table: SymbolTable, graph: CallGraph
) -> dict[str, frozenset[str]]:
    """Locks each function may acquire, directly or via any callee."""
    acquires: dict[str, set[str]] = {
        qual: {site.lock for site in info.locks}
        for qual, (_, info) in table.functions.items()
    }
    changed = True
    while changed:
        changed = False
        for caller, edges in graph.edges.items():
            mine = acquires.setdefault(caller, set())
            for edge in edges:
                theirs = acquires.get(edge.callee)
                if theirs and not theirs <= mine:
                    mine |= theirs
                    changed = True
    return {qual: frozenset(locks) for qual, locks in acquires.items()}


def build_lock_graph(
    table: SymbolTable, graph: CallGraph
) -> dict[tuple[str, str], list[tuple[str, int]]]:
    """held→acquired edges with ``(function, line)`` witnesses."""
    edges: dict[tuple[str, str], list[tuple[str, int]]] = {}

    def witness(held: str, acquired: str, qual: str, line: int) -> None:
        if held == acquired:
            return
        edges.setdefault((held, acquired), []).append((qual, line))

    acquires = _transitive_acquires(table, graph)
    for qual in sorted(table.functions):
        _, info = table.functions[qual]
        for site in info.locks:
            for held in site.held:
                witness(held, site.lock, qual, site.line)
        for edge in graph.edges.get(qual, ()):
            if not edge.held:
                continue
            for held in edge.held:
                for lock in sorted(acquires.get(edge.callee, ())):
                    witness(held, lock, qual, edge.line)
    return edges


def lock_cycles(
    lock_graph: dict[tuple[str, str], list[tuple[str, int]]]
) -> list[LockCycle]:
    """Every cycle (SCC with ≥2 locks, or a self-loop) in the graph."""
    adjacency: dict[str, set[str]] = {}
    for held, acquired in lock_graph:
        adjacency.setdefault(held, set()).add(acquired)
        adjacency.setdefault(acquired, set())

    # Tarjan's SCC, iterative to dodge recursion limits on deep graphs.
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = 0
    for root in sorted(adjacency):
        if root in index:
            continue
        work = [(root, iter(sorted(adjacency[root])))]
        index[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, children = work[-1]
            advanced = False
            for child in children:
                if child not in index:
                    index[child] = lowlink[child] = counter
                    counter += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, iter(sorted(adjacency[child]))))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(component)

    cycles: list[LockCycle] = []
    for component in sccs:
        members = sorted(component)
        is_cycle = len(members) > 1 or (
            members[0] in adjacency.get(members[0], ())
        )
        if not is_cycle:
            continue
        member_set = set(members)
        witnesses = []
        for (held, acquired), sites in sorted(lock_graph.items()):
            if held in member_set and acquired in member_set:
                qual, line = sites[0]
                witnesses.append((f"{held} -> {acquired}", qual, line))
        cycles.append(
            LockCycle(locks=tuple(members), witnesses=tuple(witnesses))
        )
    return sorted(cycles, key=lambda c: c.locks)


def lock_graph_dot(
    lock_graph: dict[tuple[str, str], list[tuple[str, int]]]
) -> str:
    """GraphViz rendering of the held→acquired graph."""
    lines = ["digraph lockorder {", "  rankdir=LR;"]
    nodes: set[str] = set()
    for held, acquired in lock_graph:
        nodes.update((held, acquired))
    for node in sorted(nodes):
        lines.append(f'  "{node}";')
    for (held, acquired), sites in sorted(lock_graph.items()):
        qual, line = sites[0]
        lines.append(
            f'  "{held}" -> "{acquired}" [label="{qual}:{line}"];'
        )
    lines.append("}")
    return "\n".join(lines) + "\n"
