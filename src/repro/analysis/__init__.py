"""repro-lint: AST-based enforcement of the repo's core invariants.

The properties this reproduction actually stands on — bit-identical
results across serial/process/distributed backends, seeded-only
randomness, monotonic-only lease clocks, registry names resolvable in
remote workers — are exactly the ones no single test can fully cover.
This subsystem turns each of those (and each past bug class, like the
PR 6 lease clock-skew fix) into a machine-checked rule.

Architecture
------------
* :mod:`repro.analysis.zones` — the zone map: files belong to a
  ``deterministic``, ``distributed``, or ``free`` enforcement zone.
* :mod:`repro.analysis.registry` — the :class:`Rule` protocol and the
  open :func:`register_rule` registry (same idiom as
  ``register_policy`` / ``register_strategy``).
* :mod:`repro.analysis.rules` — the per-file built-ins (``no-wallclock``,
  ``seeded-rng``, ``lease-clock``, ``lock-discipline``,
  ``serialization-safety``, ``no-deprecated-imports``) and the
  whole-program rules (``transitive-wallclock``, ``transitive-rng``,
  ``lock-order``, ``spec-schema-drift``).
* :mod:`repro.analysis.symbols` / :mod:`~repro.analysis.callgraph` /
  :mod:`~repro.analysis.dataflow` — the interprocedural layer: per-file
  module summaries, the registry-aware project call graph, and the
  taint / lock-order analyses over it.
* :mod:`repro.analysis.engine` — one parse per file, zone-matched rule
  dispatch, statement-span ``# repro-lint: ignore[rule] -- reason``
  pragmas, and the project pass.
* :mod:`repro.analysis.incremental` — the content-hash result cache
  that makes warm runs re-analyze only changed files and their
  reverse-dependency cone (``REPRO_LINT_CACHE``).
* :mod:`repro.analysis.baseline` — the committed, justification-carrying
  baseline of grandfathered findings; entries expire when fixed.
* :mod:`repro.analysis.sarif` — findings as SARIF 2.1.0 for GitHub code
  scanning, call chains rendered as ``codeFlows``.
* :mod:`repro.analysis.cli` — ``python -m repro.analysis`` (wired into
  ``make lint`` and CI with ``--strict``; ``--graph dot`` dumps the
  call graph).
"""

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.callgraph import CallGraph, Edge, ProjectContext
from repro.analysis.engine import (
    AnalysisReport,
    analyze_paths,
    analyze_source,
    build_waivers,
    iter_python_files,
)
from repro.analysis.findings import Finding, fingerprinted
from repro.analysis.incremental import AnalysisCache, resolve_cache
from repro.analysis.registry import (
    PROJECT_RULE_REGISTRY,
    RULE_REGISTRY,
    FileContext,
    ProjectRule,
    Rule,
    iter_project_rules,
    iter_rules,
    register_rule,
    registered_rules,
)
from repro.analysis.sarif import to_sarif
from repro.analysis.symbols import (
    ModuleSummary,
    SymbolTable,
    module_name,
    summarize_module,
)
from repro.analysis.zones import ZONE_MAP, Zone, zone_for

# Importing the rules package populates the registries with the built-ins.
from repro.analysis import rules as _builtin_rules  # noqa: F401  (registration)

__all__ = [
    "AnalysisCache",
    "AnalysisReport",
    "Baseline",
    "BaselineEntry",
    "CallGraph",
    "Edge",
    "FileContext",
    "Finding",
    "ModuleSummary",
    "PROJECT_RULE_REGISTRY",
    "ProjectContext",
    "ProjectRule",
    "RULE_REGISTRY",
    "Rule",
    "SymbolTable",
    "ZONE_MAP",
    "Zone",
    "analyze_paths",
    "analyze_source",
    "build_waivers",
    "fingerprinted",
    "iter_project_rules",
    "iter_python_files",
    "iter_rules",
    "module_name",
    "register_rule",
    "registered_rules",
    "resolve_cache",
    "summarize_module",
    "to_sarif",
    "zone_for",
]
