"""repro-lint: AST-based enforcement of the repo's core invariants.

The properties this reproduction actually stands on — bit-identical
results across serial/process/distributed backends, seeded-only
randomness, monotonic-only lease clocks, registry names resolvable in
remote workers — are exactly the ones no single test can fully cover.
This subsystem turns each of those (and each past bug class, like the
PR 6 lease clock-skew fix) into a machine-checked rule.

Architecture
------------
* :mod:`repro.analysis.zones` — the zone map: files belong to a
  ``deterministic``, ``distributed``, or ``free`` enforcement zone.
* :mod:`repro.analysis.registry` — the :class:`Rule` protocol and the
  open :func:`register_rule` registry (same idiom as
  ``register_policy`` / ``register_strategy``).
* :mod:`repro.analysis.rules` — the six built-ins: ``no-wallclock``,
  ``seeded-rng``, ``lease-clock``, ``lock-discipline``,
  ``serialization-safety``, ``no-deprecated-imports``.
* :mod:`repro.analysis.engine` — one parse per file, zone-matched rule
  dispatch, inline ``# repro-lint: ignore[rule] -- reason`` pragmas.
* :mod:`repro.analysis.baseline` — the committed, justification-carrying
  baseline of grandfathered findings; entries expire when fixed.
* :mod:`repro.analysis.cli` — ``python -m repro.analysis`` (wired into
  ``make lint`` and CI with ``--strict``).
"""

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.engine import (
    AnalysisReport,
    analyze_paths,
    analyze_source,
    iter_python_files,
)
from repro.analysis.findings import Finding, fingerprinted
from repro.analysis.registry import (
    RULE_REGISTRY,
    FileContext,
    Rule,
    iter_rules,
    register_rule,
    registered_rules,
)
from repro.analysis.zones import ZONE_MAP, Zone, zone_for

# Importing the rules package populates RULE_REGISTRY with the built-ins.
from repro.analysis import rules as _builtin_rules  # noqa: F401  (registration)

__all__ = [
    "AnalysisReport",
    "Baseline",
    "BaselineEntry",
    "FileContext",
    "Finding",
    "RULE_REGISTRY",
    "Rule",
    "ZONE_MAP",
    "Zone",
    "analyze_paths",
    "analyze_source",
    "fingerprinted",
    "iter_python_files",
    "iter_rules",
    "register_rule",
    "registered_rules",
    "zone_for",
]
