"""Seeded-RNG rule: every random stream must name its seed.

The sweep cache and every cross-backend parity test rest on results
being a pure function of the scenario config; a single unseeded
generator (or any draw from the hidden module-level global state of
:mod:`random` / ``numpy.random``) silently breaks bit-identity in a way
no small test reliably catches.  The sanctioned pattern is
:mod:`repro.rng`: explicit generators, seeds derived from the scenario.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.astutil import canonical
from repro.analysis.findings import Finding
from repro.analysis.registry import FileContext, Rule, register_rule
from repro.analysis.zones import Zone

__all__ = ["SeededRngRule"]

#: Constructors that are fine *if* they take an explicit seed argument.
_SEEDED_CONSTRUCTORS = frozenset({"numpy.random.default_rng", "random.Random"})

#: Seed parameter names accepted by the constructors above.
_SEED_KWARGS = frozenset({"seed", "x"})

#: ``numpy.random`` attributes that do not touch the legacy global state.
_NUMPY_ALLOWED = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.Generator",
        "numpy.random.SeedSequence",
        "numpy.random.BitGenerator",
        "numpy.random.PCG64",
        "numpy.random.PCG64DXSM",
        "numpy.random.Philox",
        "numpy.random.SFC64",
        "numpy.random.MT19937",
    }
)

#: ``random`` module attributes that construct independent streams rather
#: than drawing from the module-level global generator.
_RANDOM_ALLOWED = frozenset({"random.Random", "random.SystemRandom"})


class SeededRngRule(Rule):
    """Explicit seeds only; module-level RNG state is banned outright."""

    id = "seeded-rng"
    summary = (
        "RNG constructors must take an explicit seed; module-level "
        "random.*/np.random.* draws are banned"
    )
    zones = frozenset({Zone.DETERMINISTIC, Zone.DISTRIBUTED})

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = canonical(node.func, ctx.aliases)
            if target is None:
                continue
            if target in _SEEDED_CONSTRUCTORS:
                seeded = bool(node.args) or any(
                    kw.arg in _SEED_KWARGS for kw in node.keywords
                )
                if not seeded:
                    yield ctx.finding(
                        self.id,
                        node,
                        f"{target}() without an explicit seed: the stream "
                        "is OS-entropy-seeded and the result can never be "
                        "reproduced — derive the seed from the scenario "
                        "(see repro.rng)",
                    )
            elif (
                target.startswith("numpy.random.")
                and target not in _NUMPY_ALLOWED
            ):
                yield ctx.finding(
                    self.id,
                    node,
                    f"{target}() draws from numpy's hidden module-level "
                    "generator: shared mutable state makes results depend "
                    "on call order across the whole process — use "
                    "numpy.random.default_rng(seed)",
                )
            elif (
                target.startswith("random.")
                and target not in _RANDOM_ALLOWED
            ):
                yield ctx.finding(
                    self.id,
                    node,
                    f"{target}() draws from the random module's global "
                    "state: results depend on every other draw in the "
                    "process — construct random.Random(seed) instead",
                )


register_rule(SeededRngRule())
