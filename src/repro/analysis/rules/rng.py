"""Seeded-RNG rule: every random stream must name its seed.

The sweep cache and every cross-backend parity test rest on results
being a pure function of the scenario config; a single unseeded
generator (or any draw from the hidden module-level global state of
:mod:`random` / ``numpy.random``) silently breaks bit-identity in a way
no small test reliably catches.  The sanctioned pattern is
:mod:`repro.rng`: explicit generators, seeds derived from the scenario.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.registry import FileContext, Rule, register_rule
from repro.analysis.sources import rng_violation
from repro.analysis.zones import Zone

__all__ = ["SeededRngRule"]


class SeededRngRule(Rule):
    """Explicit seeds only; module-level RNG state is banned outright."""

    id = "seeded-rng"
    summary = (
        "RNG constructors must take an explicit seed; module-level "
        "random.*/np.random.* draws are banned"
    )
    zones = frozenset({Zone.DETERMINISTIC, Zone.DISTRIBUTED})

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            violation = rng_violation(node, ctx.aliases)
            if violation is not None:
                yield ctx.finding(self.id, node, violation[1])


register_rule(SeededRngRule())
