"""Broker-serialization-safety rule.

Scenarios travel to remote workers as *names*: a worker re-resolves
``scenario.policy`` through ``POLICY_REGISTRY`` after importing the
module that registered it (``worker --import that.module``).  That
contract only holds for callables that exist at import time.  A lambda,
closure, or class defined *inside a function* and handed to a
registration or submission call exists only in the submitting process —
every remote job fails with "unknown policy", or worse, resolves to a
same-named callable closing over different state.

Module-level lambdas are deliberately allowed: re-importing the module
re-registers the identical callable, so they resolve remotely.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.astutil import dotted
from repro.analysis.findings import Finding
from repro.analysis.registry import ALL_ZONES, FileContext, Rule, register_rule

__all__ = ["SerializationSafetyRule"]

#: Call sites whose callable arguments must resolve inside remote workers.
REGISTRATION_CALLS = frozenset(
    {
        "register_policy",
        "register_strategy",
        "register_platform",
        "register_rule",
        "submit",
        "submit_many",
    }
)


class SerializationSafetyRule(Rule):
    """No call-time-only callables into registries or job submission."""

    id = "serialization-safety"
    summary = (
        "lambdas/closures/local classes passed to register_*/submit* "
        "inside a function cannot resolve in remote workers"
    )
    zones = ALL_ZONES

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        visitor = _Visitor(self.id, ctx)
        visitor.visit(ctx.tree)
        yield from visitor.findings


class _Visitor(ast.NodeVisitor):
    def __init__(self, rule_id: str, ctx: FileContext) -> None:
        self.rule_id = rule_id
        self.ctx = ctx
        self.findings: list[Finding] = []
        #: One set of locally-defined callable names per enclosing function.
        self._scopes: list[set[str]] = []

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        local = {
            sub.name
            for sub in ast.walk(node)
            if sub is not node
            and isinstance(
                sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            )
        }
        self._scopes.append(local)
        self.generic_visit(node)
        self._scopes.pop()

    visit_AsyncFunctionDef = visit_FunctionDef  # same scoping rules

    def visit_Call(self, node: ast.Call) -> None:
        if self._scopes and self._call_name(node) in REGISTRATION_CALLS:
            args = list(node.args) + [kw.value for kw in node.keywords]
            for arg in args:
                self._check_arg(node, arg)
        self.generic_visit(node)

    @staticmethod
    def _call_name(node: ast.Call) -> str | None:
        path = dotted(node.func)
        if path is not None:
            return path.rpartition(".")[2]
        return None

    def _check_arg(self, call: ast.Call, arg: ast.expr) -> None:
        site = self._call_name(call)
        if isinstance(arg, ast.Lambda):
            self.findings.append(
                self.ctx.finding(
                    self.rule_id,
                    arg,
                    f"lambda passed to {site}() inside a function: remote "
                    "workers resolve registrations by importing modules, "
                    "and a call-time closure never exists there — define "
                    "the builder at module level and register it by name",
                )
            )
        elif isinstance(arg, ast.Name) and any(
            arg.id in scope for scope in self._scopes
        ):
            self.findings.append(
                self.ctx.finding(
                    self.rule_id,
                    arg,
                    f"locally-defined {arg.id!r} passed to {site}() : a "
                    "function-local def/class is unreachable from a remote "
                    "worker's import of this module — hoist it to module "
                    "level",
                )
            )


register_rule(SerializationSafetyRule())
