"""Deprecated-internal-import rule.

``repro.exploration`` became a warn-on-import front for ``repro.search``
in PR 7; the runtime ``DeprecationWarning`` only fires for whoever
actually executes the import, while this rule fails the lint for anyone
*writing* one — so the deprecated surface can only shrink.  The shim
package itself is exempt (it must import its replacement), as are tests
that pin the shim's deprecation behavior (tests sit outside the default
scan roots).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.registry import ALL_ZONES, FileContext, Rule, register_rule

__all__ = ["DeprecatedImportRule"]

#: Deprecated module → its replacement (shown in the message).
DEPRECATED_IMPORTS: dict[str, str] = {
    "repro.exploration": "repro.search",
}


class DeprecatedImportRule(Rule):
    """No new imports of deprecated internal modules."""

    id = "no-deprecated-imports"
    summary = (
        "src/benchmarks/examples may not import deprecated internal "
        "modules (repro.exploration -> repro.search)"
    )
    zones = ALL_ZONES

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for deprecated, replacement in DEPRECATED_IMPORTS.items():
            # The shim package may (must) reference itself.
            shim_dir = deprecated.replace(".", "/")
            if f"/{shim_dir}/" in f"/{ctx.relpath}/":
                continue
            yield from self._check_module(ctx, deprecated, replacement)

    def _check_module(
        self, ctx: FileContext, deprecated: str, replacement: str
    ) -> Iterator[Finding]:
        message = (
            f"import of deprecated {deprecated}: it is a warn-on-import "
            f"front — import from {replacement} instead"
        )
        parent, _, leaf = deprecated.rpartition(".")
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                if any(
                    alias.name == deprecated
                    or alias.name.startswith(deprecated + ".")
                    for alias in node.names
                ):
                    yield ctx.finding(self.id, node, message)
            elif isinstance(node, ast.ImportFrom) and not node.level:
                module = node.module or ""
                if module == deprecated or module.startswith(deprecated + "."):
                    yield ctx.finding(self.id, node, message)
                elif module == parent and any(
                    alias.name == leaf for alias in node.names
                ):
                    yield ctx.finding(self.id, node, message)


register_rule(DeprecatedImportRule())
