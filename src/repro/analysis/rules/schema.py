"""Spec-schema-drift rule: payload classes must stay self-consistent.

The sweep cache, the experiment spec, and the distributed job spool all
revolve around one duck type: a dataclass with ``key_payload`` (content
addressing), ``to_payload``/``from_payload`` (wire round-trip), and
default-elision guards that keep old hashes stable when new axes are
added.  Adding a Scenario field without threading it through all three
methods silently produces colliding cache keys or specs that drop the
new axis on the floor — drift that no single-file rule can see, because
the invariant spans the class's fields and every payload method at once.

Checked, per class defining ``key_payload``/``to_payload``/
``from_payload`` with annotated fields:

* every field is read (transitively through ``self``-method calls) in
  ``key_payload`` and in ``to_payload``;
* every field name appears as a string key in ``from_payload``;
* every default-elision guard (``self.f != LIT``, ``== LIT``,
  ``not self.f``) in ``key_payload``'s closure compares against the
  field's actual dataclass default — a guard that disagrees with the
  default changes historical hashes.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from repro.analysis.callgraph import ProjectContext
from repro.analysis.findings import Finding
from repro.analysis.registry import ProjectRule, register_rule
from repro.analysis.symbols import ClassInfo

__all__ = ["SpecSchemaDriftRule"]

_REQUIRED_METHODS = ("key_payload", "to_payload", "from_payload")

#: Literal spellings whose runtime value is falsy — what ``not self.f``
#: elision guards implicitly compare against.
_FALSY_LITERALS = frozenset(
    {"()", "[]", "{}", "''", '""', "0", "0.0", "None", "False", ""}
)


def _closure(schema: Mapping[str, dict], start: str) -> set[str]:
    """``start`` plus every method transitively reachable via ``self``."""
    reached: set[str] = set()
    frontier = [start]
    while frontier:
        name = frontier.pop()
        if name in reached or name not in schema:
            continue
        reached.add(name)
        frontier.extend(schema[name]["self_calls"])
    return reached


def _reads(schema: Mapping[str, dict], methods: set[str]) -> set[str]:
    out: set[str] = set()
    for name in methods:
        out.update(schema[name]["self_reads"])
    return out


class SpecSchemaDriftRule(ProjectRule):
    """Fields, payload methods, and elision guards must agree."""

    id = "spec-schema-drift"
    summary = (
        "payload classes (key_payload/to_payload/from_payload) must "
        "reference every field consistently and elide only true defaults"
    )
    incremental = True

    def check(self, ctx: ProjectContext) -> Iterator[Finding]:
        for qualname in sorted(ctx.table.classes):
            summary, info = ctx.table.classes[qualname]
            yield from self._check_class(summary.relpath, qualname, info)

    def _check_class(
        self, relpath: str, qualname: str, info: ClassInfo
    ) -> Iterator[Finding]:
        schema = info.schema
        if not schema or not info.fields:
            return
        if any(method not in info.methods for method in _REQUIRED_METHODS):
            return
        field_names = [name for name, _ in info.fields]
        defaults = dict(info.fields)

        def finding(message: str) -> Finding:
            return Finding(
                rule=self.id,
                path=relpath,
                line=info.line,
                col=0,
                message=f"{qualname}: {message}",
                code=info.code,
            )

        for method in ("key_payload", "to_payload"):
            read = _reads(schema, _closure(schema, method))
            for name in field_names:
                if name not in read:
                    yield finding(
                        f"field {name!r} is never read in {method}() (or any "
                        f"method it calls) — a scenario differing only in "
                        f"{name!r} would {'hash identically' if method == 'key_payload' else 'serialize identically'}, "
                        "so the field silently doesn't exist for "
                        f"{'content addressing' if method == 'key_payload' else 'the wire format'}"
                    )

        from_keys = set()
        for method in _closure(schema, "from_payload"):
            from_keys.update(schema[method]["str_keys"])
        for name in field_names:
            if name not in from_keys:
                yield finding(
                    f"field {name!r} never appears as a payload key in "
                    "from_payload() — round-tripping drops it back to the "
                    "default, so workers would run a different scenario "
                    "than the one submitted"
                )

        for method in sorted(_closure(schema, "key_payload")):
            for guard in schema[method]["guards"]:
                field, op, literal = guard[0], guard[1], guard[2]
                if field not in defaults:
                    continue
                default = defaults[field]
                if not default:
                    yield finding(
                        f"key_payload() elides {field!r} behind a default "
                        "guard, but the field has no dataclass default — "
                        "the guard compares against nothing stable"
                    )
                elif op in ("==", "!=") and literal != default:
                    yield finding(
                        f"default-elision guard on {field!r} compares "
                        f"against {literal} but the dataclass default is "
                        f"{default} — historical content hashes shift the "
                        "moment anyone relies on the elision"
                    )
                elif op == "not" and default not in _FALSY_LITERALS:
                    yield finding(
                        f"'not self.{field}' elision guard, but the default "
                        f"{default} is truthy — default-valued scenarios "
                        "would not be elided and old hashes break"
                    )


register_rule(SpecSchemaDriftRule())
