"""Lock-discipline rule for the threaded broker/transport code.

Two lexical checks over every class in a distributed-zone module:

* **Split-brain writes** — an instance attribute assigned both inside a
  ``with self._lock:`` block and outside one (``__init__`` excepted:
  construction happens-before any thread can see the object).  Either
  the attribute needs the lock everywhere or nowhere; a mix is how
  torn-state races are born.

* **Blocking under the lock** — sleeping, socket I/O, or file I/O while
  holding a lock stalls every other thread queued on it for the full
  I/O latency.  Where that is the *point* (a lock that exists to
  serialize one shared socket), the finding is baselined with its
  justification rather than silenced.

The analysis is lexical: a helper method that writes shared state and is
only ever *called* under the lock is not visible to it.  That is the
right trade — the rule stays precise on what it can see, and the
reviewer owns call-graph locking, as before.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.astutil import canonical, dotted
from repro.analysis.findings import Finding
from repro.analysis.registry import FileContext, Rule, register_rule
from repro.analysis.zones import Zone

__all__ = ["LockDisciplineRule"]

#: Calls that block by canonical module path.
_BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "socket.create_connection",
        "socket.getaddrinfo",
        "subprocess.run",
        "subprocess.check_call",
        "subprocess.check_output",
    }
)

#: Method names that block regardless of receiver (socket and file I/O).
_BLOCKING_ATTRS = frozenset(
    {
        "sleep",
        "recv",
        "recv_into",
        "send",
        "sendall",
        "sendto",
        "accept",
        "connect",
        "create_connection",
        "makefile",
        "readline",
        "readlines",
        "read_text",
        "read_bytes",
        "write_text",
        "write_bytes",
    }
)


def _is_lock_context(item: ast.withitem) -> bool:
    path = dotted(item.context_expr)
    return path is not None and "lock" in path.lower()


def _locked_node_ids(func: ast.AST) -> set[int]:
    """Identities of every AST node lexically inside a with-lock body."""
    locked: set[int] = set()
    for node in ast.walk(func):
        if isinstance(node, (ast.With, ast.AsyncWith)) and any(
            _is_lock_context(item) for item in node.items
        ):
            for stmt in node.body:
                for sub in ast.walk(stmt):
                    locked.add(id(sub))
    return locked


def _self_attr_targets(node: ast.stmt) -> list[tuple[str, ast.AST]]:
    targets: list[ast.expr] = []
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target]
    out = []
    for target in targets:
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            out.append((target.attr, target))
    return out


class LockDisciplineRule(Rule):
    """Consistent locking of shared attributes; no blocking while held."""

    id = "lock-discipline"
    summary = (
        "attributes written both inside and outside `with self._lock`, "
        "and blocking calls made while holding a lock"
    )
    zones = frozenset({Zone.DISTRIBUTED})

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for cls in ast.walk(ctx.tree):
            if isinstance(cls, ast.ClassDef):
                yield from self._check_class(ctx, cls)

    def _check_class(
        self, ctx: FileContext, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        locked_attrs: set[str] = set()
        unlocked_writes: list[tuple[str, ast.AST]] = []
        class_has_lock = False

        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            locked = _locked_node_ids(method)
            if locked:
                class_has_lock = True
            for node in ast.walk(method):
                if isinstance(
                    node, (ast.Assign, ast.AugAssign, ast.AnnAssign)
                ):
                    for attr, target in _self_attr_targets(node):
                        if id(target) in locked:
                            locked_attrs.add(attr)
                        elif method.name != "__init__":
                            unlocked_writes.append((attr, node))
                elif isinstance(node, ast.Call) and id(node) in locked:
                    blocking = self._blocking_call(ctx, node)
                    if blocking is not None:
                        yield ctx.finding(
                            self.id,
                            node,
                            f"blocking call {blocking}() while holding a "
                            "lock: every thread queued on the lock stalls "
                            "for the full I/O latency — move the I/O "
                            "outside the critical section or bound it "
                            "with a timeout and baseline the finding",
                        )

        if not class_has_lock:
            return
        for attr, node in unlocked_writes:
            if attr in locked_attrs:
                yield ctx.finding(
                    self.id,
                    node,
                    f"self.{attr} is written both inside and outside "
                    f"`with ...lock` blocks in {cls.name}: pick one "
                    "regime — a sometimes-locked attribute is a torn-"
                    "state race waiting for a scheduler to find it",
                )

    @staticmethod
    def _blocking_call(ctx: FileContext, node: ast.Call) -> str | None:
        target = canonical(node.func, ctx.aliases)
        if target in _BLOCKING_CALLS:
            return target
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _BLOCKING_ATTRS:
            return dotted(func) or func.attr
        if isinstance(func, ast.Name) and func.id == "open":
            return "open"
        return None


register_rule(LockDisciplineRule())
