"""The telemetry side-channel rule.

Telemetry's hard contract is one-way flow: instrumented code may *hand*
values to a recorder (spans, counters, gauges, events) but nothing it
computes may *depend* on what the recorder holds — otherwise results
with telemetry on and off would diverge, and the bit-reproducibility
story collapses.  This rule polices the consumer side in the
deterministic and distributed zones:

* the read API (``snapshot``/``to_payload`` on a recorder, and the
  module-level ``summary``/``merge_shards``/``read_shards``/
  ``chrome_trace`` collectors) is banned outright — reports belong in
  free-zone tooling;
* values obtained from a recorder's injected clock (``rec.now()``) are
  tracked through local assignments and arithmetic: they may only flow
  *back into* recorder write calls (the ``t0 = rec.now(); ...;
  rec.observe(n, rec.now() - t0)`` phase-timing idiom).  Returning one,
  storing one into object state, branching on one, or passing one to any
  non-recorder call is a side-channel leak and gets flagged.

``rec.enabled`` guards are sanctioned: a boolean "is telemetry on?"
check changes only whether telemetry is *recorded*, never what a result
contains — that is exactly the parity the tests assert.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.astutil import canonical
from repro.analysis.findings import Finding
from repro.analysis.registry import FileContext, Rule, register_rule
from repro.analysis.zones import Zone

__all__ = ["TelemetrySideChannelRule"]

#: Factory spellings whose return value is a recorder.
_FACTORY_TAILS = frozenset({"get_recorder", "recorder_from_env"})

#: Recorder constructors (canonical tail).
_CONSTRUCTOR_TAILS = frozenset({"Recorder", "NullRecorder"})

#: Recorder methods that *emit* telemetry state — banned on instrumented
#: receivers.  ``enabled``/``process``/``pid`` attribute reads are fine.
_READ_METHODS = frozenset({"snapshot", "to_payload"})

#: Module-level collectors (matched as ``...telemetry[.submodule].<name>``).
_READ_FUNCS = frozenset(
    {
        "summary",
        "merge_shards",
        "merge_snapshots",
        "read_shards",
        "read_shard",
        "chrome_trace",
        "write_chrome_trace",
    }
)

#: Recorder write API: calls on a recorder receiver whose arguments may
#: freely include clock-tainted values (that is what they are *for*).
_WRITE_METHODS = frozenset(
    {"span", "count", "gauge", "observe", "event", "complete", "now", "flush"}
)

#: Pure numeric builtins a tainted value may pass through on its way
#: back into a recorder call.
_NUMERIC_BUILTINS = frozenset({"float", "int", "abs", "min", "max", "round"})

#: Attribute-name fragments that mark an object as "the recorder" even
#: when it arrived via attribute access (``self._telemetry``) rather
#: than a tracked assignment.
_RECORDERISH = ("telemetry", "recorder")


def _tail(name: str | None) -> str | None:
    return None if name is None else name.rsplit(".", 1)[-1]


def _is_telemetry_module_func(canon: str | None) -> bool:
    if canon is None:
        return False
    head, _, tail = canon.rpartition(".")
    if tail not in _READ_FUNCS:
        return False
    return head.endswith("telemetry") or ".telemetry." in f"{head}."


class _Scope:
    """One analysis scope: a function body or the module toplevel."""

    def __init__(self, statements: list[ast.stmt]) -> None:
        self.statements = statements


def _own_statements(body: list[ast.stmt]) -> list[ast.stmt]:
    """Every statement lexically in this scope, nested defs excluded."""
    out: list[ast.stmt] = []
    for stmt in body:
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        out.append(stmt)
        for field in ("body", "orelse", "finalbody"):
            out.extend(_own_statements(getattr(stmt, field, None) or []))
        for handler in getattr(stmt, "handlers", None) or []:
            out.extend(_own_statements(handler.body))
    return out


class TelemetrySideChannelRule(Rule):
    """No value read from the Recorder may flow into result payloads."""

    id = "telemetry-side-channel"
    summary = (
        "instrumented zones may hand values to the telemetry Recorder but "
        "never read them back into results (write-only side channel)"
    )
    zones = frozenset({Zone.DETERMINISTIC, Zone.DISTRIBUTED})

    # -- recorder identification ----------------------------------------

    def _recorder_names(self, ctx: FileContext, scope: _Scope) -> set[str]:
        names: set[str] = set()
        for stmt in scope.statements:
            if not isinstance(stmt, ast.Assign):
                continue
            if not self._is_recorder_source(ctx, stmt.value, names):
                continue
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        return names

    def _is_recorder_source(
        self, ctx: FileContext, node: ast.expr, names: set[str]
    ) -> bool:
        if isinstance(node, ast.Call):
            canon = canonical(node.func, ctx.aliases)
            tail = _tail(canon)
            return tail in _FACTORY_TAILS or tail in _CONSTRUCTOR_TAILS
        return self._is_recorder_expr(ctx, node, names)

    def _is_recorder_expr(
        self, ctx: FileContext, node: ast.expr, names: set[str]
    ) -> bool:
        if isinstance(node, ast.Name):
            return node.id in names
        if isinstance(node, ast.Call):
            tail = _tail(canonical(node.func, ctx.aliases))
            return tail in _FACTORY_TAILS or tail in _CONSTRUCTOR_TAILS
        if isinstance(node, ast.Attribute):
            lowered = node.attr.lower()
            return any(part in lowered for part in _RECORDERISH)
        return False

    # -- clock taint ------------------------------------------------------

    def _is_now_call(
        self, ctx: FileContext, node: ast.expr, names: set[str]
    ) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "now"
            and self._is_recorder_expr(ctx, node.func.value, names)
        )

    def _contains_taint(
        self,
        ctx: FileContext,
        node: ast.expr,
        tainted: set[str],
        names: set[str],
    ) -> bool:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and sub.id in tainted:
                return True
            if self._is_now_call(ctx, sub, names):
                return True
        return False

    def _compute_taint(
        self, ctx: FileContext, scope: _Scope, names: set[str]
    ) -> set[str]:
        tainted: set[str] = set()
        changed = True
        while changed:
            changed = False
            for stmt in scope.statements:
                value = getattr(stmt, "value", None)
                if value is None or not isinstance(
                    stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)
                ):
                    continue
                if not self._contains_taint(ctx, value, tainted, names):
                    continue
                targets = (
                    stmt.targets
                    if isinstance(stmt, ast.Assign)
                    else [stmt.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name) and target.id not in tainted:
                        tainted.add(target.id)
                        changed = True
        return tainted

    # -- the check --------------------------------------------------------

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        scopes = [_Scope(_own_statements(ctx.tree.body))]
        module_names = self._recorder_names(ctx, scopes[0])
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scopes.append(_Scope(_own_statements(node.body)))
        for scope in scopes:
            yield from self._check_scope(ctx, scope, module_names)

    def _check_scope(
        self, ctx: FileContext, scope: _Scope, module_names: set[str]
    ) -> Iterator[Finding]:
        names = module_names | self._recorder_names(ctx, scope)
        tainted = self._compute_taint(ctx, scope, names)

        def leaks(node: ast.expr) -> bool:
            return self._contains_taint(ctx, node, tainted, names)

        # Call checks walk each statement subtree; the scope list contains
        # compound statements *and* their children, so dedupe by node id.
        seen_calls: set[int] = set()
        calls: list[ast.Call] = []
        for stmt in scope.statements:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call) and id(node) not in seen_calls:
                    seen_calls.add(id(node))
                    calls.append(node)

        # Read API: recorder methods and module-level collectors.
        for node in calls:
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _READ_METHODS
                and self._is_recorder_expr(ctx, node.func.value, names)
            ):
                yield ctx.finding(
                    self.id,
                    node,
                    f"recorder.{node.func.attr}() in an instrumented "
                    "zone: telemetry is a write-only side channel here "
                    "— aggregate reads belong in free-zone reporting "
                    "tools",
                )
            elif _is_telemetry_module_func(canonical(node.func, ctx.aliases)):
                yield ctx.finding(
                    self.id,
                    node,
                    f"{canonical(node.func, ctx.aliases)}() in an "
                    "instrumented zone: merging or summarizing "
                    "telemetry is free-zone reporting, not something "
                    "a result computation may consult",
                )

        # Tainted values handed to non-recorder calls.
        for node in calls:
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _WRITE_METHODS
                and self._is_recorder_expr(ctx, node.func.value, names)
            ):
                continue  # the sanctioned sink
            tail = _tail(canonical(node.func, ctx.aliases))
            if tail in _NUMERIC_BUILTINS:
                continue  # pure numeric plumbing on the way to a sink
            for arg in [*node.args, *(kw.value for kw in node.keywords)]:
                if leaks(arg):
                    yield ctx.finding(
                        self.id,
                        node,
                        "passing a telemetry-clock-derived value to a "
                        "non-recorder call: recorder.now() readings "
                        "may only feed recorder write calls",
                    )
                    break

        for stmt in scope.statements:
            # Clock-taint leaks out of the recorder loop.
            if isinstance(stmt, ast.Return) and stmt.value is not None:
                if leaks(stmt.value):
                    yield ctx.finding(
                        self.id,
                        stmt,
                        "returning a value derived from the telemetry "
                        "clock: recorder.now() readings may only flow back "
                        "into the recorder, never into results",
                    )
            elif isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                value = getattr(stmt, "value", None)
                if value is None or not leaks(value):
                    continue
                targets = (
                    stmt.targets
                    if isinstance(stmt, ast.Assign)
                    else [stmt.target]
                )
                for target in targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        yield ctx.finding(
                            self.id,
                            stmt,
                            "storing a telemetry-clock-derived value into "
                            "object state: that is how side-channel "
                            "readings end up in result payloads — keep "
                            "them in locals that feed recorder calls",
                        )
            elif isinstance(stmt, (ast.If, ast.While)):
                if leaks(stmt.test):
                    yield ctx.finding(
                        self.id,
                        stmt,
                        "branching on a telemetry-clock-derived value: "
                        "control flow influenced by the recorder makes "
                        "results depend on telemetry being enabled",
                    )


register_rule(TelemetrySideChannelRule())
