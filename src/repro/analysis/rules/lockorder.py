"""Lock-order rule: the global lock-acquisition graph must be acyclic.

The distributed backends serialize shared state behind locks
(``TcpTransport._lock`` around the socket, and whatever the elastic
fleet work adds next).  Two locks ever taken in opposite orders on two
code paths is a deadlock waiting for the right interleaving — the kind
of bug that surfaces once a month on a loaded broker and never under a
debugger.  This rule builds the held→acquired graph across *all*
analyzed files (lexical nesting plus calls made while holding a lock,
transitively) and flags every strongly-connected component in it.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.callgraph import ProjectContext
from repro.analysis.dataflow import build_lock_graph, lock_cycles
from repro.analysis.findings import Finding
from repro.analysis.registry import ProjectRule, register_rule

__all__ = ["LockOrderRule"]


class LockOrderRule(ProjectRule):
    """Flag cycles in the project-wide lock-acquisition order."""

    id = "lock-order"
    summary = (
        "lock acquisitions must form a consistent global order: a cycle "
        "in the held->acquired graph is a potential deadlock"
    )
    # A cycle is a property of the whole graph; carrying per-file results
    # across warm runs could mask an edge added elsewhere.
    incremental = False

    def check(self, ctx: ProjectContext) -> Iterator[Finding]:
        lock_graph = ctx._extra.get("lock_graph")
        if lock_graph is None:
            lock_graph = build_lock_graph(ctx.table, ctx.graph)
            ctx._extra["lock_graph"] = lock_graph
        for cycle in lock_cycles(lock_graph):
            # Anchor at the first witness site so the finding lands in
            # real code; the chain carries every edge of the cycle.
            arrow, qual, line = cycle.witnesses[0]
            summary = ctx.table.summary_of(qual)
            path = summary.relpath if summary else "<unknown>"
            info = ctx.table.function(qual)
            chain = tuple(
                (
                    witness_arrow,
                    (
                        ctx.table.summary_of(witness_qual).relpath
                        if ctx.table.summary_of(witness_qual)
                        else "<unknown>"
                    ),
                    witness_line,
                )
                for witness_arrow, witness_qual, witness_line in cycle.witnesses
            )
            yield Finding(
                rule=self.id,
                path=path,
                line=line,
                col=0,
                message=(
                    "lock-order cycle between "
                    + ", ".join(cycle.locks)
                    + ": these locks are acquired in conflicting orders, "
                    "so two threads can deadlock — pick one global order "
                    "(witnesses: "
                    + "; ".join(a for a, _, _ in cycle.witnesses)
                    + ")"
                ),
                code=info.code if info else "",
                chain=chain,
            )


register_rule(LockOrderRule())
