"""Built-in repro-lint rules.

Importing this package populates the rule registry — each rule module
calls :func:`~repro.analysis.registry.register_rule` at import time,
exactly like the built-in policies/strategies pre-populate theirs.
Third-party rules follow the same recipe: subclass
:class:`~repro.analysis.registry.Rule`, register an instance, and make
sure the module is imported before the analyzer runs.
"""

from repro.analysis.rules.clocks import LeaseClockRule, NoWallclockRule
from repro.analysis.rules.imports import DeprecatedImportRule
from repro.analysis.rules.lockorder import LockOrderRule
from repro.analysis.rules.locks import LockDisciplineRule
from repro.analysis.rules.rng import SeededRngRule
from repro.analysis.rules.schema import SpecSchemaDriftRule
from repro.analysis.rules.serialization import SerializationSafetyRule
from repro.analysis.rules.telemetry import TelemetrySideChannelRule
from repro.analysis.rules.transitive import (
    TransitiveRngRule,
    TransitiveWallclockRule,
)

__all__ = [
    "DeprecatedImportRule",
    "LeaseClockRule",
    "LockDisciplineRule",
    "LockOrderRule",
    "NoWallclockRule",
    "SeededRngRule",
    "SerializationSafetyRule",
    "SpecSchemaDriftRule",
    "TelemetrySideChannelRule",
    "TransitiveRngRule",
    "TransitiveWallclockRule",
]
