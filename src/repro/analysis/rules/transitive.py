"""Transitive determinism taint: the interprocedural clock/RNG rules.

The per-file ``no-wallclock`` and ``seeded-rng`` rules catch a direct
violation on the line it happens.  What they cannot see is a
deterministic-zone function laundering nondeterminism through helpers:
``repro.sim`` calling into a free-zone utility module whose helper's
helper reads ``time.time()``.  These rules flag exactly that — the
finding anchors at the deterministic function that crosses the zone
boundary (where the fix belongs: inject the value, pass the seed) and
renders the full call chain down to the offending source.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.callgraph import ProjectContext
from repro.analysis.dataflow import compute_taint
from repro.analysis.findings import Finding
from repro.analysis.registry import ProjectRule, register_rule

__all__ = ["TransitiveRngRule", "TransitiveWallclockRule"]


class _TaintRule(ProjectRule):
    """Shared engine: one subclass per taint flavor filters by rule id."""

    incremental = True

    def check(self, ctx: ProjectContext) -> Iterator[Finding]:
        taint = ctx._extra.get("taint")
        if taint is None:
            taint = compute_taint(ctx.table, ctx.graph)
            ctx._extra["taint"] = taint
        for violation in taint:
            if violation.rule != self.id:
                continue
            yield Finding(
                rule=self.id,
                path=violation.boundary_path,
                line=violation.boundary_line,
                col=0,
                message=(
                    f"{violation.boundary} is in a deterministic zone but "
                    f"reaches {violation.source.target}() "
                    f"({violation.source.detail}) via: "
                    + " -> ".join(label for label, _, _ in violation.chain)
                ),
                code=violation.boundary_code,
                chain=violation.chain,
            )


class TransitiveWallclockRule(_TaintRule):
    """Deterministic code must not reach a clock through any call chain."""

    id = "transitive-wallclock"
    summary = (
        "deterministic-zone functions may not reach a process-clock read "
        "through any call chain (the per-file rule only sees direct reads)"
    )


class TransitiveRngRule(_TaintRule):
    """Deterministic code must not reach unseeded randomness either."""

    id = "transitive-rng"
    summary = (
        "deterministic-zone functions may not reach an unseeded or "
        "global-state RNG draw through any call chain"
    )


register_rule(TransitiveWallclockRule())
register_rule(TransitiveRngRule())
