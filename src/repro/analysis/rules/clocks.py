"""Clock rules: determinism and lease-clock discipline.

Two invariants, one failure family — reading the wrong clock:

* In the **deterministic** zone any ambient clock read is a bug: results
  must be a pure function of the scenario config, and a value that
  depends on when the run happened can never be bit-reproduced or
  cache-keyed.  ``time.monotonic``/``perf_counter`` are banned alongside
  ``time.time`` — a monotonic read is just as nondeterministic, it only
  skews less.

* In the **distributed** zone clocks are the job, but PR 6's clock-skew
  bug class must stay dead: lease and heartbeat ages are *monotonic
  dwell observed locally*, never wall-clock arithmetic, and never any
  arithmetic mixing a clock with another host's file mtime.  Comparing
  an mtime for *equality* (the dwell pattern: "has it changed since I
  last looked?") is the one sanctioned use.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.astutil import canonical
from repro.analysis.findings import Finding
from repro.analysis.registry import FileContext, Rule, register_rule
from repro.analysis.sources import MONOTONIC_CALLS, WALLCLOCK_CALLS
from repro.analysis.zones import Zone

__all__ = [
    "LeaseClockRule",
    "MONOTONIC_CALLS",
    "NoWallclockRule",
    "WALLCLOCK_CALLS",
]

#: Spellings that mean "another participant's file timestamp".
_MTIME_NAMES = frozenset({"mtime", "mtime_ns", "st_mtime", "st_mtime_ns"})


class NoWallclockRule(Rule):
    """Ban every ambient clock read where results must be reproducible."""

    id = "no-wallclock"
    summary = (
        "deterministic zones may not read any process clock "
        "(time.time/monotonic/perf_counter, datetime.now, ...)"
    )
    zones = frozenset({Zone.DETERMINISTIC})

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = canonical(node.func, ctx.aliases)
            if target in WALLCLOCK_CALLS or target in MONOTONIC_CALLS:
                yield ctx.finding(
                    self.id,
                    node,
                    f"{target}() in a deterministic zone: results must be "
                    "bit-reproducible, so timing must come from the scenario "
                    "config or an injected clock, never the process clock",
                )


def _mentions_mtime(node: ast.expr) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr in _MTIME_NAMES:
            return True
        if isinstance(sub, ast.Name) and sub.id in _MTIME_NAMES:
            return True
    return False


class LeaseClockRule(Rule):
    """Pin the PR 6 fix: lease ages are monotonic dwell, never wall math."""

    id = "lease-clock"
    summary = (
        "broker/lease code may not read wall clocks or do ordering "
        "arithmetic against file mtimes (monotonic dwell only)"
    )
    zones = frozenset({Zone.DISTRIBUTED})

    _ORDERED_OPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                target = canonical(node.func, ctx.aliases)
                if target in WALLCLOCK_CALLS:
                    yield ctx.finding(
                        self.id,
                        node,
                        f"{target}() in broker/lease code: liveness must be "
                        "judged as monotonic dwell on the local clock — "
                        "wall-clock readings from different hosts differ by "
                        "their skew",
                    )
            elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Sub):
                if _mentions_mtime(node.left) != _mentions_mtime(node.right):
                    yield ctx.finding(
                        self.id,
                        node,
                        "subtraction mixing a file mtime with another clock: "
                        "an mtime was written by another host's wall clock, "
                        "so this difference is off by their skew — track "
                        "monotonic dwell since the mtime last *changed* "
                        "(equality checks) instead",
                    )
            elif isinstance(node, ast.Compare):
                left = node.left
                for op, right in zip(node.ops, node.comparators):
                    if isinstance(op, self._ORDERED_OPS) and (
                        _mentions_mtime(left) != _mentions_mtime(right)
                    ):
                        yield ctx.finding(
                            self.id,
                            node,
                            "ordering comparison between a file mtime and "
                            "another clock: cross-host timestamp ordering is "
                            "falsified by clock skew — only equality ('did "
                            "the mtime change?') is skew-safe",
                        )
                    left = right


register_rule(NoWallclockRule())
register_rule(LeaseClockRule())
