"""Signal bus: the Linux-signal switching channel.

Pliant maps every approximate variant to a unique signal; the actuator
sends the signal, DynamoRIO traps it, and the handler swaps the active
variant.  The bus here reproduces that rendezvous: handlers register per
(process, signal), senders deliver, delivery is synchronous and ordered.
Signal numbers start at ``SIGNAL_BASE`` (SIGRTMIN-like real-time range).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable

#: First signal number handed out (mirrors Linux SIGRTMIN = 34).
SIGNAL_BASE = 34


class SignalBus:
    """Synchronous signal delivery between the actuator and instrumentors."""

    def __init__(self) -> None:
        self._handlers: dict[str, dict[int, Callable[[], None]]] = defaultdict(dict)
        self._delivered: list[tuple[str, int]] = []

    def register(
        self, process: str, signal: int, handler: Callable[[], None]
    ) -> None:
        """Trap ``signal`` for ``process`` (drsignal-style registration)."""
        if signal < SIGNAL_BASE:
            raise ValueError(
                f"signal {signal} below the real-time range ({SIGNAL_BASE}+)"
            )
        self._handlers[process][signal] = handler

    def send(self, process: str, signal: int) -> None:
        """Deliver ``signal`` to ``process``; unhandled signals are an error
        (an unhandled real-time signal would kill the real process)."""
        handler = self._handlers.get(process, {}).get(signal)
        if handler is None:
            raise LookupError(f"process {process!r} does not trap signal {signal}")
        self._delivered.append((process, signal))
        handler()

    @property
    def delivery_log(self) -> list[tuple[str, int]]:
        return list(self._delivered)

    def signals_for(self, process: str) -> list[int]:
        return sorted(self._handlers.get(process, {}))
