"""DynamoRIO-analog dynamic instrumentation substrate (paper Section 4.2).

The real Pliant runs each approximate application under DynamoRIO: all
variant implementations are aggregated into one "fat" binary, each variant
is mapped to a Linux signal, and on receiving a signal DynamoRIO's
``drwrap_replace()`` swaps the function pointers.  This package implements
the same mechanics for Python kernels: a fat binary
(:mod:`repro.dynrio.binary`), a signal bus (:mod:`repro.dynrio.signals`),
a function-table instrumentor (:mod:`repro.dynrio.instrument`) and the
calibrated overhead model (:mod:`repro.dynrio.overhead`).
"""

from repro.dynrio.binary import FatBinary
from repro.dynrio.instrument import Instrumentor
from repro.dynrio.overhead import OverheadModel
from repro.dynrio.signals import SIGNAL_BASE, SignalBus

__all__ = [
    "FatBinary",
    "Instrumentor",
    "OverheadModel",
    "SIGNAL_BASE",
    "SignalBus",
]
