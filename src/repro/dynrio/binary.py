"""Fat binary: all variant implementations aggregated together.

Pliant compiles every selected approximate version of each perforated
function into one binary alongside the precise version, so switching is a
pointer swap rather than a recompilation.  The analog here maps each ladder
level to the fully materialized knob settings of its variant — the
"function addresses" DynamoRIO reads at startup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.apps.base import ApproximableApp
from repro.search.ladder import ApproxLadder


@dataclass(frozen=True)
class _LevelEntry:
    level: int
    settings: Mapping[str, Any]
    inaccuracy_pct: float
    time_factor: float


class FatBinary:
    """The aggregated precise+approximate build of one application."""

    def __init__(self, app: ApproximableApp, ladder: ApproxLadder) -> None:
        if ladder.app_name != app.name:
            raise ValueError(
                f"ladder for {ladder.app_name!r} does not match app {app.name!r}"
            )
        self._app = app
        self._ladder = ladder
        self._entries = [
            _LevelEntry(
                level=level,
                settings=dict(app.materialize(ladder.variant(level).spec)),
                inaccuracy_pct=ladder.variant(level).inaccuracy_pct,
                time_factor=ladder.variant(level).time_factor,
            )
            for level in range(ladder.max_level + 1)
        ]

    @property
    def app(self) -> ApproximableApp:
        return self._app

    @property
    def ladder(self) -> ApproxLadder:
        return self._ladder

    @property
    def level_count(self) -> int:
        return len(self._entries)

    def settings_for(self, level: int) -> Mapping[str, Any]:
        """The knob settings (function-pointer table) of ``level``."""
        return dict(self._entries[level].settings)

    def describe(self) -> str:
        lines = [f"fat binary for {self._app.name}:"]
        for entry in self._entries:
            tag = "precise" if entry.level == 0 else f"approx v{entry.level}"
            lines.append(
                f"  level {entry.level} ({tag}): "
                f"inaccuracy={entry.inaccuracy_pct:.2f}% "
                f"time={entry.time_factor:.2f}x"
            )
        return "\n".join(lines)
