"""Instrumentation overhead model.

Running under DynamoRIO costs the paper's applications 3.8 % execution time
on average and up to 8.9 % (water_spatial), because Pliant only uses
coarse-grained function replacement.  Switching variants additionally costs
a brief pause while ``drwrap_replace`` retargets the function table.
"""

from __future__ import annotations

from repro.apps.base import AppMetadata

#: Pause per variant switch (seconds).  Coarse-grained replacement makes
#: this tiny; it exists so pathological ping-ponging has a price.
SWITCH_PAUSE = 0.02


class OverheadModel:
    """Overheads of executing an app under the instrumentation tool."""

    def __init__(self, switch_pause: float = SWITCH_PAUSE) -> None:
        if switch_pause < 0:
            raise ValueError("switch_pause must be non-negative")
        self._switch_pause = switch_pause

    def instrumentation_factor(self, metadata: AppMetadata) -> float:
        """Multiplicative execution-time factor (>= 1) while instrumented."""
        return 1.0 + metadata.dynrio_overhead

    def switch_pause(self, switches: int = 1) -> float:
        """Total pause time for ``switches`` variant switches."""
        if switches < 0:
            raise ValueError("switches must be non-negative")
        return self._switch_pause * switches
