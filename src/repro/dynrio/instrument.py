"""Instrumentor: the drwrap_replace() analog.

Wraps one application process: registers a signal per ladder level, swaps
the active function table when the mapped signal arrives, and counts
switches.  ``run_active_level`` executes the *real* kernel under the active
table — the same code path the design-space exploration measured — so a
colocation demo can produce genuine outputs mid-flight.
"""

from __future__ import annotations

from repro.apps.base import KernelRun, VariantSpec
from repro.dynrio.binary import FatBinary
from repro.dynrio.signals import SIGNAL_BASE, SignalBus


class Instrumentor:
    """One instrumented approximate-application process."""

    def __init__(self, binary: FatBinary, bus: SignalBus, process: str | None = None) -> None:
        self._binary = binary
        self._bus = bus
        self._process = process or binary.app.name
        self._active_level = 0
        self._switches = 0
        self._level_log: list[int] = [0]
        for level in range(binary.level_count):
            self._bus.register(
                self._process, SIGNAL_BASE + level, self._make_handler(level)
            )

    def _make_handler(self, level: int):
        def handler() -> None:
            if level != self._active_level:
                self._switches += 1
                self._active_level = level
                self._level_log.append(level)

        return handler

    # -- introspection ------------------------------------------------------

    @property
    def process(self) -> str:
        return self._process

    @property
    def active_level(self) -> int:
        return self._active_level

    @property
    def switches(self) -> int:
        return self._switches

    @property
    def level_log(self) -> list[int]:
        return list(self._level_log)

    def signal_for_level(self, level: int) -> int:
        if not 0 <= level < self._binary.level_count:
            raise IndexError(
                f"level {level} outside [0, {self._binary.level_count - 1}]"
            )
        return SIGNAL_BASE + level

    # -- execution ------------------------------------------------------------

    def request_level(self, level: int) -> None:
        """Send the mapped signal (what the Pliant actuator does)."""
        self._bus.send(self._process, self.signal_for_level(level))

    def run_active_level(self, seed: int = 0) -> KernelRun:
        """Execute the real kernel under the active function table."""
        settings = self._binary.settings_for(self._active_level)
        app = self._binary.app
        spec = VariantSpec(
            {
                name: value
                for name, value in settings.items()
                if value != app.knobs()[name].precise_value
            }
        )
        return app.run(spec, seed=seed)
