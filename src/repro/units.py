"""Unit helpers.

All internal simulation time is in **seconds** (float).  Sizes are in
**bytes**, bandwidth in **bytes/second**, and request rates in
**requests/second** (QPS).  These helpers exist so call sites can state units
explicitly instead of sprinkling magic multipliers.
"""

from __future__ import annotations

# --- time -----------------------------------------------------------------

USEC = 1e-6
MSEC = 1e-3
SEC = 1.0


def usec(value: float) -> float:
    """Convert microseconds to seconds."""
    return value * USEC


def msec(value: float) -> float:
    """Convert milliseconds to seconds."""
    return value * MSEC


def to_usec(seconds: float) -> float:
    """Convert seconds to microseconds."""
    return seconds / USEC


def to_msec(seconds: float) -> float:
    """Convert seconds to milliseconds."""
    return seconds / MSEC


# --- sizes ------------------------------------------------------------------

KB = 1024
MB = 1024 * KB
GB = 1024 * MB


def mb(value: float) -> float:
    """Convert mebibytes to bytes."""
    return value * MB


def gb(value: float) -> float:
    """Convert gibibytes to bytes."""
    return value * GB


# --- rates ------------------------------------------------------------------

GBPS = 1e9 / 8  # network: gigabits/second expressed in bytes/second


def gbps(value: float) -> float:
    """Convert gigabits/second to bytes/second."""
    return value * GBPS


def gbytes_per_sec(value: float) -> float:
    """Convert gigabytes/second to bytes/second (memory bandwidth)."""
    return value * 1e9
