"""Approximation knobs (Section 3 of the paper).

Three families, matching the paper's design-space exploration:

* :class:`LoopPerforation` — execute only a fraction of a loop's iterations.
  Values are *keep fractions* in (0, 1]; 1.0 is precise.  The paper
  describes several perforation shapes (chunk, stride, skip-every-pth);
  :func:`perforated_indices` implements the stride shape, which subsumes the
  others for our kernels.
* :class:`SyncElision` — elide locks/barriers; values are False (precise) or
  True (elided).  Kernels model elision as skipping synchronization traffic
  and computing on slightly stale shared state.
* :class:`PrecisionReduction` — drop from float64 to float32/float16.
  Values are dtype names (strings, for hashability and JSON round-trips).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

_DTYPE_BYTES = {"float64": 8, "float32": 4, "float16": 2}


@dataclass(frozen=True)
class Knob:
    """One approximable site in an application.

    ``candidates`` holds the approximate settings only; ``precise_value`` is
    implied for every knob and is never listed as a candidate.
    """

    name: str
    precise_value: Any
    candidates: tuple[Any, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("knob name must be non-empty")
        if self.precise_value in self.candidates:
            raise ValueError("candidates must not include the precise value")

    def all_values(self) -> tuple[Any, ...]:
        """Precise value first, then candidates."""
        return (self.precise_value, *self.candidates)


class LoopPerforation(Knob):
    """Keep-fraction knob for one loop."""

    def __init__(self, name: str, candidates: tuple[float, ...]) -> None:
        for fraction in candidates:
            if not 0.0 < fraction < 1.0:
                raise ValueError(
                    f"perforation keep fraction must lie in (0, 1): {fraction}"
                )
        super().__init__(name=name, precise_value=1.0, candidates=candidates)


class SyncElision(Knob):
    """Boolean knob: elide the synchronization at this site."""

    def __init__(self, name: str) -> None:
        super().__init__(name=name, precise_value=False, candidates=(True,))


class PrecisionReduction(Knob):
    """Dtype knob: run this site's arithmetic at reduced precision."""

    def __init__(
        self, name: str, candidates: tuple[str, ...] = ("float32", "float16")
    ) -> None:
        for dtype_name in candidates:
            if dtype_name not in _DTYPE_BYTES:
                raise ValueError(f"unsupported dtype {dtype_name!r}")
        super().__init__(name=name, precise_value="float64", candidates=candidates)

    @staticmethod
    def dtype(value: str) -> np.dtype:
        return np.dtype(value)

    @staticmethod
    def bytes_per_element(value: str) -> int:
        return _DTYPE_BYTES[value]

    @staticmethod
    def traffic_ratio(value: str) -> float:
        """Memory-traffic scale relative to float64."""
        return _DTYPE_BYTES[value] / _DTYPE_BYTES["float64"]


def perforated_count(n: int, keep_fraction: float) -> int:
    """Number of iterations executed when perforating an ``n``-trip loop."""
    if n < 0:
        raise ValueError("n must be non-negative")
    if not 0.0 < keep_fraction <= 1.0:
        raise ValueError("keep_fraction must lie in (0, 1]")
    if n == 0:
        return 0
    return max(1, int(round(n * keep_fraction)))


def perforated_indices(n: int, keep_fraction: float) -> np.ndarray:
    """Evenly spaced indices of the iterations that *do* execute.

    Deterministic (no RNG): perforation in the paper is a static code
    transformation, so the kept iterations must not vary run to run.
    """
    kept = perforated_count(n, keep_fraction)
    if kept == 0:
        return np.empty(0, dtype=np.int64)
    return np.unique(np.linspace(0, n - 1, kept).round().astype(np.int64))
