"""Output-quality metrics.

Every app quantifies its output quality against precise execution as an
*inaccuracy percentage* (0 = identical).  These helpers implement the metric
families the 24 kernels use; each clamps at zero so float jitter in a
better-than-precise approximate result never reports negative inaccuracy.
"""

from __future__ import annotations

import numpy as np


def _clamp(value: float) -> float:
    if np.isnan(value):
        return 100.0
    return float(max(0.0, value))


def cost_increase_pct(approx_cost: float, precise_cost: float) -> float:
    """Inaccuracy for minimize-cost outputs (clustering SSE, wire length...)."""
    if precise_cost == 0:
        return 0.0 if approx_cost == 0 else 100.0
    return _clamp(100.0 * (approx_cost - precise_cost) / abs(precise_cost))


def score_drop_pct(approx_score: float, precise_score: float) -> float:
    """Inaccuracy for maximize-score outputs (alignment score, likelihood)."""
    if precise_score == 0:
        return 0.0 if approx_score == 0 else 100.0
    return _clamp(100.0 * (precise_score - approx_score) / abs(precise_score))


def accuracy_drop_pct(precise_accuracy: float, approx_accuracy: float) -> float:
    """Inaccuracy for classifiers: drop in accuracy, percentage points."""
    return _clamp(100.0 * (precise_accuracy - approx_accuracy))


def rmse_pct(approx: np.ndarray, precise: np.ndarray) -> float:
    """Root-mean-square error as a percentage of the precise dynamic range."""
    precise = np.asarray(precise, dtype=np.float64)
    approx = np.asarray(approx, dtype=np.float64)
    if precise.shape != approx.shape:
        raise ValueError(f"shape mismatch: {precise.shape} vs {approx.shape}")
    span = float(precise.max() - precise.min())
    if span == 0:
        span = max(1e-12, float(np.abs(precise).max()))
    rmse = float(np.sqrt(np.mean((approx - precise) ** 2)))
    return _clamp(100.0 * rmse / span)


def relative_error_pct(approx: np.ndarray, precise: np.ndarray) -> float:
    """Mean elementwise relative error, in percent."""
    precise = np.asarray(precise, dtype=np.float64)
    approx = np.asarray(approx, dtype=np.float64)
    scale = np.maximum(np.abs(precise), 1e-12)
    return _clamp(100.0 * float(np.mean(np.abs(approx - precise) / scale)))


def set_f1_loss_pct(precise_items: set, approx_items: set) -> float:
    """1 - F1 of the approximate item set against the precise one, percent."""
    if not precise_items and not approx_items:
        return 0.0
    intersection = len(precise_items & approx_items)
    if intersection == 0:
        return 100.0
    precision = intersection / len(approx_items) if approx_items else 0.0
    recall = intersection / len(precise_items) if precise_items else 0.0
    f1 = 2 * precision * recall / (precision + recall)
    return _clamp(100.0 * (1.0 - f1))


def assignment_disagreement_pct(
    approx_labels: np.ndarray, precise_labels: np.ndarray
) -> float:
    """Fraction of items assigned differently (label-permutation naive)."""
    precise_labels = np.asarray(precise_labels)
    approx_labels = np.asarray(approx_labels)
    if precise_labels.shape != approx_labels.shape:
        raise ValueError("label arrays must have equal shape")
    if precise_labels.size == 0:
        return 0.0
    return _clamp(100.0 * float(np.mean(precise_labels != approx_labels)))


def rank_correlation_loss_pct(
    approx_ranking: np.ndarray, precise_ranking: np.ndarray
) -> float:
    """1 - Spearman correlation between two rankings, in percent (halved so
    a fully reversed ranking reads as 100)."""
    precise_ranking = np.asarray(precise_ranking, dtype=np.float64)
    approx_ranking = np.asarray(approx_ranking, dtype=np.float64)
    if precise_ranking.shape != approx_ranking.shape:
        raise ValueError("rankings must have equal shape")
    n = precise_ranking.size
    if n < 2:
        return 0.0
    precise_centered = precise_ranking - precise_ranking.mean()
    approx_centered = approx_ranking - approx_ranking.mean()
    denom = float(
        np.sqrt((precise_centered**2).sum() * (approx_centered**2).sum())
    )
    if denom == 0:
        return 0.0
    rho = float((precise_centered * approx_centered).sum() / denom)
    return _clamp(100.0 * (1.0 - rho) / 2.0)
