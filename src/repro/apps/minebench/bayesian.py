"""Naive Bayesian classifier training and evaluation (MineBench).

Trains a naive-Bayes model on a synthetic labeled table (discretized
features) and reports held-out accuracy.  The training scan is the hot,
traffic-dominant loop; the paper highlights bayesian as an app with a very
*rich* design space — eight variants near the pareto frontier — which the
wide knob grid below reproduces.

Approximation knobs
-------------------
``perforate_rows``     — train on a fraction of the rows.
``perforate_features`` — build likelihood tables for a fraction of the
    features only (others fall back to the class prior).
``precision``          — likelihood tables at reduced precision.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro import units
from repro.apps.base import AppMetadata, ApproximableApp, KernelCounters
from repro.apps.knobs import (
    Knob,
    LoopPerforation,
    PrecisionReduction,
    perforated_indices,
)
from repro.apps.quality import accuracy_drop_pct
from repro.server.resources import ResourceProfile

_N_TRAIN = 2500
_N_TEST = 1200
_N_FEATURES = 16
_N_BINS = 6
_N_CLASSES = 6
_ROW_WORK = 1.0
_ROW_TRAFFIC_PER_FEATURE = 8.0
_TEST_WORK = 0.8


def _make_dataset(
    rng: np.random.Generator, n: int, prototypes: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Draw rows whose features match their class prototype with p=0.35."""
    labels = rng.integers(0, _N_CLASSES, size=n)
    noise = rng.integers(0, _N_BINS, size=(n, _N_FEATURES))
    use_proto = rng.random((n, _N_FEATURES)) < 0.35
    features = np.where(use_proto, prototypes[labels], noise)
    return features, labels


class Bayesian(ApproximableApp):
    """Naive-Bayes classification (MineBench)."""

    metadata = AppMetadata(
        name="bayesian",
        suite="minebench",
        nominal_exec_time=55.0,
        parallel_fraction=0.85,
        dynrio_overhead=0.030,
        profile=ResourceProfile(
            llc_footprint_bytes=units.mb(46),
            llc_intensity=0.80,
            membw_per_core=units.gbytes_per_sec(7.0),
        ),
    )

    def knobs(self) -> dict[str, Knob]:
        return {
            "perforate_rows": LoopPerforation(
                "perforate_rows", (0.85, 0.70, 0.55, 0.42, 0.30, 0.20)
            ),
            "perforate_features": LoopPerforation(
                "perforate_features", (0.75, 0.50)
            ),
            "precision": PrecisionReduction("precision"),
        }

    def run_kernel(
        self,
        settings: Mapping[str, Any],
        counters: KernelCounters,
        rng: np.random.Generator,
    ) -> float:
        keep_rows = settings["perforate_rows"]
        keep_features = settings["perforate_features"]
        dtype = PrecisionReduction.dtype(settings["precision"])
        bytes_per_elem = PrecisionReduction.bytes_per_element(settings["precision"])

        prototypes = rng.integers(0, _N_BINS, size=(_N_CLASSES, _N_FEATURES))
        train_x, train_y = _make_dataset(rng, _N_TRAIN, prototypes)
        test_x, test_y = _make_dataset(rng, _N_TEST, prototypes)
        counters.note_footprint(
            train_x.nbytes
            + _N_CLASSES * _N_FEATURES * _N_BINS * bytes_per_elem
        )

        rows = perforated_indices(_N_TRAIN, keep_rows)
        features = perforated_indices(_N_FEATURES, keep_features)
        counters.add(
            work=_ROW_WORK * len(rows) * len(features),
            traffic=_ROW_TRAFFIC_PER_FEATURE * len(rows) * len(features),
        )

        counts = np.ones((_N_CLASSES, _N_FEATURES, _N_BINS), dtype=np.float64)
        sub_x, sub_y = train_x[rows], train_y[rows]
        for cls in range(_N_CLASSES):
            cls_rows = sub_x[sub_y == cls]
            for feature in features:
                binned = np.bincount(cls_rows[:, feature], minlength=_N_BINS)
                counts[cls, feature] += binned
        likelihood = (
            counts / counts.sum(axis=2, keepdims=True)
        ).astype(dtype).astype(np.float64)
        prior = np.bincount(sub_y, minlength=_N_CLASSES).astype(np.float64) + 1.0
        prior /= prior.sum()

        log_like = np.log(likelihood)
        scores = np.log(prior)[None, :].repeat(_N_TEST, axis=0)
        for feature in features:
            scores += log_like[:, feature, test_x[:, feature]].T
        counters.add(
            work=_TEST_WORK * _N_TEST * len(features),
            traffic=float(_N_TEST) * len(features) * bytes_per_elem,
        )
        predictions = scores.argmax(axis=1)
        return float(np.mean(predictions == test_y))

    def quality_loss(self, precise_output: float, approx_output: float) -> float:
        return accuracy_drop_pct(precise_output, approx_output)
