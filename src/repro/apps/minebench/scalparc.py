"""ScalParC: scalable parallel decision-tree classification (MineBench).

Induces a binary decision tree on continuous features by exhaustive split
search (Gini impurity over sorted thresholds), then measures held-out
accuracy.  The split-candidate scan over every (feature, threshold) pair is
the hot loop.

Approximation knobs
-------------------
``perforate_thresholds`` — evaluate only a sampled fraction of candidate
    thresholds per feature.
``perforate_features``   — consider only a sampled fraction of the features
    at each node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from repro import units
from repro.apps.base import AppMetadata, ApproximableApp, KernelCounters
from repro.apps.knobs import Knob, LoopPerforation, perforated_indices
from repro.apps.quality import accuracy_drop_pct
from repro.server.resources import ResourceProfile

_N_TRAIN = 2400
_N_TEST = 800
_N_FEATURES = 16
_MAX_DEPTH = 6
_MIN_LEAF = 20
_SPLIT_WORK = 1.0
_ROW_TRAFFIC = 8.0


@dataclass
class _Node:
    feature: int = -1
    threshold: float = 0.0
    prediction: int = 0
    left: "_Node | None" = None
    right: "_Node | None" = None


def _gini(labels: np.ndarray) -> float:
    if len(labels) == 0:
        return 0.0
    p = np.bincount(labels, minlength=2) / len(labels)
    return float(1.0 - (p**2).sum())


class ScalParC(ApproximableApp):
    """Decision-tree induction (MineBench)."""

    metadata = AppMetadata(
        name="scalparc",
        suite="minebench",
        nominal_exec_time=30.0,
        parallel_fraction=0.88,
        dynrio_overhead=0.047,
        profile=ResourceProfile(
            llc_footprint_bytes=units.mb(40),
            llc_intensity=0.72,
            membw_per_core=units.gbytes_per_sec(6.2),
        ),
    )

    def knobs(self) -> dict[str, Knob]:
        return {
            "perforate_thresholds": LoopPerforation(
                "perforate_thresholds", (0.60, 0.40, 0.25)
            ),
            "perforate_features": LoopPerforation("perforate_features", (0.62, 0.38)),
        }

    def run_kernel(
        self,
        settings: Mapping[str, Any],
        counters: KernelCounters,
        rng: np.random.Generator,
    ) -> float:
        keep_thresholds = settings["perforate_thresholds"]
        keep_features = settings["perforate_features"]

        def make_split_data(n: int) -> tuple[np.ndarray, np.ndarray]:
            x = rng.normal(0.0, 1.0, size=(n, _N_FEATURES))
            logits = (
                1.4 * x[:, 0]
                - 1.1 * (x[:, 1] > 0.3)
                + 0.9 * x[:, 2] * (x[:, 3] > 0)
                + 0.4 * x[:, 4]
            )
            y = (logits + rng.normal(0, 0.6, size=n) > 0).astype(np.int64)
            return x, y

        train_x, train_y = make_split_data(_N_TRAIN)
        test_x, test_y = make_split_data(_N_TEST)
        counters.note_footprint(train_x.nbytes + test_x.nbytes)

        feature_subset = perforated_indices(_N_FEATURES, keep_features)

        def build(rows: np.ndarray, depth: int) -> _Node:
            labels = train_y[rows]
            node = _Node(prediction=int(np.bincount(labels, minlength=2).argmax()))
            if depth >= _MAX_DEPTH or len(rows) < 2 * _MIN_LEAF or _gini(labels) == 0:
                return node
            best_gain, best_feature, best_threshold = 0.0, -1, 0.0
            parent_impurity = _gini(labels)
            n = len(rows)
            for feature in feature_subset:
                values = train_x[rows, feature]
                order = np.argsort(values)
                sorted_values = values[order]
                sorted_labels = labels[order]
                candidates = perforated_indices(n - 1, keep_thresholds)
                counters.add(
                    work=_SPLIT_WORK * len(candidates),
                    traffic=_ROW_TRAFFIC * n,
                )
                # Vectorized all-splits gain via prefix sums over the sorted
                # labels: split at position p puts rows [0..p] on the left.
                positives = np.cumsum(sorted_labels)
                left_n = candidates + 1
                right_n = n - left_n
                valid = (left_n >= _MIN_LEAF) & (right_n >= _MIN_LEAF)
                if not valid.any():
                    continue
                split_pos = candidates[valid]
                left_n = left_n[valid].astype(np.float64)
                right_n = right_n[valid].astype(np.float64)
                left_pos = positives[split_pos].astype(np.float64)
                right_pos = positives[-1] - left_pos
                p_left = left_pos / left_n
                p_right = right_pos / right_n
                gini_left = 1.0 - p_left**2 - (1.0 - p_left) ** 2
                gini_right = 1.0 - p_right**2 - (1.0 - p_right) ** 2
                gains = parent_impurity - (
                    left_n / n * gini_left + right_n / n * gini_right
                )
                pos = int(gains.argmax())
                if gains[pos] > best_gain:
                    split = split_pos[pos]
                    best_gain = float(gains[pos])
                    best_feature = int(feature)
                    best_threshold = float(
                        0.5 * (sorted_values[split] + sorted_values[split + 1])
                    )
            if best_feature < 0:
                return node
            node.feature, node.threshold = best_feature, best_threshold
            mask = train_x[rows, best_feature] <= best_threshold
            node.left = build(rows[mask], depth + 1)
            node.right = build(rows[~mask], depth + 1)
            return node

        root = build(np.arange(_N_TRAIN), 0)

        def predict(x: np.ndarray) -> np.ndarray:
            out = np.zeros(len(x), dtype=np.int64)
            for row in range(len(x)):
                node = root
                while node.left is not None and node.right is not None:
                    node = (
                        node.left
                        if x[row, node.feature] <= node.threshold
                        else node.right
                    )
                out[row] = node.prediction
            return out

        return float(np.mean(predict(test_x) == test_y))

    def quality_loss(self, precise_output: float, approx_output: float) -> float:
        return accuracy_drop_pct(precise_output, approx_output)
