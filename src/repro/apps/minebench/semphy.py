"""SEMPHY: phylogenetic tree fitting with EM (MineBench).

The real SEMPHY performs structural EM over phylogenies.  This kernel keeps
the computational core: given aligned DNA sequences and a fixed random tree
topology, it estimates branch lengths with EM under a Jukes-Cantor model —
per iteration, a likelihood pass over every alignment site, then a branch
length update from expected substitution counts.

Approximation knobs
-------------------
``perforate_sites`` — evaluate the likelihood on a sampled fraction of the
    alignment columns.
``perforate_iters`` — fewer EM rounds.

SEMPHY's hot loop is arithmetic-dense over a compact alignment, so
approximation sheds time faster than traffic — one of the paper's examples
(with NGINX) where approximation alone cannot restore QoS.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro import units
from repro.apps.base import AppMetadata, ApproximableApp, KernelCounters
from repro.apps.knobs import (
    Knob,
    LoopPerforation,
    perforated_count,
    perforated_indices,
)
from repro.apps.quality import relative_error_pct
from repro.server.resources import ResourceProfile

_N_TAXA = 12
_N_SITES = 300
_EM_ITERS = 10
_SITE_WORK = 1.0
_SITE_TRAFFIC = 6.0
_TREE_REFRESH_TRAFFIC = 24.0


def _simulate_sequences(
    rng: np.random.Generator, parents: np.ndarray, branch: np.ndarray
) -> np.ndarray:
    """Evolve sequences down the tree under Jukes-Cantor."""
    n_nodes = len(parents)
    sequences = np.zeros((n_nodes, _N_SITES), dtype=np.int64)
    sequences[0] = rng.integers(0, 4, size=_N_SITES)
    for node in range(1, n_nodes):
        parent_seq = sequences[parents[node]]
        p_change = 0.75 * (1.0 - np.exp(-4.0 / 3.0 * branch[node]))
        mutate = rng.random(_N_SITES) < p_change
        sequences[node] = np.where(
            mutate, rng.integers(0, 4, size=_N_SITES), parent_seq
        )
    return sequences


class Semphy(ApproximableApp):
    """Phylogenetic branch-length EM (MineBench)."""

    metadata = AppMetadata(
        name="semphy",
        suite="minebench",
        nominal_exec_time=45.0,
        parallel_fraction=0.88,
        dynrio_overhead=0.045,
        profile=ResourceProfile(
            llc_footprint_bytes=units.mb(30),
            llc_intensity=0.60,
            membw_per_core=units.gbytes_per_sec(5.0),
        ),
    )

    def knobs(self) -> dict[str, Knob]:
        return {
            "perforate_sites": LoopPerforation(
                "perforate_sites", (0.70, 0.50, 0.35)
            ),
            "perforate_iters": LoopPerforation("perforate_iters", (0.60, 0.40)),
        }

    def run_kernel(
        self,
        settings: Mapping[str, Any],
        counters: KernelCounters,
        rng: np.random.Generator,
    ) -> np.ndarray:
        keep_sites = settings["perforate_sites"]
        keep_iters = settings["perforate_iters"]

        # Random caterpillar-ish topology: node i's parent is a random
        # earlier node; leaves are the last _N_TAXA nodes.
        n_nodes = 2 * _N_TAXA - 1
        parents = np.zeros(n_nodes, dtype=np.int64)
        for node in range(1, n_nodes):
            parents[node] = rng.integers(0, node)
        true_branch = rng.uniform(0.05, 0.4, size=n_nodes)
        sequences = _simulate_sequences(rng, parents, true_branch)
        leaves = np.arange(n_nodes - _N_TAXA, n_nodes)
        counters.note_footprint(sequences.nbytes + n_nodes * 8.0)

        # EM on branch lengths from observed leaf-vs-parent mismatch counts,
        # evaluated on a perforated subset of sites.
        sites = perforated_indices(_N_SITES, keep_sites)
        branch = np.full(n_nodes, 0.2)
        iters = perforated_count(_EM_ITERS, keep_iters)
        for _ in range(iters):
            counters.add(traffic=_TREE_REFRESH_TRAFFIC * n_nodes)
            for node in range(1, n_nodes):
                parent_sub = sequences[parents[node], sites]
                node_sub = sequences[node, sites]
                mismatch = float(np.mean(parent_sub != node_sub))
                counters.add(
                    work=_SITE_WORK * len(sites) / _N_SITES * 40.0,
                    traffic=_SITE_TRAFFIC * len(sites),
                )
                mismatch = min(mismatch, 0.70)
                estimate = -0.75 * np.log(1.0 - 4.0 / 3.0 * mismatch)
                branch[node] = 0.5 * branch[node] + 0.5 * max(estimate, 1e-4)

        # Output: the fitted branch-length vector — the quantity SEMPHY's
        # EM estimates, and the natural place where site subsampling shows.
        return branch[1:].copy()

    def quality_loss(
        self, precise_output: np.ndarray, approx_output: np.ndarray
    ) -> float:
        # Length-weighted branch error: short branches are noisy estimates
        # even in precise mode, so an unweighted mean over-penalizes them.
        total = float(np.abs(precise_output).sum())
        if total == 0.0:
            return relative_error_pct(approx_output, precise_output)
        return float(
            100.0 * np.abs(approx_output - precise_output).sum() / total
        )
