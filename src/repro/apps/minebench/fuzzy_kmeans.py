"""Fuzzy k-means (fuzzy c-means) clustering (MineBench).

Soft-membership clustering: each point belongs to every cluster with a
weight; the n x c membership matrix update is the traffic-heavy hot loop.

Approximation knobs
-------------------
``perforate_points`` — update memberships for a sampled fraction of points.
``perforate_iters``  — fewer membership/centroid rounds.
``precision``        — membership matrix at reduced precision (its n x c
    footprint is the app's largest array, so this cuts footprint hard).
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro import units
from repro.apps.base import AppMetadata, ApproximableApp, KernelCounters
from repro.apps.knobs import (
    Knob,
    LoopPerforation,
    PrecisionReduction,
    perforated_count,
    perforated_indices,
)
from repro.apps.quality import cost_increase_pct
from repro.server.resources import ResourceProfile

_N_POINTS = 1600
_N_CLUSTERS = 8
_DIM = 10
_ITERS = 12
_FUZZINESS = 2.0
_UPDATE_WORK = 1.2
_POINT_TRAFFIC = float(_DIM) * 8.0


class FuzzyKMeans(ApproximableApp):
    """Fuzzy c-means clustering (MineBench)."""

    metadata = AppMetadata(
        name="fuzzy_kmeans",
        suite="minebench",
        nominal_exec_time=35.0,
        parallel_fraction=0.90,
        dynrio_overhead=0.027,
        profile=ResourceProfile(
            llc_footprint_bytes=units.mb(64),
            llc_intensity=0.90,
            membw_per_core=units.gbytes_per_sec(8.2),
        ),
    )

    def knobs(self) -> dict[str, Knob]:
        return {
            "perforate_points": LoopPerforation(
                "perforate_points", (0.80, 0.60, 0.42, 0.28)
            ),
            "perforate_iters": LoopPerforation("perforate_iters", (0.58, 0.34)),
            "precision": PrecisionReduction("precision"),
        }

    def run_kernel(
        self,
        settings: Mapping[str, Any],
        counters: KernelCounters,
        rng: np.random.Generator,
    ) -> float:
        keep_points = settings["perforate_points"]
        keep_iters = settings["perforate_iters"]
        dtype = PrecisionReduction.dtype(settings["precision"])
        bytes_per_elem = PrecisionReduction.bytes_per_element(settings["precision"])

        true_centers = rng.normal(0.0, 6.0, size=(3 * _N_CLUSTERS, _DIM))
        assignment = rng.integers(0, 3 * _N_CLUSTERS, size=_N_POINTS)
        points = true_centers[assignment] + rng.normal(
            0.0, 1.0, size=(_N_POINTS, _DIM)
        )
        centroids = points[rng.choice(_N_POINTS, _N_CLUSTERS, replace=False)].copy()
        # Distance-based soft initialization, as the MineBench code does: a
        # point never updated by a perforated run keeps a sane membership.
        init_dists = np.sqrt(
            ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        ) + 1e-9
        membership = (1.0 / init_dists) ** 2
        membership /= membership.sum(axis=1, keepdims=True)
        membership = membership.astype(dtype)
        counters.note_footprint(
            points.nbytes + membership.size * bytes_per_elem
        )
        iters = perforated_count(_ITERS, keep_iters)
        updated = perforated_indices(_N_POINTS, keep_points)
        exponent = 2.0 / (_FUZZINESS - 1.0)
        for _ in range(iters):
            weights = membership.astype(np.float64) ** _FUZZINESS
            denom = weights.sum(axis=0)[:, None] + 1e-12
            centroids = (weights.T @ points) / denom
            subset = points[updated]
            dists = np.sqrt(
                ((subset[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
            ) + 1e-9
            ratio = (dists[:, :, None] / dists[:, None, :]) ** exponent
            new_membership = 1.0 / ratio.sum(axis=2)
            full = membership.astype(np.float64)
            full[updated] = new_membership
            membership = full.astype(dtype)
            counters.add(
                work=_UPDATE_WORK * len(updated) * _N_CLUSTERS,
                traffic=_POINT_TRAFFIC * len(updated)
                + float(len(updated)) * _N_CLUSTERS * bytes_per_elem,
            )

        # Evaluate the *centroids* the run produced: objective under the
        # optimal memberships for those centroids (standard c-means quality
        # evaluation; stale memberships of never-updated points are an
        # artifact of perforation, not part of the solution).
        dists = np.sqrt(
            ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        ) + 1e-9
        ratio = (dists[:, :, None] / dists[:, None, :]) ** exponent
        optimal_membership = 1.0 / ratio.sum(axis=2)
        dists_sq = dists**2
        return float(((optimal_membership**_FUZZINESS) * dists_sq).sum())

    def quality_loss(self, precise_output: float, approx_output: float) -> float:
        return cost_increase_pct(approx_output, precise_output)
