"""K-means clustering (MineBench).

Lloyd's algorithm over a gaussian-mixture dataset.  The assignment scan —
every point against every centroid — dominates both work and traffic.

Approximation knobs
-------------------
``perforate_points``  — assign only a sampled fraction of points each
    iteration; unsampled points keep their previous labels.
``perforate_iters``   — run fewer Lloyd iterations.
``async_update``      — elide the centroid-accumulator locks: a fraction of
    point contributions is lost to races (stale accumulators), saving the
    lock traffic.

The paper calls out kmeans+NGINX as a colocation where approximation alone
cannot restore QoS; kmeans's heavy footprint and bandwidth profile below is
what recreates that.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro import units
from repro.apps.base import AppMetadata, ApproximableApp, KernelCounters
from repro.apps.knobs import (
    Knob,
    LoopPerforation,
    SyncElision,
    perforated_count,
    perforated_indices,
)
from repro.apps.quality import cost_increase_pct
from repro.server.resources import ResourceProfile

_N_POINTS = 2000
_N_CLUSTERS = 16
_TRUE_CLUSTERS = 48
_DIM = 12
_ITERS = 10
_LOST_UPDATE_RATE = 0.03
_ASSIGN_WORK = 1.0
_POINT_TRAFFIC = float(_DIM) * 8.0
_LOCK_TRAFFIC = 64.0
_LOCK_WORK = 0.08


class KMeans(ApproximableApp):
    """Lloyd's k-means (MineBench)."""

    metadata = AppMetadata(
        name="kmeans",
        suite="minebench",
        nominal_exec_time=30.0,
        parallel_fraction=0.90,
        dynrio_overhead=0.034,
        profile=ResourceProfile(
            llc_footprint_bytes=units.mb(56),
            llc_intensity=0.85,
            membw_per_core=units.gbytes_per_sec(8.0),
        ),
    )

    def knobs(self) -> dict[str, Knob]:
        return {
            "perforate_points": LoopPerforation(
                "perforate_points", (0.80, 0.60, 0.45, 0.30)
            ),
            "perforate_iters": LoopPerforation("perforate_iters", (0.66, 0.40)),
            "async_update": SyncElision("async_update"),
        }

    def run_kernel(
        self,
        settings: Mapping[str, Any],
        counters: KernelCounters,
        rng: np.random.Generator,
    ) -> float:
        keep_points = settings["perforate_points"]
        keep_iters = settings["perforate_iters"]
        async_update = settings["async_update"]

        # More latent structure than fitted clusters (48 blobs, k=16) makes
        # the optimization landscape rugged, so sampling genuinely moves the
        # solution — flat gaussian mixtures are trivially robust to it.
        true_centers = rng.normal(0.0, 4.0, size=(_TRUE_CLUSTERS, _DIM))
        membership = rng.integers(0, _TRUE_CLUSTERS, size=_N_POINTS)
        points = true_centers[membership] + rng.normal(
            0.0, 1.2, size=(_N_POINTS, _DIM)
        )
        lock_bytes = 0.0 if async_update else _N_CLUSTERS * 64.0
        counters.note_footprint(points.nbytes + lock_bytes)

        centroids = points[rng.choice(_N_POINTS, _N_CLUSTERS, replace=False)].copy()
        labels = np.zeros(_N_POINTS, dtype=np.int64)
        iters = perforated_count(_ITERS, keep_iters)
        sampled = perforated_indices(_N_POINTS, keep_points)
        for _ in range(iters):
            subset = points[sampled]
            dists = ((subset[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
            labels[sampled] = dists.argmin(axis=1)
            counters.add(
                work=_ASSIGN_WORK * len(sampled) * _N_CLUSTERS,
                traffic=_POINT_TRAFFIC * len(sampled),
            )
            if not async_update:
                counters.add(
                    work=_LOCK_WORK * len(sampled),
                    traffic=_LOCK_TRAFFIC * len(sampled),
                )
            contributors = sampled
            if async_update:
                survived = rng.random(len(sampled)) >= _LOST_UPDATE_RATE
                contributors = sampled[survived]
            for j in range(_N_CLUSTERS):
                members = points[contributors][labels[contributors] == j]
                if len(members):
                    centroids[j] = members.mean(axis=0)

        final = ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        return float(final.min(axis=1).sum())

    def quality_loss(self, precise_output: float, approx_output: float) -> float:
        return cost_increase_pct(approx_output, precise_output)
