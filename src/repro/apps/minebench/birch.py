"""BIRCH clustering-feature-tree clustering (MineBench).

Streams points into a CF (clustering feature) tree — each leaf entry holds
(count, linear sum, squared sum) — then clusters the leaf centroids with a
few k-means passes, as the BIRCH global phase does.

Approximation knobs
-------------------
``perforate_inserts`` — insert only a sampled fraction of the stream into
    the tree (leaf statistics absorb proportionally less data).
``perforate_global``  — fewer global-clustering refinement passes.
``precision``         — CF statistics at reduced precision.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro import units
from repro.apps.base import AppMetadata, ApproximableApp, KernelCounters
from repro.apps.knobs import (
    Knob,
    LoopPerforation,
    PrecisionReduction,
    perforated_count,
    perforated_indices,
)
from repro.apps.quality import cost_increase_pct
from repro.server.resources import ResourceProfile

_N_POINTS = 4000
_DIM = 8
_THRESHOLD = 1.8
_MAX_LEAVES = 96
_GLOBAL_K = 8
_TRUE_CLUSTERS = 36
_GLOBAL_PASSES = 6
_INSERT_WORK = 1.0
_POINT_TRAFFIC = float(_DIM) * 8.0
_GLOBAL_WORK = 0.5


class Birch(ApproximableApp):
    """CF-tree clustering (MineBench)."""

    metadata = AppMetadata(
        name="birch",
        suite="minebench",
        nominal_exec_time=30.0,
        parallel_fraction=0.85,
        dynrio_overhead=0.036,
        profile=ResourceProfile(
            llc_footprint_bytes=units.mb(50),
            llc_intensity=0.78,
            membw_per_core=units.gbytes_per_sec(6.5),
        ),
    )

    def knobs(self) -> dict[str, Knob]:
        return {
            "perforate_inserts": LoopPerforation(
                "perforate_inserts", (0.80, 0.60, 0.45, 0.30)
            ),
            "perforate_global": LoopPerforation("perforate_global", (0.50, 0.34)),
            "precision": PrecisionReduction("precision", ("float32",)),
        }

    def run_kernel(
        self,
        settings: Mapping[str, Any],
        counters: KernelCounters,
        rng: np.random.Generator,
    ) -> float:
        keep_inserts = settings["perforate_inserts"]
        keep_global = settings["perforate_global"]
        dtype = PrecisionReduction.dtype(settings["precision"])
        bytes_per_elem = PrecisionReduction.bytes_per_element(settings["precision"])

        # More latent blobs than fitted clusters makes the final cost
        # sensitive to exactly where the (sampled) CF tree places leaves.
        true_centers = rng.normal(0.0, 7.0, size=(_TRUE_CLUSTERS, _DIM))
        assignment = rng.integers(0, _TRUE_CLUSTERS, size=_N_POINTS)
        points = true_centers[assignment] + rng.normal(
            0.0, 1.0, size=(_N_POINTS, _DIM)
        )

        # CF entries: counts + incrementally maintained centroids, stored at
        # the knobbed precision.
        cf_count = np.zeros(_MAX_LEAVES)
        cf_centroid = np.zeros((_MAX_LEAVES, _DIM), dtype=dtype)
        n_leaves = 0
        inserted = perforated_indices(_N_POINTS, keep_inserts)
        for index in inserted:
            point = points[index]
            counters.add(
                work=_INSERT_WORK * max(n_leaves, 1),
                traffic=_POINT_TRAFFIC
                + float(max(n_leaves, 1)) * _DIM * bytes_per_elem,
            )
            if n_leaves:
                centroids = cf_centroid[:n_leaves].astype(np.float64)
                dists = np.linalg.norm(centroids - point, axis=1)
                best = int(dists.argmin())
                if dists[best] < _THRESHOLD or n_leaves >= _MAX_LEAVES:
                    count = cf_count[best]
                    updated = (centroids[best] * count + point) / (count + 1.0)
                    cf_count[best] = count + 1.0
                    cf_centroid[best] = updated.astype(dtype)
                    continue
            cf_count[n_leaves] = 1.0
            cf_centroid[n_leaves] = point.astype(dtype)
            n_leaves += 1
        counters.note_footprint(points.nbytes + n_leaves * _DIM * bytes_per_elem)

        leaf_centroids = cf_centroid[:n_leaves].astype(np.float64)
        leaf_weights = cf_count[:n_leaves]
        k = min(_GLOBAL_K, len(leaf_centroids))
        centers = leaf_centroids[
            rng.choice(len(leaf_centroids), k, replace=False)
        ].copy()
        for _ in range(perforated_count(_GLOBAL_PASSES, keep_global)):
            dists = ((leaf_centroids[:, None, :] - centers[None, :, :]) ** 2).sum(
                axis=2
            )
            labels = dists.argmin(axis=1)
            counters.add(
                work=_GLOBAL_WORK * len(leaf_centroids) * k,
                traffic=float(len(leaf_centroids)) * _DIM * bytes_per_elem,
            )
            for j in range(k):
                mask = labels == j
                if mask.any():
                    weights = leaf_weights[mask][:, None]
                    centers[j] = (leaf_centroids[mask] * weights).sum(
                        axis=0
                    ) / weights.sum()

        # Quality: SSE of the *full* dataset against the global centers.
        final = ((points[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        return float(final.min(axis=1).sum())

    def quality_loss(self, precise_output: float, approx_output: float) -> float:
        return cost_increase_pct(approx_output, precise_output)
