"""MineBench-derived approximate kernels (data mining)."""

from repro.apps.minebench.bayesian import Bayesian
from repro.apps.minebench.birch import Birch
from repro.apps.minebench.fuzzy_kmeans import FuzzyKMeans
from repro.apps.minebench.genenet import GeneNet
from repro.apps.minebench.kmeans import KMeans
from repro.apps.minebench.plsa import Plsa
from repro.apps.minebench.scalparc import ScalParC
from repro.apps.minebench.semphy import Semphy
from repro.apps.minebench.snp import Snp
from repro.apps.minebench.svmrfe import SvmRfe

__all__ = [
    "Bayesian",
    "Birch",
    "FuzzyKMeans",
    "GeneNet",
    "KMeans",
    "Plsa",
    "ScalParC",
    "Semphy",
    "Snp",
    "SvmRfe",
]
