"""PLSA: probabilistic latent semantic analysis via EM (MineBench).

Fits topic distributions to a synthetic document-term matrix with the
classic PLSA EM updates.  The E-step materializes the doc x word x topic
responsibilities — the memory-heaviest loop in the suite, which is why the
paper shows PLSA as one of the hardest co-runners for memcached (and an app
whose approximation alone cannot restore memcached's QoS).

Approximation knobs
-------------------
``perforate_docs``  — update responsibilities for a sampled fraction of the
    documents each EM round.
``perforate_iters`` — fewer EM rounds.
``precision``       — factor matrices at reduced precision.

Like bayesian, PLSA exposes a rich pareto frontier (8 selected variants in
the paper), reproduced here by the dense knob grid.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro import units
from repro.apps.base import AppMetadata, ApproximableApp, KernelCounters
from repro.apps.knobs import (
    Knob,
    LoopPerforation,
    PrecisionReduction,
    perforated_count,
    perforated_indices,
)
from repro.apps.quality import score_drop_pct
from repro.server.resources import ResourceProfile

_N_DOCS = 300
_N_WORDS = 400
_N_TOPICS = 8
_ITERS = 12
_WORDS_PER_DOC = 80
_DOC_WORK = 1.0
_DOC_TRAFFIC = float(_N_WORDS) * 2.0


class Plsa(ApproximableApp):
    """PLSA topic modeling via EM (MineBench)."""

    metadata = AppMetadata(
        name="plsa",
        suite="minebench",
        nominal_exec_time=40.0,
        parallel_fraction=0.90,
        dynrio_overhead=0.022,
        profile=ResourceProfile(
            llc_footprint_bytes=units.mb(62),
            llc_intensity=0.88,
            membw_per_core=units.gbytes_per_sec(8.0),
        ),
    )

    def knobs(self) -> dict[str, Knob]:
        return {
            "perforate_docs": LoopPerforation(
                "perforate_docs", (0.80, 0.65, 0.50, 0.35)
            ),
            "perforate_iters": LoopPerforation(
                "perforate_iters", (0.66, 0.50, 0.33)
            ),
            "precision": PrecisionReduction("precision"),
        }

    def run_kernel(
        self,
        settings: Mapping[str, Any],
        counters: KernelCounters,
        rng: np.random.Generator,
    ) -> float:
        keep_docs = settings["perforate_docs"]
        keep_iters = settings["perforate_iters"]
        dtype = PrecisionReduction.dtype(settings["precision"])
        bytes_per_elem = PrecisionReduction.bytes_per_element(settings["precision"])

        # Documents generated from planted topics.
        true_topic_word = rng.dirichlet(np.full(_N_WORDS, 0.05), size=_N_TOPICS)
        true_doc_topic = rng.dirichlet(np.full(_N_TOPICS, 0.2), size=_N_DOCS)
        term_matrix = np.zeros((_N_DOCS, _N_WORDS))
        for doc in range(_N_DOCS):
            word_dist = true_doc_topic[doc] @ true_topic_word
            draws = rng.multinomial(_WORDS_PER_DOC, word_dist)
            term_matrix[doc] = draws

        doc_topic = rng.dirichlet(np.full(_N_TOPICS, 1.0), size=_N_DOCS).astype(dtype)
        topic_word = rng.dirichlet(np.full(_N_WORDS, 1.0), size=_N_TOPICS).astype(
            dtype
        )
        counters.note_footprint(
            term_matrix.nbytes
            + (doc_topic.size + topic_word.size) * bytes_per_elem
        )

        updated = perforated_indices(_N_DOCS, keep_docs)
        for _ in range(perforated_count(_ITERS, keep_iters)):
            dt = doc_topic.astype(np.float64)
            tw = topic_word.astype(np.float64)
            # E+M steps for the sampled docs.
            sub_terms = term_matrix[updated]
            mixture = dt[updated] @ tw + 1e-12
            new_tw = np.zeros_like(tw)
            new_dt = dt.copy()
            for topic in range(_N_TOPICS):
                responsibility = (
                    dt[updated][:, topic : topic + 1] * tw[topic][None, :]
                ) / mixture
                weighted = sub_terms * responsibility
                new_tw[topic] = weighted.sum(axis=0)
                new_dt[updated, topic] = weighted.sum(axis=1)
            counters.add(
                work=_DOC_WORK * len(updated) * _N_TOPICS,
                traffic=_DOC_TRAFFIC
                * len(updated)
                * _N_TOPICS
                * (bytes_per_elem / 8.0),
            )
            new_tw = new_tw + 1e-9
            new_tw /= new_tw.sum(axis=1, keepdims=True)
            new_dt = new_dt + 1e-9
            new_dt /= new_dt.sum(axis=1, keepdims=True)
            doc_topic = new_dt.astype(dtype)
            topic_word = new_tw.astype(dtype)

        # Output: mean per-word log-likelihood over the full corpus (the
        # quantity PLSA maximizes; perplexity exponentiates it and would
        # over-amplify small fitting differences).
        mixture = doc_topic.astype(np.float64) @ topic_word.astype(np.float64)
        mixture = np.maximum(mixture, 1e-12)
        total_words = term_matrix.sum()
        return float((term_matrix * np.log(mixture)).sum() / total_words)

    def quality_loss(self, precise_output: float, approx_output: float) -> float:
        # Log-likelihoods are negative; less negative is better.
        return score_drop_pct(-abs(approx_output), -abs(precise_output))
