"""GeneNet: gene-regulatory-network structure learning (MineBench).

Hill-climbs a directed network over genes: starting from the empty graph,
repeatedly score candidate edge additions by the mutual information between
gene expression profiles (penalized per edge) and greedily add the best.

Approximation knobs
-------------------
``perforate_candidates`` — score only a sampled fraction of the candidate
    edges per hill-climbing step.
``perforate_samples``    — estimate mutual information from a subsample of
    the expression columns.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro import units
from repro.apps.base import AppMetadata, ApproximableApp, KernelCounters
from repro.apps.knobs import Knob, LoopPerforation, perforated_indices
from repro.apps.quality import score_drop_pct
from repro.server.resources import ResourceProfile

_N_GENES = 24
_N_SAMPLES = 400
_N_EDGES_TO_ADD = 30
_EDGE_PENALTY = 0.02
_BINS = 4
_CAND_WORK = 1.0
_SAMPLE_TRAFFIC = 8.0


def _discretize(expression: np.ndarray, bins: int = _BINS) -> np.ndarray:
    """Per-gene quantile discretization into ``bins`` levels."""
    out = np.empty_like(expression, dtype=np.int64)
    for gene in range(expression.shape[0]):
        edges = np.quantile(expression[gene], np.linspace(0, 1, bins + 1)[1:-1])
        out[gene] = np.digitize(expression[gene], edges)
    return out


def _mutual_information_binned(x: np.ndarray, y: np.ndarray, bins: int = _BINS) -> float:
    """MI of two pre-discretized vectors via a bincount joint table."""
    joint = np.bincount(x * bins + y, minlength=bins * bins).astype(np.float64)
    joint = joint.reshape(bins, bins)
    joint /= joint.sum()
    px = joint.sum(axis=1)
    py = joint.sum(axis=0)
    outer = np.outer(px, py)
    mask = joint > 0
    return float((joint[mask] * np.log(joint[mask] / outer[mask])).sum())


class GeneNet(ApproximableApp):
    """Gene-network hill climbing (MineBench)."""

    metadata = AppMetadata(
        name="genenet",
        suite="minebench",
        nominal_exec_time=40.0,
        parallel_fraction=0.85,
        dynrio_overhead=0.046,
        profile=ResourceProfile(
            llc_footprint_bytes=units.mb(34),
            llc_intensity=0.65,
            membw_per_core=units.gbytes_per_sec(5.5),
        ),
    )

    def knobs(self) -> dict[str, Knob]:
        return {
            "perforate_candidates": LoopPerforation(
                "perforate_candidates", (0.70, 0.50, 0.32)
            ),
            "perforate_samples": LoopPerforation("perforate_samples", (0.60, 0.40)),
        }

    def run_kernel(
        self,
        settings: Mapping[str, Any],
        counters: KernelCounters,
        rng: np.random.Generator,
    ) -> float:
        keep_candidates = settings["perforate_candidates"]
        keep_samples = settings["perforate_samples"]

        # Expression data with a planted chain of regulatory influence.
        expression = rng.normal(0.0, 1.0, size=(_N_GENES, _N_SAMPLES))
        for gene in range(1, _N_GENES):
            parent = rng.integers(0, gene)
            influence = rng.uniform(0.4, 0.9)
            expression[gene] = (
                influence * expression[parent]
                + (1 - influence) * expression[gene]
            )
        counters.note_footprint(expression.nbytes + _N_GENES * _N_GENES * 8.0)

        sample_subset = perforated_indices(_N_SAMPLES, keep_samples)
        binned_sub = _discretize(expression[:, sample_subset])
        binned_full = _discretize(expression)

        candidates = [
            (i, j)
            for i in range(_N_GENES)
            for j in range(_N_GENES)
            if i != j
        ]
        mi_cache: dict[tuple[int, int], float] = {}

        def subset_mi(edge: tuple[int, int]) -> float:
            if edge not in mi_cache:
                i, j = edge
                mi_cache[edge] = _mutual_information_binned(
                    binned_sub[i], binned_sub[j]
                )
            return mi_cache[edge]

        in_graph: set[tuple[int, int]] = set()
        for _ in range(_N_EDGES_TO_ADD):
            available = [e for e in candidates if e not in in_graph]
            scan = perforated_indices(len(available), keep_candidates)
            best_edge, best_gain = None, -np.inf
            for pos in scan:
                edge = available[pos]
                gain = subset_mi(edge) - _EDGE_PENALTY
                counters.add(
                    work=_CAND_WORK,
                    traffic=_SAMPLE_TRAFFIC * len(sample_subset),
                )
                if gain > best_gain:
                    best_edge, best_gain = edge, gain
            if best_edge is None or best_gain <= 0:
                break
            in_graph.add(best_edge)

        # Output: network score on the *full* sample set.
        final_score = 0.0
        for i, j in in_graph:
            final_score += _mutual_information_binned(binned_full[i], binned_full[j])
        final_score -= _EDGE_PENALTY * len(in_graph)
        return final_score

    def quality_loss(self, precise_output: float, approx_output: float) -> float:
        return score_drop_pct(approx_output, precise_output)
