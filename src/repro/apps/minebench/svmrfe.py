"""SVM-RFE: recursive feature elimination with a linear SVM (MineBench).

Trains a linear max-margin classifier (via a few epochs of sub-gradient
descent on the hinge loss), removes the features with the smallest weight
magnitudes, and repeats.  Output is the feature ranking.

Approximation knobs
-------------------
``perforate_epochs`` — fewer training epochs per elimination round.
``coarse_rounds``    — eliminate larger feature batches per round
    (expressed as the keep-fraction of the precise round count).
``precision``        — weights and data at reduced precision.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro import units
from repro.apps.base import AppMetadata, ApproximableApp, KernelCounters
from repro.apps.knobs import (
    Knob,
    LoopPerforation,
    PrecisionReduction,
    perforated_count,
)
from repro.apps.quality import rank_correlation_loss_pct
from repro.server.resources import ResourceProfile

_N_SAMPLES = 600
_N_FEATURES = 64
_INFORMATIVE = 16
_ROUNDS = 8
_EPOCHS = 6
_LEARNING_RATE = 0.05
_EPOCH_WORK_PER_SAMPLE = 1.0
_SAMPLE_TRAFFIC_PER_FEATURE = 8.0


class SvmRfe(ApproximableApp):
    """Linear-SVM recursive feature elimination (MineBench)."""

    metadata = AppMetadata(
        name="svmrfe",
        suite="minebench",
        nominal_exec_time=35.0,
        parallel_fraction=0.90,
        dynrio_overhead=0.036,
        profile=ResourceProfile(
            llc_footprint_bytes=units.mb(46),
            llc_intensity=0.80,
            membw_per_core=units.gbytes_per_sec(7.2),
        ),
    )

    def knobs(self) -> dict[str, Knob]:
        return {
            "perforate_epochs": LoopPerforation(
                "perforate_epochs", (0.83, 0.66, 0.34)
            ),
            "coarse_rounds": LoopPerforation("coarse_rounds", (0.75, 0.50, 0.25)),
            "precision": PrecisionReduction("precision"),
        }

    def run_kernel(
        self,
        settings: Mapping[str, Any],
        counters: KernelCounters,
        rng: np.random.Generator,
    ) -> np.ndarray:
        keep_epochs = settings["perforate_epochs"]
        keep_rounds = settings["coarse_rounds"]
        dtype = PrecisionReduction.dtype(settings["precision"])
        bytes_per_elem = PrecisionReduction.bytes_per_element(settings["precision"])

        # Binary classification where only the first _INFORMATIVE features
        # carry signal, with decaying strength (so a true ranking exists).
        direction = np.zeros(_N_FEATURES)
        direction[:_INFORMATIVE] = np.linspace(2.0, 0.4, _INFORMATIVE)
        labels = rng.choice([-1.0, 1.0], size=_N_SAMPLES)
        data = rng.normal(0.0, 1.0, size=(_N_SAMPLES, _N_FEATURES))
        data += labels[:, None] * direction[None, :] * 0.5
        data = data.astype(dtype)
        counters.note_footprint(data.size * bytes_per_elem)

        active = np.arange(_N_FEATURES)
        elimination_order: list[int] = []
        rounds = perforated_count(_ROUNDS, keep_rounds)
        per_round = max(1, (_N_FEATURES - _INFORMATIVE // 2) // rounds)
        epochs = perforated_count(_EPOCHS, keep_epochs)
        while len(active) > per_round:
            x = data[:, active].astype(np.float64)
            weights = np.zeros(len(active))
            for _ in range(epochs):
                margin = labels * (x @ weights)
                violators = margin < 1.0
                gradient = -(labels[violators, None] * x[violators]).mean(axis=0)
                weights -= _LEARNING_RATE * (gradient + 0.01 * weights)
                counters.add(
                    work=_EPOCH_WORK_PER_SAMPLE * _N_SAMPLES,
                    traffic=_SAMPLE_TRAFFIC_PER_FEATURE
                    * _N_SAMPLES
                    * len(active)
                    * (bytes_per_elem / 8.0),
                )
            weakest = np.argsort(np.abs(weights))[:per_round]
            elimination_order.extend(active[weakest].tolist())
            active = np.delete(active, weakest)
        elimination_order.extend(active.tolist())

        # Ranking: position in elimination order (later elimination =
        # more important = higher rank value).
        ranking = np.zeros(_N_FEATURES)
        for rank, feature in enumerate(elimination_order):
            ranking[feature] = rank
        return ranking

    def quality_loss(
        self, precise_output: np.ndarray, approx_output: np.ndarray
    ) -> float:
        return rank_correlation_loss_pct(approx_output, precise_output)
