"""SNP: single-nucleotide-polymorphism linkage pattern discovery (MineBench).

Scans a genotype matrix for strongly linked SNP pairs: compute the r^2
linkage-disequilibrium statistic over candidate pairs and report the top
set.  The parallel version accumulates pair statistics into shared count
tables under locks.

Approximation knobs
-------------------
``perforate_pairs``  — scan only a fraction of the candidate pairs.
``elide_locks``      — accumulate into the shared tables without locks.
    Races lose a small fraction of increments (mild, nondeterministic
    quality noise), but the synchronization traffic — a large share of this
    kernel's memory activity — disappears, and the lock arrays leave the
    working set.  This is why the paper singles out SNP's variants as
    "particularly effective at reducing the amount of contention in the
    shared LLC": memcached and MongoDB meet QoS with approximation alone.
``precision``        — count tables at reduced precision.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro import units
from repro.apps.base import AppMetadata, ApproximableApp, KernelCounters
from repro.apps.knobs import (
    Knob,
    LoopPerforation,
    PrecisionReduction,
    SyncElision,
    perforated_indices,
)
from repro.apps.quality import score_drop_pct
from repro.server.resources import ResourceProfile

_N_SNPS = 260
_N_INDIVIDUALS = 240
_TOP_PAIRS = 40
_LINKED_BLOCKS = 12
_PAIR_WORK = 1.0
_PAIR_TRAFFIC = 16.0
_LOCK_WORK = 0.10
_LOCK_TRAFFIC = 56.0
_LOST_INCREMENT_RATE = 0.005


class Snp(ApproximableApp):
    """Pairwise linkage-disequilibrium scan (MineBench)."""

    metadata = AppMetadata(
        name="snp",
        suite="minebench",
        nominal_exec_time=50.0,
        parallel_fraction=0.85,
        dynrio_overhead=0.022,
        profile=ResourceProfile(
            llc_footprint_bytes=units.mb(44),
            llc_intensity=0.80,
            membw_per_core=units.gbytes_per_sec(6.5),
        ),
    )

    def knobs(self) -> dict[str, Knob]:
        return {
            "perforate_pairs": LoopPerforation(
                "perforate_pairs", (0.90, 0.75, 0.58, 0.42)
            ),
            "elide_locks": SyncElision("elide_locks"),
            "precision": PrecisionReduction("precision", ("float32",)),
        }

    def run_kernel(
        self,
        settings: Mapping[str, Any],
        counters: KernelCounters,
        rng: np.random.Generator,
    ) -> float:
        keep_pairs = settings["perforate_pairs"]
        elide_locks = settings["elide_locks"]
        dtype = PrecisionReduction.dtype(settings["precision"])
        bytes_per_elem = PrecisionReduction.bytes_per_element(settings["precision"])

        # Genotypes with planted linked blocks: SNPs inside a block share a
        # latent haplotype, so their pairwise r^2 is high.
        genotypes = (rng.random((_N_SNPS, _N_INDIVIDUALS)) < 0.5).astype(np.float64)
        block_of = rng.integers(0, _LINKED_BLOCKS, size=_N_SNPS)
        haplotypes = (rng.random((_LINKED_BLOCKS, _N_INDIVIDUALS)) < 0.5).astype(
            np.float64
        )
        correlated = rng.random((_N_SNPS, _N_INDIVIDUALS)) < 0.8
        genotypes = np.where(correlated, haplotypes[block_of], genotypes)

        lock_bytes = 0.0 if elide_locks else _N_SNPS * 64.0
        counters.note_footprint(
            genotypes.nbytes + _N_SNPS * _N_SNPS // 8 * bytes_per_elem + lock_bytes
        )

        i_idx, j_idx = np.triu_indices(_N_SNPS, k=1)
        kept = perforated_indices(len(i_idx), keep_pairs)
        i_k, j_k = i_idx[kept], j_idx[kept]

        a = genotypes[i_k]
        b = genotypes[j_k]
        p_a = a.mean(axis=1)
        p_b = b.mean(axis=1)
        p_ab = (a * b).mean(axis=1)
        if elide_locks:
            # Lost increments under racy accumulation: each pair's joint
            # count is computed from a slightly depleted tally.
            depletion = (
                rng.binomial(_N_INDIVIDUALS, _LOST_INCREMENT_RATE, size=len(i_k))
                / _N_INDIVIDUALS
            )
            p_ab = np.maximum(0.0, p_ab - depletion * p_ab)
        else:
            counters.add(
                work=_LOCK_WORK * len(i_k), traffic=_LOCK_TRAFFIC * len(i_k)
            )
        denom = p_a * (1 - p_a) * p_b * (1 - p_b)
        r2 = np.where(
            denom > 1e-12, (p_ab - p_a * p_b) ** 2 / np.maximum(denom, 1e-12), 0.0
        ).astype(dtype)
        counters.add(
            work=_PAIR_WORK * len(i_k),
            traffic=_PAIR_TRAFFIC * len(i_k) * (bytes_per_elem / 8.0),
        )

        # Output: total linkage mass recovered by the reported top pairs.
        # Planted blocks provide many interchangeable strong pairs, so a
        # perforated scan that reports *different* strong pairs loses little
        # quality — the domain metric MineBench's SNP kernel optimizes.
        order = np.argsort(r2.astype(np.float64))[::-1][:_TOP_PAIRS]
        return float(r2.astype(np.float64)[order].sum())

    def quality_loss(self, precise_output: float, approx_output: float) -> float:
        return score_drop_pct(approx_output, precise_output)
