"""Registry of the 24 approximate applications (paper Section 5)."""

from __future__ import annotations

from typing import Callable

from repro.apps.base import ApproximableApp
from repro.apps.bioperf import (
    Blast,
    ClustalW,
    CombinatorialExtension,
    Fasta,
    Glimmer,
    Grappa,
    Hmmer,
    TCoffee,
)
from repro.apps.minebench import (
    Bayesian,
    Birch,
    FuzzyKMeans,
    GeneNet,
    KMeans,
    Plsa,
    ScalParC,
    Semphy,
    Snp,
    SvmRfe,
)
from repro.apps.parsec import Canneal, Fluidanimate, Streamcluster
from repro.apps.splash2 import Raytrace, WaterNSquared, WaterSpatial

_FACTORIES: dict[str, Callable[[], ApproximableApp]] = {
    # PARSEC
    "fluidanimate": Fluidanimate,
    "canneal": Canneal,
    "streamcluster": Streamcluster,
    # SPLASH-2
    "water_nsquared": WaterNSquared,
    "water_spatial": WaterSpatial,
    "raytrace": Raytrace,
    # MineBench
    "bayesian": Bayesian,
    "kmeans": KMeans,
    "birch": Birch,
    "snp": Snp,
    "genenet": GeneNet,
    "fuzzy_kmeans": FuzzyKMeans,
    "semphy": Semphy,
    "svmrfe": SvmRfe,
    "plsa": Plsa,
    "scalparc": ScalParC,
    # BioPerf
    "hmmer": Hmmer,
    "blast": Blast,
    "fasta": Fasta,
    "grappa": Grappa,
    "clustalw": ClustalW,
    "tcoffee": TCoffee,
    "glimmer": Glimmer,
    "ce": CombinatorialExtension,
}

ALL_APP_NAMES: tuple[str, ...] = tuple(_FACTORIES)

SUITES: dict[str, tuple[str, ...]] = {
    "parsec": ("fluidanimate", "canneal", "streamcluster"),
    "splash2": ("water_nsquared", "water_spatial", "raytrace"),
    "minebench": (
        "bayesian",
        "kmeans",
        "birch",
        "snp",
        "genenet",
        "fuzzy_kmeans",
        "semphy",
        "svmrfe",
        "plsa",
        "scalparc",
    ),
    "bioperf": (
        "hmmer",
        "blast",
        "fasta",
        "grappa",
        "clustalw",
        "tcoffee",
        "glimmer",
        "ce",
    ),
}


def make_app(name: str) -> ApproximableApp:
    """Instantiate one of the 24 approximate applications by name."""
    try:
        factory = _FACTORIES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown app {name!r}; expected one of {sorted(_FACTORIES)}"
        ) from None
    return factory()
