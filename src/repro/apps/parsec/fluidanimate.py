"""fluidanimate: smoothed-particle-hydrodynamics fluid step.

PARSEC's fluidanimate advances an SPH fluid: per timestep it computes
particle densities from neighbors within a smoothing radius, derives
pressure/viscosity forces, and integrates.  This kernel runs the same
pipeline on a small particle box using a uniform grid for neighbor search.

Approximation knobs
-------------------
``perforate_pairs``  — evaluate only a fraction of neighbor-pair
    interactions (density/force kernels); the skipped contribution is
    compensated by rescaling, trading accuracy for both time and traffic.
``elide_cell_locks`` — accumulate forces without per-cell locks; models the
    occasional lost update as small random force noise, and removes the
    lock traffic.
``precision``        — particle state at reduced precision.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro import units
from repro.apps.base import AppMetadata, ApproximableApp, KernelCounters
from repro.apps.knobs import (
    Knob,
    LoopPerforation,
    PrecisionReduction,
    SyncElision,
    perforated_indices,
)
from repro.apps.quality import rmse_pct
from repro.server.resources import ResourceProfile

_N_PARTICLES = 900
_STEPS = 5
_RADIUS = 0.12
_BOX = 1.0
_DT = 0.012
_LOST_UPDATE_RATE = 0.02
_PAIR_WORK = 1.0
_LOCK_TRAFFIC = 48.0
_INTEGRATE_WORK = 0.25


class Fluidanimate(ApproximableApp):
    """SPH fluid simulation step (PARSEC)."""

    metadata = AppMetadata(
        name="fluidanimate",
        suite="parsec",
        nominal_exec_time=30.0,
        parallel_fraction=0.88,
        dynrio_overhead=0.042,
        profile=ResourceProfile(
            llc_footprint_bytes=units.mb(42),
            llc_intensity=0.70,
            membw_per_core=units.gbytes_per_sec(6.0),
        ),
    )

    def knobs(self) -> dict[str, Knob]:
        return {
            "perforate_pairs": LoopPerforation(
                "perforate_pairs", (0.80, 0.60, 0.45)
            ),
            "elide_cell_locks": SyncElision("elide_cell_locks"),
            "precision": PrecisionReduction("precision", ("float32",)),
        }

    def run_kernel(
        self,
        settings: Mapping[str, Any],
        counters: KernelCounters,
        rng: np.random.Generator,
    ) -> np.ndarray:
        keep_pairs = settings["perforate_pairs"]
        elide_locks = settings["elide_cell_locks"]
        dtype = PrecisionReduction.dtype(settings["precision"])
        bytes_per_elem = PrecisionReduction.bytes_per_element(settings["precision"])

        pos = (rng.random((_N_PARTICLES, 3)) * _BOX).astype(dtype)
        vel = np.zeros((_N_PARTICLES, 3), dtype=dtype)
        lock_bytes = 0.0 if elide_locks else 4096.0
        counters.note_footprint(2.0 * pos.size * bytes_per_elem + lock_bytes)

        for _ in range(_STEPS):
            work_pos = pos.astype(np.float64)
            # Neighbor pairs within the smoothing radius (vectorized grid-free
            # search is fine at this scale).
            diff = work_pos[:, None, :] - work_pos[None, :, :]
            dist = np.sqrt((diff**2).sum(axis=2))
            i_idx, j_idx = np.nonzero((dist < _RADIUS) & (dist > 0))
            upper = i_idx < j_idx
            i_idx, j_idx = i_idx[upper], j_idx[upper]

            kept = perforated_indices(len(i_idx), keep_pairs)
            i_k, j_k = i_idx[kept], j_idx[kept]
            counters.add(
                work=_PAIR_WORK * len(i_k),
                traffic=float(len(i_k)) * 6.0 * bytes_per_elem,
            )
            if not elide_locks:
                counters.add(
                    work=0.05 * len(i_k), traffic=_LOCK_TRAFFIC * len(i_k)
                )

            # Density and symmetric pressure-like forces, rescaled to
            # compensate for the skipped pairs.
            compensation = 1.0 / keep_pairs
            r = dist[i_k, j_k]
            w = (1.0 - r / _RADIUS) ** 2
            direction = diff[i_k, j_k] / r[:, None]
            force = (w[:, None] * direction) * 40.0 * compensation
            if elide_locks:
                lost = rng.random(len(i_k)) < _LOST_UPDATE_RATE
                force[lost] = 0.0
            accel = np.zeros_like(work_pos)
            np.add.at(accel, i_k, force)
            np.add.at(accel, j_k, -force)

            gravity = np.array([0.0, -9.8, 0.0]) * 0.2
            new_vel = vel.astype(np.float64) + _DT * (accel + gravity)
            new_pos = work_pos + _DT * new_vel
            np.clip(new_pos, 0.0, _BOX, out=new_pos)
            pos = new_pos.astype(dtype)
            vel = new_vel.astype(dtype)
            counters.add(
                work=_INTEGRATE_WORK * _N_PARTICLES,
                traffic=float(_N_PARTICLES) * 6.0 * bytes_per_elem,
            )
        return pos.astype(np.float64)

    def quality_loss(
        self, precise_output: np.ndarray, approx_output: np.ndarray
    ) -> float:
        return rmse_pct(approx_output, precise_output)
