"""streamcluster: online k-median clustering of a point stream.

The PARSEC streamcluster processes a stream of points in chunks, opening
facilities when assignment cost justifies it and periodically consolidating
centers with local search.  This kernel implements the same facility-
location flavor: chunked streaming assignment, probabilistic facility
opening, then consolidation down to k centers.

Approximation knobs
-------------------
``perforate_points``  — sample only a fraction of each chunk during the
    assignment scan (the stream scan dominates both work *and* traffic, so
    perforation here is a strong decontention knob).
``perforate_refine``  — run only a fraction of the consolidation passes.
``precision``         — store/stream coordinates at reduced precision.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro import units
from repro.apps.base import AppMetadata, ApproximableApp, KernelCounters
from repro.apps.knobs import (
    Knob,
    LoopPerforation,
    PrecisionReduction,
    perforated_count,
    perforated_indices,
)
from repro.apps.quality import cost_increase_pct
from repro.server.resources import ResourceProfile

_N_POINTS = 3200
_DIM = 12
_CHUNK = 400
_TARGET_K = 10
_REFINE_PASSES = 6
_SCAN_WORK = 1.0
_REFINE_WORK = 0.6


class Streamcluster(ApproximableApp):
    """Online k-median / facility location (PARSEC)."""

    metadata = AppMetadata(
        name="streamcluster",
        suite="parsec",
        nominal_exec_time=35.0,
        parallel_fraction=0.90,
        dynrio_overhead=0.041,
        profile=ResourceProfile(
            llc_footprint_bytes=units.mb(72),
            llc_intensity=0.90,
            membw_per_core=units.gbytes_per_sec(8.5),
        ),
    )

    def knobs(self) -> dict[str, Knob]:
        return {
            "perforate_points": LoopPerforation(
                "perforate_points", (0.80, 0.60, 0.45, 0.30)
            ),
            "perforate_refine": LoopPerforation("perforate_refine", (0.50, 0.34)),
            "precision": PrecisionReduction("precision"),
        }

    def run_kernel(
        self,
        settings: Mapping[str, Any],
        counters: KernelCounters,
        rng: np.random.Generator,
    ) -> float:
        keep_points = settings["perforate_points"]
        keep_refine = settings["perforate_refine"]
        dtype = PrecisionReduction.dtype(settings["precision"])
        bytes_per_elem = PrecisionReduction.bytes_per_element(settings["precision"])

        # Stream drawn from a mixture of well-separated gaussians.
        true_centers = rng.normal(0.0, 10.0, size=(_TARGET_K, _DIM))
        assignments = rng.integers(0, _TARGET_K, size=_N_POINTS)
        points = (
            true_centers[assignments] + rng.normal(0.0, 1.0, size=(_N_POINTS, _DIM))
        ).astype(dtype)
        counters.note_footprint(points.size * bytes_per_elem)

        centers: list[np.ndarray] = []
        center_mass: list[float] = []
        open_cost = 400.0
        for start in range(0, _N_POINTS, _CHUNK):
            chunk = points[start : start + _CHUNK]
            scan = perforated_indices(len(chunk), keep_points)
            sampled = chunk[scan].astype(np.float64)
            counters.add(
                work=_SCAN_WORK * sampled.shape[0] * max(len(centers), 1),
                traffic=float(sampled.shape[0]) * _DIM * bytes_per_elem
                + float(max(len(centers), 1)) * _DIM * 8.0,
            )
            if not centers:
                centers.append(sampled.mean(axis=0))
                center_mass.append(float(len(chunk)))
                continue
            center_arr = np.stack(centers)
            dists = np.linalg.norm(
                sampled[:, None, :] - center_arr[None, :, :], axis=2
            )
            nearest = dists.min(axis=1)
            labels = dists.argmin(axis=1)
            for j in range(len(centers)):
                center_mass[j] += float((labels == j).sum()) / keep_points
            # Open a facility at the most expensive sampled point when the
            # (sampling-compensated) assignment cost of the chunk exceeds
            # the opening cost.
            estimated_cost = nearest.sum() / keep_points
            if estimated_cost > open_cost and len(centers) < 3 * _TARGET_K:
                centers.append(sampled[int(nearest.argmax())].copy())
                center_mass.append(1.0)

        # Consolidation: weighted k-median on the opened *facilities* (as in
        # real streamcluster — the raw stream is gone by now), refined with
        # Lloyd-style passes on facility centroids weighted by the stream
        # mass they absorbed.
        facilities = np.stack(centers)
        weights = np.asarray(center_mass)
        center_arr = facilities[:_TARGET_K].copy()
        passes = perforated_count(_REFINE_PASSES, keep_refine)
        for _ in range(passes):
            dists = np.linalg.norm(
                facilities[:, None, :] - center_arr[None, :, :], axis=2
            )
            labels = dists.argmin(axis=1)
            counters.add(
                work=_REFINE_WORK * len(facilities) * center_arr.shape[0],
                traffic=float(len(facilities)) * _DIM * bytes_per_elem,
            )
            for j in range(center_arr.shape[0]):
                mask = labels == j
                if mask.any():
                    member_weights = weights[mask][:, None]
                    center_arr[j] = (facilities[mask] * member_weights).sum(
                        axis=0
                    ) / member_weights.sum()

        final_dists = np.linalg.norm(
            points[:, None, :].astype(np.float64) - center_arr[None, :, :], axis=2
        )
        return float(final_dists.min(axis=1).sum())

    def quality_loss(self, precise_output: float, approx_output: float) -> float:
        return cost_increase_pct(approx_output, precise_output)
