"""PARSEC-derived approximate kernels: canneal, streamcluster, fluidanimate."""

from repro.apps.parsec.canneal import Canneal
from repro.apps.parsec.fluidanimate import Fluidanimate
from repro.apps.parsec.streamcluster import Streamcluster

__all__ = ["Canneal", "Fluidanimate", "Streamcluster"]
