"""canneal: simulated-annealing placement of a netlist on a grid.

The real PARSEC canneal minimizes wire length by swapping netlist element
locations under a cooling schedule.  This kernel does the same at small
scale: elements occupy grid slots, each element is wired to a few random
peers, and annealing proposes element swaps.

Approximation knobs
-------------------
``perforate_moves``
    Skip a fraction of annealing moves (the paper's headline canneal
    observation: rejected/no-op moves contribute little quality).  Skipping
    moves shortens execution markedly, but the cost-tracking refresh pass —
    which dominates *memory traffic* — still runs on schedule, so the
    measured contention rate barely drops.  This reproduces Section 6.1:
    canneal's approximation "does not significantly decrease contention".
``elide_swap_locks``
    Apply swaps without taking the position locks.  Deltas are then
    occasionally computed against stale positions (small, nondeterministic
    quality noise) and the lock traffic disappears.
"""

from __future__ import annotations

import math
from typing import Any, Mapping

import numpy as np

from repro import units
from repro.apps.base import AppMetadata, ApproximableApp, KernelCounters
from repro.apps.knobs import Knob, LoopPerforation, SyncElision, perforated_indices
from repro.apps.quality import cost_increase_pct
from repro.server.resources import ResourceProfile

_N_ELEMENTS = 500
_GRID = 32
_NET_DEGREE = 4
_MOVES = 2600
_REFRESH_EVERY = 100
_STALE_SWAP_RATE = 0.04

# Counter scales: moves are compute-heavy, the refresh pass traffic-heavy.
_MOVE_WORK = 2.5
_MOVE_TRAFFIC = 128.0
_LOCK_WORK = 0.3
_LOCK_TRAFFIC = 96.0
_REFRESH_WORK_PER_ELEM = 0.5
_REFRESH_TRAFFIC_PER_ELEM = 64.0


class Canneal(ApproximableApp):
    """Simulated-annealing netlist placement (PARSEC)."""

    metadata = AppMetadata(
        name="canneal",
        suite="parsec",
        nominal_exec_time=40.0,
        parallel_fraction=0.80,
        dynrio_overhead=0.048,
        profile=ResourceProfile(
            llc_footprint_bytes=units.mb(58),
            llc_intensity=0.85,
            membw_per_core=units.gbytes_per_sec(6.0),
        ),
    )

    def knobs(self) -> dict[str, Knob]:
        return {
            "perforate_moves": LoopPerforation(
                "perforate_moves", (0.85, 0.70, 0.55, 0.40, 0.28)
            ),
            "elide_swap_locks": SyncElision("elide_swap_locks"),
        }

    def run_kernel(
        self,
        settings: Mapping[str, Any],
        counters: KernelCounters,
        rng: np.random.Generator,
    ) -> float:
        keep_moves = settings["perforate_moves"]
        elide_locks = settings["elide_swap_locks"]

        slots = rng.permutation(_GRID * _GRID)[:_N_ELEMENTS]
        nets = rng.integers(0, _N_ELEMENTS, size=(_N_ELEMENTS, _NET_DEGREE))
        x = (slots % _GRID).astype(np.float64)
        y = (slots // _GRID).astype(np.float64)

        lock_bytes = 0.0 if elide_locks else _N_ELEMENTS * 8.0
        counters.note_footprint(x.nbytes + y.nbytes + nets.nbytes + lock_bytes)

        def element_cost(idx: int) -> float:
            peers = nets[idx]
            return float(
                np.abs(x[idx] - x[peers]).sum() + np.abs(y[idx] - y[peers]).sum()
            )

        def total_cost() -> float:
            return float(
                np.abs(x[nets] - x[:, None]).sum() + np.abs(y[nets] - y[:, None]).sum()
            )

        kept = set(perforated_indices(_MOVES, keep_moves).tolist())
        temperature = 20.0
        for step in range(_MOVES):
            if step % _REFRESH_EVERY == 0:
                # Cost-tracking refresh: scans every net endpoint.  Runs on a
                # wall-clock schedule, so perforation does not thin it out.
                total_cost()
                counters.add(
                    work=_REFRESH_WORK_PER_ELEM * _N_ELEMENTS,
                    traffic=_REFRESH_TRAFFIC_PER_ELEM * _N_ELEMENTS * _NET_DEGREE,
                )
                temperature *= 0.80
            if step not in kept:
                continue
            a, b = rng.integers(0, _N_ELEMENTS, size=2)
            if a == b:
                counters.add(work=_MOVE_WORK * 0.2)
                continue
            before = element_cost(a) + element_cost(b)
            if elide_locks and rng.random() < _STALE_SWAP_RATE:
                # Raced against a concurrent swap: our "before" is stale.
                before *= 1.0 + rng.normal(0.0, 0.05)
            else:
                counters.add(work=_LOCK_WORK, traffic=_LOCK_TRAFFIC)
            x[a], x[b] = x[b], x[a]
            y[a], y[b] = y[b], y[a]
            after = element_cost(a) + element_cost(b)
            counters.add(work=_MOVE_WORK, traffic=_MOVE_TRAFFIC)
            delta = after - before
            accept = delta < 0 or rng.random() < math.exp(
                -delta / max(temperature, 1e-9)
            )
            if not accept:
                x[a], x[b] = x[b], x[a]
                y[a], y[b] = y[b], y[a]
        return total_cost()

    def quality_loss(self, precise_output: float, approx_output: float) -> float:
        return cost_increase_pct(approx_output, precise_output)
