"""ClustalW: progressive multiple sequence alignment (BioPerf).

The classic three stages: (1) all-pairs distance matrix from pairwise
alignments, (2) UPGMA guide tree, (3) progressive alignment following the
tree (here: aligning each sequence into the growing profile in guide
order).  Output is the sum-of-pairs score of the final alignment.

Approximation knobs
-------------------
``perforate_pairs`` — compute only a fraction of the pairwise distance
    matrix; missing entries fall back to the mean distance.
``band``            — banded pairwise alignments (kept fraction of the full
    band width).
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro import units
from repro.apps.base import AppMetadata, ApproximableApp, KernelCounters
from repro.apps.knobs import Knob, LoopPerforation, perforated_indices
from repro.apps.quality import score_drop_pct
from repro.server.resources import ResourceProfile
from repro.apps.bioperf._seqlib import (
    GAP_SYMBOL,
    needleman_wunsch,
    pad_alignment,
    sequence_family,
    sum_of_pairs_score,
)

_N_SEQUENCES = 10
_SEQ_LEN = 70
_CELL_WORK = 1.0
_CELL_TRAFFIC = 10.0


class ClustalW(ApproximableApp):
    """Progressive multiple sequence alignment (BioPerf)."""

    metadata = AppMetadata(
        name="clustalw",
        suite="bioperf",
        nominal_exec_time=40.0,
        parallel_fraction=0.88,
        dynrio_overhead=0.021,
        profile=ResourceProfile(
            llc_footprint_bytes=units.mb(40),
            llc_intensity=0.70,
            membw_per_core=units.gbytes_per_sec(6.0),
        ),
    )

    def knobs(self) -> dict[str, Knob]:
        return {
            "perforate_pairs": LoopPerforation(
                "perforate_pairs", (0.70, 0.50, 0.30)
            ),
            "band": LoopPerforation("band", (0.50, 0.30)),
        }

    def run_kernel(
        self,
        settings: Mapping[str, Any],
        counters: KernelCounters,
        rng: np.random.Generator,
    ) -> float:
        keep_pairs = settings["perforate_pairs"]
        band_fraction = settings["band"]

        sequences = sequence_family(rng, _N_SEQUENCES, _SEQ_LEN)
        counters.note_footprint(
            sum(s.nbytes for s in sequences) + _SEQ_LEN * _SEQ_LEN * 8.0
        )
        band = max(6, int(round(_SEQ_LEN * band_fraction)))
        if band_fraction == 1.0:
            band = None

        # Stage 1: pairwise distance matrix (perforated).  Pairs skipped by
        # perforation fall back to the cheap k-tuple composition distance —
        # exactly ClustalW's own "quick" pairwise mode.
        pairs = [
            (i, j)
            for i in range(_N_SEQUENCES)
            for j in range(i + 1, _N_SEQUENCES)
        ]
        computed = set(perforated_indices(len(pairs), keep_pairs).tolist())
        kmer_profiles = []
        for seq in sequences:
            profile = np.bincount(
                seq[:-1] * 4 + seq[1:], minlength=16
            ).astype(np.float64)
            kmer_profiles.append(profile / profile.sum())
        distances = np.zeros((_N_SEQUENCES, _N_SEQUENCES))
        for pos, (i, j) in enumerate(pairs):
            if pos in computed:
                score, _, _ = needleman_wunsch(
                    sequences[i], sequences[j], band=band
                )
                cells = (
                    len(sequences[i]) * len(sequences[j])
                    if band is None
                    else min(len(sequences[i]), len(sequences[j])) * (2 * band + 1)
                )
                counters.add(work=_CELL_WORK * cells, traffic=_CELL_TRAFFIC * cells)
                distance = max(
                    0.0, 1.0 - score / (2.0 * max(len(sequences[i]), 1))
                )
            else:
                distance = 0.5 * float(
                    np.abs(kmer_profiles[i] - kmer_profiles[j]).sum()
                )
                counters.add(work=0.5, traffic=16.0)
            distances[i, j] = distances[j, i] = distance

        # Stage 2: UPGMA-style guide order — greedily join the closest
        # cluster pair; record the order sequences enter the alignment.
        active = {i: [i] for i in range(_N_SEQUENCES)}
        cluster_dist = distances.copy()
        order: list[int] = []
        while len(active) > 1:
            keys = sorted(active)
            best_pair, best_value = None, np.inf
            for a_pos, a in enumerate(keys):
                for b in keys[a_pos + 1 :]:
                    if cluster_dist[a, b] < best_value:
                        best_value = cluster_dist[a, b]
                        best_pair = (a, b)
            a, b = best_pair
            for member in active[a] + active[b]:
                if member not in order:
                    order.append(member)
            merged = active[a] + active[b]
            for other in keys:
                if other in (a, b):
                    continue
                cluster_dist[a, other] = cluster_dist[other, a] = 0.5 * (
                    cluster_dist[a, other] + cluster_dist[b, other]
                )
            active[a] = merged
            del active[b]

        # Stage 3: progressive alignment — align each next sequence against
        # the current consensus and merge.
        aligned: list[np.ndarray] = [sequences[order[0]]]
        for seq_index in order[1:]:
            consensus = aligned[0]
            _, gapped_consensus, gapped_new = needleman_wunsch(
                consensus, sequences[seq_index], band=None
            )
            cells = len(consensus) * len(sequences[seq_index])
            counters.add(work=_CELL_WORK * cells, traffic=_CELL_TRAFFIC * cells)
            # Propagate the new gaps into previously aligned rows.
            new_rows: list[np.ndarray] = []
            for row in aligned:
                out, cursor = [], 0
                for symbol in gapped_consensus:
                    if symbol == GAP_SYMBOL:
                        out.append(GAP_SYMBOL)
                    else:
                        out.append(int(row[cursor]) if cursor < len(row) else GAP_SYMBOL)
                        cursor += 1
                new_rows.append(np.asarray(out))
            new_rows.append(gapped_new)
            aligned = new_rows
        return sum_of_pairs_score(pad_alignment(aligned))

    def quality_loss(self, precise_output: float, approx_output: float) -> float:
        return score_drop_pct(approx_output, precise_output)
