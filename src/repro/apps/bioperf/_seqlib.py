"""Shared sequence utilities for the BioPerf kernels.

Sequences are integer arrays: DNA over {0..3}, protein over {0..19}.
Provides mutation-based family generation (so alignments have real signal),
Needleman-Wunsch global alignment, Smith-Waterman local alignment, and a
sum-of-pairs score for multiple alignments.
"""

from __future__ import annotations

import numpy as np

DNA_ALPHABET = 4
PROTEIN_ALPHABET = 20

MATCH_SCORE = 2.0
MISMATCH_SCORE = -1.0
GAP_PENALTY = -2.0
GAP_SYMBOL = -1


def random_sequence(
    rng: np.random.Generator, length: int, alphabet: int = DNA_ALPHABET
) -> np.ndarray:
    return rng.integers(0, alphabet, size=length)


def mutate_sequence(
    rng: np.random.Generator,
    sequence: np.ndarray,
    substitution_rate: float,
    indel_rate: float = 0.0,
    alphabet: int = DNA_ALPHABET,
) -> np.ndarray:
    """Substitutions plus optional single-symbol indels."""
    out = sequence.copy()
    substitutions = rng.random(len(out)) < substitution_rate
    out[substitutions] = rng.integers(0, alphabet, size=int(substitutions.sum()))
    if indel_rate > 0:
        result: list[int] = []
        for symbol in out:
            roll = rng.random()
            if roll < indel_rate / 2:
                continue  # deletion
            result.append(int(symbol))
            if roll > 1.0 - indel_rate / 2:
                result.append(int(rng.integers(0, alphabet)))  # insertion
        out = np.asarray(result if result else [0], dtype=np.int64)
    return out


def sequence_family(
    rng: np.random.Generator,
    count: int,
    length: int,
    substitution_rate: float = 0.15,
    indel_rate: float = 0.03,
    alphabet: int = DNA_ALPHABET,
) -> list[np.ndarray]:
    """A family of sequences mutated from a common ancestor."""
    ancestor = random_sequence(rng, length, alphabet)
    return [
        mutate_sequence(rng, ancestor, substitution_rate, indel_rate, alphabet)
        for _ in range(count)
    ]


def needleman_wunsch(
    a: np.ndarray,
    b: np.ndarray,
    band: int | None = None,
) -> tuple[float, np.ndarray, np.ndarray]:
    """Global alignment; returns (score, gapped_a, gapped_b).

    ``band`` restricts the DP to a diagonal band (banded alignment), the
    classic approximation used by the perforated variants.
    """
    n, m = len(a), len(b)
    neg = -1e9
    score = np.full((n + 1, m + 1), neg)
    score[0, 0] = 0.0
    for i in range(1, n + 1):
        if band is None or abs(i) <= band:
            score[i, 0] = i * GAP_PENALTY
    for j in range(1, m + 1):
        if band is None or abs(j) <= band:
            score[0, j] = j * GAP_PENALTY
    for i in range(1, n + 1):
        j_low = 1 if band is None else max(1, i - band)
        j_high = m if band is None else min(m, i + band)
        for j in range(j_low, j_high + 1):
            match = MATCH_SCORE if a[i - 1] == b[j - 1] else MISMATCH_SCORE
            score[i, j] = max(
                score[i - 1, j - 1] + match,
                score[i - 1, j] + GAP_PENALTY,
                score[i, j - 1] + GAP_PENALTY,
            )
    # Traceback.
    gapped_a: list[int] = []
    gapped_b: list[int] = []
    i, j = n, m
    while i > 0 or j > 0:
        match = (
            MATCH_SCORE if i > 0 and j > 0 and a[i - 1] == b[j - 1] else MISMATCH_SCORE
        )
        if i > 0 and j > 0 and score[i, j] == score[i - 1, j - 1] + match:
            gapped_a.append(int(a[i - 1]))
            gapped_b.append(int(b[j - 1]))
            i, j = i - 1, j - 1
        elif i > 0 and score[i, j] == score[i - 1, j] + GAP_PENALTY:
            gapped_a.append(int(a[i - 1]))
            gapped_b.append(GAP_SYMBOL)
            i -= 1
        elif j > 0:
            gapped_a.append(GAP_SYMBOL)
            gapped_b.append(int(b[j - 1]))
            j -= 1
        else:
            gapped_a.append(int(a[i - 1]))
            gapped_b.append(GAP_SYMBOL)
            i -= 1
    return (
        float(score[n, m]),
        np.asarray(gapped_a[::-1]),
        np.asarray(gapped_b[::-1]),
    )


def _horizontal_gap_closure(candidate: np.ndarray, gap: float) -> np.ndarray:
    """Vectorized closure of ``cur[j] = max(cand[j], max_k<=j cand[k]+(j-k)*gap)``.

    Uses the classic transform t[k] = cand[k] - k*gap, whose running maximum
    turns the chained-gap recurrence into one ``maximum.accumulate``.
    """
    positions = np.arange(len(candidate), dtype=np.float64)
    shifted = candidate - positions * gap
    return np.maximum.accumulate(shifted) + positions * gap


def smith_waterman_score(a: np.ndarray, b: np.ndarray) -> float:
    """Local alignment score (no traceback), row-vectorized."""
    m = len(b)
    previous = np.zeros(m + 1)
    best = 0.0
    for i in range(1, len(a) + 1):
        match = np.where(b == a[i - 1], MATCH_SCORE, MISMATCH_SCORE)
        candidate = np.empty(m + 1)
        candidate[0] = 0.0
        candidate[1:] = np.maximum(previous[:-1] + match, previous[1:] + GAP_PENALTY)
        np.maximum(candidate, 0.0, out=candidate)
        current = np.maximum(_horizontal_gap_closure(candidate, GAP_PENALTY), 0.0)
        best = max(best, float(current.max()))
        previous = current
    return best


def encode_kmers(sequence: np.ndarray, k: int, alphabet: int = DNA_ALPHABET) -> np.ndarray:
    """Encode every k-mer of ``sequence`` as a base-``alphabet`` integer."""
    if len(sequence) < k:
        return np.empty(0, dtype=np.int64)
    powers = alphabet ** np.arange(k - 1, -1, -1, dtype=np.int64)
    windows = np.lib.stride_tricks.sliding_window_view(sequence, k)
    return windows @ powers


def sum_of_pairs_score(alignment: np.ndarray) -> float:
    """Sum-of-pairs score of a multiple alignment (rows x columns)."""
    total = 0.0
    rows = alignment.shape[0]
    for i in range(rows):
        for j in range(i + 1, rows):
            a, b = alignment[i], alignment[j]
            both = (a != GAP_SYMBOL) & (b != GAP_SYMBOL)
            matches = both & (a == b)
            mismatches = both & (a != b)
            gaps = (a == GAP_SYMBOL) ^ (b == GAP_SYMBOL)
            total += (
                MATCH_SCORE * matches.sum()
                + MISMATCH_SCORE * mismatches.sum()
                + GAP_PENALTY * gaps.sum()
            )
    return float(total)


def pad_alignment(rows: list[np.ndarray]) -> np.ndarray:
    """Right-pad gapped rows with gap symbols to a rectangular matrix."""
    width = max(len(row) for row in rows)
    out = np.full((len(rows), width), GAP_SYMBOL, dtype=np.int64)
    for index, row in enumerate(rows):
        out[index, : len(row)] = row
    return out
