"""GRAPPA: breakpoint-distance phylogeny over gene orders (BioPerf).

Genomes are signed permutations of a gene set; GRAPPA searches for the tree
(and internal gene orders) minimizing total breakpoint distance.  This
kernel evaluates candidate internal gene orders for a fixed star-ish
topology: a greedy median search that repeatedly tries gene-order moves and
keeps improvements.

Approximation knobs
-------------------
``perforate_moves``      — try only a fraction of candidate moves per round.
``perforate_rounds``     — fewer improvement rounds.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro import units
from repro.apps.base import AppMetadata, ApproximableApp, KernelCounters
from repro.apps.knobs import (
    Knob,
    LoopPerforation,
    perforated_count,
    perforated_indices,
)
from repro.apps.quality import cost_increase_pct
from repro.server.resources import ResourceProfile

_N_GENES = 30
_N_GENOMES = 8
_ROUNDS = 10
_MOVES_PER_ROUND = 120
_MOVE_WORK = 1.0
_MOVE_TRAFFIC = 6.0


def _breakpoint_distance(a: np.ndarray, b: np.ndarray) -> int:
    """Number of adjacencies in ``a`` that are absent in ``b``."""
    adjacencies_b = set()
    for pos in range(len(b) - 1):
        adjacencies_b.add((int(b[pos]), int(b[pos + 1])))
        adjacencies_b.add((-int(b[pos + 1]), -int(b[pos])))
    breaks = 0
    for pos in range(len(a) - 1):
        if (int(a[pos]), int(a[pos + 1])) not in adjacencies_b:
            breaks += 1
    return breaks


def _random_inversion(
    rng: np.random.Generator, genome: np.ndarray
) -> np.ndarray:
    i, j = sorted(rng.integers(0, len(genome), size=2))
    if i == j:
        return genome.copy()
    out = genome.copy()
    out[i:j] = -out[i:j][::-1]
    return out


class Grappa(ApproximableApp):
    """Breakpoint-median search for gene-order phylogeny (BioPerf)."""

    metadata = AppMetadata(
        name="grappa",
        suite="bioperf",
        nominal_exec_time=35.0,
        parallel_fraction=0.85,
        dynrio_overhead=0.052,
        profile=ResourceProfile(
            llc_footprint_bytes=units.mb(18),
            llc_intensity=0.52,
            membw_per_core=units.gbytes_per_sec(4.6),
        ),
    )

    def knobs(self) -> dict[str, Knob]:
        return {
            "perforate_moves": LoopPerforation(
                "perforate_moves", (0.70, 0.50, 0.32)
            ),
            "perforate_rounds": LoopPerforation("perforate_rounds", (0.60, 0.40)),
        }

    def run_kernel(
        self,
        settings: Mapping[str, Any],
        counters: KernelCounters,
        rng: np.random.Generator,
    ) -> float:
        keep_moves = settings["perforate_moves"]
        keep_rounds = settings["perforate_rounds"]

        identity = np.arange(1, _N_GENES + 1)
        genomes = []
        for _ in range(_N_GENOMES):
            genome = identity.copy()
            for _ in range(rng.integers(2, 5)):
                genome = _random_inversion(rng, genome)
            genomes.append(genome)
        counters.note_footprint(_N_GENOMES * _N_GENES * 8.0 + units.mb(0.1))

        def total_distance(median: np.ndarray) -> int:
            return sum(_breakpoint_distance(median, g) for g in genomes)

        median = genomes[0].copy()
        best_cost = total_distance(median)
        initial_cost = best_cost
        rounds = perforated_count(_ROUNDS, keep_rounds)
        for _ in range(rounds):
            # Candidate moves are random inversions of the current median;
            # perforation thins the candidate scan.
            candidates = perforated_indices(_MOVES_PER_ROUND, keep_moves)
            improved = False
            for _ in candidates:
                candidate = _random_inversion(rng, median)
                cost = total_distance(candidate)
                counters.add(
                    work=_MOVE_WORK * _N_GENOMES,
                    traffic=_MOVE_TRAFFIC * _N_GENOMES * _N_GENES / 8.0,
                )
                if cost < best_cost:
                    median, best_cost = candidate, cost
                    improved = True
            if not improved:
                continue
        return float(best_cost), float(initial_cost)

    def quality_loss(
        self,
        precise_output: tuple[float, float],
        approx_output: tuple[float, float],
    ) -> float:
        # Normalize the cost excess by the *initial* (unoptimized) cost:
        # breakpoint counts are small integers, so normalizing by the
        # optimized cost would turn one missed inversion into a huge jump.
        precise_cost, _ = precise_output
        approx_cost, _ = approx_output
        # Normalize by the total adjacency budget (genomes x adjacencies):
        # "fraction of all adjacencies left broken beyond precise".
        budget = float(_N_GENOMES * (_N_GENES - 1))
        return float(max(0.0, 100.0 * (approx_cost - precise_cost) / budget))
