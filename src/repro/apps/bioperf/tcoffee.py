"""T-Coffee: consistency-based multiple sequence alignment (BioPerf).

T-Coffee builds a *library* of residue-pair weights from pairwise
alignments, extends the library by triplet consistency (if a~b and b~c then
a~c gains weight), and aligns with the extended weights.  This kernel
implements that pipeline on a small family and scores the final alignment
by a library-weighted sum-of-pairs.

Approximation knobs
-------------------
``perforate_library``  — build the primary library from a fraction of the
    sequence pairs.
``perforate_triplets`` — run the consistency extension over a fraction of
    the triplets.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro import units
from repro.apps.base import AppMetadata, ApproximableApp, KernelCounters
from repro.apps.knobs import Knob, LoopPerforation, perforated_indices
from repro.apps.quality import score_drop_pct
from repro.server.resources import ResourceProfile
from repro.apps.bioperf._seqlib import (
    GAP_SYMBOL,
    needleman_wunsch,
    pad_alignment,
    sequence_family,
    sum_of_pairs_score,
)

_N_SEQUENCES = 8
_SEQ_LEN = 60
_CELL_WORK = 1.0
_CELL_TRAFFIC = 10.0
_TRIPLET_WORK = 0.4
_TRIPLET_TRAFFIC = 16.0


class TCoffee(ApproximableApp):
    """Consistency-based multiple alignment (BioPerf)."""

    metadata = AppMetadata(
        name="tcoffee",
        suite="bioperf",
        nominal_exec_time=45.0,
        parallel_fraction=0.86,
        dynrio_overhead=0.031,
        profile=ResourceProfile(
            llc_footprint_bytes=units.mb(44),
            llc_intensity=0.72,
            membw_per_core=units.gbytes_per_sec(6.0),
        ),
    )

    def knobs(self) -> dict[str, Knob]:
        return {
            "perforate_library": LoopPerforation(
                "perforate_library", (0.85, 0.70, 0.55)
            ),
            "perforate_triplets": LoopPerforation(
                "perforate_triplets", (0.60, 0.35)
            ),
        }

    def run_kernel(
        self,
        settings: Mapping[str, Any],
        counters: KernelCounters,
        rng: np.random.Generator,
    ) -> float:
        keep_library = settings["perforate_library"]
        keep_triplets = settings["perforate_triplets"]

        sequences = sequence_family(rng, _N_SEQUENCES, _SEQ_LEN, indel_rate=0.02)
        counters.note_footprint(
            sum(s.nbytes for s in sequences)
            + _N_SEQUENCES * _N_SEQUENCES * _SEQ_LEN * 2.0
        )

        # Primary library: pair weights from pairwise alignment agreement.
        pairs = [
            (i, j)
            for i in range(_N_SEQUENCES)
            for j in range(i + 1, _N_SEQUENCES)
        ]
        library = np.zeros((_N_SEQUENCES, _N_SEQUENCES))
        built = set(perforated_indices(len(pairs), keep_library).tolist())
        kmer_profiles = []
        for seq in sequences:
            profile = np.bincount(
                seq[:-1] * 4 + seq[1:], minlength=16
            ).astype(np.float64)
            kmer_profiles.append(profile / profile.sum())
        for pos, (i, j) in enumerate(pairs):
            if pos in built:
                score, _, _ = needleman_wunsch(sequences[i], sequences[j])
                cells = len(sequences[i]) * len(sequences[j])
                counters.add(work=_CELL_WORK * cells, traffic=_CELL_TRAFFIC * cells)
                weight = max(score, 0.0)
            else:
                # Cheap k-tuple similarity estimate for skipped pairs.
                similarity = 1.0 - 0.5 * float(
                    np.abs(kmer_profiles[i] - kmer_profiles[j]).sum()
                )
                weight = max(similarity, 0.0) * 1.2 * _SEQ_LEN
                counters.add(work=0.5, traffic=16.0)
            library[i, j] = library[j, i] = weight
        np.fill_diagonal(library, 0.0)

        # Consistency extension over perforated triplets.
        triplets = [
            (i, j, k)
            for i in range(_N_SEQUENCES)
            for j in range(i + 1, _N_SEQUENCES)
            for k in range(_N_SEQUENCES)
            if k not in (i, j)
        ]
        extended = library.copy()
        for pos in perforated_indices(len(triplets), keep_triplets):
            i, j, k = triplets[pos]
            extended[i, j] += 0.15 * min(library[i, k], library[k, j])
            extended[j, i] = extended[i, j]
            counters.add(work=_TRIPLET_WORK, traffic=_TRIPLET_TRAFFIC)

        # Align in order of *total* extended-library affinity: summing over
        # all partners averages out individual estimation errors, so the
        # guide order degrades gracefully under library perforation.
        totals = extended.sum(axis=1)
        order = sorted(range(_N_SEQUENCES), key=lambda s: -totals[s])
        aligned: list[np.ndarray] = [sequences[order[0]]]
        for seq_index in order[1:]:
            consensus = aligned[0]
            _, gapped_consensus, gapped_new = needleman_wunsch(
                consensus, sequences[seq_index]
            )
            cells = len(consensus) * len(sequences[seq_index])
            counters.add(work=_CELL_WORK * cells, traffic=_CELL_TRAFFIC * cells)
            new_rows: list[np.ndarray] = []
            for row in aligned:
                out, cursor = [], 0
                for symbol in gapped_consensus:
                    if symbol == GAP_SYMBOL:
                        out.append(GAP_SYMBOL)
                    else:
                        out.append(int(row[cursor]) if cursor < len(row) else GAP_SYMBOL)
                        cursor += 1
                new_rows.append(np.asarray(out))
            new_rows.append(gapped_new)
            aligned = new_rows
        return sum_of_pairs_score(pad_alignment(aligned))

    def quality_loss(self, precise_output: float, approx_output: float) -> float:
        return score_drop_pct(approx_output, precise_output)
