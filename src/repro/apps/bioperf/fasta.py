"""fasta: diagonal-hash sequence similarity search (BioPerf).

The FASTA algorithm finds high-identity diagonals between query and database
sequences via word matching, then rescans the best diagonals with a banded
dynamic program.  Output is the best similarity score per query.

Approximation knobs
-------------------
``perforate_diagonals`` — rescan only the top fraction of candidate
    diagonals with the banded DP.
``perforate_words``     — use a sampled fraction of the query words when
    building the diagonal histogram.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro import units
from repro.apps.base import AppMetadata, ApproximableApp, KernelCounters
from repro.apps.knobs import Knob, LoopPerforation, perforated_count, perforated_indices
from repro.apps.quality import relative_error_pct
from repro.server.resources import ResourceProfile
from repro.apps.bioperf._seqlib import (
    MATCH_SCORE,
    MISMATCH_SCORE,
    encode_kmers,
    mutate_sequence,
    random_sequence,
)

_N_DATABASE = 120
_DB_LEN = 140
_N_QUERIES = 8
_QUERY_LEN = 60
_WORD = 4
_BAND = 6
_TOP_DIAGONALS = 8
_WORD_WORK = 0.05
_WORD_TRAFFIC = 4.0
_RESCAN_WORK = 1.0
_RESCAN_TRAFFIC = 10.0


def _banded_rescan(
    query: np.ndarray, subject: np.ndarray, diagonal: int, band: int
) -> float:
    """Score the band around ``diagonal`` (subject_pos - query_pos)."""
    best = 0.0
    running = 0.0
    for q_pos in range(len(query)):
        s_pos = q_pos + diagonal
        if not 0 <= s_pos < len(subject):
            continue
        window = subject[
            max(0, s_pos - band // 2) : min(len(subject), s_pos + band // 2 + 1)
        ]
        hit = MATCH_SCORE if query[q_pos] in window else MISMATCH_SCORE
        running = max(0.0, running + hit)
        best = max(best, running)
    return best


class Fasta(ApproximableApp):
    """Diagonal-method sequence similarity (BioPerf)."""

    metadata = AppMetadata(
        name="fasta",
        suite="bioperf",
        nominal_exec_time=25.0,
        parallel_fraction=0.90,
        dynrio_overhead=0.029,
        profile=ResourceProfile(
            llc_footprint_bytes=units.mb(30),
            llc_intensity=0.64,
            membw_per_core=units.gbytes_per_sec(5.2),
        ),
    )

    def knobs(self) -> dict[str, Knob]:
        return {
            "perforate_diagonals": LoopPerforation(
                "perforate_diagonals", (0.70, 0.50, 0.30)
            ),
            "perforate_words": LoopPerforation("perforate_words", (0.65, 0.40)),
        }

    def run_kernel(
        self,
        settings: Mapping[str, Any],
        counters: KernelCounters,
        rng: np.random.Generator,
    ) -> np.ndarray:
        keep_diagonals = settings["perforate_diagonals"]
        keep_words = settings["perforate_words"]

        database = [random_sequence(rng, _DB_LEN) for _ in range(_N_DATABASE)]
        queries = []
        for _ in range(_N_QUERIES):
            source = database[rng.integers(0, _N_DATABASE)]
            start = rng.integers(0, _DB_LEN - _QUERY_LEN)
            queries.append(
                mutate_sequence(rng, source[start : start + _QUERY_LEN], 0.10, 0.02)
            )
        counters.note_footprint(_N_DATABASE * _DB_LEN * 8.0 + units.mb(0.25))

        db_kmers = [encode_kmers(seq, _WORD) for seq in database]
        best_scores = np.zeros(_N_QUERIES)
        for q_index, query in enumerate(queries):
            query_kmers = encode_kmers(query, _WORD)
            word_positions = perforated_indices(len(query_kmers), keep_words)
            words: dict[int, int] = {
                int(query_kmers[pos]): int(pos) for pos in word_positions
            }
            word_codes = np.asarray(sorted(words), dtype=np.int64)
            word_offsets = np.asarray([words[c] for c in word_codes])
            best = 0.0
            for subject, subject_kmers in zip(database, db_kmers):
                # Diagonal histogram from word hits (vectorized lookup).
                lookup = np.searchsorted(word_codes, subject_kmers)
                lookup = np.clip(lookup, 0, len(word_codes) - 1)
                hit_mask = word_codes[lookup] == subject_kmers
                s_positions = np.nonzero(hit_mask)[0]
                diagonals = s_positions - word_offsets[lookup[hit_mask]]
                unique_diagonals, diagonal_counts = np.unique(
                    diagonals, return_counts=True
                )
                diagonal_hits = dict(
                    zip(unique_diagonals.tolist(), diagonal_counts.tolist())
                )
                counters.add(
                    work=_WORD_WORK * len(subject_kmers),
                    traffic=_WORD_TRAFFIC * len(subject_kmers),
                )
                if not diagonal_hits:
                    continue
                ranked = sorted(
                    diagonal_hits, key=diagonal_hits.__getitem__, reverse=True
                )[:_TOP_DIAGONALS]
                rescanned = ranked[
                    : perforated_count(len(ranked), keep_diagonals)
                ]
                for diagonal in rescanned:
                    score = _banded_rescan(query, subject, diagonal, _BAND)
                    counters.add(
                        work=_RESCAN_WORK * len(query),
                        traffic=_RESCAN_TRAFFIC * len(query),
                    )
                    best = max(best, score)
                for diagonal in ranked[len(rescanned):]:
                    # Conservative word-count lower bound for skipped bands.
                    best = max(best, float(diagonal_hits[diagonal]) * 1.0)
            best_scores[q_index] = best
        return best_scores

    def quality_loss(
        self, precise_output: np.ndarray, approx_output: np.ndarray
    ) -> float:
        return relative_error_pct(approx_output, precise_output)
