"""Glimmer: gene finding with interpolated Markov models (BioPerf).

Trains interpolated Markov models (IMMs) of several context orders on
coding vs non-coding training sequence, then scans open reading frames of a
synthetic genome and calls genes where the coding model wins.  Output is
the called gene set; quality is F1 against the precise calls.

Approximation knobs
-------------------
``max_order``      — cap the IMM context order (expressed as kept fraction
    of the precise maximum order 5).
``perforate_orfs`` — score only a sampled fraction of the candidate ORFs
    (skipped ORFs are classified by a cheap GC heuristic).
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro import units
from repro.apps.base import AppMetadata, ApproximableApp, KernelCounters
from repro.apps.knobs import Knob, LoopPerforation, perforated_indices
from repro.apps.quality import set_f1_loss_pct
from repro.server.resources import ResourceProfile
from repro.apps.bioperf._seqlib import random_sequence

_MAX_ORDER = 5
_GENOME_LEN = 6000
_N_GENES = 18
_GENE_LEN = 160
_TRAIN_LEN = 2500
_SCORE_WORK = 1.0
_BASE_TRAFFIC = 6.0


def _train_imm(
    sequence: np.ndarray, max_order: int, counters: KernelCounters
) -> list[np.ndarray]:
    """Context-conditional next-base tables for orders 0..max_order."""
    models = []
    for order in range(max_order + 1):
        table = np.ones((4**order, 4))
        if order == 0:
            table = np.ones((1, 4))
        context = 0
        modulus = 4**order
        for pos in range(len(sequence)):
            base = int(sequence[pos])
            if pos >= order:
                table[context % modulus if modulus else 0, base] += 1
            context = (context * 4 + base) % max(modulus, 1)
        counters.add(
            work=_SCORE_WORK * len(sequence) / 10.0,
            traffic=_BASE_TRAFFIC * len(sequence),
        )
        models.append(table / table.sum(axis=1, keepdims=True))
    return models


def _imm_score(
    sequence: np.ndarray, models: list[np.ndarray], counters: KernelCounters
) -> float:
    """Interpolated Markov-model log-probability.

    As in real Glimmer, per-base probabilities interpolate across orders
    (lower orders are better estimated, higher orders add context), so
    capping the maximum order degrades the score gracefully instead of
    swapping in a differently-noisy model.
    """
    max_order = len(models) - 1
    lam = 0.6
    weights = lam ** np.arange(max_order + 1)
    log_prob = 0.0
    context = 0
    modulus = 4**max_order
    for pos in range(len(sequence)):
        base = int(sequence[pos])
        usable = min(pos, max_order)
        blended = 0.0
        weight_total = 0.0
        for order in range(usable + 1):
            table = models[order]
            ctx = context % (4**order) if order else 0
            blended += weights[order] * float(table[ctx, base])
            weight_total += weights[order]
        log_prob += float(np.log(blended / weight_total))
        context = (context * 4 + base) % max(modulus, 1)
    counters.add(
        work=_SCORE_WORK * len(sequence) * (max_order + 1) / 40.0,
        traffic=_BASE_TRAFFIC * len(sequence) * (max_order + 1) / 4.0,
    )
    return log_prob


class Glimmer(ApproximableApp):
    """IMM-based gene finding (BioPerf)."""

    metadata = AppMetadata(
        name="glimmer",
        suite="bioperf",
        nominal_exec_time=30.0,
        parallel_fraction=0.88,
        dynrio_overhead=0.048,
        profile=ResourceProfile(
            llc_footprint_bytes=units.mb(26),
            llc_intensity=0.60,
            membw_per_core=units.gbytes_per_sec(5.0),
        ),
    )

    def knobs(self) -> dict[str, Knob]:
        return {
            "max_order": LoopPerforation("max_order", (0.60, 0.40)),
            "perforate_orfs": LoopPerforation("perforate_orfs", (0.85, 0.70, 0.55)),
        }

    def run_kernel(
        self,
        settings: Mapping[str, Any],
        counters: KernelCounters,
        rng: np.random.Generator,
    ) -> frozenset[int]:
        order_fraction = settings["max_order"]
        keep_orfs = settings["perforate_orfs"]
        max_order = max(1, int(round(_MAX_ORDER * order_fraction)))

        # Coding sequence favors G/C-rich composition.  Genes are placed on
        # the ORF-candidate grid so that candidate windows are cleanly coding
        # or non-coding (as real ORFs start at start codons the scanner
        # enumerates), keeping the classification task well-posed.
        coding_bias = np.array([0.15, 0.35, 0.35, 0.15])
        genome = random_sequence(rng, _GENOME_LEN)
        stride_grid = np.arange(0, _GENOME_LEN - _GENE_LEN, _GENE_LEN // 4)
        gene_slots = rng.choice(
            len(stride_grid) // 4, size=_N_GENES, replace=False
        )
        gene_starts = stride_grid[gene_slots * 4]
        gene_starts.sort()
        for start in gene_starts:
            gene = rng.choice(4, size=_GENE_LEN, p=coding_bias)
            genome[start : start + _GENE_LEN] = gene
        counters.note_footprint(genome.nbytes + (4**max_order) * 4 * 8.0)

        coding_train = rng.choice(4, size=_TRAIN_LEN, p=coding_bias)
        noncoding_train = random_sequence(rng, _TRAIN_LEN)
        coding_models = _train_imm(coding_train, max_order, counters)
        noncoding_models = _train_imm(noncoding_train, max_order, counters)

        # Candidate ORFs: fixed-length windows on a stride.
        stride = _GENE_LEN // 4
        candidates = [
            start
            for start in range(0, _GENOME_LEN - _GENE_LEN, stride)
        ]
        scored = perforated_indices(len(candidates), keep_orfs)
        scored_set = set(scored.tolist())
        calls: set[int] = set()
        for index, start in enumerate(candidates):
            window = genome[start : start + _GENE_LEN]
            if index in scored_set:
                coding_score = _imm_score(window, coding_models, counters)
                noncoding_score = _imm_score(window, noncoding_models, counters)
                if coding_score > noncoding_score + 2.0:
                    calls.add(start)
            else:
                # Cheap fallback: GC-content heuristic (coding windows are
                # GC-rich by construction).
                gc = float(np.mean((window == 1) | (window == 2)))
                if gc > 0.60:
                    calls.add(start)
        return frozenset(calls)

    def quality_loss(
        self, precise_output: frozenset[int], approx_output: frozenset[int]
    ) -> float:
        return set_f1_loss_pct(set(precise_output), set(approx_output))
