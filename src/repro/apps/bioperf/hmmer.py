"""hmmer: profile-HMM database scan (BioPerf).

Scores every database sequence against a profile HMM (position-specific
match emissions with affine-ish gap moves) via Viterbi, and reports the
sequences scoring above threshold.  Half the database is planted from the
profile's consensus, so a true hit set exists.

As in real hmmer, a cheap word-match prefilter locates the most promising
diagonal first; the Viterbi dynamic program then runs in a band around that
diagonal.

Approximation knobs
-------------------
``viterbi_band`` — kept fraction of the full band width around the seeded
    diagonal.  Narrow bands skip most DP cells (large time and traffic
    savings) at a small risk of clipping the optimal alignment.
``precision``    — score rows at reduced precision.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro import units
from repro.apps.base import AppMetadata, ApproximableApp, KernelCounters
from repro.apps.knobs import Knob, LoopPerforation, PrecisionReduction
from repro.apps.quality import set_f1_loss_pct
from repro.server.resources import ResourceProfile
from repro.apps.bioperf._seqlib import (
    _horizontal_gap_closure,
    encode_kmers,
    mutate_sequence,
    random_sequence,
)

_PROFILE_LEN = 36
_N_SEQUENCES = 220
_SEQ_LEN = 90
_PLANTED_FRACTION = 0.5
_SEED_KMER = 4
_GAP_COST = -2.0
_HIT_THRESHOLD = 14.0
_FULL_BAND = 30
_CELL_WORK = 1.0
_CELL_TRAFFIC = 12.0


class Hmmer(ApproximableApp):
    """Profile-HMM Viterbi database scan (BioPerf)."""

    metadata = AppMetadata(
        name="hmmer",
        suite="bioperf",
        nominal_exec_time=35.0,
        parallel_fraction=0.90,
        dynrio_overhead=0.040,
        profile=ResourceProfile(
            llc_footprint_bytes=units.mb(26),
            llc_intensity=0.60,
            membw_per_core=units.gbytes_per_sec(5.0),
        ),
    )

    def knobs(self) -> dict[str, Knob]:
        return {
            "viterbi_band": LoopPerforation("viterbi_band", (0.60, 0.40, 0.22)),
            "precision": PrecisionReduction("precision"),
        }

    def run_kernel(
        self,
        settings: Mapping[str, Any],
        counters: KernelCounters,
        rng: np.random.Generator,
    ) -> frozenset[int]:
        band_fraction = settings["viterbi_band"]
        dtype = PrecisionReduction.dtype(settings["precision"])
        bytes_per_elem = PrecisionReduction.bytes_per_element(settings["precision"])

        consensus = random_sequence(rng, _PROFILE_LEN)
        emissions = np.full((_PROFILE_LEN, 4), 0.08)
        emissions[np.arange(_PROFILE_LEN), consensus] = 0.76
        log_emit = (
            np.log(emissions).astype(dtype).astype(np.float64) - np.log(0.25)
        )

        sequences: list[np.ndarray] = []
        planted: list[bool] = []
        for _ in range(_N_SEQUENCES):
            seq = random_sequence(rng, _SEQ_LEN)
            is_planted = rng.random() < _PLANTED_FRACTION
            if is_planted:
                insert = mutate_sequence(rng, consensus, 0.22, 0.12)
                insert = insert[:_SEQ_LEN]
                pad_left = int(rng.integers(0, _SEQ_LEN - len(insert) + 1))
                seq[pad_left : pad_left + len(insert)] = insert
            sequences.append(seq)
            planted.append(is_planted)
        counters.note_footprint(
            _N_SEQUENCES * _SEQ_LEN * 8.0 + _PROFILE_LEN * _SEQ_LEN * bytes_per_elem
        )

        consensus_kmers = set(encode_kmers(consensus, _SEED_KMER).tolist())
        # Band width is measured against the typical indel drift of a true
        # alignment path (not the sequence length): narrow bands clip the
        # paths of hits whose inserts drift far off the seeded diagonal.
        band = max(2, int(round(_FULL_BAND * band_fraction)))
        scores = np.zeros(_N_SEQUENCES)
        neg = -1e9
        for index, seq in enumerate(sequences):
            n = len(seq)
            # Seed pass: center the band on the best word-match diagonal.
            seq_kmers = encode_kmers(seq, _SEED_KMER)
            hit_positions = np.nonzero(
                np.isin(seq_kmers, list(consensus_kmers), assume_unique=False)
            )[0]
            counters.add(work=0.02 * n, traffic=2.0 * n)
            center_offset = (
                int(np.median(hit_positions)) if len(hit_positions) else n // 2
            )

            previous = np.zeros(n + 1)
            best = 0.0
            cells = 0
            for i in range(1, _PROFILE_LEN + 1):
                # Band around the seeded diagonal for profile row i.
                diag = center_offset - _PROFILE_LEN // 2 + i
                j_low = max(1, diag - band)
                j_high = min(n, diag + band)
                if j_low > j_high:
                    previous = np.full(n + 1, neg)
                    continue
                emit = log_emit[i - 1, seq]
                candidate = np.full(n + 1, neg)
                window = slice(j_low, j_high + 1)
                candidate[window] = np.maximum(
                    previous[j_low - 1 : j_high] + emit[j_low - 1 : j_high],
                    previous[window] + _GAP_COST,
                )
                current = _horizontal_gap_closure(candidate, _GAP_COST)
                current[: j_low] = neg
                current[j_high + 1 :] = neg
                cells += j_high - j_low + 1
                best = max(best, float(current[window].max()))
                previous = current
            scores[index] = best
            counters.add(
                work=_CELL_WORK * cells,
                traffic=_CELL_TRAFFIC * cells * (bytes_per_elem / 8.0),
            )

        # Absolute score threshold (as real hmmer reports hits above a fixed
        # bit-score): narrow bands that clip alignments lose hits.
        return frozenset(int(i) for i in np.nonzero(scores >= _HIT_THRESHOLD)[0])

    def quality_loss(
        self, precise_output: frozenset[int], approx_output: frozenset[int]
    ) -> float:
        return set_f1_loss_pct(set(precise_output), set(approx_output))
