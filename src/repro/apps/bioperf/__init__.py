"""BioPerf-derived approximate kernels (bioinformatics)."""

from repro.apps.bioperf.blast import Blast
from repro.apps.bioperf.ce import CombinatorialExtension
from repro.apps.bioperf.clustalw import ClustalW
from repro.apps.bioperf.fasta import Fasta
from repro.apps.bioperf.glimmer import Glimmer
from repro.apps.bioperf.grappa import Grappa
from repro.apps.bioperf.hmmer import Hmmer
from repro.apps.bioperf.tcoffee import TCoffee

__all__ = [
    "Blast",
    "ClustalW",
    "CombinatorialExtension",
    "Fasta",
    "Glimmer",
    "Grappa",
    "Hmmer",
    "TCoffee",
]
