"""CE: combinatorial-extension protein structure alignment (BioPerf).

CE aligns two 3D backbone chains by finding aligned fragment pairs (AFPs)
whose internal distance matrices agree, chaining compatible AFPs into a
path, and superposing the aligned residues (Kabsch).  Output is the RMSD of
the final superposition — lower is better.

Approximation knobs
-------------------
``perforate_afps``   — evaluate only a fraction of candidate fragment pairs.
``perforate_extend`` — fewer path-extension rounds.
``precision``        — distance matrices at reduced precision.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro import units
from repro.apps.base import AppMetadata, ApproximableApp, KernelCounters
from repro.apps.knobs import (
    Knob,
    LoopPerforation,
    PrecisionReduction,
    perforated_count,
    perforated_indices,
)
from repro.apps.quality import cost_increase_pct
from repro.server.resources import ResourceProfile

_CHAIN_LEN = 80
_FRAGMENT = 8
_EXTEND_ROUNDS = 10
_AFP_WORK = 1.0
_AFP_TRAFFIC = 16.0


def _kabsch_rmsd(a: np.ndarray, b: np.ndarray) -> float:
    """RMSD after optimal superposition of paired coordinates."""
    a_centered = a - a.mean(axis=0)
    b_centered = b - b.mean(axis=0)
    h = a_centered.T @ b_centered
    u, _, vt = np.linalg.svd(h)
    d = np.sign(np.linalg.det(vt.T @ u.T))
    rotation = vt.T @ np.diag([1.0, 1.0, d]) @ u.T
    rotated = a_centered @ rotation.T
    return float(np.sqrt(np.mean((rotated - b_centered) ** 2)))


class CombinatorialExtension(ApproximableApp):
    """CE structural alignment (BioPerf)."""

    metadata = AppMetadata(
        name="ce",
        suite="bioperf",
        nominal_exec_time=35.0,
        parallel_fraction=0.90,
        dynrio_overhead=0.034,
        profile=ResourceProfile(
            llc_footprint_bytes=units.mb(30),
            llc_intensity=0.62,
            membw_per_core=units.gbytes_per_sec(5.2),
        ),
    )

    def knobs(self) -> dict[str, Knob]:
        return {
            "perforate_afps": LoopPerforation(
                "perforate_afps", (0.65, 0.45, 0.28)
            ),
            "perforate_extend": LoopPerforation("perforate_extend", (0.60,)),
            "precision": PrecisionReduction("precision", ("float32",)),
        }

    def run_kernel(
        self,
        settings: Mapping[str, Any],
        counters: KernelCounters,
        rng: np.random.Generator,
    ) -> float:
        keep_afps = settings["perforate_afps"]
        keep_extend = settings["perforate_extend"]
        dtype = PrecisionReduction.dtype(settings["precision"])
        bytes_per_elem = PrecisionReduction.bytes_per_element(settings["precision"])

        # Chain A: a self-avoiding random walk; chain B: A rotated, jittered
        # and locally perturbed, so a good structural alignment exists.
        steps = rng.normal(0.0, 1.0, size=(_CHAIN_LEN, 3))
        steps /= np.linalg.norm(steps, axis=1, keepdims=True)
        chain_a = np.cumsum(steps * 3.8, axis=0)
        theta = rng.uniform(0, 2 * np.pi)
        rotation = np.array(
            [
                [np.cos(theta), -np.sin(theta), 0.0],
                [np.sin(theta), np.cos(theta), 0.0],
                [0.0, 0.0, 1.0],
            ]
        )
        chain_b = chain_a @ rotation.T + rng.normal(0.0, 0.6, size=chain_a.shape)
        chain_a = chain_a.astype(dtype).astype(np.float64)
        chain_b = chain_b.astype(dtype).astype(np.float64)
        counters.note_footprint(
            2.0 * _CHAIN_LEN * 3 * bytes_per_elem
            + _CHAIN_LEN * _CHAIN_LEN * bytes_per_elem
        )

        def fragment_distance_signature(chain: np.ndarray, start: int) -> np.ndarray:
            frag = chain[start : start + _FRAGMENT]
            diff = frag[:, None, :] - frag[None, :, :]
            return np.sqrt((diff**2).sum(axis=2))

        n_frags = _CHAIN_LEN - _FRAGMENT + 1
        pairs = [(i, j) for i in range(n_frags) for j in range(n_frags)]
        scanned = perforated_indices(len(pairs), keep_afps)
        afp_scores: list[tuple[float, int, int]] = []
        for pos in scanned:
            i, j = pairs[pos]
            sig_a = fragment_distance_signature(chain_a, i)
            sig_b = fragment_distance_signature(chain_b, j)
            distance = float(np.abs(sig_a - sig_b).mean())
            counters.add(
                work=_AFP_WORK,
                traffic=_AFP_TRAFFIC * _FRAGMENT * (bytes_per_elem / 8.0),
            )
            afp_scores.append((distance, i, j))
        afp_scores.sort()

        # Path assembly: greedily chain compatible AFPs (monotone in both
        # chains), refined over perforated extension rounds.
        rounds = perforated_count(_EXTEND_ROUNDS, keep_extend)
        best_path: list[tuple[int, int]] = []
        for round_index in range(rounds):
            seed_pos = round_index
            if seed_pos >= len(afp_scores):
                break
            _, i0, j0 = afp_scores[seed_pos]
            path = [(i0, j0)]
            for distance, i, j in afp_scores:
                last_i, last_j = path[-1]
                if i >= last_i + _FRAGMENT and j >= last_j + _FRAGMENT:
                    path.append((i, j))
            counters.add(work=0.2 * len(afp_scores))
            if len(path) > len(best_path):
                best_path = path
        if not best_path:
            best_path = [(0, 0)]

        a_indices = np.concatenate(
            [np.arange(i, i + _FRAGMENT) for i, _ in best_path]
        )
        b_indices = np.concatenate(
            [np.arange(j, j + _FRAGMENT) for _, j in best_path]
        )
        return _kabsch_rmsd(chain_a[a_indices], chain_b[b_indices])

    def quality_loss(self, precise_output: float, approx_output: float) -> float:
        return cost_increase_pct(approx_output, precise_output)
