"""blast: seed-and-extend local sequence search (BioPerf).

For each query, find exact k-mer seed matches against the database, then
extend the best seeds with a local (Smith-Waterman) rescoring of a window
around each seed.  Output is the best alignment score per query.

Approximation knobs
-------------------
``perforate_extensions`` — extend only the top fraction of seed hits per
    query (ranked by seed count), approximating the rest with their seed
    scores.
``perforate_database``   — scan a sampled fraction of the database.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro import units
from repro.apps.base import AppMetadata, ApproximableApp, KernelCounters
from repro.apps.knobs import Knob, LoopPerforation, perforated_count, perforated_indices
from repro.apps.quality import relative_error_pct
from repro.server.resources import ResourceProfile
from repro.apps.bioperf._seqlib import (
    encode_kmers,
    mutate_sequence,
    random_sequence,
    smith_waterman_score,
)

_N_DATABASE = 160
_DB_LEN = 160
_N_QUERIES = 10
_QUERY_LEN = 48
_KMER = 5
_EXTEND_WINDOW = 56
_SEED_WORK = 0.05
_SEED_TRAFFIC = 4.0
_EXTEND_WORK = 1.0
_EXTEND_TRAFFIC = 8.0


class Blast(ApproximableApp):
    """Seed-and-extend local alignment search (BioPerf)."""

    metadata = AppMetadata(
        name="blast",
        suite="bioperf",
        nominal_exec_time=30.0,
        parallel_fraction=0.88,
        dynrio_overhead=0.031,
        profile=ResourceProfile(
            llc_footprint_bytes=units.mb(34),
            llc_intensity=0.68,
            membw_per_core=units.gbytes_per_sec(5.6),
        ),
    )

    def knobs(self) -> dict[str, Knob]:
        return {
            "perforate_extensions": LoopPerforation(
                "perforate_extensions", (0.70, 0.45, 0.25)
            ),
            "perforate_database": LoopPerforation("perforate_database", (0.70, 0.50)),
        }

    def run_kernel(
        self,
        settings: Mapping[str, Any],
        counters: KernelCounters,
        rng: np.random.Generator,
    ) -> np.ndarray:
        keep_extensions = settings["perforate_extensions"]
        keep_database = settings["perforate_database"]

        database = [random_sequence(rng, _DB_LEN) for _ in range(_N_DATABASE)]
        queries = []
        for _ in range(_N_QUERIES):
            # Each query is a mutated excerpt of some database sequence, so
            # a strong true alignment exists.
            source = database[rng.integers(0, _N_DATABASE)]
            start = rng.integers(0, _DB_LEN - _QUERY_LEN)
            queries.append(
                mutate_sequence(rng, source[start : start + _QUERY_LEN], 0.12, 0.02)
            )
        counters.note_footprint(_N_DATABASE * _DB_LEN * 8.0 + units.mb(0.5))

        db_subset = perforated_indices(_N_DATABASE, keep_database)
        db_kmers = [encode_kmers(seq, _KMER) for seq in database]
        best_scores = np.zeros(_N_QUERIES)
        for q_index, query in enumerate(queries):
            query_kmers = np.unique(encode_kmers(query, _KMER))
            # Seed pass: count k-mer hits per database sequence.
            seed_counts = np.zeros(_N_DATABASE)
            for db_pos in db_subset:
                kmers = db_kmers[db_pos]
                seed_counts[db_pos] = int(np.isin(kmers, query_kmers).sum())
                counters.add(
                    work=_SEED_WORK * len(kmers),
                    traffic=_SEED_TRAFFIC * len(kmers),
                )
            # Extension pass: local rescoring of the top candidates only.
            candidates = np.argsort(seed_counts)[::-1]
            candidates = candidates[seed_counts[candidates] > 0]
            extended = candidates[
                : perforated_count(max(len(candidates), 1), keep_extensions)
            ]
            best = 0.0
            for db_pos in extended:
                seq = database[db_pos]
                window = seq[:_EXTEND_WINDOW]
                score = smith_waterman_score(query, window)
                counters.add(
                    work=_EXTEND_WORK * len(query) * len(window),
                    traffic=_EXTEND_TRAFFIC * len(window),
                )
                best = max(best, score)
            skipped = candidates[len(extended):]
            if len(skipped):
                # Skipped candidates contribute their (conservative) seed
                # score — always a lower bound on the extended score.
                best = max(best, float(seed_counts[skipped].max()) * 1.0)
            best_scores[q_index] = best
        return best_scores

    def quality_loss(
        self, precise_output: np.ndarray, approx_output: np.ndarray
    ) -> float:
        return relative_error_pct(approx_output, precise_output)
