"""Approximable-application framework.

An :class:`ApproximableApp` is a real algorithm implementation with
approximation knobs.  Running it under a :class:`VariantSpec` produces a
:class:`KernelRun` — the algorithm's output plus :class:`KernelCounters`
(work units, memory traffic, peak footprint) incremented by the kernel
itself.  :meth:`ApproximableApp.measure` compares a variant run against the
cached precise run for the same seed and distills the numbers the rest of
the system consumes:

``time_factor``
    execution time relative to precise = measured work ratio.
``traffic_rate_factor``
    *instantaneous* memory-traffic rate relative to precise =
    (traffic ratio) / (work ratio), clamped.  This is what scales the app's
    contention while it runs: a variant that cuts traffic as fast as it cuts
    time leaves the contention rate unchanged (canneal), while one that cuts
    traffic without much speedup (sync elision in SNP) is a strong
    decontention knob — exactly the distinction Section 6.1 draws.
``footprint_factor``
    peak-working-set scale (reduced by precision knobs).
``inaccuracy_pct``
    the app's own quality metric against precise output.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

import numpy as np

from repro.apps.knobs import Knob
from repro.rng import child_generator
from repro.server.resources import ResourceProfile

#: Instantaneous contention may rise slightly when execution speeds up more
#: than traffic shrinks (same accesses squeezed into less time), but we cap
#: the effect: the memory system bounds how much a fixed core count can ask.
_TRAFFIC_RATE_CLAMP = (0.15, 1.05)
_FOOTPRINT_CLAMP = (0.10, 1.10)

#: Share of execution the counters do not see: startup, I/O, serial
#: sections, coordination.  Keeps measured time factors off unrealistic
#: floors (perforating 90 % of a loop does not make a real program 10x
#: faster).
_FIXED_WORK_SHARE = 0.18

#: Memory-traffic intensity of that fixed share relative to the tracked
#: kernel (setup and coordination are far less bandwidth-hungry).
_FIXED_TRAFFIC_INTENSITY = 0.4


class KernelCounters:
    """Instrumentation counters incremented by a kernel as it runs."""

    def __init__(self) -> None:
        self.work = 0.0
        self.mem_traffic = 0.0
        self._footprint = 0.0

    def add(self, work: float = 0.0, traffic: float = 0.0) -> None:
        if work < 0 or traffic < 0:
            raise ValueError("counters only increase")
        self.work += work
        self.mem_traffic += traffic

    def note_footprint(self, bytes_held: float) -> None:
        """Record a working-set high-water mark."""
        self._footprint = max(self._footprint, bytes_held)

    @property
    def footprint(self) -> float:
        return self._footprint


@dataclass(frozen=True)
class KernelRun:
    """Output + counters of one kernel execution."""

    output: Any
    counters: KernelCounters


class VariantSpec(Mapping[str, Any]):
    """An immutable, hashable point in an app's approximation space.

    Maps knob name -> value.  Knobs left unset take their precise value when
    the kernel runs, so the empty spec is precise execution.
    """

    def __init__(self, settings: Mapping[str, Any] | None = None) -> None:
        items = tuple(sorted((settings or {}).items()))
        self._items = items
        self._dict = dict(items)

    def __getitem__(self, key: str) -> Any:
        return self._dict[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self._dict)

    def __len__(self) -> int:
        return len(self._dict)

    def __hash__(self) -> int:
        return hash(self._items)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VariantSpec):
            return NotImplemented
        return self._items == other._items

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self._items)
        return f"VariantSpec({inner})"

    def is_precise_for(self, knobs: Mapping[str, Knob]) -> bool:
        """True if every set knob equals its precise value."""
        return all(
            value == knobs[name].precise_value
            for name, value in self._items
            if name in knobs
        ) and all(name in knobs for name, _ in self._items)


PRECISE_SPEC = VariantSpec()


@dataclass(frozen=True)
class AppMetadata:
    """Simulation-level metadata of an app.

    ``nominal_exec_time`` is the precise-mode wall time on the fair-share
    core allocation with no interference (seconds); ``parallel_fraction`` the
    Amdahl fraction that scales with cores; ``dynrio_overhead`` the
    fractional slowdown of running under the instrumentation tool;
    ``profile`` the per-core shared-resource demands in precise mode.
    """

    name: str
    suite: str
    nominal_exec_time: float
    parallel_fraction: float
    dynrio_overhead: float
    profile: ResourceProfile

    def __post_init__(self) -> None:
        if self.nominal_exec_time <= 0:
            raise ValueError("nominal_exec_time must be positive")
        if not 0.0 <= self.parallel_fraction <= 1.0:
            raise ValueError("parallel_fraction must lie in [0, 1]")
        if self.dynrio_overhead < 0:
            raise ValueError("dynrio_overhead must be non-negative")


@dataclass(frozen=True)
class MeasuredVariant:
    """A variant with measured quality/performance/contention factors."""

    app_name: str
    spec: VariantSpec
    inaccuracy_pct: float
    time_factor: float
    traffic_rate_factor: float
    footprint_factor: float

    @property
    def is_precise(self) -> bool:
        return len(self.spec) == 0 or (
            self.inaccuracy_pct == 0.0 and self.time_factor == 1.0
        )

    def scaled_profile(self, base: ResourceProfile) -> ResourceProfile:
        """Apply this variant's contention scaling to a precise profile."""
        return base.scaled(
            traffic_factor=self.traffic_rate_factor,
            footprint_factor=self.footprint_factor,
        )


@dataclass
class _PreciseCache:
    runs: dict[int, KernelRun] = field(default_factory=dict)


class ApproximableApp(ABC):
    """A real algorithm with approximation knobs.

    Subclasses provide :attr:`metadata`, :meth:`knobs`, :meth:`run_kernel`
    and :meth:`quality_loss`; the base class handles variant materialization,
    precise-run caching and factor measurement.
    """

    metadata: AppMetadata

    def __init__(self) -> None:
        self._precise = _PreciseCache()

    @property
    def name(self) -> str:
        return self.metadata.name

    @abstractmethod
    def knobs(self) -> dict[str, Knob]:
        """The app's approximable sites (ACCEPT-style hints, Section 3)."""

    @abstractmethod
    def run_kernel(
        self,
        settings: Mapping[str, Any],
        counters: KernelCounters,
        rng: np.random.Generator,
    ) -> Any:
        """Execute the algorithm under fully materialized knob ``settings``."""

    @abstractmethod
    def quality_loss(self, precise_output: Any, approx_output: Any) -> float:
        """Inaccuracy (percent) of ``approx_output`` vs ``precise_output``."""

    # -- concrete machinery ---------------------------------------------------

    def materialize(self, spec: VariantSpec) -> dict[str, Any]:
        """Fill unset knobs with precise values; reject unknown knobs."""
        knobs = self.knobs()
        unknown = set(spec) - set(knobs)
        if unknown:
            raise KeyError(f"{self.name}: unknown knobs {sorted(unknown)}")
        settings = {name: knob.precise_value for name, knob in knobs.items()}
        settings.update(spec)
        return settings

    def run(self, spec: VariantSpec = PRECISE_SPEC, seed: int = 0) -> KernelRun:
        """Execute one variant; deterministic for a given (spec, seed)."""
        settings = self.materialize(spec)
        counters = KernelCounters()
        rng = child_generator(seed, f"app/{self.name}")
        output = self.run_kernel(settings, counters, rng)
        if counters.work <= 0:
            raise RuntimeError(f"{self.name}: kernel recorded no work")
        return KernelRun(output=output, counters=counters)

    def precise_run(self, seed: int = 0) -> KernelRun:
        """Cached precise execution for ``seed``."""
        if seed not in self._precise.runs:
            self._precise.runs[seed] = self.run(PRECISE_SPEC, seed=seed)
        return self._precise.runs[seed]

    def measure(self, spec: VariantSpec, seed: int = 0) -> MeasuredVariant:
        """Run ``spec`` and compare against the precise run for ``seed``."""
        precise = self.precise_run(seed)
        if spec.is_precise_for(self.knobs()):
            return MeasuredVariant(
                app_name=self.name,
                spec=VariantSpec(),
                inaccuracy_pct=0.0,
                time_factor=1.0,
                traffic_rate_factor=1.0,
                footprint_factor=1.0,
            )
        variant = self.run(spec, seed=seed)
        work_ratio = variant.counters.work / precise.counters.work
        if precise.counters.mem_traffic > 0:
            traffic_ratio = variant.counters.mem_traffic / precise.counters.mem_traffic
        else:
            traffic_ratio = work_ratio
        # Blend in the untracked fixed share of execution (see constants).
        fixed = _FIXED_WORK_SHARE
        work_ratio = fixed + (1.0 - fixed) * work_ratio
        traffic_ratio = (
            fixed * _FIXED_TRAFFIC_INTENSITY + (1.0 - fixed) * traffic_ratio
        )
        rate = traffic_ratio / max(work_ratio, 1e-9)
        if precise.counters.footprint > 0:
            footprint_ratio = variant.counters.footprint / precise.counters.footprint
        else:
            footprint_ratio = 1.0
        return MeasuredVariant(
            app_name=self.name,
            spec=spec,
            inaccuracy_pct=float(self.quality_loss(precise.output, variant.output)),
            time_factor=float(work_ratio),
            traffic_rate_factor=float(np.clip(rate, *_TRAFFIC_RATE_CLAMP)),
            footprint_factor=float(np.clip(footprint_ratio, *_FOOTPRINT_CLAMP)),
        )

    def precise_variant(self) -> MeasuredVariant:
        """The precise point (inaccuracy 0, all factors 1)."""
        return MeasuredVariant(
            app_name=self.name,
            spec=VariantSpec(),
            inaccuracy_pct=0.0,
            time_factor=1.0,
            traffic_rate_factor=1.0,
            footprint_factor=1.0,
        )
