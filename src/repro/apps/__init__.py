"""Approximate-computing applications.

Twenty-four kernels mirroring the paper's benchmark selection (PARSEC,
SPLASH-2, MineBench, BioPerf), each a *real* small-scale implementation of
the algorithm the benchmark is named for, with

* genuine output-quality metrics measured against precise execution,
* approximation knobs (loop perforation, synchronization elision, reduced
  precision) wired into the algorithm itself, and
* instrumentation counters from which the execution-time and contention
  factors used by the colocation simulator are *measured*, not assumed.
"""

from repro.apps.base import (
    AppMetadata,
    ApproximableApp,
    KernelCounters,
    KernelRun,
    MeasuredVariant,
    VariantSpec,
)
from repro.apps.knobs import (
    Knob,
    LoopPerforation,
    PrecisionReduction,
    SyncElision,
    perforated_count,
    perforated_indices,
)
from repro.apps.registry import ALL_APP_NAMES, SUITES, make_app

__all__ = [
    "ALL_APP_NAMES",
    "AppMetadata",
    "ApproximableApp",
    "KernelCounters",
    "KernelRun",
    "Knob",
    "LoopPerforation",
    "MeasuredVariant",
    "PrecisionReduction",
    "SUITES",
    "SyncElision",
    "VariantSpec",
    "make_app",
    "perforated_count",
    "perforated_indices",
]
