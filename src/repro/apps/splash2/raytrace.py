"""raytrace: a small sphere-scene ray tracer.

SPLASH-2's raytrace renders a scene with recursive rays.  This kernel
renders a fixed sphere-and-plane scene: one primary ray per pixel, a shadow
ray toward the light, and one reflection bounce for reflective surfaces.

Approximation knobs
-------------------
``perforate_reflection`` — trace the reflection bounce for only a fraction
    of the pixels (others take the local shade).  The visual error is tiny,
    matching the paper's raytrace inaccuracy axis of < 0.1 %.
``perforate_shadows``    — evaluate shadow rays for only a fraction of
    pixels, reusing the neighbor verdict elsewhere.

raytrace is the paper's example of an app with few useful variants: only two
selected points within the 5 % quality budget.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro import units
from repro.apps.base import AppMetadata, ApproximableApp, KernelCounters
from repro.apps.knobs import Knob, LoopPerforation, perforated_indices
from repro.apps.quality import rmse_pct
from repro.server.resources import ResourceProfile

_RES = 48
_SPHERES = 6
_PRIMARY_WORK = 1.0
_SECONDARY_WORK = 0.9
_RAY_TRAFFIC = 64.0


def _intersect(
    origins: np.ndarray,
    directions: np.ndarray,
    centers: np.ndarray,
    radii: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Nearest sphere hit per ray; returns (t, sphere_index), inf/-1 on miss."""
    oc = origins[:, None, :] - centers[None, :, :]
    b = (oc * directions[:, None, :]).sum(axis=2)
    c = (oc**2).sum(axis=2) - radii[None, :] ** 2
    disc = b**2 - c
    hit = disc > 0
    sqrt_disc = np.sqrt(np.where(hit, disc, 0.0))
    t = np.where(hit, -b - sqrt_disc, np.inf)
    t = np.where(t > 1e-4, t, np.inf)
    best = t.argmin(axis=1)
    best_t = t[np.arange(len(t)), best]
    best_idx = np.where(np.isfinite(best_t), best, -1)
    return best_t, best_idx


class Raytrace(ApproximableApp):
    """Sphere-scene ray tracer (SPLASH-2)."""

    metadata = AppMetadata(
        name="raytrace",
        suite="splash2",
        nominal_exec_time=25.0,
        parallel_fraction=0.95,
        dynrio_overhead=0.017,
        profile=ResourceProfile(
            llc_footprint_bytes=units.mb(36),
            llc_intensity=0.75,
            membw_per_core=units.gbytes_per_sec(5.0),
        ),
    )

    def knobs(self) -> dict[str, Knob]:
        return {
            "perforate_reflection": LoopPerforation(
                "perforate_reflection", (0.50, 0.20)
            ),
            "perforate_shadows": LoopPerforation("perforate_shadows", (0.50,)),
        }

    def run_kernel(
        self,
        settings: Mapping[str, Any],
        counters: KernelCounters,
        rng: np.random.Generator,
    ) -> np.ndarray:
        keep_reflection = settings["perforate_reflection"]
        keep_shadows = settings["perforate_shadows"]

        centers = rng.uniform(-2.5, 2.5, size=(_SPHERES, 3))
        centers[:, 2] = rng.uniform(4.0, 8.0, size=_SPHERES)
        radii = rng.uniform(0.6, 1.2, size=_SPHERES)
        albedo = rng.uniform(0.3, 0.9, size=_SPHERES)
        light = np.array([5.0, 5.0, 0.0])
        counters.note_footprint(units.mb(1) + centers.nbytes + radii.nbytes)

        n_pixels = _RES * _RES
        px, py = np.meshgrid(
            np.linspace(-1, 1, _RES), np.linspace(-1, 1, _RES), indexing="xy"
        )
        directions = np.stack(
            [px.ravel(), py.ravel(), np.full(n_pixels, 1.5)], axis=1
        )
        directions /= np.linalg.norm(directions, axis=1, keepdims=True)
        origins = np.zeros((n_pixels, 3))

        t_hit, idx_hit = _intersect(origins, directions, centers, radii)
        counters.add(
            work=_PRIMARY_WORK * n_pixels,
            traffic=_RAY_TRAFFIC * n_pixels,
        )
        image = np.full(n_pixels, 0.05)  # background
        hits = np.nonzero(idx_hit >= 0)[0]
        if len(hits) == 0:
            return image.reshape(_RES, _RES)

        hit_points = origins[hits] + directions[hits] * t_hit[hits, None]
        normals = hit_points - centers[idx_hit[hits]]
        normals /= np.linalg.norm(normals, axis=1, keepdims=True)
        to_light = light[None, :] - hit_points
        to_light /= np.linalg.norm(to_light, axis=1, keepdims=True)
        diffuse = np.clip((normals * to_light).sum(axis=1), 0.0, 1.0)
        shade = albedo[idx_hit[hits]] * diffuse

        # Shadow rays for a perforated subset; unevaluated pixels inherit the
        # verdict of the nearest evaluated pixel (in hit order).
        shadow_subset = perforated_indices(len(hits), keep_shadows)
        s_origins = hit_points[shadow_subset] + normals[shadow_subset] * 1e-3
        s_t, s_idx = _intersect(
            s_origins, to_light[shadow_subset], centers, radii
        )
        counters.add(
            work=_SECONDARY_WORK * len(shadow_subset),
            traffic=_RAY_TRAFFIC * len(shadow_subset),
        )
        occluded = s_idx >= 0
        nearest = np.searchsorted(shadow_subset, np.arange(len(hits)))
        nearest = np.clip(nearest, 0, len(shadow_subset) - 1)
        shade[occluded[nearest]] *= 0.60

        # Reflection bounce for a perforated subset of hit pixels.
        reflect_subset = perforated_indices(len(hits), keep_reflection)
        r_dirs = directions[hits][reflect_subset]
        r_norm = normals[reflect_subset]
        reflected = r_dirs - 2.0 * (r_dirs * r_norm).sum(axis=1)[:, None] * r_norm
        r_origins = hit_points[reflect_subset] + r_norm * 1e-3
        r_t, r_idx = _intersect(r_origins, reflected, centers, radii)
        counters.add(
            work=_SECONDARY_WORK * len(reflect_subset),
            traffic=_RAY_TRAFFIC * len(reflect_subset),
        )
        r_shade = np.where(r_idx >= 0, albedo[np.clip(r_idx, 0, None)] * 0.5, 0.0)
        shade[reflect_subset] = 0.96 * shade[reflect_subset] + 0.04 * r_shade

        image[hits] = shade
        return image.reshape(_RES, _RES)

    def quality_loss(
        self, precise_output: np.ndarray, approx_output: np.ndarray
    ) -> float:
        return rmse_pct(approx_output, precise_output)
