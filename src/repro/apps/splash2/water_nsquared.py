"""water_nsquared: O(N^2) molecular dynamics of a Lennard-Jones fluid.

SPLASH-2's water_nsquared evaluates all pairwise interactions between
molecules every timestep.  This kernel runs velocity-Verlet MD with a
Lennard-Jones potential over all pairs of a small atom box.

Approximation knobs
-------------------
``perforate_pairs`` — evaluate only a fraction of the pair interactions
    (compensated by rescaling).  The pair loop is *compute*-heavy relative
    to its traffic (N^2 arithmetic over N atoms of data), so perforation
    shortens execution much faster than it sheds memory traffic — which is
    why the paper finds approximation alone does not help memcached much
    when colocated with water_nsquared.
``precision`` — positions/velocities at reduced precision.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro import units
from repro.apps.base import AppMetadata, ApproximableApp, KernelCounters
from repro.apps.knobs import (
    Knob,
    LoopPerforation,
    PrecisionReduction,
    perforated_indices,
)
from repro.apps.quality import rmse_pct
from repro.server.resources import ResourceProfile

_N_ATOMS = 220
_STEPS = 4
_DT = 0.002
_PAIR_WORK = 1.0
_PAIR_TRAFFIC = 12.0  # bytes-equivalent per pair; deliberately small
_NEIGHBOR_REBUILD_TRAFFIC = 48.0  # per atom, unperforated
_INTEGRATE_WORK = 0.2


class WaterNSquared(ApproximableApp):
    """All-pairs molecular dynamics (SPLASH-2)."""

    metadata = AppMetadata(
        name="water_nsquared",
        suite="splash2",
        nominal_exec_time=30.0,
        parallel_fraction=0.92,
        dynrio_overhead=0.034,
        profile=ResourceProfile(
            llc_footprint_bytes=units.mb(20),
            llc_intensity=0.60,
            membw_per_core=units.gbytes_per_sec(5.0),
        ),
    )

    def knobs(self) -> dict[str, Knob]:
        return {
            "perforate_pairs": LoopPerforation(
                "perforate_pairs", (0.80, 0.65, 0.50, 0.35)
            ),
            "precision": PrecisionReduction("precision"),
        }

    def run_kernel(
        self,
        settings: Mapping[str, Any],
        counters: KernelCounters,
        rng: np.random.Generator,
    ) -> np.ndarray:
        keep_pairs = settings["perforate_pairs"]
        dtype = PrecisionReduction.dtype(settings["precision"])
        bytes_per_elem = PrecisionReduction.bytes_per_element(settings["precision"])

        side = int(round(_N_ATOMS ** (1 / 3))) + 1
        lattice = np.stack(
            np.meshgrid(*[np.arange(side)] * 3, indexing="ij"), axis=-1
        ).reshape(-1, 3)[:_N_ATOMS]
        pos = (lattice * 1.2 + rng.normal(0, 0.05, (_N_ATOMS, 3))).astype(dtype)
        vel = rng.normal(0, 0.3, (_N_ATOMS, 3)).astype(dtype)
        counters.note_footprint(2.0 * pos.size * bytes_per_elem)

        i_upper, j_upper = np.triu_indices(_N_ATOMS, k=1)
        kept = perforated_indices(len(i_upper), keep_pairs)
        i_k, j_k = i_upper[kept], j_upper[kept]
        compensation = 1.0 / keep_pairs

        def forces(p: np.ndarray) -> np.ndarray:
            diff = p[i_k] - p[j_k]
            r2 = (diff**2).sum(axis=1) + 1e-9
            inv6 = (1.0 / r2) ** 3
            magnitude = 24.0 * (2.0 * inv6**2 - inv6) / r2
            pair_force = diff * magnitude[:, None] * compensation
            out = np.zeros_like(p)
            np.add.at(out, i_k, pair_force)
            np.add.at(out, j_k, -pair_force)
            counters.add(
                work=_PAIR_WORK * len(i_k),
                traffic=_PAIR_TRAFFIC * len(i_k) * (bytes_per_elem / 8.0),
            )
            return out

        work_pos = pos.astype(np.float64)
        work_vel = vel.astype(np.float64)
        accel = forces(work_pos)
        for _ in range(_STEPS):
            # Neighbor-structure refresh: full scan regardless of perforation.
            counters.add(
                work=0.05 * _N_ATOMS,
                traffic=_NEIGHBOR_REBUILD_TRAFFIC * _N_ATOMS,
            )
            work_pos = work_pos + work_vel * _DT + 0.5 * accel * _DT**2
            new_accel = forces(work_pos)
            work_vel = work_vel + 0.5 * (accel + new_accel) * _DT
            accel = new_accel
            counters.add(work=_INTEGRATE_WORK * _N_ATOMS)
            work_pos = work_pos.astype(dtype).astype(np.float64)
            work_vel = work_vel.astype(dtype).astype(np.float64)

        return work_vel

    def quality_loss(
        self, precise_output: np.ndarray, approx_output: np.ndarray
    ) -> float:
        return rmse_pct(approx_output, precise_output)
