"""SPLASH-2-derived approximate kernels: water variants and raytrace."""

from repro.apps.splash2.raytrace import Raytrace
from repro.apps.splash2.water_nsquared import WaterNSquared
from repro.apps.splash2.water_spatial import WaterSpatial

__all__ = ["Raytrace", "WaterNSquared", "WaterSpatial"]
