"""water_spatial: cell-list molecular dynamics.

SPLASH-2's water_spatial is the linked-cell variant of the water code: the
box is partitioned into cells and only atoms in the same cell interact at
short range.  The short-range phase dominates runtime; a long-range
correction over sampled far pairs is the perforable slice.

Approximation knobs
-------------------
``perforate_correction`` — perforate the long-range correction loop.
    Because that loop is only a modest fraction of total work, even
    aggressive perforation barely shortens execution — reproducing the
    paper's observation that water_spatial's approximate variants form an
    almost vertical line (quality drops, time doesn't), and its execution
    time under Pliant can exceed precise when cores are reclaimed.
``precision`` — particle state at reduced precision.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro import units
from repro.apps.base import AppMetadata, ApproximableApp, KernelCounters
from repro.apps.knobs import (
    Knob,
    LoopPerforation,
    PrecisionReduction,
    perforated_indices,
)
from repro.apps.quality import rmse_pct
from repro.server.resources import ResourceProfile

_N_ATOMS = 400
_STEPS = 4
_CELLS = 3
_DT = 0.004
_CORRECTION_PAIRS = 2500
_SHORT_WORK = 1.0
_SHORT_TRAFFIC = 24.0
_CORRECTION_WORK = 0.18
_CORRECTION_TRAFFIC = 4.0


class WaterSpatial(ApproximableApp):
    """Cell-list molecular dynamics (SPLASH-2)."""

    metadata = AppMetadata(
        name="water_spatial",
        suite="splash2",
        nominal_exec_time=28.0,
        parallel_fraction=0.90,
        dynrio_overhead=0.089,
        profile=ResourceProfile(
            llc_footprint_bytes=units.mb(26),
            llc_intensity=0.62,
            membw_per_core=units.gbytes_per_sec(5.5),
        ),
    )

    def knobs(self) -> dict[str, Knob]:
        return {
            "perforate_correction": LoopPerforation(
                "perforate_correction", (0.60, 0.40, 0.25, 0.12)
            ),
            "precision": PrecisionReduction("precision", ("float32",)),
        }

    def run_kernel(
        self,
        settings: Mapping[str, Any],
        counters: KernelCounters,
        rng: np.random.Generator,
    ) -> np.ndarray:
        keep_correction = settings["perforate_correction"]
        dtype = PrecisionReduction.dtype(settings["precision"])
        bytes_per_elem = PrecisionReduction.bytes_per_element(settings["precision"])

        box = float(_CELLS)
        pos = (rng.random((_N_ATOMS, 3)) * box).astype(dtype)
        vel = rng.normal(0, 0.2, (_N_ATOMS, 3)).astype(dtype)
        counters.note_footprint(2.0 * pos.size * bytes_per_elem + 8192.0)

        # Fixed sample of far pairs for the long-range correction.
        far_i = rng.integers(0, _N_ATOMS, size=_CORRECTION_PAIRS)
        far_j = rng.integers(0, _N_ATOMS, size=_CORRECTION_PAIRS)
        valid = far_i != far_j
        far_i, far_j = far_i[valid], far_j[valid]
        kept = perforated_indices(len(far_i), keep_correction)
        i_k, j_k = far_i[kept], far_j[kept]

        work_pos = pos.astype(np.float64)
        work_vel = vel.astype(np.float64)
        for _ in range(_STEPS):
            accel = np.zeros_like(work_pos)
            cell_of = np.floor(work_pos).clip(0, _CELLS - 1).astype(int)
            cell_id = (
                cell_of[:, 0] * _CELLS * _CELLS + cell_of[:, 1] * _CELLS + cell_of[:, 2]
            )
            # Short-range forces between atoms in the same cell: the dominant
            # phase, not perforated.
            for cell in np.unique(cell_id):
                members = np.nonzero(cell_id == cell)[0]
                if len(members) < 2:
                    continue
                p = work_pos[members]
                diff = p[:, None, :] - p[None, :, :]
                r2 = (diff**2).sum(axis=2) + 1e-2
                magnitude = 0.5 / r2 - 0.3 / (r2**2)
                np.fill_diagonal(magnitude, 0.0)
                accel[members] += (diff * magnitude[..., None]).sum(axis=1)
                pair_count = len(members) * (len(members) - 1) / 2
                counters.add(
                    work=_SHORT_WORK * pair_count,
                    traffic=_SHORT_TRAFFIC * pair_count * (bytes_per_elem / 8.0),
                )
            # Long-range correction over the perforated far-pair sample.
            diff = work_pos[i_k] - work_pos[j_k]
            r2 = (diff**2).sum(axis=1) + 1.0
            tail = diff / (r2**2)[:, None] * (0.6 / keep_correction)
            np.add.at(accel, i_k, tail)
            np.add.at(accel, j_k, -tail)
            counters.add(
                work=_CORRECTION_WORK * len(i_k),
                traffic=_CORRECTION_TRAFFIC * len(i_k) * (bytes_per_elem / 8.0),
            )
            work_vel = (work_vel + accel * _DT) * 0.995
            work_pos = work_pos + work_vel * _DT
            work_pos = np.mod(work_pos, box)
            work_pos = work_pos.astype(dtype).astype(np.float64)
            work_vel = work_vel.astype(dtype).astype(np.float64)

        return work_vel

    def quality_loss(
        self, precise_output: np.ndarray, approx_output: np.ndarray
    ) -> float:
        return rmse_pct(approx_output, precise_output)
