"""Content-addressed storage primitives.

Dependency-free helpers shared by every on-disk cache in the repo (the
design-space exploration cache and the sweep result cache): stable
content hashing for keys and atomic file writes so a crashed process
never leaves a torn entry behind.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any


def stable_hash(payload: Any, length: int = 32) -> str:
    """Hex digest of a JSON-serializable payload, stable across runs."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:length]


def atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` via a same-directory tmp file + rename."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
