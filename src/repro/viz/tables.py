"""Aligned text tables and sparkline timelines for bench output."""

from __future__ import annotations

from typing import Sequence

import numpy as np

_SPARK_CHARS = " .:-=+*#%@"


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render rows as an aligned monospace table."""
    rendered = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rendered:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.2f}"
    return str(value)


def format_timeline(
    values: np.ndarray, width: int = 80, label: str = "", ceiling: float | None = None
) -> str:
    """Render a numeric series as a one-line sparkline."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        return f"{label}: (empty)"
    if arr.size > width:
        bins = np.array_split(arr, width)
        arr = np.asarray([b.mean() for b in bins])
    top = ceiling if ceiling is not None else float(arr.max())
    top = max(top, 1e-12)
    scaled = np.clip(arr / top, 0.0, 1.0)
    indices = (scaled * (len(_SPARK_CHARS) - 1)).round().astype(int)
    body = "".join(_SPARK_CHARS[i] for i in indices)
    prefix = f"{label}: " if label else ""
    return f"{prefix}|{body}|"
