"""Text rendering of results (benches print tables, not plots)."""

from repro.viz.tables import format_table, format_timeline

__all__ = ["format_table", "format_timeline"]
