"""Edge cases across modules that the per-module suites don't reach."""

import os

import pytest

from repro.core.monitor import PerformanceMonitor
from repro.core.arbiter import AppView, ImpactAwareArbiter
from repro.exploration.explorer import default_cache_dir


class TestMonitorColdStart:
    def test_empty_history_interval_is_zero(self):
        monitor = PerformanceMonitor(qos=1.0)
        obs = monitor.close_interval(1.0)
        assert obs.p99 == 0.0
        assert obs.sample_count == 0
        assert obs.qos_met  # zero latency trivially meets QoS


class TestImpactAwareWithoutMetadata:
    def test_empty_rate_tuples_default_to_zero_score(self):
        arbiter = ImpactAwareArbiter()
        bare = AppView(name="bare", level=0, max_level=2, cores=4, nominal_cores=4)
        decision = arbiter.escalate([bare])
        assert decision.action == "set_level"
        assert decision.level == 2

    def test_deescalate_without_metadata(self):
        arbiter = ImpactAwareArbiter()
        bare = AppView(name="bare", level=1, max_level=2, cores=4, nominal_cores=4)
        decision = arbiter.deescalate([bare])
        assert decision.action == "set_level"
        assert decision.level == 0

    def test_none_when_nothing_to_do(self):
        arbiter = ImpactAwareArbiter()
        relaxed = AppView(name="a", level=0, max_level=0, cores=1, nominal_cores=1)
        assert arbiter.escalate([relaxed]).action == "none"
        assert arbiter.deescalate([relaxed]).action == "none"


class TestCacheDirOverride:
    def test_env_var_respected(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_EXPLORATION_CACHE", str(tmp_path / "x"))
        assert default_cache_dir() == tmp_path / "x"

    def test_default_under_home(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXPLORATION_CACHE", raising=False)
        assert "repro-pliant" in str(default_cache_dir())


class TestSwitchPauseConsumption:
    def test_pause_delays_progress(self):
        from repro.cluster import build_engine
        from repro.core import PrecisePolicy
        from repro.core.runtime import ColocationConfig

        engine = build_engine(
            "mongodb", ["kmeans"], PrecisePolicy(), config=ColocationConfig(seed=12)
        )
        sim = engine.app_sim("kmeans")
        sim.pause_remaining = 0.25
        engine._advance_app(sim, 0.1)
        assert sim.progress == 0.0
        assert sim.pause_remaining == pytest.approx(0.15)
        engine._advance_app(sim, 0.2)
        assert sim.progress > 0.0
        assert sim.pause_remaining == 0.0


class TestResultOfferedQps:
    def test_reference_load_recorded(self):
        from repro.cluster import run_colocation
        from repro.core.runtime import ColocationConfig
        from repro.services import make_service

        config = ColocationConfig(seed=12, horizon=4.0, load_fraction=0.5)
        result = run_colocation("nginx", ["raytrace"], config=config)
        expected = 0.5 * make_service("nginx").saturation_qps(8)
        assert result.offered_qps == pytest.approx(expected)
