"""``python -m repro.sweep submit --spec`` — the spec-file control plane."""

import json

import pytest

from repro.experiment import ExperimentSpec, ResultSet
from repro.sweep import JobSpool
from repro.sweep.cli import main


def spec_file(tmp_path, **overrides):
    spec = ExperimentSpec(
        name="cli-spec",
        base={
            "service": "mongodb",
            "apps": "kmeans",
            "seed": 4,
            "horizon": 30.0,
            "loadgen_shape": "step",
            "loadgen_params": {"steps": [[0.0, 0.5], [15.0, 0.9]]},
            **overrides,
        },
        axes={"slack_threshold": (0.05, 0.10)},
    )
    return spec, spec.save(tmp_path / "exp.json")


class TestSubmitSpec:
    def test_spools_spec_scenarios(self, tmp_path, capsys):
        spec, path = spec_file(tmp_path)
        assert main(
            ["submit", "--spool", str(tmp_path / "spool"),
             "--cache", str(tmp_path / "cache"), "--spec", str(path)]
        ) == 0
        assert "spooled 2 scenarios" in capsys.readouterr().out
        spool = JobSpool(tmp_path / "spool")
        loaded = [spool.load_scenario(job_id) for job_id in spool.job_ids()]
        assert set(loaded) == set(spec.scenarios())
        # The new axes travel through the spool JSON intact.
        assert all(s.loadgen_shape == "step" for s in loaded)

    def test_wait_executes_and_warm_rerun_hits_cache(self, tmp_path, capsys):
        _, path = spec_file(tmp_path)
        args = ["submit", "--spool", str(tmp_path / "spool"),
                "--cache", str(tmp_path / "cache"), "--spec", str(path),
                "--wait", "--timeout", "300"]
        assert main([*args, "--workers", "1"]) == 0
        out = capsys.readouterr().out
        assert "2 scenarios complete (0 from cache)" in out
        # Warm rerun: >= 95% cached (here: all of it), no workers needed.
        assert main(args) == 0
        assert "2 scenarios complete (2 from cache)" in capsys.readouterr().out

    def test_wait_saves_resultset(self, tmp_path, capsys):
        spec, path = spec_file(tmp_path)
        out_path = tmp_path / "results.pkl"
        assert main(
            ["submit", "--spool", str(tmp_path / "spool"),
             "--cache", str(tmp_path / "cache"), "--spec", str(path),
             "--wait", "--workers", "1", "--timeout", "300",
             "--out", str(out_path)]
        ) == 0
        results = ResultSet.load(out_path)
        assert len(results) == 2
        assert results.spec == spec

    def test_spec_exclusive_with_grid_flags(self, tmp_path):
        _, path = spec_file(tmp_path)
        with pytest.raises(SystemExit):
            main(["submit", "--spool", str(tmp_path / "spool"),
                  "--spec", str(path), "--apps", "kmeans"])
        # Every grid flag conflicts, not just --apps — a silently dropped
        # flag would run a different experiment than the command reads.
        with pytest.raises(SystemExit, match="--seeds"):
            main(["submit", "--spool", str(tmp_path / "spool"),
                  "--spec", str(path), "--seeds", "0,1"])

    def test_out_requires_wait(self, tmp_path):
        _, path = spec_file(tmp_path)
        with pytest.raises(SystemExit, match="--out needs --wait"):
            main(["submit", "--spool", str(tmp_path / "spool"),
                  "--spec", str(path), "--out", str(tmp_path / "r.pkl")])

    def test_bad_spec_file_fails_loudly(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"base": {"service": "mongodb"}, "axes": [],
                                   "bogus": 1}))
        with pytest.raises(ValueError, match="unknown spec field"):
            main(["submit", "--spool", str(tmp_path / "spool"),
                  "--spec", str(bad)])
