"""ResultSet: querying, aggregation, tabular export, persistence."""

import csv
import io
import json

import pytest

from repro.experiment import (
    METRICS,
    ExperimentSpec,
    ResultSet,
    register_metric,
    run_experiment,
)

SPEC = ExperimentSpec(
    name="resultset-fixture",
    base={"service": "mongodb", "apps": "kmeans", "seed": 4, "horizon": 30.0},
    axes={
        "load_fraction": (0.5, 0.9),
        "slack_threshold": (0.05, 0.10),
    },
)


@pytest.fixture(scope="module")
def results() -> ResultSet:
    return run_experiment(SPEC, workers=1)


class TestQuerying:
    def test_grid_order_and_len(self, results):
        assert len(results) == 4
        assert [o.scenario.load_fraction for o in results] == [0.5, 0.5, 0.9, 0.9]

    def test_filter_by_axis(self, results):
        subset = results.filter(load_fraction=0.5)
        assert len(subset) == 2
        assert all(o.scenario.load_fraction == 0.5 for o in subset)

    def test_filter_accepts_app_string(self, results):
        assert len(results.filter(apps="kmeans")) == 4
        assert len(results.filter(apps=("kmeans", "canneal"))) == 0

    def test_filter_predicate(self, results):
        met = results.filter(lambda o: o.result.qos_met)
        assert all(o.result.qos_met for o in met)

    def test_filter_unknown_axis_raises(self, results):
        with pytest.raises(ValueError, match="unknown scenario axis"):
            results.filter(nonsense=1)

    def test_filter_method_name_raises_not_matches_nothing(self, results):
        # "label" is a Scenario *method*; treating it as an axis must be
        # an error, not an always-empty filter.
        with pytest.raises(ValueError, match="unknown scenario axis"):
            results.filter(label="mongodb/kmeans")
        with pytest.raises(ValueError, match="unknown scenario axis"):
            results.group_by("config")

    def test_lookup_single(self, results):
        result = results.lookup(load_fraction=0.5, slack_threshold=0.05)
        assert result.service_name == "mongodb"

    def test_lookup_ambiguous_raises(self, results):
        with pytest.raises(LookupError, match="exactly one"):
            results.lookup(load_fraction=0.5)

    def test_group_by_single_axis(self, results):
        groups = results.group_by("load_fraction")
        assert set(groups) == {0.5, 0.9}
        assert all(len(group) == 2 for group in groups.values())

    def test_group_by_multiple_axes(self, results):
        groups = results.group_by("load_fraction", "slack_threshold")
        assert len(groups) == 4
        assert all(len(group) == 1 for group in groups.values())


class TestAggregation:
    def test_scalar_aggregate(self, results):
        mean_ratio = results.aggregate("qos_ratio")
        assert 0.0 < mean_ratio < 2.0

    def test_grouped_aggregate_tracks_load(self, results):
        by_load = results.aggregate("qos_ratio", by="load_fraction")
        assert by_load[0.5] < by_load[0.9]

    def test_reducers(self, results):
        assert results.aggregate("qos_ratio", reduce="count") == 4
        assert (
            results.aggregate("qos_ratio", reduce="min")
            <= results.aggregate("qos_ratio", reduce="median")
            <= results.aggregate("qos_ratio", reduce="max")
        )

    def test_unknown_metric_and_reducer_raise(self, results):
        with pytest.raises(ValueError, match="unknown metric"):
            results.aggregate("not_a_metric")
        with pytest.raises(ValueError, match="unknown reducer"):
            results.aggregate("qos_ratio", reduce="mode")

    def test_callable_metric(self, results):
        values = results.values(lambda r: r.offered_qps)
        assert len(values) == 4

    def test_registered_metric(self, results):
        register_metric(
            "test_epochs", lambda r: len(r.epoch_times), overwrite=True
        )
        try:
            assert all(v > 0 for v in results.values("test_epochs"))
        finally:
            METRICS.pop("test_epochs", None)


class TestExport:
    def test_records_carry_axes_provenance_metrics(self, results):
        records = results.to_records(metrics=["qos_ratio", "qos_met"])
        assert len(records) == 4
        first = records[0]
        assert first["service"] == "mongodb"
        assert first["apps"] == "kmeans"
        assert first["loadgen_shape"] == "constant"
        assert "from_cache" in first and "duration" in first
        assert "qos_ratio" in first and "qos_met" in first

    def test_default_records_include_standard_metrics(self, results):
        record = results.to_records()[0]
        for metric in METRICS:
            assert metric in record

    def test_to_json(self, results, tmp_path):
        path = tmp_path / "results.json"
        text = results.to_json(path, metrics=["qos_ratio"])
        assert json.loads(text) == json.loads(path.read_text())
        assert len(json.loads(text)) == 4

    def test_to_csv_parses_back(self, results, tmp_path):
        path = tmp_path / "results.csv"
        text = results.to_csv(path, metrics=["qos_ratio"])
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == 4
        assert {row["load_fraction"] for row in rows} == {"0.5", "0.9"}
        assert path.read_text() == text


class TestPersistence:
    def test_save_load_bit_identical(self, results, tmp_path):
        path = results.save(tmp_path / "rs.pkl")
        loaded = ResultSet.load(path)
        assert loaded.identical(results)
        assert loaded.spec == SPEC

    def test_load_rejects_foreign_format(self, results, tmp_path):
        import pickle

        path = tmp_path / "bad.pkl"
        path.write_bytes(pickle.dumps({"format": 99, "outcomes": []}))
        with pytest.raises(ValueError, match="format"):
            ResultSet.load(path)

    def test_identical_detects_differences(self, results):
        assert results.identical(results)
        truncated = ResultSet(results.outcomes[:-1])
        assert not results.identical(truncated)
