"""Scenario serialization: round trips, strictness, and the pinned
cache-key schema.

The golden-payload tests are the compatibility contract for the
content-addressed result cache: adding a scenario axis must not change
the key payload of scenarios that don't use it, or every cached result
ever computed silently goes cold.  If one of these tests fails, either
restore default-elision for the new axis or consciously accept a
cache-wide invalidation (and say so in the commit).
"""

import json

import pytest

from repro.sweep import Scenario, SweepCache, stable_hash

RICH = Scenario(
    service="memcached",
    apps=("canneal",),
    seed=2,
    loadgen_shape="diurnal",
    loadgen_params=(("low", 0.5), ("high", 0.95), ("period", 120.0)),
    platform="half-llc",
    slack_threshold=0.07,
)


class TestRoundTrip:
    def test_new_axes_round_trip_identity(self):
        assert Scenario.from_payload(RICH.to_payload()) == RICH

    def test_payload_is_json_safe(self):
        payload = RICH.to_payload()
        assert json.loads(json.dumps(payload)) == payload

    def test_round_trip_through_json_preserves_cache_key(self, tmp_path):
        cache = SweepCache(tmp_path)
        clone = Scenario.from_payload(json.loads(json.dumps(RICH.to_payload())))
        assert cache.key(clone) == cache.key(RICH)

    def test_nested_params_freeze_to_tuples(self):
        scenario = Scenario(
            service="mongodb",
            apps=["kmeans"],
            loadgen_shape="step",
            loadgen_params=[["steps", [[0.0, 0.5], [60.0, 0.9]]]],
        )
        assert scenario.loadgen_params == (("steps", ((0.0, 0.5), (60.0, 0.9))),)
        assert hash(scenario)  # fully hashable after normalization

    def test_unknown_field_rejected(self):
        payload = RICH.to_payload()
        payload["qos_target"] = 0.001
        with pytest.raises(ValueError, match="unknown scenario field"):
            Scenario.from_payload(payload)

    def test_pre_axis_payload_still_loads(self):
        # Spool payloads written before the open axes existed carry no
        # loadgen/platform keys; they must load with the defaults.
        legacy = {
            key: value
            for key, value in Scenario(
                service="mongodb", apps=("kmeans",), seed=4
            ).to_payload().items()
            if key not in ("loadgen_shape", "loadgen_params", "platform")
        }
        scenario = Scenario.from_payload(legacy)
        assert scenario.has_default_loadgen()
        assert scenario.platform == "default"

    def test_unknown_loadgen_shape_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown loadgen shape"):
            Scenario(service="mongodb", apps=("kmeans",), loadgen_shape="sawtooth")


class TestGoldenCacheKeySchema:
    """Pins the exact key payload (and its hash) — see module docstring."""

    def test_default_axes_payload_schema(self):
        scenario = Scenario(service="memcached", apps=("canneal",), seed=2)
        assert scenario.key_payload() == {
            "service": "memcached",
            "apps": ["canneal"],
            "policy": "pliant",
            "policy_kwargs": [],
            "load_fraction": "0.775",
            "decision_interval": "1.0",
            "monitor_epoch": "0.1",
            "slack_threshold": "0.1",
            "horizon": "400.0",
            "seed": 2,
            "stop_when_apps_done": True,
            "exploration_seed": 0,
        }

    def test_default_axes_hash_unchanged_since_pr1(self):
        # Computed by the PR-1-era key_payload(): proof that pre-axis
        # cache entries stay hot.
        scenario = Scenario(service="memcached", apps=("canneal",), seed=2)
        assert stable_hash(scenario.key_payload()) == (
            "a46c4acc3581f7ae37f26f47036e30f8"
        )

    def test_new_axes_extend_the_payload(self):
        payload = RICH.key_payload()
        assert payload["loadgen"] == [
            "diurnal",
            [["low", "0.5"], ["high", "0.95"], ["period", "120.0"]],
        ]
        assert payload["platform"] == "half-llc"
        assert stable_hash(payload) == "72ef37df498fa5bed2084a56b7a0f86a"

    def test_new_axes_at_defaults_are_elided(self):
        explicit = Scenario(
            service="memcached",
            apps=("canneal",),
            seed=2,
            loadgen_shape="constant",
            loadgen_params=(),
            platform="default",
        )
        implicit = Scenario(service="memcached", apps=("canneal",), seed=2)
        assert explicit.key_payload() == implicit.key_payload()
        assert "loadgen" not in explicit.key_payload()
        assert "platform" not in explicit.key_payload()

    def test_non_default_axes_change_the_key(self, tmp_path):
        cache = SweepCache(tmp_path)
        base = Scenario(service="memcached", apps=("canneal",), seed=2)
        assert cache.key(base) != cache.key(RICH)
