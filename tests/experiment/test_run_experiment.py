"""run_experiment: substrate resolution and cross-backend bit-identity.

The acceptance contract: a spec that round-trips through JSON must
reproduce bit-identical ResultSets on the serial, process, and
distributed backends — including scenarios using the new open axes
(non-constant load shapes, swept slack thresholds).
"""

import pytest

from repro.experiment import (
    ExperimentSpec,
    run_experiment,
    run_point,
)
from repro.sweep import (
    DistributedBackend,
    ProcessBackend,
    SerialBackend,
    SweepCache,
    SweepEngine,
    results_identical,
)

#: Two *new* axes swept end-to-end: a diurnal load shape + slack.
SPEC = ExperimentSpec(
    name="backend-parity",
    base={
        "service": "mongodb",
        "apps": "kmeans",
        "seed": 4,
        "horizon": 30.0,
        "loadgen_shape": "diurnal",
        "loadgen_params": {"low": 0.5, "high": 0.9, "period": 15.0},
    },
    axes={"slack_threshold": (0.05, 0.10), "load_fraction": (0.6, 0.9)},
)


class TestSubstrateResolution:
    def test_engine_exclusive_with_knobs(self):
        engine = SweepEngine(workers=1)
        with pytest.raises(ValueError, match="not both"):
            run_experiment(SPEC, engine=engine, workers=2)
        with pytest.raises(ValueError, match="not both"):
            run_experiment(SPEC, engine=engine, cache=SweepCache())

    def test_env_backend_resolution(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_BACKEND", "nonsense")
        with pytest.raises(ValueError, match="REPRO_SWEEP_BACKEND"):
            run_experiment(SPEC)

    def test_accepts_raw_scenarios(self):
        results = run_experiment(SPEC.scenarios()[:1], workers=1)
        assert len(results) == 1
        assert results.spec is None

    def test_spec_attached_to_resultset(self):
        results = run_experiment(SPEC, workers=1)
        assert results.spec == SPEC

    def test_run_point_single(self):
        result = run_point(
            service="mongodb", apps="kmeans", seed=4, horizon=30.0
        )
        assert result.service_name == "mongodb"


class TestCaching:
    def test_warm_rerun_is_fully_cached(self, tmp_path):
        cache = SweepCache(tmp_path)
        cold = run_experiment(SPEC, cache=cache, workers=1)
        assert cold.cache_hits == 0
        warm = run_experiment(SPEC, cache=cache, workers=1)
        assert warm.cache_hits == len(SPEC)
        assert warm.identical(cold)

    def test_force_bypasses_cache_reads(self, tmp_path):
        cache = SweepCache(tmp_path)
        run_experiment(SPEC, cache=cache, workers=1)
        forced = run_experiment(SPEC, cache=cache, workers=1, force=True)
        assert forced.cache_hits == 0


class TestBackendParity:
    def test_serial_process_distributed_bit_identical(self, tmp_path):
        spec = ExperimentSpec.from_json(SPEC.to_json())  # acceptance wording
        serial = run_experiment(spec, backend=SerialBackend())
        process = run_experiment(spec, backend=ProcessBackend(2))
        distributed = run_experiment(
            spec,
            backend=DistributedBackend(
                tmp_path / "spool",
                cache=SweepCache(tmp_path / "cache"),
                local_workers=2,
                timeout=300.0,
                poll_interval=0.05,
            ),
        )
        assert serial.identical(process)
        assert serial.identical(distributed)

    def test_parity_covers_new_axes(self):
        # The diurnal shape and swept slack must actually differ from the
        # constant-load defaults — parity over a no-op axis proves nothing.
        results = run_experiment(SPEC, backend=SerialBackend())
        flat = run_experiment(
            ExperimentSpec.from_json(SPEC.to_json())
            .with_base(loadgen_shape="constant", loadgen_params=()),
            backend=SerialBackend(),
        )
        assert not results.identical(flat)
