"""ExperimentSpec: validation, expansion order, JSON round trip."""

import json

import pytest

from repro.experiment import ExperimentSpec
from repro.sweep import Scenario, SweepGrid

BASE = {"service": "mongodb", "apps": "kmeans", "seed": 4, "horizon": 30.0}


def demo_spec() -> ExperimentSpec:
    return ExperimentSpec(
        name="demo",
        description="two open axes",
        base=BASE,
        axes={
            "load_fraction": (0.5, 0.8),
            "slack_threshold": (0.05, 0.10),
        },
    )


class TestValidation:
    def test_unknown_base_field_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario field"):
            ExperimentSpec(base={**BASE, "bogus": 1})

    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario field"):
            ExperimentSpec(base=BASE, axes={"not_an_axis": (1, 2)})

    def test_axis_and_base_conflict_rejected(self):
        with pytest.raises(ValueError, match="both base and axes"):
            ExperimentSpec(base=BASE, axes={"seed": (0, 1)})

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            ExperimentSpec(base=BASE, axes={"load_fraction": ()})

    def test_scalar_axis_rejected(self):
        with pytest.raises(ValueError, match="iterable of values"):
            ExperimentSpec(base=BASE, axes={"load_fraction": 0.5})

    def test_generator_axis_not_exhausted(self):
        # A generator must expand like a list, not silently drain to an
        # empty axis during validation.
        spec = ExperimentSpec(
            base=BASE, axes={"load_fraction": (v / 10 for v in (4, 6, 8))}
        )
        assert len(spec) == 3
        assert spec.axis("load_fraction") == (0.4, 0.6, 0.8)

    def test_duplicate_axis_rejected(self):
        with pytest.raises(ValueError, match="duplicate axis"):
            ExperimentSpec(
                base=BASE,
                axes=[("load_fraction", (0.5,)), ("load_fraction", (0.8,))],
            )

    def test_service_and_apps_required_somewhere(self):
        with pytest.raises(ValueError, match="service"):
            ExperimentSpec(base={"apps": "kmeans"})
        # ...but an axis declaring them is enough.
        spec = ExperimentSpec(
            base={"apps": "kmeans"}, axes={"service": ("mongodb", "nginx")}
        )
        assert len(spec) == 2


class TestExpansion:
    def test_len_is_axis_product(self):
        assert len(demo_spec()) == 4

    def test_no_axes_is_a_single_point(self):
        spec = ExperimentSpec(base=BASE)
        assert len(spec) == 1
        [scenario] = spec.scenarios()
        assert scenario == Scenario(**{**BASE, "apps": ("kmeans",)})

    def test_first_axis_varies_slowest(self):
        scenarios = demo_spec().scenarios()
        assert [s.load_fraction for s in scenarios] == [0.5, 0.5, 0.8, 0.8]
        assert [s.slack_threshold for s in scenarios] == [0.05, 0.10] * 2

    def test_any_scenario_field_is_sweepable(self):
        spec = ExperimentSpec(
            base={"service": "mongodb", "apps": "kmeans"},
            axes={
                "loadgen_shape": ("constant", "diurnal"),
                "platform": ("default", "half-llc"),
                "horizon": (30.0, 60.0),
            },
        )
        assert len(spec) == 8
        shapes = {s.loadgen_shape for s in spec.scenarios()}
        assert shapes == {"constant", "diurnal"}

    def test_apps_axis_mixes(self):
        spec = ExperimentSpec(
            base={"service": "mongodb"},
            axes={"apps": ("kmeans", ("kmeans", "canneal"))},
        )
        assert [s.apps for s in spec.scenarios()] == [
            ("kmeans",),
            ("kmeans", "canneal"),
        ]

    def test_matches_equivalent_grid_expansion(self):
        grid = SweepGrid(
            services=("mongodb", "nginx"),
            app_mixes=(("kmeans",), ("kmeans", "canneal")),
            policies=("pliant", "precise"),
            load_fractions=(0.5, 0.8),
            decision_intervals=(1.0, 2.0),
            seeds=(0, 1),
            base=Scenario(service="mongodb", apps=("kmeans",), horizon=30.0),
        )
        spec = ExperimentSpec.from_grid(grid)
        assert spec.scenarios() == grid.scenarios()
        assert len(spec) == len(grid)


class TestBuilders:
    def test_with_axis_appends_and_replaces(self):
        spec = demo_spec().with_axis("seed", (0, 1))
        assert len(spec) == 8
        replaced = spec.with_axis("seed", (7,))
        assert replaced.axis("seed") == (7,)
        assert replaced.axis_names == spec.axis_names

    def test_with_axis_takes_field_from_base(self):
        spec = demo_spec().with_axis("seed", (0, 1))
        assert all("seed" != k for k, _ in spec.base)

    def test_with_base_overrides(self):
        spec = demo_spec().with_base(seed=9)
        assert all(s.seed == 9 for s in spec.scenarios())


class TestSerialization:
    def test_json_round_trip_identity(self):
        spec = demo_spec()
        clone = ExperimentSpec.from_json(spec.to_json())
        assert clone == spec
        assert clone.scenarios() == spec.scenarios()

    def test_round_trip_with_rich_axes(self):
        spec = ExperimentSpec(
            base={
                "service": "memcached",
                "apps": ("canneal", "bayesian"),
                "loadgen_shape": "step",
                "loadgen_params": (("steps", ((0.0, 0.5), (60.0, 0.9))),),
                "policy_kwargs": {"slack_margin": 0.5},
            },
            axes={"platform": ("default", "half-llc")},
        )
        clone = ExperimentSpec.from_json(spec.to_json())
        assert clone == spec
        assert clone.scenarios() == spec.scenarios()

    def test_unknown_spec_key_rejected(self):
        payload = demo_spec().to_dict()
        payload["extra"] = True
        with pytest.raises(ValueError, match="unknown spec field"):
            ExperimentSpec.from_dict(payload)

    def test_unknown_format_rejected(self):
        payload = demo_spec().to_dict()
        payload["format"] = 99
        with pytest.raises(ValueError, match="format"):
            ExperimentSpec.from_dict(payload)

    def test_unknown_scenario_field_in_file_rejected(self):
        payload = demo_spec().to_dict()
        payload["base"]["bogus_axis"] = 3
        with pytest.raises(ValueError, match="unknown scenario field"):
            ExperimentSpec.from_dict(payload)

    def test_save_load_file(self, tmp_path):
        spec = demo_spec()
        path = spec.save(tmp_path / "exp.json")
        assert ExperimentSpec.load(path) == spec
        # The file is plain JSON, inspectable by anything.
        assert json.loads(path.read_text())["name"] == "demo"


class TestSearchFields:
    def test_defaults_are_exhaustive_grid(self):
        spec = demo_spec()
        assert spec.strategy == "grid"
        assert spec.budget is None
        assert spec.objective == ()
        assert spec.rng_seed == 0
        assert not spec.search_requested

    def test_default_search_fields_stay_out_of_json(self):
        # Pre-search spec files and their goldens must be byte-stable.
        payload = demo_spec().to_dict()
        assert {"strategy", "budget", "objective", "rng_seed"}.isdisjoint(
            payload
        )

    def test_search_fields_round_trip(self):
        spec = demo_spec().with_search(
            strategy="halving",
            budget=32,
            objective=("max:qos_met_fraction", "min:mean_inaccuracy_pct"),
            rng_seed=7,
        )
        assert spec.search_requested
        clone = ExperimentSpec.from_json(spec.to_json())
        assert clone == spec
        assert clone.strategy == "halving" and clone.budget == 32

    def test_with_search_none_keeps_existing(self):
        spec = demo_spec().with_search(strategy="pareto", budget=16)
        tweaked = spec.with_search(rng_seed=5)
        assert tweaked.strategy == "pareto"
        assert tweaked.budget == 16
        assert tweaked.rng_seed == 5

    def test_single_objective_string_normalized_to_tuple(self):
        spec = demo_spec().with_search(objective="qos_met_fraction")
        assert spec.objective == ("qos_met_fraction",)

    def test_bad_budget_rejected(self):
        with pytest.raises(ValueError, match="budget"):
            demo_spec().with_search(budget=0)
        with pytest.raises(ValueError, match="budget"):
            ExperimentSpec(base=BASE, budget=True)

    def test_bad_objective_shape_rejected(self):
        with pytest.raises(ValueError, match="objective"):
            demo_spec().with_search(objective=("avg:qos_met_fraction",))
        with pytest.raises(ValueError, match="objective"):
            ExperimentSpec(base=BASE, objective=(3,))

    def test_budget_alone_requests_search(self):
        assert demo_spec().with_search(budget=3).search_requested
