"""Resource profiles: validation and variant scaling."""

import pytest

from repro import units
from repro.server.resources import ResourceProfile


class TestValidation:
    def test_cpu_fraction_bounds(self):
        with pytest.raises(ValueError):
            ResourceProfile(cpu_fraction=1.5)
        with pytest.raises(ValueError):
            ResourceProfile(cpu_fraction=-0.1)

    def test_negative_demands_rejected(self):
        with pytest.raises(ValueError):
            ResourceProfile(membw_per_core=-1.0)
        with pytest.raises(ValueError):
            ResourceProfile(llc_footprint_bytes=-1.0)

    def test_zero_profile_allowed(self):
        profile = ResourceProfile(
            cpu_fraction=0.0,
            llc_footprint_bytes=0.0,
            llc_intensity=0.0,
            membw_per_core=0.0,
        )
        assert profile.total_membw(8) == 0.0


class TestScaling:
    def test_traffic_scaling(self):
        base = ResourceProfile(
            llc_intensity=0.8, membw_per_core=units.gbytes_per_sec(4)
        )
        scaled = base.scaled(traffic_factor=0.5)
        assert scaled.llc_intensity == pytest.approx(0.4)
        assert scaled.membw_per_core == pytest.approx(units.gbytes_per_sec(2))
        assert scaled.llc_footprint_bytes == base.llc_footprint_bytes

    def test_footprint_scaling(self):
        base = ResourceProfile(llc_footprint_bytes=units.mb(40))
        scaled = base.scaled(footprint_factor=0.5)
        assert scaled.llc_footprint_bytes == pytest.approx(units.mb(20))

    def test_intensity_clamped_at_one(self):
        base = ResourceProfile(llc_intensity=0.9)
        assert base.scaled(traffic_factor=2.0).llc_intensity == 1.0

    def test_identity_scaling(self):
        base = ResourceProfile()
        assert base.scaled() == base

    def test_rejects_negative_factor(self):
        with pytest.raises(ValueError):
            ResourceProfile().scaled(traffic_factor=-1.0)


class TestTotalMembw:
    def test_scales_with_cores(self):
        profile = ResourceProfile(membw_per_core=units.gbytes_per_sec(2))
        assert profile.total_membw(8) == pytest.approx(8 * units.gbytes_per_sec(2))

    def test_cpu_fraction_discounts(self):
        profile = ResourceProfile(
            cpu_fraction=0.5, membw_per_core=units.gbytes_per_sec(2)
        )
        assert profile.total_membw(8) == pytest.approx(4 * units.gbytes_per_sec(2))

    def test_rejects_negative_cores(self):
        with pytest.raises(ValueError):
            ResourceProfile().total_membw(-1)
