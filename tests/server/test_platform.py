"""Platform model: core accounting and fair shares."""

import pytest

from repro.server.platform import default_platform


class TestAllocatableCores:
    def test_sixteen_after_irq_reservation(self):
        assert default_platform().allocatable_cores == 16


class TestFairShare:
    @pytest.mark.parametrize(
        "tenants,expected",
        [
            (1, [16]),
            (2, [8, 8]),
            (3, [6, 5, 5]),
            (4, [4, 4, 4, 4]),
            (5, [4, 3, 3, 3, 3]),
        ],
    )
    def test_split(self, tenants, expected):
        assert default_platform().fair_share(tenants) == expected

    def test_shares_sum_to_total(self):
        platform = default_platform()
        for tenants in range(1, 17):
            assert sum(platform.fair_share(tenants)) == 16

    def test_shares_differ_by_at_most_one(self):
        platform = default_platform()
        for tenants in range(1, 17):
            shares = platform.fair_share(tenants)
            assert max(shares) - min(shares) <= 1

    def test_rejects_zero_tenants(self):
        with pytest.raises(ValueError):
            default_platform().fair_share(0)

    def test_rejects_too_many_tenants(self):
        with pytest.raises(ValueError):
            default_platform().fair_share(17)


class TestBandwidths:
    def test_positive(self):
        platform = default_platform()
        assert platform.memory_bandwidth > 0
        assert platform.disk_bandwidth > 0
        assert platform.network_bandwidth > 0
        assert platform.llc_bytes > 0
