"""Contention model: marginality, monotonicity, scaling."""

import pytest

from repro import units
from repro.server.interference import InterferenceModel, PressureBreakdown, _overload
from repro.server.platform import default_platform
from repro.server.resources import ResourceProfile


@pytest.fixture()
def model():
    return InterferenceModel(default_platform())


def victim_profile():
    return ResourceProfile(
        llc_footprint_bytes=units.mb(24),
        llc_intensity=0.9,
        membw_per_core=units.gbytes_per_sec(0.2),
    )


def aggressor_profile(bw=6.0, footprint=50, intensity=0.8):
    return ResourceProfile(
        llc_footprint_bytes=units.mb(footprint),
        llc_intensity=intensity,
        membw_per_core=units.gbytes_per_sec(bw),
    )


class TestMarginality:
    def test_no_aggressors_no_pressure(self, model):
        pressure = model.pressure_on(victim_profile(), 8, [])
        assert pressure.total == pytest.approx(0.0)

    def test_idle_aggressor_no_pressure(self, model):
        pressure = model.pressure_on(
            victim_profile(), 8, [(aggressor_profile(), 0)]
        )
        assert pressure.total == pytest.approx(0.0)


class TestMonotonicity:
    def test_more_aggressor_bandwidth_more_pressure(self, model):
        light = model.pressure_on(victim_profile(), 8, [(aggressor_profile(bw=3), 8)])
        heavy = model.pressure_on(victim_profile(), 8, [(aggressor_profile(bw=8), 8)])
        assert heavy.membw_linear > light.membw_linear

    def test_more_aggressor_cores_more_pressure(self, model):
        few = model.pressure_on(victim_profile(), 8, [(aggressor_profile(), 4)])
        many = model.pressure_on(victim_profile(), 8, [(aggressor_profile(), 8)])
        assert many.membw_linear > few.membw_linear
        assert many.llc > few.llc

    def test_two_aggressors_exceed_one(self, model):
        one = model.pressure_on(victim_profile(), 8, [(aggressor_profile(), 8)])
        two = model.pressure_on(
            victim_profile(), 8, [(aggressor_profile(), 4), (aggressor_profile(), 4)]
        )
        # Same total cores split across two apps doubles the LLC footprints.
        assert two.llc > one.llc


class TestLLC:
    def test_victim_intensity_weights_pressure(self, model):
        hot = model.pressure_on(victim_profile(), 8, [(aggressor_profile(), 8)])
        cold_victim = ResourceProfile(
            llc_footprint_bytes=units.mb(24), llc_intensity=0.1
        )
        cold = model.pressure_on(cold_victim, 8, [(aggressor_profile(), 8)])
        assert cold.llc < hot.llc

    def test_pollution_capped(self, model):
        huge = ResourceProfile(
            llc_footprint_bytes=units.mb(500), llc_intensity=1.0
        )
        assert model.llc_pollution([(huge, 16)]) <= 1.5


class TestOverload:
    def test_zero_below_knee(self):
        assert _overload(0.5) == 0.0

    def test_one_at_saturation(self):
        assert _overload(1.0) == pytest.approx(1.0)

    def test_quadratic_shape(self):
        assert _overload(0.8) == pytest.approx(0.25)

    def test_overload_pressure_appears_near_saturation(self, model):
        low = model.pressure_on(victim_profile(), 8, [(aggressor_profile(bw=4), 8)])
        high = model.pressure_on(victim_profile(), 8, [(aggressor_profile(bw=9), 8)])
        assert low.membw_overload == pytest.approx(0.0, abs=0.01)
        assert high.membw_overload > 0.05


class TestApproximationRelief:
    def test_scaled_profile_reduces_pressure(self, model):
        precise = aggressor_profile()
        relieved = precise.scaled(traffic_factor=0.5)
        p_precise = model.pressure_on(victim_profile(), 8, [(precise, 8)])
        p_relieved = model.pressure_on(victim_profile(), 8, [(relieved, 8)])
        assert p_relieved.total < p_precise.total


class TestBreakdown:
    def test_total_is_sum(self):
        breakdown = PressureBreakdown(
            llc=0.1, membw_linear=0.2, membw_overload=0.05, disk=0.02, network=0.03
        )
        assert breakdown.total == pytest.approx(0.4)
