"""Tenant accounting."""

import pytest

from repro.server.resources import ResourceProfile
from repro.server.tenant import Tenant, TenantKind


def make_tenant(cores=8):
    return Tenant("app", TenantKind.APPROXIMATE, ResourceProfile(), cores)


class TestNominalCores:
    def test_defaults_to_initial(self):
        assert make_tenant(6).nominal_cores == 6

    def test_explicit_nominal(self):
        tenant = Tenant("x", TenantKind.APPROXIMATE, ResourceProfile(), 4, nominal_cores=8)
        assert tenant.reclaimed_cores == 4


class TestCoreMovement:
    def test_take_and_give(self):
        tenant = make_tenant(8)
        tenant.take_core()
        assert tenant.cores == 7
        assert tenant.reclaimed_cores == 1
        tenant.give_core()
        assert tenant.cores == 8
        assert tenant.reclaimed_cores == 0

    def test_cannot_drop_below_one(self):
        tenant = make_tenant(1)
        with pytest.raises(ValueError):
            tenant.take_core()

    def test_extra_cores(self):
        tenant = make_tenant(8)
        tenant.give_core()
        assert tenant.extra_cores == 1
        assert tenant.reclaimed_cores == 0

    def test_negative_cores_rejected(self):
        with pytest.raises(ValueError):
            make_tenant(-1)


class TestProfile:
    def test_set_profile(self):
        tenant = make_tenant()
        new = ResourceProfile(llc_intensity=0.9)
        tenant.set_profile(new)
        assert tenant.profile is new
