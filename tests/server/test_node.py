"""ServerNode allocation bookkeeping."""

import pytest

from repro.server.node import ServerNode
from repro.server.resources import ResourceProfile
from repro.server.tenant import Tenant, TenantKind


def interactive(cores=8):
    return Tenant("svc", TenantKind.INTERACTIVE, ResourceProfile(), cores)


def batch(name="app", cores=8):
    return Tenant(name, TenantKind.APPROXIMATE, ResourceProfile(), cores)


class TestTenancy:
    def test_add_and_lookup(self):
        node = ServerNode()
        node.add_tenant(interactive())
        node.add_tenant(batch())
        assert node.tenant("svc").kind is TenantKind.INTERACTIVE
        assert node.interactive.name == "svc"
        assert [t.name for t in node.approximate_tenants] == ["app"]

    def test_duplicate_names_rejected(self):
        node = ServerNode()
        node.add_tenant(batch("x", 4))
        with pytest.raises(ValueError):
            node.add_tenant(batch("x", 4))

    def test_two_interactive_rejected(self):
        node = ServerNode()
        node.add_tenant(interactive(4))
        with pytest.raises(ValueError):
            node.add_tenant(Tenant("svc2", TenantKind.INTERACTIVE, ResourceProfile(), 4))

    def test_capacity_enforced(self):
        node = ServerNode()
        node.add_tenant(interactive(8))
        node.add_tenant(batch("a", 8))
        with pytest.raises(ValueError):
            node.add_tenant(batch("b", 1))

    def test_missing_tenant(self):
        with pytest.raises(LookupError):
            ServerNode().tenant("ghost")

    def test_no_interactive(self):
        node = ServerNode()
        node.add_tenant(batch())
        with pytest.raises(LookupError):
            _ = node.interactive


class TestCoreMovement:
    def test_reclaim_preserves_total(self):
        node = ServerNode()
        node.add_tenant(interactive(8))
        node.add_tenant(batch(cores=8))
        node.reclaim_core("app", "svc")
        assert node.tenant("svc").cores == 9
        assert node.tenant("app").cores == 7
        assert node.allocated_cores == 16

    def test_cannot_empty_a_tenant(self):
        node = ServerNode()
        node.add_tenant(interactive(8))
        node.add_tenant(batch(cores=1))
        with pytest.raises(ValueError):
            node.reclaim_core("app", "svc")


class TestFairAllocation:
    def test_one_app(self):
        assert ServerNode().fair_allocation(1) == [8, 8]

    def test_three_apps(self):
        assert ServerNode().fair_allocation(3) == [4, 4, 4, 4]


class TestPressureQuery:
    def test_pressure_on_service(self):
        node = ServerNode()
        node.add_tenant(interactive(8))
        node.add_tenant(batch(cores=8))
        pressure = node.pressure_on("svc")
        assert pressure.total >= 0.0
