"""Property tests: vectorized analytic formulas match the scalar originals.

The batch implementations replicate the scalar arithmetic order, so
agreement is required to 1e-9 *relative* across random operating-point
grids — including the saturated / infinite regions, which must match
exactly in location.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.analytic import (
    mm1_mean_wait,
    mm1_mean_wait_batch,
    mmc_erlang_c,
    mmc_erlang_c_batch,
    mmc_tail_latency,
    mmc_tail_latency_batch,
    mmc_utilization,
    mmc_utilization_batch,
    mmc_wait_quantile,
    mmc_wait_quantile_batch,
)

RELATIVE_TOLERANCE = 1e-9


def _random_grid(seed: int, size: int = 200):
    rng = np.random.default_rng(seed)
    arrival = rng.uniform(0.0, 900.0, size)
    service = rng.uniform(1e-4, 0.02, size)
    servers = rng.integers(1, 24, size)
    return arrival, service, servers


def _assert_matches(batch: np.ndarray, scalar: list[float]) -> None:
    scalar = np.asarray(scalar)
    assert batch.shape == scalar.shape
    finite = np.isfinite(scalar)
    # Infinite/saturated entries must coincide exactly.
    np.testing.assert_array_equal(np.isfinite(batch), finite)
    denom = np.maximum(np.abs(scalar[finite]), 1e-300)
    relative = np.abs(batch[finite] - scalar[finite]) / denom
    assert relative.max(initial=0.0) < RELATIVE_TOLERANCE


class TestUtilizationBatch:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_scalar(self, seed):
        lam, svc, c = _random_grid(seed)
        batch = mmc_utilization_batch(lam, svc, c)
        _assert_matches(
            batch,
            [mmc_utilization(l, s, int(k)) for l, s, k in zip(lam, svc, c)],
        )

    def test_broadcasting(self):
        batch = mmc_utilization_batch([100.0, 200.0], 0.01, 4)
        assert batch.shape == (2,)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            mmc_utilization_batch([1.0], [0.0], [1])
        with pytest.raises(ValueError):
            mmc_utilization_batch([1.0], [0.1], [0])
        with pytest.raises(ValueError):
            mmc_utilization_batch([-1.0], [0.1], [1])


class TestErlangCBatch:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_scalar(self, seed):
        lam, svc, c = _random_grid(seed)
        batch = mmc_erlang_c_batch(lam, svc, c)
        _assert_matches(
            batch,
            [mmc_erlang_c(l, s, int(k)) for l, s, k in zip(lam, svc, c)],
        )

    def test_saturated_is_one(self):
        batch = mmc_erlang_c_batch([200.0], [0.01], [1])
        assert batch[0] == 1.0

    def test_single_server_grid(self):
        # c == 1 skips the recurrence loop entirely; M/M/1 P(wait) = rho.
        lam = np.array([30.0, 50.0, 80.0])
        batch = mmc_erlang_c_batch(lam, 0.01, 1)
        np.testing.assert_allclose(batch, lam * 0.01, rtol=1e-12)

    def test_2d_grid_shape(self):
        lam = np.linspace(10, 700, 12).reshape(3, 4)
        batch = mmc_erlang_c_batch(lam, 0.01, 8)
        assert batch.shape == (3, 4)


class TestWaitQuantileBatch:
    @pytest.mark.parametrize("seed", [0, 1])
    @pytest.mark.parametrize("quantile", [0.5, 0.9, 0.99])
    def test_matches_scalar(self, seed, quantile):
        lam, svc, c = _random_grid(seed)
        batch = mmc_wait_quantile_batch(lam, svc, c, quantile)
        _assert_matches(
            batch,
            [
                mmc_wait_quantile(l, s, int(k), quantile)
                for l, s, k in zip(lam, svc, c)
            ],
        )

    def test_rejects_bad_quantile(self):
        with pytest.raises(ValueError):
            mmc_wait_quantile_batch([1.0], [0.01], [1], 1.5)


class TestTailLatencyBatch:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("scv", [0.0, 0.7, 1.0, 2.5])
    def test_matches_scalar(self, seed, scv):
        lam, svc, c = _random_grid(seed, size=80)
        batch = mmc_tail_latency_batch(lam, svc, c, 0.99, scv)
        _assert_matches(
            batch,
            [
                mmc_tail_latency(l, s, int(k), 0.99, scv)
                for l, s, k in zip(lam, svc, c)
            ],
        )

    @given(
        lam=st.floats(min_value=0.0, max_value=900.0),
        svc=st.floats(min_value=1e-4, max_value=0.02),
        servers=st.integers(min_value=1, max_value=24),
        quantile=st.floats(min_value=0.5, max_value=0.999),
    )
    @settings(max_examples=60, deadline=None)
    def test_hypothesis_pointwise(self, lam, svc, servers, quantile):
        scalar = mmc_tail_latency(lam, svc, servers, quantile)
        batch = mmc_tail_latency_batch(
            np.array([lam]), np.array([svc]), np.array([servers]), quantile
        )
        if math.isinf(scalar):
            assert math.isinf(batch[0])
        else:
            assert abs(batch[0] - scalar) <= RELATIVE_TOLERANCE * max(
                abs(scalar), 1e-300
            )

    def test_monotone_in_load_across_grid(self):
        lam = np.linspace(100, 790, 30)
        batch = mmc_tail_latency_batch(lam, 0.01, 8)
        assert np.all(np.diff(batch) > 0)


class TestMM1Batch:
    def test_matches_scalar(self):
        lam = np.linspace(1.0, 120.0, 50)
        batch = mm1_mean_wait_batch(lam, 0.01)
        _assert_matches(batch, [mm1_mean_wait(l, 0.01) for l in lam])
