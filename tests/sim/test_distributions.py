"""Service-time distributions: means, SCVs, sampling."""

import numpy as np
import pytest

from repro.rng import generator
from repro.sim.distributions import Deterministic, Exponential, LogNormal, Pareto

ALL_DISTS = [
    Deterministic(2.0),
    Exponential(2.0),
    LogNormal(2.0, 0.5),
    Pareto(2.0, 3.0),
]


@pytest.mark.parametrize("dist", ALL_DISTS, ids=lambda d: type(d).__name__)
class TestCommonContract:
    def test_sample_mean_matches(self, dist):
        rng = generator(3)
        samples = dist.sample(rng, size=200_000)
        assert np.mean(samples) == pytest.approx(dist.mean, rel=0.05)

    def test_samples_positive(self, dist):
        rng = generator(4)
        assert (dist.sample(rng, size=10_000) > 0).all()

    def test_scalar_sample(self, dist):
        value = dist.sample(generator(5))
        assert np.isscalar(value) or np.ndim(value) == 0

    def test_scaled_mean(self, dist):
        assert dist.scaled(3.0).mean == pytest.approx(dist.mean * 3.0)


class TestDeterministic:
    def test_scv_zero(self):
        assert Deterministic(1.0).scv == 0.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Deterministic(0.0)


class TestExponential:
    def test_scv_one(self):
        assert Exponential(5.0).scv == 1.0

    def test_empirical_scv(self):
        samples = Exponential(1.0).sample(generator(6), size=200_000)
        assert np.var(samples) / np.mean(samples) ** 2 == pytest.approx(1.0, rel=0.05)


class TestLogNormal:
    def test_scv_formula(self):
        dist = LogNormal(1.0, 0.5)
        samples = dist.sample(generator(7), size=300_000)
        empirical = np.var(samples) / np.mean(samples) ** 2
        assert empirical == pytest.approx(dist.scv, rel=0.1)

    def test_zero_sigma_degenerates(self):
        dist = LogNormal(2.0, 0.0)
        assert dist.scv == pytest.approx(0.0)
        assert float(dist.sample(generator(8))) == pytest.approx(2.0)


class TestPareto:
    def test_alpha_must_exceed_one(self):
        with pytest.raises(ValueError):
            Pareto(1.0, 1.0)

    def test_scv_undefined_for_small_alpha(self):
        with pytest.raises(ValueError):
            _ = Pareto(1.0, 1.5).scv

    def test_heavy_tail(self):
        light = Pareto(1.0, 5.0).sample(generator(9), size=100_000)
        heavy = Pareto(1.0, 1.5).sample(generator(9), size=100_000)
        assert np.percentile(heavy, 99.9) > np.percentile(light, 99.9)
