"""DES kernel: ordering, cancellation, clock semantics."""

import pytest

from repro.sim.events import EventQueue, Simulator


class TestEventQueue:
    def test_orders_by_time(self):
        queue = EventQueue()
        order = []
        queue.push(2.0, lambda: order.append("b"))
        queue.push(1.0, lambda: order.append("a"))
        queue.push(3.0, lambda: order.append("c"))
        while (event := queue.pop()) is not None:
            event.action()
        assert order == ["a", "b", "c"]

    def test_same_time_is_fifo(self):
        queue = EventQueue()
        order = []
        for tag in ("first", "second", "third"):
            queue.push(1.0, lambda t=tag: order.append(t))
        while (event := queue.pop()) is not None:
            event.action()
        assert order == ["first", "second", "third"]

    def test_cancelled_events_skipped(self):
        queue = EventQueue()
        fired = []
        event = queue.push(1.0, lambda: fired.append(1))
        event.cancel()
        assert queue.pop() is None
        assert fired == []

    def test_len_excludes_cancelled(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        assert len(queue) == 2
        event.cancel()
        assert len(queue) == 1

    def test_peek_time(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        queue.push(5.0, lambda: None)
        assert queue.peek_time() == 5.0


class TestSimulator:
    def test_clock_advances(self):
        sim = Simulator()
        times = []
        sim.schedule(1.0, lambda: times.append(sim.now))
        sim.schedule(2.5, lambda: times.append(sim.now))
        sim.run()
        assert times == [1.0, 2.5]
        assert sim.now == 2.5

    def test_run_until_caps_clock(self):
        sim = Simulator()
        fired = []
        sim.schedule(10.0, lambda: fired.append(1))
        final = sim.run(until=5.0)
        assert final == 5.0
        assert fired == []
        assert sim.pending_events == 1

    def test_run_until_advances_even_when_empty(self):
        sim = Simulator()
        assert sim.run(until=3.0) == 3.0

    def test_nested_scheduling(self):
        sim = Simulator()
        seen = []

        def first():
            seen.append(sim.now)
            sim.schedule(1.0, lambda: seen.append(sim.now))

        sim.schedule(1.0, first)
        sim.run()
        assert seen == [1.0, 2.0]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-0.1, lambda: None)

    def test_at_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.at(0.5, lambda: None)

    def test_stop_halts_dispatch(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: (seen.append(1), sim.stop()))
        sim.schedule(2.0, lambda: seen.append(2))
        sim.run()
        assert seen == [1]
