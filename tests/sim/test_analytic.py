"""Closed-form queueing approximations."""

import math

import pytest

from repro.sim.analytic import (
    mm1_mean_wait,
    mmc_erlang_c,
    mmc_tail_latency,
    mmc_utilization,
    mmc_wait_quantile,
)


class TestUtilization:
    def test_basic(self):
        assert mmc_utilization(100, 0.01, 2) == pytest.approx(0.5)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            mmc_utilization(1, 0.0, 1)
        with pytest.raises(ValueError):
            mmc_utilization(1, 0.1, 0)
        with pytest.raises(ValueError):
            mmc_utilization(-1, 0.1, 1)


class TestErlangC:
    def test_single_server_equals_rho(self):
        # For M/M/1, P(wait) = rho.
        assert mmc_erlang_c(50, 0.01, 1) == pytest.approx(0.5)

    def test_saturated_returns_one(self):
        assert mmc_erlang_c(200, 0.01, 1) == 1.0

    def test_decreases_with_servers_at_fixed_rho(self):
        # Same utilization, more servers -> lower waiting probability.
        p2 = mmc_erlang_c(160, 0.01, 2)
        p8 = mmc_erlang_c(640, 0.01, 8)
        assert p8 < p2

    def test_low_load_near_zero(self):
        assert mmc_erlang_c(1, 0.01, 8) < 1e-10


class TestWaitQuantile:
    def test_zero_when_wait_unlikely(self):
        assert mmc_wait_quantile(1, 0.01, 8, 0.5) == 0.0

    def test_infinite_when_saturated(self):
        assert math.isinf(mmc_wait_quantile(200, 0.01, 1, 0.99))

    def test_monotone_in_quantile(self):
        q90 = mmc_wait_quantile(90, 0.01, 1, 0.90)
        q99 = mmc_wait_quantile(90, 0.01, 1, 0.99)
        assert q99 > q90

    def test_rejects_bad_quantile(self):
        with pytest.raises(ValueError):
            mmc_wait_quantile(1, 0.01, 1, 1.5)


class TestTailLatency:
    def test_exceeds_service_time(self):
        p99 = mmc_tail_latency(50, 0.01, 1)
        assert p99 > 0.01

    def test_monotone_in_load(self):
        values = [mmc_tail_latency(q, 0.01, 8) for q in (100, 400, 700, 790)]
        assert values == sorted(values)

    def test_saturated_is_infinite(self):
        assert math.isinf(mmc_tail_latency(1000, 0.01, 8))

    def test_deterministic_service_is_faster(self):
        expo = mmc_tail_latency(600, 0.01, 8, service_scv=1.0)
        det = mmc_tail_latency(600, 0.01, 8, service_scv=0.0)
        assert det < expo


class TestMM1MeanWait:
    def test_textbook_value(self):
        # rho=0.5: W_q = rho*S/(1-rho) = 0.01
        assert mm1_mean_wait(50, 0.01) == pytest.approx(0.01)

    def test_saturated(self):
        assert math.isinf(mm1_mean_wait(100, 0.01))
