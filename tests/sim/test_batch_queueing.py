"""Vectorized queueing: Kiefer-Wolfowitz batch recursion.

The batch recursion must match a straightforward scalar implementation to
1e-9 on identical pre-sampled inputs (it is the same recursion, so the
agreement is essentially exact), and its statistics must agree with both
the event-driven :class:`QueueSimulator` and the closed-form M/M/c
results.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.analytic import mm1_mean_wait, mmc_erlang_c
from repro.sim.distributions import Deterministic, Exponential, LogNormal
from repro.sim.queueing import QueueSimulator, batch_load_sweep, lindley_waits


def _scalar_lindley(gaps: np.ndarray, demands: np.ndarray, servers: int):
    """Reference implementation: one grid point, plain python loop."""
    workload = np.zeros(servers)
    waits = np.empty(len(gaps))
    for i in range(len(gaps)):
        waits[i] = workload[0]
        workload[0] += demands[i]
        if i + 1 < len(gaps):
            workload = np.sort(np.maximum(workload - gaps[i + 1], 0.0))
    return waits


class TestLindleyMatchesScalar:
    @pytest.mark.parametrize("servers", [1, 2, 5])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_grids(self, servers, seed):
        rng = np.random.default_rng(seed)
        gaps = rng.exponential(0.01, (4, 500))
        demands = rng.exponential(0.02, (4, 500))
        batch = lindley_waits(gaps, demands, servers)
        for row in range(gaps.shape[0]):
            reference = _scalar_lindley(gaps[row], demands[row], servers)
            assert np.max(np.abs(batch[row] - reference)) < 1e-9

    @given(
        servers=st.integers(min_value=1, max_value=4),
        n=st.integers(min_value=1, max_value=60),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_hypothesis_random_loads(self, servers, n, seed):
        rng = np.random.default_rng(seed)
        gaps = rng.uniform(1e-4, 0.05, (2, n))
        demands = rng.uniform(1e-4, 0.08, (2, n))
        batch = lindley_waits(gaps, demands, servers)
        for row in range(2):
            reference = _scalar_lindley(gaps[row], demands[row], servers)
            assert np.max(np.abs(batch[row] - reference)) < 1e-9

    def test_1d_input_supported(self):
        rng = np.random.default_rng(3)
        gaps = rng.exponential(0.01, 200)
        demands = rng.exponential(0.005, 200)
        waits = lindley_waits(gaps, demands, 1)
        assert np.max(np.abs(waits - _scalar_lindley(gaps, demands, 1))) < 1e-9


class TestLindleySemantics:
    def test_first_request_never_waits(self):
        rng = np.random.default_rng(0)
        gaps = rng.exponential(1.0, (3, 50))
        demands = rng.exponential(1.0, (3, 50))
        waits = lindley_waits(gaps, demands, 2)
        assert np.all(waits[:, 0] == 0.0)

    def test_deterministic_single_server_backlog(self):
        # Arrivals every 1s, service takes 2s: request i waits i seconds.
        gaps = np.ones(5)
        demands = np.full(5, 2.0)
        waits = lindley_waits(gaps, demands, 1)
        np.testing.assert_allclose(waits, [0.0, 1.0, 2.0, 3.0, 4.0])

    def test_two_servers_absorb_alternating_arrivals(self):
        gaps = np.ones(6)
        demands = np.full(6, 2.0)
        waits = lindley_waits(gaps, demands, 2)
        np.testing.assert_allclose(waits, np.zeros(6))

    def test_empty_input(self):
        waits = lindley_waits(np.empty((2, 0)), np.empty((2, 0)), 1)
        assert waits.shape == (2, 0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            lindley_waits(np.ones((2, 3)), np.ones((2, 4)), 1)

    def test_bad_servers_rejected(self):
        with pytest.raises(ValueError):
            lindley_waits(np.ones(3), np.ones(3), 0)


class TestBatchLoadSweep:
    def test_matches_mm1_mean_wait(self):
        rates = np.array([30.0, 50.0, 70.0])
        metrics = batch_load_sweep(
            1, Exponential(0.01), rates, 150_000, seed=7
        )
        for rate, m in zip(rates, metrics):
            expected = mm1_mean_wait(float(rate), 0.01)
            assert np.mean(m.waits) == pytest.approx(expected, rel=0.1)

    def test_matches_erlang_c_wait_probability(self):
        rates = np.array([200.0, 300.0])
        metrics = batch_load_sweep(
            4, Exponential(0.01), rates, 150_000, seed=11
        )
        for rate, m in zip(rates, metrics):
            expected = mmc_erlang_c(float(rate), 0.01, 4)
            observed = np.mean(m.waits > 1e-12)
            assert observed == pytest.approx(expected, abs=0.02)

    def test_statistically_consistent_with_event_driven_simulator(self):
        rate = 60.0
        batch = batch_load_sweep(2, Exponential(0.02), np.array([rate]), 80_000, seed=5)[0]
        des = QueueSimulator(2, Exponential(0.02), rate, seed=5).run(
            80_000 / rate, warmup=50.0
        )
        assert batch.mean_latency == pytest.approx(des.mean_latency, rel=0.15)
        assert batch.p99 == pytest.approx(des.p99, rel=0.2)

    def test_deterministic_given_seed(self):
        rates = np.array([40.0, 60.0])
        a = batch_load_sweep(2, LogNormal(0.02, 0.5), rates, 5_000, seed=3)
        b = batch_load_sweep(2, LogNormal(0.02, 0.5), rates, 5_000, seed=3)
        for ma, mb in zip(a, b):
            np.testing.assert_array_equal(ma.latencies, mb.latencies)

    def test_warmup_discard(self):
        metrics = batch_load_sweep(
            1, Deterministic(0.001), np.array([10.0]), 1_000, seed=0,
            warmup_fraction=0.2,
        )[0]
        assert metrics.completed == 800
        assert len(metrics.latencies) == 800

    def test_latency_grows_with_load(self):
        rates = np.linspace(20.0, 95.0, 6)
        metrics = batch_load_sweep(1, Exponential(0.01), rates, 60_000, seed=1)
        means = [m.mean_latency for m in metrics]
        assert means == sorted(means)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            batch_load_sweep(1, Exponential(0.01), np.array([]), 100)
        with pytest.raises(ValueError):
            batch_load_sweep(1, Exponential(0.01), np.array([-1.0]), 100)
        with pytest.raises(ValueError):
            batch_load_sweep(1, Exponential(0.01), np.array([10.0]), 0)
        with pytest.raises(ValueError):
            batch_load_sweep(
                1, Exponential(0.01), np.array([10.0]), 100, warmup_fraction=1.0
            )
