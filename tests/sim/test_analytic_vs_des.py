"""Cross-validation: the analytic M/M/c approximations against the
event-driven simulator.  This pins the epoch-level latency models to
request-level ground truth."""

import pytest

from repro.sim.analytic import mmc_erlang_c, mmc_tail_latency
from repro.sim.distributions import Exponential
from repro.sim.queueing import QueueSimulator


@pytest.mark.parametrize("servers,qps", [(1, 70), (2, 150), (4, 340), (8, 700)])
def test_p99_matches_des(servers, qps):
    service_time = 0.01
    sim = QueueSimulator(servers, Exponential(service_time), qps, seed=11)
    metrics = sim.run(duration=250.0, warmup=20.0)
    analytic = mmc_tail_latency(qps, service_time, servers, 0.99)
    assert metrics.p99 == pytest.approx(analytic, rel=0.15)


@pytest.mark.parametrize("servers,qps", [(1, 50), (4, 300), (8, 640)])
def test_wait_probability_matches_des(servers, qps):
    service_time = 0.01
    sim = QueueSimulator(servers, Exponential(service_time), qps, seed=12)
    metrics = sim.run(duration=250.0, warmup=20.0)
    waited = (metrics.waits > 1e-9).mean()
    assert waited == pytest.approx(mmc_erlang_c(qps, service_time, servers), abs=0.04)
