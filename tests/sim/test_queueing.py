"""Event-driven queue simulator behaviors."""

import pytest

from repro.sim.distributions import Deterministic, Exponential
from repro.sim.queueing import QueueSimulator


class TestBasics:
    def test_completes_requests(self):
        sim = QueueSimulator(servers=2, service=Exponential(0.01), arrival_rate=100, seed=1)
        metrics = sim.run(duration=20.0, warmup=2.0)
        assert metrics.completed > 1000
        assert metrics.throughput == pytest.approx(100, rel=0.1)

    def test_latency_at_least_service_time(self):
        sim = QueueSimulator(servers=4, service=Deterministic(0.01), arrival_rate=50, seed=2)
        metrics = sim.run(duration=10.0)
        assert metrics.latencies.min() >= 0.01 - 1e-12

    def test_waits_zero_at_low_load(self):
        sim = QueueSimulator(servers=8, service=Deterministic(0.001), arrival_rate=10, seed=3)
        metrics = sim.run(duration=20.0)
        assert metrics.waits.max() == pytest.approx(0.0, abs=1e-9)

    def test_reproducible(self):
        a = QueueSimulator(2, Exponential(0.01), 100, seed=7).run(10.0)
        b = QueueSimulator(2, Exponential(0.01), 100, seed=7).run(10.0)
        assert a.completed == b.completed
        assert a.p99 == pytest.approx(b.p99)

    def test_seed_changes_stream(self):
        a = QueueSimulator(2, Exponential(0.01), 100, seed=1).run(10.0)
        b = QueueSimulator(2, Exponential(0.01), 100, seed=2).run(10.0)
        assert a.p99 != pytest.approx(b.p99)


class TestLoadResponse:
    def test_latency_grows_with_load(self):
        p99s = []
        for qps in (200, 600, 760):
            sim = QueueSimulator(8, Exponential(0.01), qps, seed=4)
            p99s.append(sim.run(duration=60.0, warmup=5.0).p99)
        assert p99s[0] < p99s[1] < p99s[2]

    def test_more_servers_reduce_tail(self):
        slow = QueueSimulator(8, Exponential(0.01), 700, seed=5).run(40.0, 5.0)
        fast = QueueSimulator(10, Exponential(0.01), 700, seed=5).run(40.0, 5.0)
        assert fast.p99 < slow.p99


class TestCapacityBound:
    def test_drops_when_bounded(self):
        sim = QueueSimulator(
            1, Deterministic(0.1), arrival_rate=100, queue_capacity=5, seed=6
        )
        metrics = sim.run(duration=5.0)
        assert metrics.dropped > 0

    def test_no_drops_when_unbounded(self):
        sim = QueueSimulator(1, Deterministic(0.001), arrival_rate=100, seed=6)
        assert sim.run(duration=5.0).dropped == 0


class TestValidation:
    def test_rejects_bad_servers(self):
        with pytest.raises(ValueError):
            QueueSimulator(0, Exponential(0.01), 100)

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            QueueSimulator(1, Exponential(0.01), 0)

    def test_rejects_bad_duration(self):
        sim = QueueSimulator(1, Exponential(0.01), 10)
        with pytest.raises(ValueError):
            sim.run(duration=0.0)

    def test_empty_metrics_nan(self):
        sim = QueueSimulator(1, Exponential(10.0), arrival_rate=0.001, seed=8)
        metrics = sim.run(duration=0.5)
        assert metrics.completed == 0
        assert metrics.mean_latency != metrics.mean_latency  # NaN
