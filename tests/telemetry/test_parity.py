"""The side-channel contract: telemetry on/off is bit-identical.

A `ResultSet` produced with `REPRO_TELEMETRY=1` must be `identical()`
to one produced with telemetry off, on every backend — the distributed
leg exercises the full path (submitter recorder, worker shard flushes,
broker census gauges) with real worker subprocesses inheriting the env.
"""

from __future__ import annotations

import pytest

from repro import telemetry
from repro.experiment import ExperimentSpec, run_experiment
from repro.sweep import (
    DistributedBackend,
    ProcessBackend,
    SerialBackend,
    SweepCache,
)

#: Small but non-trivial: two open axes, four scenarios, full epoch loop.
SPEC = ExperimentSpec(
    name="telemetry-parity",
    base={"service": "memcached", "apps": "kmeans", "seed": 7, "horizon": 30.0},
    axes={"policy": ("precise", "pliant"), "load_fraction": (0.6, 0.9)},
)


@pytest.fixture()
def fresh_recorder(monkeypatch, tmp_path):
    """Re-read the env per leg; shards land in the test's tmp dir."""
    monkeypatch.setenv("REPRO_TELEMETRY_DIR", str(tmp_path / "shards"))

    def activate(enabled: bool):
        monkeypatch.setenv("REPRO_TELEMETRY", "1" if enabled else "0")
        telemetry.reset_recorder()
        return telemetry.get_recorder()

    yield activate
    telemetry.reset_recorder()


def _backend(kind: str, tmp_path, leg: str):
    if kind == "serial":
        return SerialBackend()
    if kind == "process":
        return ProcessBackend(2)
    return DistributedBackend(
        tmp_path / f"spool-{leg}",
        cache=SweepCache(tmp_path / f"cache-{leg}"),
        local_workers=2,
        timeout=300.0,
        poll_interval=0.05,
    )


@pytest.mark.parametrize("kind", ["serial", "process", "distributed"])
def test_results_identical_with_telemetry_on_and_off(
    kind, tmp_path, fresh_recorder
):
    recorder = fresh_recorder(False)
    assert not recorder.enabled
    baseline = run_experiment(SPEC, backend=_backend(kind, tmp_path, "off"))

    recorder = fresh_recorder(True)
    assert recorder.enabled
    instrumented = run_experiment(SPEC, backend=_backend(kind, tmp_path, "on"))

    assert baseline.identical(instrumented)
    if kind != "distributed":
        # The recorder actually saw the run — parity is not vacuous.
        assert recorder.snapshot()["span_totals"]["sweep.run"]["count"] == 1


def test_instrumented_run_records_scenarios(tmp_path, fresh_recorder):
    recorder = fresh_recorder(True)
    # Cold per-test cache: every scenario is a miss and actually executes.
    run_experiment(SPEC, cache=SweepCache(tmp_path / "cache"), workers=1)
    snap = recorder.snapshot()
    grid = len(SPEC.scenarios())
    assert snap["counters"]["sweep.cache.miss"] == grid
    assert snap["span_totals"]["scenario.run"]["count"] == grid
    assert snap["hists"]["sweep.scenario_s"]["count"] == grid
    assert snap["span_totals"]["experiment.run"]["count"] == 1
