"""Recorder semantics under a fake clock: spans, metrics, thread safety."""

from __future__ import annotations

import threading

import pytest

from repro.telemetry import (
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    get_recorder,
    recorder_from_env,
    reset_recorder,
    set_recorder,
)


class FakeClock:
    """A monotonic clock the test advances by hand."""

    def __init__(self, start: float = 0.0) -> None:
        self.t = start

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


@pytest.fixture()
def clock():
    return FakeClock(100.0)


@pytest.fixture()
def rec(clock):
    return Recorder(clock, process="test")


class TestSpans:
    def test_span_records_exact_duration(self, rec, clock):
        with rec.span("work", cat="unit", size=3):
            clock.advance(2.5)
        snap = rec.snapshot()
        assert snap["span_totals"]["work"] == {"count": 1, "total_s": 2.5}
        span = rec.to_payload()["span_records"][0]
        assert span["ts"] == 100.0
        assert span["dur"] == 2.5
        assert span["cat"] == "unit"
        assert span["args"] == {"size": 3}

    def test_spans_nest(self, rec, clock):
        with rec.span("outer"):
            clock.advance(1.0)
            with rec.span("inner"):
                clock.advance(0.5)
            clock.advance(1.0)
        totals = rec.snapshot()["span_totals"]
        assert totals["outer"]["total_s"] == 2.5
        assert totals["inner"]["total_s"] == 0.5

    def test_complete_backdates(self, rec, clock):
        clock.advance(10.0)
        rec.complete("pool-child", 4.0, cat="sweep")
        span = rec.to_payload()["span_records"][0]
        assert span["ts"] == 110.0 - 4.0
        assert span["dur"] == 4.0

    def test_span_records_on_exception(self, rec, clock):
        with pytest.raises(RuntimeError):
            with rec.span("doomed"):
                clock.advance(1.0)
                raise RuntimeError("boom")
        assert rec.snapshot()["span_totals"]["doomed"]["count"] == 1


class TestMetrics:
    def test_counters_accumulate(self, rec):
        rec.count("hits")
        rec.count("hits", 2.0)
        assert rec.snapshot()["counters"]["hits"] == 3.0

    def test_gauge_keeps_last_and_series(self, rec, clock):
        rec.gauge("depth", 5)
        clock.advance(1.0)
        rec.gauge("depth", 2)
        snap = rec.snapshot()
        assert snap["gauges"]["depth"] == 2.0
        series = rec.to_payload()["gauge_records"]
        assert [(s["ts"], s["value"]) for s in series] == [
            (100.0, 5.0),
            (101.0, 2.0),
        ]

    def test_histogram_streams(self, rec):
        for value in (1.0, 3.0, 2.0):
            rec.observe("chunk", value)
        hist = rec.snapshot()["hists"]["chunk"]
        assert hist == {"count": 3, "total": 6.0, "min": 1.0, "max": 3.0, "mean": 2.0}

    def test_events_carry_args(self, rec, clock):
        clock.advance(0.25)
        rec.event("lease.stolen", cat="spool", job="j1")
        event = rec.to_payload()["event_records"][0]
        assert event["name"] == "lease.stolen"
        assert event["ts"] == 100.25
        assert event["args"] == {"job": "j1"}

    def test_clock_must_be_callable(self):
        with pytest.raises(TypeError):
            Recorder(42)


class TestThreadSafety:
    def test_concurrent_writes_never_lose_updates(self, rec, clock):
        threads = 8
        per_thread = 500

        def hammer():
            for _ in range(per_thread):
                rec.count("n")
                rec.observe("h", 1.0)
                with rec.span("s"):
                    pass

        pool = [threading.Thread(target=hammer) for _ in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        snap = rec.snapshot()
        assert snap["counters"]["n"] == threads * per_thread
        assert snap["hists"]["h"]["count"] == threads * per_thread
        assert snap["span_totals"]["s"]["count"] == threads * per_thread


class TestNullRecorder:
    def test_noops_and_shared_span(self):
        null = NullRecorder()
        assert not null.enabled
        with null.span("anything", cat="x", k=1):
            pass
        null.count("c")
        null.gauge("g", 1)
        null.observe("h", 1)
        null.event("e")
        assert null.snapshot() == {}

    def test_uninstrumented_cost_is_one_attribute_check(self):
        assert NULL_RECORDER.enabled is False


class TestEnvActivation:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        assert not recorder_from_env({}).enabled

    @pytest.mark.parametrize("value", ["1", "true", "YES", "on"])
    def test_truthy_values(self, value):
        rec = recorder_from_env({"REPRO_TELEMETRY": value})
        assert rec.enabled

    @pytest.mark.parametrize("value", ["", "0", "false", "off", "no"])
    def test_falsy_values(self, value):
        assert not recorder_from_env({"REPRO_TELEMETRY": value}).enabled

    def test_process_name_from_env(self):
        rec = recorder_from_env(
            {"REPRO_TELEMETRY": "1", "REPRO_TELEMETRY_PROCESS": "worker-3"}
        )
        assert rec.process == "worker-3"

    def test_get_set_reset_cycle(self, monkeypatch):
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        reset_recorder()
        try:
            assert not get_recorder().enabled
            mine = Recorder(FakeClock(), process="injected")
            set_recorder(mine)
            assert get_recorder() is mine
            monkeypatch.setenv("REPRO_TELEMETRY", "1")
            reset_recorder()
            assert get_recorder().enabled
        finally:
            reset_recorder()
