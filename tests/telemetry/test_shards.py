"""Shard files and the merged timeline, pinned with fake clocks.

Two processes with different monotonic epochs (host uptimes) must merge
into one coherent wall-anchored order — that is the whole point of the
per-shard offset.  Everything here is deterministic: both the monotonic
and wall clocks are injected.
"""

from __future__ import annotations

import json

from repro.telemetry import (
    Recorder,
    chrome_trace,
    merge_shards,
    merge_snapshots,
    read_shard,
    read_shards,
    shard_path,
    write_chrome_trace,
    write_shard,
)

from .test_recorder import FakeClock


def make_process(name: str, mono_start: float, wall_at_flush: float):
    """A recorder whose monotonic epoch and wall anchor the test controls."""
    clock = FakeClock(mono_start)
    wall = FakeClock(wall_at_flush)
    return Recorder(clock, process=name, wall=wall), clock


class TestShardFiles:
    def test_write_is_atomic_and_named_by_process(self, tmp_path):
        rec, clock = make_process("worker-1", 10.0, 1000.0)
        with rec.span("job"):
            clock.advance(1.0)
        path = write_shard(tmp_path, rec)
        assert path == shard_path(tmp_path, rec)
        assert path.name.startswith("shard-worker-1-")
        assert not list(tmp_path.glob("*.tmp"))

    def test_meta_offset_anchors_monotonic_to_wall(self, tmp_path):
        rec, clock = make_process("w", 50.0, 2000.0)
        clock.advance(5.0)  # flush happens at mono=55, wall=2000
        path = write_shard(tmp_path, rec)
        meta = read_shard(path)["meta"]
        assert meta["offset"] == 2000.0 - 55.0

    def test_reflush_supersedes(self, tmp_path):
        rec, clock = make_process("w", 0.0, 100.0)
        rec.count("n")
        write_shard(tmp_path, rec)
        rec.count("n")
        path = write_shard(tmp_path, rec)
        assert read_shard(path)["meta"]["counters"]["n"] == 2.0
        assert len(read_shards(tmp_path)) == 1

    def test_torn_shard_skipped_not_crashed(self, tmp_path):
        rec, clock = make_process("good", 0.0, 100.0)
        rec.count("n")
        write_shard(tmp_path, rec)
        (tmp_path / "shard-torn-123.jsonl").write_text('{"kind": "meta", tru')
        assert read_shard(tmp_path / "shard-torn-123.jsonl") is None
        shards = read_shards(tmp_path)
        assert [s["meta"]["process"] for s in shards] == ["good"]

    def test_process_name_sanitized(self, tmp_path):
        rec, _ = make_process("tcp://host:70", 0.0, 1.0)
        name = shard_path(tmp_path, rec).name
        assert ":" not in name and "/" not in name
        assert name.startswith("shard-tcp___host_70-")


class TestMergeOrdering:
    def test_cross_process_records_interleave_by_wall_time(self, tmp_path):
        # Process A booted long ago (mono epoch 1000); B just booted
        # (mono epoch 5).  Wall-wise: A's event at wall 100.0 precedes
        # B's at 100.5 precedes A's second at 101.0.
        a, a_clock = make_process("a", 1000.0, 0.0)
        b, b_clock = make_process("b", 5.0, 0.0)

        a.event("first")          # mono 1000.0
        b_clock.advance(0.0)
        b.event("middle")         # mono 5.0
        a_clock.advance(1.0)
        a.event("last")           # mono 1001.0

        # Flush A at mono 1001 == wall 101 -> offset -900; its events
        # land at wall 100.0 and 101.0.  Flush B at mono 5 == wall 100.5
        # -> offset 95.5; its event lands at wall 100.5.
        a._wall.t = 101.0
        write_shard(tmp_path, a)
        b._wall.t = 100.5
        write_shard(tmp_path, b)

        merged = merge_shards(tmp_path)
        order = [(r["name"], r["abs_ts"]) for r in merged["records"]]
        assert order == [("first", 100.0), ("middle", 100.5), ("last", 101.0)]

    def test_ties_break_deterministically(self, tmp_path):
        a, _ = make_process("a", 0.0, 10.0)
        b, _ = make_process("b", 0.0, 10.0)
        a.event("same")
        b.event("same")
        write_shard(tmp_path, a)
        write_shard(tmp_path, b)
        merged = merge_shards(tmp_path)
        assert [r["process"] for r in merged["records"]] == ["a", "b"]
        # Stable across re-merges: the order is total, not dict-order luck.
        assert merged == merge_shards(tmp_path)

    def test_processes_listing(self, tmp_path):
        for name in ("worker-2", "worker-1", "submitter"):
            rec, _ = make_process(name, 0.0, 1.0)
            rec.count("x")
            write_shard(tmp_path, rec)
        merged = merge_shards(tmp_path)
        assert [p["process"] for p in merged["processes"]] == [
            "submitter",
            "worker-1",
            "worker-2",
        ]

    def test_empty_directory(self, tmp_path):
        assert merge_shards(tmp_path / "nope") == {"processes": [], "records": []}


class TestMergeSnapshots:
    def test_fleet_aggregation(self):
        a = {
            "process": "a",
            "counters": {"done": 3.0},
            "gauges": {"depth": 4.0},
            "hists": {"chunk": {"count": 2, "total": 6.0, "min": 2.0, "max": 4.0, "mean": 3.0}},
            "span_totals": {"run": {"count": 2, "total_s": 1.0}},
        }
        b = {
            "process": "b",
            "counters": {"done": 2.0, "failed": 1.0},
            "gauges": {"depth": 9.0},
            "hists": {"chunk": {"count": 1, "total": 8.0, "min": 8.0, "max": 8.0, "mean": 8.0}},
            "span_totals": {"run": {"count": 1, "total_s": 2.0}},
        }
        merged = merge_snapshots([a, b, {}])
        assert merged["counters"] == {"done": 5.0, "failed": 1.0}
        assert merged["gauges"] == {"a:depth": 4.0, "b:depth": 9.0}
        chunk = merged["hists"]["chunk"]
        assert (chunk["count"], chunk["total"], chunk["min"], chunk["max"]) == (3, 14.0, 2.0, 8.0)
        assert chunk["mean"] == 14.0 / 3
        assert merged["span_totals"]["run"] == {"count": 3, "total_s": 3.0}


class TestChromeTrace:
    def _two_process_dir(self, tmp_path):
        a, a_clock = make_process("submitter", 0.0, 100.0)
        with a.span("sweep.run", cat="engine"):
            a_clock.advance(2.0)
        a.gauge("queue", 3)
        a._wall.t = 102.0  # flush at mono 2.0
        write_shard(tmp_path, a)

        b, b_clock = make_process("worker-1", 500.0, 100.5)
        b.event("chunk.claimed", cat="spool", jobs=2)
        b_clock.advance(1.0)
        b._wall.t = 101.5  # flush at mono 501.0
        write_shard(tmp_path, b)
        return tmp_path

    def test_trace_shape(self, tmp_path):
        doc = chrome_trace(self._two_process_dir(tmp_path))
        events = doc["traceEvents"]
        phases = {e["ph"] for e in events}
        assert phases == {"M", "X", "i", "C"}

        names = {
            e["args"]["name"] for e in events if e["name"] == "process_name"
        }
        assert {n.split(" (pid")[0] for n in names} == {"submitter", "worker-1"}

        span = next(e for e in events if e["ph"] == "X")
        assert span["name"] == "sweep.run"
        assert span["dur"] == 2.0 * 1e6
        assert span["ts"] == 0.0  # earliest record rebases to t=0

        instant = next(e for e in events if e["ph"] == "i")
        assert instant["ts"] == 0.5 * 1e6  # wall 100.5 vs base 100.0

        counter = next(e for e in events if e["ph"] == "C")
        assert counter["args"] == {"value": 3.0}

    def test_pids_small_and_stable(self, tmp_path):
        doc = chrome_trace(self._two_process_dir(tmp_path))
        pids = {e["pid"] for e in doc["traceEvents"]}
        assert pids == {1, 2}

    def test_write_round_trips(self, tmp_path):
        directory = self._two_process_dir(tmp_path)
        out = write_chrome_trace(directory, tmp_path / "out" / "trace.json")
        loaded = json.loads(out.read_text())
        assert loaded["displayTimeUnit"] == "ms"
        assert loaded == chrome_trace(directory)
