"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.base import MeasuredVariant, VariantSpec
from repro.apps.knobs import perforated_count, perforated_indices
from repro.core.controller import PliantController
from repro.search.ladder import pareto_select
from repro.server.interference import _overload
from repro.services.latency import LatencyCurve, LatencyCurveParams
from repro.sim.analytic import mmc_erlang_c, mmc_tail_latency


# --- perforation -----------------------------------------------------------


@given(
    n=st.integers(min_value=0, max_value=5000),
    keep=st.floats(min_value=0.001, max_value=1.0),
)
def test_perforated_indices_within_bounds(n, keep):
    idx = perforated_indices(n, keep)
    if n == 0:
        assert len(idx) == 0
    else:
        assert 1 <= len(idx) <= n
        assert idx.min() >= 0
        assert idx.max() < n
        assert len(np.unique(idx)) == len(idx)


@given(
    n=st.integers(min_value=1, max_value=5000),
    keep_a=st.floats(min_value=0.001, max_value=1.0),
    keep_b=st.floats(min_value=0.001, max_value=1.0),
)
def test_perforated_count_monotone_in_keep(n, keep_a, keep_b):
    low, high = sorted((keep_a, keep_b))
    assert perforated_count(n, low) <= perforated_count(n, high)


# --- variant specs ----------------------------------------------------------


@settings(max_examples=50)
@given(
    st.dictionaries(
        st.sampled_from(["a", "b", "c", "d"]),
        st.one_of(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            st.booleans(),
        ),
        max_size=4,
    )
)
def test_variant_spec_equality_is_order_free(settings_dict):
    a = VariantSpec(settings_dict)
    b = VariantSpec(dict(reversed(list(settings_dict.items()))))
    assert a == b
    assert hash(a) == hash(b)
    assert dict(a) == settings_dict


# --- pareto selection --------------------------------------------------------


def _variant(i, inacc, tf, rate):
    return MeasuredVariant(
        app_name="x",
        spec=VariantSpec({"k": float(i)}),
        inaccuracy_pct=inacc,
        time_factor=tf,
        traffic_rate_factor=rate,
        footprint_factor=1.0,
    )


variant_lists = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=30.0),
        st.floats(min_value=0.05, max_value=1.2),
        st.floats(min_value=0.1, max_value=1.1),
    ),
    max_size=30,
)


@given(variant_lists)
def test_pareto_selection_invariants(points):
    variants = [_variant(i, *p) for i, p in enumerate(points)]
    selected = pareto_select(variants, max_inaccuracy_pct=5.0)
    # Within budget, within the candidate set, ordered by inaccuracy, <= cap.
    assert all(v.inaccuracy_pct <= 5.0 for v in selected)
    assert len(selected) <= 8
    inaccs = [v.inaccuracy_pct for v in selected]
    assert inaccs == sorted(inaccs)
    specs = {v.spec for v in variants}
    assert all(v.spec in specs for v in selected)


@given(variant_lists)
def test_pareto_time_frontier_monotone(points):
    variants = [_variant(i, *p) for i, p in enumerate(points)]
    selected = pareto_select(variants, max_inaccuracy_pct=5.0)
    # At equal-or-higher inaccuracy, a selected point must not be strictly
    # worse in BOTH time and contention than an earlier selected point.
    for earlier, later in zip(selected, selected[1:]):
        worse_time = later.time_factor > earlier.time_factor + 1e-9
        worse_rate = (
            later.traffic_rate_factor > earlier.traffic_rate_factor + 1e-9
        )
        assert not (worse_time and worse_rate)


# --- controller state machine -----------------------------------------------


@given(
    st.lists(
        st.tuples(st.booleans(), st.floats(min_value=-3.0, max_value=1.0)),
        max_size=60,
    ),
    st.integers(min_value=0, max_value=8),
    st.integers(min_value=0, max_value=7),
)
@settings(max_examples=200)
def test_controller_state_always_valid(steps, max_level, max_reclaimable):
    ctl = PliantController(max_level=max_level, max_reclaimable=max_reclaimable)
    for qos_met, slack in steps:
        ctl.decide(qos_met, slack)
        assert 0 <= ctl.level <= max_level
        assert 0 <= ctl.reclaimed <= max_reclaimable


@given(
    st.lists(st.floats(min_value=0.11, max_value=1.0), min_size=1, max_size=20)
)
def test_controller_relaxes_to_precise_under_sustained_slack(slacks):
    ctl = PliantController(max_level=4, max_reclaimable=3, level=4, reclaimed=3)
    for _ in range(40):
        for slack in slacks:
            ctl.decide(True, slack)
    assert ctl.level == 0
    assert ctl.reclaimed == 0


# --- latency curve -----------------------------------------------------------


@given(
    base=st.floats(min_value=1e-6, max_value=1.0),
    qos_mult=st.floats(min_value=1.5, max_value=100.0),
    u1=st.floats(min_value=0.0, max_value=2.0),
    u2=st.floats(min_value=0.0, max_value=2.0),
)
def test_latency_curve_monotone(base, qos_mult, u1, u2):
    curve = LatencyCurve(LatencyCurveParams(base_p99=base, qos=base * qos_mult))
    low, high = sorted((u1, u2))
    assert curve.p99(low) <= curve.p99(high) + 1e-12
    assert curve.p99(low) >= base - 1e-12


# --- interference -------------------------------------------------------------


@given(st.floats(min_value=0.0, max_value=3.0))
def test_overload_nonnegative_and_monotone(u):
    assert _overload(u) >= 0.0
    assert _overload(u + 0.1) >= _overload(u)


# --- queueing ----------------------------------------------------------------


@given(
    qps=st.floats(min_value=1.0, max_value=700.0),
    servers=st.integers(min_value=1, max_value=16),
)
def test_erlang_c_is_probability(qps, servers):
    p = mmc_erlang_c(qps, 0.01, servers)
    assert 0.0 <= p <= 1.0


@given(
    qps=st.floats(min_value=1.0, max_value=750.0),
    servers=st.integers(min_value=8, max_value=16),
)
def test_tail_latency_at_least_service_time(qps, servers):
    p99 = mmc_tail_latency(qps, 0.01, servers)
    assert math.isinf(p99) or p99 >= 0.01 * 0.99
