"""Shared fixtures.

Exploration results are cached on disk (session-scoped here), so the first
test run pays kernel-execution cost once; later runs are fast.
"""

from __future__ import annotations

import pytest

from repro.apps import make_app
from repro.search import DesignSpaceExplorer

#: Apps with sub-100ms kernels, safe for use in per-test exploration.
FAST_APPS = ("water_spatial", "kmeans", "semphy", "raytrace", "bayesian")


@pytest.fixture(scope="session")
def ladder_cache():
    """Session-scoped ladder factory backed by the on-disk cache."""
    cache: dict[str, object] = {}

    def get(app_name: str):
        if app_name not in cache:
            app = make_app(app_name)
            cache[app_name] = DesignSpaceExplorer(app, seed=0).explore().ladder
        return cache[app_name]

    return get


@pytest.fixture()
def kmeans_app():
    return make_app("kmeans")


@pytest.fixture()
def raytrace_app():
    return make_app("raytrace")
