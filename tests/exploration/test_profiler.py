"""gprof-style work profiler."""

from repro.apps import make_app
from repro.exploration.profiler import WorkProfiler


class TestProfile:
    def test_shares_in_range(self, kmeans_app):
        profiles = WorkProfiler(kmeans_app).profile()
        assert all(0.0 <= p.work_share <= 1.0 for p in profiles)

    def test_sorted_hottest_first(self, kmeans_app):
        profiles = WorkProfiler(kmeans_app).profile()
        shares = [p.work_share for p in profiles]
        assert shares == sorted(shares, reverse=True)

    def test_covers_all_knobs(self, kmeans_app):
        profiles = WorkProfiler(kmeans_app).profile()
        assert {p.knob_name for p in profiles} == set(kmeans_app.knobs())

    def test_kmeans_hot_loop_is_points(self, kmeans_app):
        # The assignment scan dominates k-means; the profiler must find it.
        hottest = WorkProfiler(kmeans_app).profile()[0]
        assert hottest.knob_name in ("perforate_points", "perforate_iters")


class TestHotSites:
    def test_max_sites_cap(self):
        app = make_app("plsa")
        sites = WorkProfiler(app).hot_sites(max_sites=2)
        assert len(sites) == 2

    def test_returns_knob_objects(self, kmeans_app):
        sites = WorkProfiler(kmeans_app).hot_sites()
        knobs = kmeans_app.knobs()
        for name, knob in sites.items():
            assert knobs[name] is not knob or knobs[name] == knob
