"""Pareto selection and the approximation ladder."""

import pytest

from repro.apps.base import MeasuredVariant, VariantSpec
from repro.exploration.pareto import ApproxLadder, pareto_select


def mv(inacc, tf, rate=1.0, name="app", knob="k", value=None):
    value = value if value is not None else (inacc, tf, rate)
    return MeasuredVariant(
        app_name=name,
        spec=VariantSpec({knob: value}),
        inaccuracy_pct=inacc,
        time_factor=tf,
        traffic_rate_factor=rate,
        footprint_factor=1.0,
    )


def precise(name="app"):
    return MeasuredVariant(
        app_name=name,
        spec=VariantSpec(),
        inaccuracy_pct=0.0,
        time_factor=1.0,
        traffic_rate_factor=1.0,
        footprint_factor=1.0,
    )


class TestParetoSelect:
    def test_empty(self):
        assert pareto_select([]) == []

    def test_inadmissible_filtered(self):
        variants = [mv(6.0, 0.5), mv(10.0, 0.3)]
        assert pareto_select(variants, max_inaccuracy_pct=5.0) == []

    def test_dominated_dropped(self):
        good = mv(1.0, 0.5)
        dominated = mv(2.0, 0.9)  # slower AND less accurate
        selected = pareto_select([good, dominated])
        assert good in selected
        assert dominated not in selected

    def test_frontier_kept_in_inaccuracy_order(self):
        variants = [mv(3.0, 0.4), mv(1.0, 0.8), mv(2.0, 0.6)]
        selected = pareto_select(variants)
        inaccs = [v.inaccuracy_pct for v in selected]
        assert inaccs == sorted(inaccs)

    def test_contention_frontier_also_selects(self):
        # Slow but strongly decontending (sync elision): must survive even
        # though the time frontier dominates it.
        fast = mv(1.0, 0.5, rate=1.0)
        decontender = mv(2.0, 0.9, rate=0.2)
        selected = pareto_select([fast, decontender])
        assert decontender in selected

    def test_tie_prefers_lower_contention(self):
        a = mv(1.0, 0.5, rate=1.0, knob="a")
        b = mv(1.0, 0.5, rate=0.5, knob="b")
        selected = pareto_select([a, b])
        rates = [v.traffic_rate_factor for v in selected]
        assert 0.5 in rates
        assert 1.0 not in rates

    def test_cap_respected(self):
        variants = [mv(0.1 * i, 1.0 - 0.05 * i) for i in range(1, 20)]
        selected = pareto_select(variants, max_selected=8)
        assert len(selected) <= 8

    def test_cap_keeps_endpoints(self):
        variants = [mv(0.1 * i, 1.0 - 0.05 * i) for i in range(1, 20)]
        selected = pareto_select(variants, max_selected=8)
        assert selected[0].inaccuracy_pct == pytest.approx(0.1)
        assert selected[-1].inaccuracy_pct == pytest.approx(1.9)

    def test_precise_never_selected(self):
        selected = pareto_select([precise(), mv(1.0, 0.5)])
        assert all(not v.is_precise for v in selected)


class TestApproxLadder:
    def test_level_zero_is_precise(self):
        ladder = ApproxLadder.from_selection(precise(), [mv(1.0, 0.5)])
        assert ladder.variant(0).is_precise
        assert ladder.max_level == 1

    def test_levels_ordered_by_inaccuracy(self):
        ladder = ApproxLadder.from_selection(
            precise(), [mv(3.0, 0.3), mv(1.0, 0.7), mv(2.0, 0.5)]
        )
        inaccs = [ladder.variant(i).inaccuracy_pct for i in range(4)]
        assert inaccs == sorted(inaccs)

    def test_out_of_range_level(self):
        ladder = ApproxLadder.from_selection(precise(), [mv(1.0, 0.5)])
        with pytest.raises(IndexError):
            ladder.variant(2)
        with pytest.raises(IndexError):
            ladder.variant(-1)

    def test_requires_precise_level_zero(self):
        with pytest.raises(ValueError):
            ApproxLadder(app_name="x", levels=[mv(1.0, 0.5)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ApproxLadder(app_name="x", levels=[])

    def test_approximate_count(self):
        ladder = ApproxLadder.from_selection(precise(), [mv(1.0, 0.5), mv(2.0, 0.4)])
        assert ladder.approximate_count == 2
