"""DesignSpaceExplorer: exploration, selection, caching."""

import json

import pytest

from repro.apps import make_app
from repro.exploration import DesignSpaceExplorer


@pytest.fixture()
def explorer(tmp_path, kmeans_app):
    return DesignSpaceExplorer(kmeans_app, seed=0, cache_dir=tmp_path)


class TestExplore:
    def test_produces_ladder(self, explorer):
        result = explorer.explore()
        assert result.ladder.max_level >= 1
        assert result.ladder.variant(0).is_precise

    def test_selected_within_budget(self, explorer):
        result = explorer.explore()
        assert all(v.inaccuracy_pct <= 5.0 for v in result.selected)

    def test_all_variants_measured(self, explorer, kmeans_app):
        from repro.exploration.space import enumerate_variants

        result = explorer.explore()
        assert len(result.all_variants) == len(enumerate_variants(kmeans_app))

    def test_selected_subset_of_all(self, explorer):
        result = explorer.explore()
        all_specs = {v.spec for v in result.all_variants}
        assert all(v.spec in all_specs for v in result.selected)


class TestCaching:
    def test_cache_file_created(self, explorer, tmp_path):
        explorer.explore()
        assert list(tmp_path.glob("*.json"))

    def test_cache_roundtrip(self, tmp_path, kmeans_app):
        first = DesignSpaceExplorer(kmeans_app, seed=0, cache_dir=tmp_path).explore()
        second = DesignSpaceExplorer(kmeans_app, seed=0, cache_dir=tmp_path).explore()
        assert len(first.all_variants) == len(second.all_variants)
        for a, b in zip(first.all_variants, second.all_variants):
            assert a.spec == b.spec
            assert a.inaccuracy_pct == pytest.approx(b.inaccuracy_pct)
            assert a.time_factor == pytest.approx(b.time_factor)

    def test_force_re_measures(self, explorer, tmp_path):
        explorer.explore()
        cache_file = next(tmp_path.glob("*.json"))
        cache_file.write_text(json.dumps([]))  # corrupt the cache
        result = explorer.explore(force=True)
        assert len(result.all_variants) > 0

    def test_cache_key_depends_on_seed(self, tmp_path, kmeans_app):
        DesignSpaceExplorer(kmeans_app, seed=0, cache_dir=tmp_path).explore()
        DesignSpaceExplorer(kmeans_app, seed=1, cache_dir=tmp_path).explore()
        assert len(list(tmp_path.glob("*.json"))) == 2


class TestProfilerPath:
    def test_profiler_hints_restrict_grid(self, tmp_path):
        app = make_app("plsa")
        full = DesignSpaceExplorer(app, seed=0, cache_dir=tmp_path).explore()
        app2 = make_app("plsa")
        pruned = DesignSpaceExplorer(
            app2, seed=0, cache_dir=tmp_path, use_profiler_hints=True
        ).explore()
        assert len(pruned.all_variants) <= len(full.all_variants)
        assert pruned.ladder.max_level >= 1
