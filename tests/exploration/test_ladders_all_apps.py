"""Ladder contract for every one of the 24 applications.

Uses the on-disk exploration cache, so after the first run these are cheap.
"""

import pytest

from repro.apps import ALL_APP_NAMES, make_app


@pytest.mark.parametrize("name", ALL_APP_NAMES)
class TestLadderContract:
    def test_has_approximate_levels(self, name, ladder_cache):
        ladder = ladder_cache(name)
        assert 1 <= ladder.max_level <= 8

    def test_level_zero_precise(self, name, ladder_cache):
        ladder = ladder_cache(name)
        level0 = ladder.variant(0)
        assert level0.is_precise
        assert level0.time_factor == 1.0

    def test_inaccuracy_monotone_nondecreasing(self, name, ladder_cache):
        ladder = ladder_cache(name)
        inaccs = [ladder.variant(i).inaccuracy_pct for i in range(ladder.max_level + 1)]
        assert inaccs == sorted(inaccs)

    def test_all_levels_within_budget(self, name, ladder_cache):
        ladder = ladder_cache(name)
        for level in range(ladder.max_level + 1):
            assert ladder.variant(level).inaccuracy_pct <= 5.0

    def test_top_level_offers_benefit(self, name, ladder_cache):
        ladder = ladder_cache(name)
        top = ladder.variant(ladder.max_level)
        # The most approximate variant must be meaningfully faster or
        # meaningfully decontending — otherwise escalating to it is useless.
        assert top.time_factor < 0.97 or top.traffic_rate_factor < 0.95

    def test_specs_resolvable_by_app(self, name, ladder_cache):
        ladder = ladder_cache(name)
        app = make_app(name)
        for level in range(ladder.max_level + 1):
            settings = app.materialize(ladder.variant(level).spec)
            assert set(settings) == set(app.knobs())


class TestPaperArchetypes:
    """The Section 6.1 behavioral archetypes, at ladder level."""

    def test_canneal_never_decontends(self, ladder_cache):
        # "Insubstantial" contention relief (paper 6.1): nothing close to
        # SNP's elision-driven 0.2-0.3 rates.
        ladder = ladder_cache("canneal")
        rates = [ladder.variant(i).traffic_rate_factor for i in range(1, ladder.max_level + 1)]
        assert min(rates) > 0.8

    def test_snp_has_a_strong_decontender(self, ladder_cache):
        ladder = ladder_cache("snp")
        rates = [ladder.variant(i).traffic_rate_factor for i in range(1, ladder.max_level + 1)]
        assert min(rates) < 0.35

    def test_water_spatial_is_vertical(self, ladder_cache):
        ladder = ladder_cache("water_spatial")
        times = [ladder.variant(i).time_factor for i in range(1, ladder.max_level + 1)]
        assert min(times) > 0.85
