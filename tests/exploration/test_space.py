"""Variant enumeration."""

import pytest

from repro.apps import make_app
from repro.exploration.space import MAX_VARIANTS, enumerate_variants


class TestEnumeration:
    def test_excludes_all_precise_point(self, kmeans_app):
        specs = enumerate_variants(kmeans_app)
        assert all(len(spec) > 0 for spec in specs)

    def test_count_matches_grid(self, raytrace_app):
        # raytrace: reflection has 2 candidates (+precise), shadows 1 (+precise)
        # => 3*2 - 1 non-precise combos.
        specs = enumerate_variants(raytrace_app)
        assert len(specs) == 5

    def test_unique(self, kmeans_app):
        specs = enumerate_variants(kmeans_app)
        assert len(set(specs)) == len(specs)

    def test_single_knob_variants_present(self, kmeans_app):
        specs = enumerate_variants(kmeans_app)
        singles = [s for s in specs if len(s) == 1]
        assert len(singles) >= 3

    def test_cap_respected(self):
        app = make_app("bayesian")
        specs = enumerate_variants(app, max_variants=10)
        assert len(specs) <= 10

    def test_cap_keeps_spread(self):
        app = make_app("bayesian")
        full = enumerate_variants(app)
        capped = enumerate_variants(app, max_variants=10)
        # Subsample must include specs from across the full grid.
        assert capped[0] == full[0]
        assert len(set(capped)) == len(capped)

    def test_empty_knobs(self, kmeans_app):
        assert enumerate_variants(kmeans_app, knobs={}) == []

    def test_default_cap(self):
        for name in ("bayesian", "plsa", "svmrfe"):
            assert len(enumerate_variants(make_app(name))) <= MAX_VARIANTS

    def test_values_come_from_knobs(self, kmeans_app):
        knobs = kmeans_app.knobs()
        for spec in enumerate_variants(kmeans_app):
            for key, value in spec.items():
                assert value in knobs[key].candidates
