"""The incremental engine: content-hash cache, warm path, reverse cone."""

import ast
import time
from pathlib import Path

from repro.analysis import AnalysisCache, analyze_paths, resolve_cache
from repro.analysis.incremental import analyzer_signature, reverse_cone
from repro.analysis.symbols import summarize_module

FIXTURES = Path(__file__).parent / "fixtures" / "project"


def make_project(root: Path, nfiles: int = 40) -> None:
    """A call chain spanning ``nfiles`` free-zone modules plus an entry."""
    (root / "repro").mkdir(parents=True)
    (root / "lib").mkdir()
    (root / "repro" / "entry.py").write_text(
        "from lib.m0 import fn0\n\n\ndef run(x):\n    return fn0(x)\n"
    )
    for i in range(nfiles):
        if i + 1 < nfiles:
            body = (
                f"from lib.m{i + 1} import fn{i + 1}\n\n\n"
                f"def fn{i}(x):\n    return fn{i + 1}(x) + {i}\n"
            )
        else:
            body = f"def fn{i}(x):\n    return x\n"
        (root / "lib" / f"m{i}.py").write_text(body)


class TestWarmRuns:
    def test_cold_misses_then_warm_hits_everything(self, tmp_path):
        project = tmp_path / "proj"
        make_project(project, nfiles=10)
        cache_dir = tmp_path / "cache"

        cold = AnalysisCache(cache_dir)
        report = analyze_paths([project], root=project, cache=cold)
        assert report.findings == []
        assert (report.cache_hits, report.cache_misses) == (0, 11)

        warm = AnalysisCache(cache_dir)
        report = analyze_paths([project], root=project, cache=warm)
        assert report.findings == []
        assert (report.cache_hits, report.cache_misses) == (11, 0)
        assert report.files_scanned == 11

    def test_warm_run_is_at_least_three_times_faster(self, tmp_path):
        project = tmp_path / "proj"
        make_project(project, nfiles=40)
        cache_dir = tmp_path / "cache"

        started = time.perf_counter()
        cold_cache = AnalysisCache(cache_dir)
        analyze_paths([project], root=project, cache=cold_cache)
        cold = time.perf_counter() - started
        assert cold_cache.misses == 41

        started = time.perf_counter()
        warm_cache = AnalysisCache(cache_dir)
        analyze_paths([project], root=project, cache=warm_cache)
        warm = time.perf_counter() - started
        # The fully-warm path replays the stored findings without one
        # parse or graph build — the hit counter proves it took that
        # path, the wall-clock ratio is the acceptance criterion.
        assert (warm_cache.hits, warm_cache.misses) == (41, 0)
        assert warm * 3 <= cold, f"warm={warm:.4f}s cold={cold:.4f}s"

    def test_warm_findings_are_byte_identical(self, tmp_path):
        # A taint finding (chain and all) must round-trip through the
        # state record unchanged.
        root = FIXTURES / "bad_taint_chain"
        cache_dir = tmp_path / "cache"
        cold = analyze_paths([root], root=root, cache=AnalysisCache(cache_dir))
        warm_cache = AnalysisCache(cache_dir)
        warm = analyze_paths([root], root=root, cache=warm_cache)
        assert warm_cache.hits == 3
        assert [f.to_payload() for f in warm.findings] == [
            f.to_payload() for f in cold.findings
        ]
        assert warm.findings[0].chain == cold.findings[0].chain

    def test_single_change_reuses_every_other_entry(self, tmp_path):
        project = tmp_path / "proj"
        make_project(project, nfiles=10)
        cache_dir = tmp_path / "cache"
        analyze_paths([project], root=project, cache=AnalysisCache(cache_dir))

        target = project / "lib" / "m9.py"
        target.write_text(target.read_text() + "\n\nEXTRA = 1\n")
        partial = AnalysisCache(cache_dir)
        report = analyze_paths([project], root=project, cache=partial)
        assert (partial.hits, partial.misses) == (10, 1)
        assert report.findings == []

    def test_edit_that_introduces_a_source_is_found_warm(self, tmp_path):
        project = tmp_path / "proj"
        make_project(project, nfiles=4)
        cache_dir = tmp_path / "cache"
        analyze_paths([project], root=project, cache=AnalysisCache(cache_dir))

        # The leaf starts reading the clock: the cached entry for the
        # deterministic entrypoint must not mask the new taint chain.
        (project / "lib" / "m3.py").write_text(
            "import time\n\n\ndef fn3(x):\n    return time.time()\n"
        )
        report = analyze_paths(
            [project], root=project, cache=AnalysisCache(cache_dir)
        )
        assert [f.rule for f in report.findings] == ["transitive-wallclock"]
        assert report.findings[0].path == "repro/entry.py"

    def test_analyzer_signature_change_invalidates(self, tmp_path, monkeypatch):
        project = tmp_path / "proj"
        make_project(project, nfiles=3)
        cache_dir = tmp_path / "cache"
        analyze_paths([project], root=project, cache=AnalysisCache(cache_dir))

        import repro.analysis.incremental as incremental

        monkeypatch.setattr(
            incremental, "analyzer_signature", lambda: "different"
        )
        stale = AnalysisCache(cache_dir)
        report = analyze_paths([project], root=project, cache=stale)
        assert stale.hits == 0
        assert stale.misses == 4
        assert report.findings == []


class TestResolveCache:
    def test_default_directory_under_root(self, tmp_path):
        cache = resolve_cache(tmp_path, env={})
        assert cache is not None
        assert cache.directory == tmp_path / ".repro-lint-cache"

    def test_env_var_points_the_cache_elsewhere(self, tmp_path):
        cache = resolve_cache(
            tmp_path, env={"REPRO_LINT_CACHE": str(tmp_path / "elsewhere")}
        )
        assert cache is not None
        assert cache.directory == tmp_path / "elsewhere"

    def test_env_var_disables(self, tmp_path):
        for value in ("off", "0", "false", "NO", "None"):
            assert (
                resolve_cache(tmp_path, env={"REPRO_LINT_CACHE": value})
                is None
            )

    def test_signature_is_stable_within_a_process(self):
        assert analyzer_signature() == analyzer_signature()


class TestReverseCone:
    def _summaries(self, files: dict[str, str]):
        return [
            summarize_module(
                ast.parse(source), relpath, tuple(source.splitlines())
            )
            for relpath, source in files.items()
        ]

    def test_cone_includes_transitive_importers(self):
        summaries = self._summaries(
            {
                "lib/a.py": "from lib.b import f\n",
                "lib/b.py": "from lib.c import g\n",
                "lib/c.py": "def g():\n    pass\n",
                "lib/other.py": "x = 1\n",
            }
        )
        cone = reverse_cone(summaries, {"lib/c.py"})
        assert cone == {"lib/a.py", "lib/b.py", "lib/c.py"}

    def test_leaf_change_stays_a_leaf(self):
        summaries = self._summaries(
            {
                "lib/a.py": "from lib.b import f\n",
                "lib/b.py": "def f():\n    pass\n",
            }
        )
        assert reverse_cone(summaries, {"lib/a.py"}) == {"lib/a.py"}

    def test_package_prefix_matches_both_directions(self):
        # ``from pkg import anything`` pulls importers of the package
        # into the cone when a submodule changes.
        summaries = self._summaries(
            {
                "pkg/__init__.py": "",
                "pkg/sub.py": "def f():\n    pass\n",
                "lib/user.py": "import pkg\n",
            }
        )
        cone = reverse_cone(summaries, {"pkg/sub.py"})
        assert "lib/user.py" in cone
