"""SARIF output: the code-scanning contract."""

import json
from pathlib import Path

from repro.analysis import analyze_paths, to_sarif
from repro.analysis.cli import main

FIXTURES = Path(__file__).parent / "fixtures" / "project"


def taint_findings():
    root = FIXTURES / "bad_taint_chain"
    return analyze_paths([root], root=root).findings


class TestSarifLog:
    def test_log_shape(self):
        log = to_sarif(taint_findings())
        assert log["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in log["$schema"]
        (run,) = log["runs"]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        (result,) = run["results"]
        assert result["ruleId"] == "transitive-wallclock"
        assert result["level"] == "error"
        assert "repro.entry.simulate" in result["message"]["text"]

    def test_rules_metadata_covers_every_result(self):
        log = to_sarif(taint_findings())
        (run,) = log["runs"]
        rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        assert rule_ids == {"transitive-wallclock"}
        (rule,) = run["tool"]["driver"]["rules"]
        assert rule["shortDescription"]["text"]

    def test_location_uses_srcroot_relative_uri(self):
        log = to_sarif(taint_findings())
        (result,) = log["runs"][0]["results"]
        (location,) = result["locations"]
        physical = location["physicalLocation"]
        assert physical["artifactLocation"] == {
            "uri": "repro/entry.py",
            "uriBaseId": "SRCROOT",
        }
        assert physical["region"]["startLine"] == 6

    def test_fingerprint_matches_the_finding(self):
        (finding,) = taint_findings()
        (result,) = to_sarif([finding])["runs"][0]["results"]
        assert result["partialFingerprints"] == {
            "reproLintFingerprint/v1": finding.fingerprint
        }

    def test_chain_becomes_a_code_flow(self):
        (finding,) = taint_findings()
        (result,) = to_sarif([finding])["runs"][0]["results"]
        (flow,) = result["codeFlows"]
        locations = flow["threadFlows"][0]["locations"]
        assert len(locations) == len(finding.chain)
        first = locations[0]["location"]
        assert first["message"]["text"] == "repro.entry.simulate"
        last = locations[-1]["location"]
        assert last["message"]["text"] == "time.time"
        assert (
            last["physicalLocation"]["artifactLocation"]["uri"]
            == "lib/deep.py"
        )

    def test_chainless_findings_have_no_code_flow(self):
        root = FIXTURES / "bad_schema_drift"
        findings = analyze_paths([root], root=root).findings
        log = to_sarif(findings)
        assert all(
            "codeFlows" not in result
            for result in log["runs"][0]["results"]
        )

    def test_empty_log_is_still_valid(self):
        log = to_sarif([])
        assert log["runs"][0]["results"] == []
        assert log["runs"][0]["tool"]["driver"]["rules"] == []


class TestSarifCli:
    def test_format_sarif_prints_a_log(self, capsys):
        root = FIXTURES / "bad_taint_chain"
        code = main(
            [
                "--no-baseline",
                "--no-cache",
                "--format",
                "sarif",
                "--root",
                str(root),
                str(root),
            ]
        )
        assert code == 1
        log = json.loads(capsys.readouterr().out)
        assert log["runs"][0]["results"][0]["ruleId"] == "transitive-wallclock"

    def test_sarif_flag_writes_a_file_without_changing_exit(
        self, tmp_path, capsys
    ):
        root = FIXTURES / "good_schema"
        out = tmp_path / "deep" / "lint.sarif"
        code = main(
            [
                "--no-baseline",
                "--no-cache",
                "--sarif",
                str(out),
                "--root",
                str(root),
                str(root),
            ]
        )
        assert code == 0
        log = json.loads(out.read_text())
        assert log["runs"][0]["results"] == []
