"""Call-graph construction and resolution edge cases.

Each test builds a tiny multi-module project in memory and asserts the
exact resolved edges — the shapes here (re-exports, ``self`` through
bases, instance calls, registry indirection, cycles) are the ones the
fixture corpus exercises end to end through the CLI.
"""

import ast
import re

from repro.analysis.callgraph import CallGraph
from repro.analysis.symbols import SymbolTable, summarize_module


def build(files: dict[str, str]) -> tuple[SymbolTable, CallGraph]:
    summaries = [
        summarize_module(ast.parse(source), relpath, tuple(source.splitlines()))
        for relpath, source in files.items()
    ]
    table = SymbolTable(summaries)
    return table, CallGraph.build(table)


def edge_pairs(graph: CallGraph) -> set[tuple[str, str]]:
    return {
        (edge.caller, edge.callee)
        for edges in graph.edges.values()
        for edge in edges
    }


class TestResolution:
    def test_direct_import_edge(self):
        _, graph = build(
            {
                "lib/a.py": "from lib.b import g\ndef f():\n    g()\n",
                "lib/b.py": "def g():\n    pass\n",
            }
        )
        assert ("lib.a.f", "lib.b.g") in edge_pairs(graph)

    def test_reexport_edge_lands_on_the_definition(self):
        _, graph = build(
            {
                "lib/a.py": "from lib.api import g2\ndef f():\n    g2()\n",
                "lib/api.py": "from lib.b import g as g2\n",
                "lib/b.py": "def g():\n    pass\n",
            }
        )
        assert ("lib.a.f", "lib.b.g") in edge_pairs(graph)

    def test_self_call_resolves_through_bases(self):
        _, graph = build(
            {
                "lib/m.py": (
                    "class Base:\n"
                    "    def now(self):\n"
                    "        pass\n"
                    "class Timer(Base):\n"
                    "    def read(self):\n"
                    "        return self.now()\n"
                )
            }
        )
        assert ("lib.m.Timer.read", "lib.m.Base.now") in edge_pairs(graph)

    def test_instance_call_resolves_inherited_methods(self):
        # ``Timer().read()`` where ``read`` lives on the base class.
        _, graph = build(
            {
                "lib/m.py": (
                    "class Base:\n"
                    "    def read(self):\n"
                    "        pass\n"
                    "class Timer(Base):\n"
                    "    pass\n"
                    "def f():\n"
                    "    return Timer().read()\n"
                )
            }
        )
        assert ("lib.m.f", "lib.m.Base.read") in edge_pairs(graph)

    def test_class_call_edges_to_init(self):
        _, graph = build(
            {
                "lib/m.py": (
                    "class C:\n"
                    "    def __init__(self):\n"
                    "        pass\n"
                    "def f():\n"
                    "    return C()\n"
                )
            }
        )
        assert ("lib.m.f", "lib.m.C.__init__") in edge_pairs(graph)

    def test_opaque_calls_get_no_edge(self):
        _, graph = build(
            {
                "lib/m.py": (
                    "def f(cb):\n"
                    "    cb()\n"
                    "    x = object()\n"
                    "    x.method()\n"
                )
            }
        )
        assert edge_pairs(graph) == set()


class TestRegistryEdges:
    def test_dispatcher_gets_an_edge_to_every_registered_target(self):
        _, graph = build(
            {
                "repro/engine.py": (
                    "POLICY_REGISTRY = {}\n"
                    "def register_policy(name, builder):\n"
                    "    POLICY_REGISTRY[name] = builder\n"
                    "def make(name):\n"
                    "    return POLICY_REGISTRY[name]()\n"
                ),
                "lib/p1.py": (
                    "from repro.engine import register_policy\n"
                    "def build_one(sc, kw):\n"
                    "    pass\n"
                    "register_policy('one', build_one)\n"
                ),
                "lib/p2.py": (
                    "from repro.engine import register_policy\n"
                    "def build_two(sc, kw):\n"
                    "    pass\n"
                    "register_policy('two', build_two)\n"
                ),
            }
        )
        assert graph.registry_targets["policy"] == (
            "lib.p1.build_one",
            "lib.p2.build_two",
        )
        pairs = edge_pairs(graph)
        assert ("repro.engine.make", "lib.p1.build_one") in pairs
        assert ("repro.engine.make", "lib.p2.build_two") in pairs
        via = {
            edge.via
            for edge in graph.edges["repro.engine.make"]
            if edge.callee == "lib.p1.build_one"
        }
        assert via == {"registry:policy"}

    def test_registered_class_expands_to_its_methods(self):
        _, graph = build(
            {
                "repro/engine.py": (
                    "STRATEGY_REGISTRY = {}\n"
                    "def register_strategy(name, cls):\n"
                    "    STRATEGY_REGISTRY[name] = cls\n"
                    "def run(name):\n"
                    "    return STRATEGY_REGISTRY[name]\n"
                ),
                "lib/s.py": (
                    "from repro.engine import register_strategy\n"
                    "class Grid:\n"
                    "    def propose(self):\n"
                    "        pass\n"
                    "    def observe(self):\n"
                    "        pass\n"
                    "register_strategy('grid', Grid)\n"
                ),
            }
        )
        assert graph.registry_targets["strategy"] == (
            "lib.s.Grid.observe",
            "lib.s.Grid.propose",
        )


class TestCycles:
    def test_import_cycle_still_builds_edges(self):
        _, graph = build(
            {
                "lib/a.py": "from lib.b import g\ndef f():\n    g()\n",
                "lib/b.py": "from lib.a import f\ndef g():\n    f()\n",
            }
        )
        pairs = edge_pairs(graph)
        assert ("lib.a.f", "lib.b.g") in pairs
        assert ("lib.b.g", "lib.a.f") in pairs

    def test_reexport_cycle_yields_no_edge(self):
        _, graph = build(
            {
                "lib/a.py": (
                    "from lib.b import broken\n"
                    "def f():\n"
                    "    broken()\n"
                ),
                "lib/b.py": "from lib.a import broken\n",
            }
        )
        assert edge_pairs(graph) == set()

    def test_base_class_cycle_terminates(self):
        _, graph = build(
            {
                "lib/m.py": (
                    "class A(B):\n"
                    "    def f(self):\n"
                    "        return self.missing()\n"
                    "class B(A):\n"
                    "    pass\n"
                )
            }
        )
        assert edge_pairs(graph) == set()


class TestDotOutput:
    def test_every_line_parses_as_dot(self):
        _, graph = build(
            {
                "lib/a.py": "from lib.b import g\ndef f():\n    g()\n",
                "lib/b.py": "def g():\n    pass\n",
            }
        )
        lines = graph.to_dot().splitlines()
        assert lines[0] == "digraph callgraph {"
        assert lines[-1] == "}"
        body_re = re.compile(
            r'^  (rankdir=LR;|"[^"]+";|"[^"]+" -> "[^"]+"( \[[^\]]+\])?;)$'
        )
        for line in lines[1:-1]:
            assert body_re.match(line), line
