"""Per-rule behavior, driven by the known-good/known-bad fixture files.

Every bad fixture must produce its rule's findings; every good fixture
must be completely clean under *all* rules active in its zone — a good
fixture tripping any rule is a false-positive regression.
"""

from pathlib import Path

import pytest

from repro.analysis import Zone, analyze_source, register_rule, registered_rules
from repro.analysis.registry import Rule

FIXTURES = Path(__file__).parent / "fixtures"

ZONES = {"deterministic": Zone.DETERMINISTIC, "distributed": Zone.DISTRIBUTED}


def analyze_fixture(zone_name: str, name: str):
    path = FIXTURES / zone_name / name
    return analyze_source(
        path.read_text(), relpath=name, zone=ZONES[zone_name]
    )


def rule_ids(findings) -> set[str]:
    return {finding.rule for finding in findings}


ALL_FIXTURES = sorted(
    (path.parent.name, path.name) for path in FIXTURES.glob("*/*.py")
)


class TestFixtureContract:
    def test_fixture_corpus_is_present(self):
        names = {name for _, name in ALL_FIXTURES}
        # One good and one bad fixture per shipped rule family.
        assert {
            "bad_wallclock.py",
            "bad_rng.py",
            "bad_lease_clock.py",
            "bad_locks.py",
            "bad_serialization.py",
            "bad_imports.py",
        } <= names
        assert len([n for n in names if n.startswith("good_")]) >= 6

    @pytest.mark.parametrize(
        "zone_name,name",
        [(z, n) for z, n in ALL_FIXTURES if n.startswith("bad_")],
    )
    def test_every_bad_fixture_fails(self, zone_name, name):
        assert analyze_fixture(zone_name, name), f"{name} produced no findings"

    @pytest.mark.parametrize(
        "zone_name,name",
        [(z, n) for z, n in ALL_FIXTURES if n.startswith("good_")],
    )
    def test_every_good_fixture_is_clean(self, zone_name, name):
        findings = analyze_fixture(zone_name, name)
        assert not findings, [f.message for f in findings]


class TestNoWallclock:
    def test_flags_every_clock_flavor(self):
        findings = analyze_fixture("deterministic", "bad_wallclock.py")
        assert rule_ids(findings) == {"no-wallclock"}
        assert len(findings) == 4
        flagged = {f.line for f in findings}
        assert len(flagged) == 4  # one per offending function

    def test_inactive_in_free_zone(self):
        source = "import time\nstamp = time.time()\n"
        assert analyze_source(source, "scripts/x.py", zone=Zone.FREE) == []

    def test_local_name_is_not_the_module(self):
        source = "class T:\n    def f(self):\n        return self.time()\n"
        assert analyze_source(source, "m.py", zone=Zone.DETERMINISTIC) == []


class TestSeededRng:
    def test_flags_unseeded_and_global_draws(self):
        findings = analyze_fixture("deterministic", "bad_rng.py")
        assert rule_ids(findings) == {"seeded-rng"}
        assert len(findings) == 5

    def test_catches_aliased_numpy(self):
        source = (
            "import numpy.random as npr\n"
            "def f():\n    return npr.default_rng()\n"
        )
        findings = analyze_source(source, "m.py", zone=Zone.DETERMINISTIC)
        assert [f.rule for f in findings] == ["seeded-rng"]

    def test_active_in_distributed_zone_too(self):
        source = "import random\ndef f():\n    return random.random()\n"
        findings = analyze_source(source, "m.py", zone=Zone.DISTRIBUTED)
        assert [f.rule for f in findings] == ["seeded-rng"]


class TestLeaseClock:
    def test_flags_wall_and_mtime_arithmetic(self):
        findings = analyze_fixture("distributed", "bad_lease_clock.py")
        assert rule_ids(findings) == {"lease-clock"}
        assert len(findings) == 4

    def test_monotonic_is_allowed_in_distributed(self):
        source = "import time\ndef f():\n    return time.monotonic()\n"
        assert analyze_source(source, "m.py", zone=Zone.DISTRIBUTED) == []

    def test_mtime_equality_is_allowed(self):
        source = (
            "def changed(seen, mtime_ns):\n"
            "    return seen is None or seen[0] != mtime_ns\n"
        )
        assert analyze_source(source, "m.py", zone=Zone.DISTRIBUTED) == []


class TestLockDiscipline:
    def test_flags_split_writes_and_blocking(self):
        findings = analyze_fixture("distributed", "bad_locks.py")
        assert rule_ids(findings) == {"lock-discipline"}
        assert len(findings) == 3
        messages = " ".join(f.message for f in findings)
        assert "_generation" in messages
        assert "sendall" in messages
        assert "time.sleep" in messages

    def test_init_writes_do_not_count_as_unlocked(self):
        findings = analyze_fixture("distributed", "good_locks.py")
        assert findings == []

    def test_lockless_class_is_silent(self):
        source = (
            "class C:\n"
            "    def f(self):\n        self.x = 1\n"
            "    def g(self):\n        self.x = 2\n"
        )
        assert analyze_source(source, "m.py", zone=Zone.DISTRIBUTED) == []


class TestSerializationSafety:
    def test_flags_call_time_callables(self):
        findings = analyze_fixture("deterministic", "bad_serialization.py")
        assert rule_ids(findings) == {"serialization-safety"}
        assert len(findings) == 3

    def test_applies_in_every_zone(self):
        source = (
            "def f(register_policy):\n"
            "    register_policy('x', lambda sc, kw: None)\n"
        )
        for zone in Zone:
            findings = analyze_source(source, "m.py", zone=zone)
            assert [f.rule for f in findings] == ["serialization-safety"], zone


class TestDeprecatedImports:
    def test_flags_every_import_form(self):
        findings = analyze_fixture("deterministic", "bad_imports.py")
        assert rule_ids(findings) == {"no-deprecated-imports"}
        assert len(findings) == 3

    def test_shim_package_is_exempt(self):
        source = "from repro.search import frontier\nimport repro.exploration\n"
        findings = analyze_source(
            source, "src/repro/exploration/__init__.py"
        )
        assert findings == []


class TestPragmas:
    def test_same_line_pragma_waives(self):
        source = (
            "import time\n"
            "now = time.time()  # repro-lint: ignore[no-wallclock] -- why\n"
        )
        assert analyze_source(source, "m.py", zone=Zone.DETERMINISTIC) == []

    def test_preceding_comment_pragma_waives(self):
        source = (
            "import time\n"
            "# repro-lint: ignore[no-wallclock] -- advisory only\n"
            "now = time.time()\n"
        )
        assert analyze_source(source, "m.py", zone=Zone.DETERMINISTIC) == []

    def test_pragma_is_rule_scoped(self):
        source = (
            "import time\n"
            "now = time.time()  # repro-lint: ignore[seeded-rng] -- wrong id\n"
        )
        findings = analyze_source(source, "m.py", zone=Zone.DETERMINISTIC)
        assert [f.rule for f in findings] == ["no-wallclock"]

    def test_star_pragma_waives_everything(self):
        source = (
            "import time\n"
            "now = time.time()  # repro-lint: ignore[*] -- trust me\n"
        )
        assert analyze_source(source, "m.py", zone=Zone.DETERMINISTIC) == []

    def test_pragma_on_first_line_of_multiline_statement_waives(self):
        # The finding anchors two lines below the pragma; the pragma
        # binds to the whole statement span, not its own line.
        source = (
            "import time\n"
            "now = max(  # repro-lint: ignore[no-wallclock] -- wrapped call\n"
            "    time.time(),\n"
            "    0.0,\n"
            ")\n"
        )
        assert analyze_source(source, "m.py", zone=Zone.DETERMINISTIC) == []

    def test_multiline_statement_without_pragma_still_fails(self):
        source = (
            "import time\n"
            "now = max(\n"
            "    time.time(),\n"
            "    0.0,\n"
            ")\n"
        )
        findings = analyze_source(source, "m.py", zone=Zone.DETERMINISTIC)
        assert [f.rule for f in findings] == ["no-wallclock"]

    def test_pragma_above_decorator_waives_the_decorated_def(self):
        # The violation sits in the def header (a default argument), one
        # line below the decorator the pragma comment precedes.
        source = (
            "import time\n"
            "import functools\n"
            "# repro-lint: ignore[no-wallclock] -- import-time default\n"
            "@functools.lru_cache\n"
            "def f(stamp=time.time()):\n"
            "    return stamp\n"
        )
        assert analyze_source(source, "m.py", zone=Zone.DETERMINISTIC) == []

    def test_pragma_on_decorator_line_waives_the_def_header(self):
        source = (
            "import time\n"
            "import functools\n"
            "@functools.lru_cache  # repro-lint: ignore[no-wallclock] -- ok\n"
            "def f(stamp=time.time()):\n"
            "    return stamp\n"
        )
        assert analyze_source(source, "m.py", zone=Zone.DETERMINISTIC) == []

    def test_decorated_def_without_pragma_still_fails(self):
        source = (
            "import time\n"
            "import functools\n"
            "@functools.lru_cache\n"
            "def f(stamp=time.time()):\n"
            "    return stamp\n"
        )
        findings = analyze_source(source, "m.py", zone=Zone.DETERMINISTIC)
        assert [f.rule for f in findings] == ["no-wallclock"]

    def test_def_span_does_not_swallow_the_body(self):
        # A pragma on the decorator must NOT waive violations deeper in
        # the function body — the span ends at the header.
        source = (
            "import time\n"
            "import functools\n"
            "@functools.lru_cache  # repro-lint: ignore[no-wallclock] -- hdr\n"
            "def f():\n"
            "    return time.time()\n"
        )
        findings = analyze_source(source, "m.py", zone=Zone.DETERMINISTIC)
        assert [f.rule for f in findings] == ["no-wallclock"]


class TestRegistry:
    def test_six_builtin_rules_registered(self):
        assert set(registered_rules()) >= {
            "no-wallclock",
            "seeded-rng",
            "lease-clock",
            "lock-discipline",
            "serialization-safety",
            "no-deprecated-imports",
        }
        assert len(registered_rules()) >= 6

    def test_duplicate_registration_refused(self):
        class Dup(Rule):
            id = "no-wallclock"
            summary = "dup"

            def check(self, ctx):
                return iter(())

        with pytest.raises(ValueError, match="already registered"):
            register_rule(Dup())

    def test_custom_rule_registers_and_runs(self):
        class NoTodo(Rule):
            id = "fixture-no-todo"
            summary = "flags TODO assignments"

            def check(self, ctx):
                import ast

                for node in ast.walk(ctx.tree):
                    if isinstance(node, ast.Name) and node.id == "TODO":
                        yield ctx.finding(self.id, node, "TODO found")

        register_rule(NoTodo())
        try:
            findings = analyze_source("TODO = 1\n", "m.py", zone=Zone.FREE)
            assert [f.rule for f in findings] == ["fixture-no-todo"]
        finally:
            from repro.analysis import RULE_REGISTRY

            del RULE_REGISTRY["fixture-no-todo"]

    def test_parse_error_is_reported_not_raised(self):
        findings = analyze_source("def broken(:\n", "m.py", zone=Zone.FREE)
        assert [f.rule for f in findings] == ["parse-error"]
