"""repro-lint must pass on this repository itself.

This is the dogfood gate: every invariant the analyzer enforces is an
invariant this codebase claims to uphold.  A new violation anywhere in
``src``/``benchmarks``/``examples``/``scripts`` fails here (and in
``make lint``) until it is fixed, pragma'd, or baselined with a
justification.
"""

from pathlib import Path

import pytest

from repro.analysis import Baseline, analyze_paths, registered_rules
from repro.analysis.baseline import DEFAULT_BASELINE_NAME
from repro.analysis.cli import DEFAULT_ROOTS

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def repo_report():
    roots = [REPO_ROOT / root for root in DEFAULT_ROOTS if (REPO_ROOT / root).exists()]
    assert roots, "repo layout changed: no default roots found"
    return analyze_paths(roots, root=REPO_ROOT)


def test_at_least_ten_rules_ship(repo_report):
    # Six per-file rules plus the four project-scoped (interprocedural)
    # rules: transitive-wallclock/-rng, lock-order, spec-schema-drift.
    assert len(registered_rules()) >= 10
    assert {
        "transitive-wallclock",
        "transitive-rng",
        "lock-order",
        "spec-schema-drift",
    } <= set(registered_rules())


def test_repo_is_clean_modulo_baseline(repo_report):
    baseline = Baseline.load(REPO_ROOT / DEFAULT_BASELINE_NAME)
    new, _waived, expired = baseline.partition(repo_report.findings)
    assert new == [], "unbaselined findings:\n" + "\n".join(
        f"  {f.location}: {f.rule}: {f.message}" for f in new
    )
    assert expired == [], "stale baseline entries:\n" + "\n".join(
        f"  {e.path}: {e.fingerprint} ({e.rule})" for e in expired
    )


def test_every_baselined_finding_is_justified(repo_report):
    baseline = Baseline.load(REPO_ROOT / DEFAULT_BASELINE_NAME)
    assert len(baseline) > 0, "expected grandfathered entries to exist"
    for entry in baseline.entries:
        assert entry.justification.strip(), entry.fingerprint


def test_scan_covers_the_whole_tree(repo_report):
    # A scan that silently skips most of src/ would pass vacuously.
    assert repo_report.files_scanned > 100
