"""Cross-file rules over the project fixture corpus.

Each directory under ``fixtures/project/`` is a miniature project whose
internal layout assigns the zones: files under ``repro/`` are
deterministic (``repro/sweep/backends/`` distributed), files under
``lib/`` are free.  The tests pin the *exact* rendered taint chain for
each call-graph shape — a resolution regression shows up as a chain
diff, not just a changed count.
"""

from pathlib import Path

import pytest

from repro.analysis import analyze_paths

PROJECTS = Path(__file__).parent / "fixtures" / "project"

BAD_PROJECTS = sorted(p.name for p in PROJECTS.glob("bad_*"))
GOOD_PROJECTS = sorted(p.name for p in PROJECTS.glob("good_*"))


def findings_for(name: str):
    root = PROJECTS / name
    return analyze_paths([root], root=root).findings


class TestProjectCorpusContract:
    def test_corpus_is_present(self):
        assert {
            "bad_taint_chain",
            "bad_taint_rng",
            "bad_reexport",
            "bad_self_method",
            "bad_registry",
            "bad_import_cycle",
            "bad_lock_cycle",
            "bad_schema_drift",
        } <= set(BAD_PROJECTS)
        assert len(GOOD_PROJECTS) >= 3

    @pytest.mark.parametrize("name", BAD_PROJECTS)
    def test_every_bad_project_fails(self, name):
        assert findings_for(name), f"{name} produced no findings"

    @pytest.mark.parametrize("name", GOOD_PROJECTS)
    def test_every_good_project_is_clean(self, name):
        findings = findings_for(name)
        assert not findings, [f.message for f in findings]


class TestTransitiveTaint:
    def test_wallclock_two_call_edges_from_the_boundary(self):
        # The acceptance fixture: the clock read is two call-edges away
        # from the deterministic entrypoint.
        findings = findings_for("bad_taint_chain")
        assert len(findings) == 1
        (finding,) = findings
        assert finding.rule == "transitive-wallclock"
        assert (finding.path, finding.line) == ("repro/entry.py", 6)
        assert finding.code == "def simulate(ticks):"
        assert finding.render_chain() == (
            "repro.entry.simulate (repro/entry.py:7) -> "
            "lib.util.helper (lib/util.py:7) -> "
            "lib.deep.now (lib/deep.py:7) -> "
            "time.time (lib/deep.py:7)"
        )
        # boundary + two intermediate functions + the source itself.
        assert len(finding.chain) == 4
        assert "time.time" in finding.message

    def test_rng_taint_through_free_helper(self):
        findings = findings_for("bad_taint_rng")
        assert [f.rule for f in findings] == ["transitive-rng"]
        assert findings[0].render_chain() == (
            "repro.entry.plan (repro/entry.py:7) -> "
            "lib.noise.jitter (lib/noise.py:7) -> "
            "random.random (lib/noise.py:7)"
        )

    def test_chain_findings_fingerprint_deterministically(self):
        first = {f.fingerprint for f in findings_for("bad_taint_chain")}
        second = {f.fingerprint for f in findings_for("bad_taint_chain")}
        assert first == second
        assert all(first)

    def test_pragma_on_the_source_kills_the_whole_chain(self):
        assert findings_for("good_taint_pragma") == []


class TestCallGraphShapes:
    def test_reexport_resolves_to_the_implementation(self):
        # ``from lib.impl import now as now_alias`` — the chain lands on
        # the defining module; the facade does not appear as a hop.
        findings = findings_for("bad_reexport")
        assert [f.rule for f in findings] == ["transitive-wallclock"]
        chain = findings[0].render_chain()
        assert chain == (
            "repro.entry.run (repro/entry.py:7) -> "
            "lib.impl.now (lib/impl.py:7) -> "
            "time.time (lib/impl.py:7)"
        )
        assert "lib.api" not in chain

    def test_method_resolution_through_self_and_bases(self):
        # ``Timer().read()`` resolves to the method, and ``self.now()``
        # walks up to the base class that defines it.
        findings = findings_for("bad_self_method")
        assert [f.rule for f in findings] == ["transitive-wallclock"]
        assert findings[0].render_chain() == (
            "repro.entry.run (repro/entry.py:7) -> "
            "lib.timer.reading (lib/timer.py:17) -> "
            "lib.timer.Timer.read (lib/timer.py:13) -> "
            "lib.timer.Base.now (lib/timer.py:8) -> "
            "time.time (lib/timer.py:8)"
        )

    def test_registry_indirection_reaches_registered_targets(self):
        # The dispatcher never names the plugin; the edge comes from the
        # registry: it reads POLICY_REGISTRY, the plugin registered into
        # it.  Every deterministic function touching the registry is a
        # boundary, so the registrar and module body are flagged too.
        findings = findings_for("bad_registry")
        assert {f.rule for f in findings} == {"transitive-wallclock"}
        by_boundary = {f.chain[0][0]: f for f in findings}
        assert "repro.engine.make" in by_boundary
        assert by_boundary["repro.engine.make"].render_chain() == (
            "repro.engine.make (repro/engine.py:10) -> "
            "lib.plugin.build (lib/plugin.py:9) -> "
            "time.time (lib/plugin.py:9)"
        )

    def test_import_cycle_terminates_and_still_resolves(self):
        # alpha and beta import each other, and ``broken`` is a pure
        # re-export cycle with no definition: resolution must neither
        # hang nor invent an edge for it.
        findings = findings_for("bad_import_cycle")
        assert [f.rule for f in findings] == ["transitive-wallclock"]
        assert findings[0].render_chain() == (
            "repro.entry.run (repro/entry.py:7) -> "
            "lib.alpha.ping (lib/alpha.py:7) -> "
            "lib.beta.pong (lib/beta.py:9) -> "
            "time.time (lib/beta.py:9)"
        )


class TestLockOrder:
    def test_conflicting_acquisition_orders_are_a_cycle(self):
        findings = findings_for("bad_lock_cycle")
        assert [f.rule for f in findings] == ["lock-order"]
        message = findings[0].message
        assert "repro.sweep.backends.spool.SPOOL_LOCK" in message
        assert "repro.sweep.backends.wire.WIRE_LOCK" in message
        # One witness per edge, both directions of the cycle.
        assert len(findings[0].chain) == 2

    def test_consistent_global_order_is_clean(self):
        assert findings_for("good_lock_order") == []


class TestSchemaDrift:
    def test_each_drift_shape_is_named(self):
        findings = findings_for("bad_schema_drift")
        assert {f.rule for f in findings} == {"spec-schema-drift"}
        assert len(findings) == 3
        messages = " ".join(f.message for f in findings)
        assert "'retries' is never read in key_payload()" in messages
        assert "'tag' never appears as a payload key in from_payload()" in messages
        assert "compares against 'stable'" in messages

    def test_consistent_payload_class_is_clean(self):
        assert findings_for("good_schema") == []
