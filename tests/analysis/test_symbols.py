"""Module summaries: what the extractor records per file.

These are the facts every cross-file rule is built on — if extraction
drops a call site or mis-canonicalizes a lock, the interprocedural
layer is silently blind, so the shapes are pinned here one by one.
"""

import ast

from repro.analysis.symbols import (
    MODULE_BODY,
    ModuleSummary,
    SymbolTable,
    module_name,
    summarize_module,
)
from repro.analysis.zones import Zone


def summarize(source: str, relpath: str = "lib/mod.py", **kwargs):
    tree = ast.parse(source)
    return summarize_module(
        tree, relpath, tuple(source.splitlines()), **kwargs
    )


class TestModuleName:
    def test_plain_module(self):
        assert module_name("repro/sim/events.py") == ("repro.sim.events", False)

    def test_leading_src_is_stripped(self):
        assert module_name("src/repro/rng.py") == ("repro.rng", False)

    def test_package_init_names_the_package(self):
        assert module_name("src/repro/sweep/__init__.py") == (
            "repro.sweep",
            True,
        )


class TestExportsAndImports:
    def test_aliased_reexport_is_recorded(self):
        summary = summarize("from lib.impl import now as now_alias\n")
        assert summary.exports["now_alias"] == "lib.impl.now"

    def test_relative_import_is_absolutized(self):
        summary = summarize(
            "from .other import fn\nfrom ..top import g\n",
            relpath="pkg/sub/mod.py",
        )
        assert summary.exports["fn"] == "pkg.sub.other.fn"
        assert summary.exports["g"] == "pkg.top.g"
        assert "pkg.sub.other" in summary.imported_modules
        assert "pkg.top" in summary.imported_modules

    def test_zone_comes_from_the_relpath(self):
        assert summarize("x = 1\n", "repro/core/x.py").zone == "deterministic"
        assert summarize("x = 1\n", "lib/x.py").zone == "free"


class TestCallExtraction:
    def test_call_kinds(self):
        summary = summarize(
            "import time\n"
            "from lib.util import helper\n"
            "def local_target():\n"
            "    pass\n"
            "def f():\n"
            "    time.sleep(1)\n"
            "    helper()\n"
            "    local_target()\n"
            "class C:\n"
            "    def g(self):\n"
            "        self.h()\n"
            "    def h(self):\n"
            "        pass\n"
        )
        calls = {
            (site.kind, site.target)
            for site in summary.functions["f"].calls
        }
        assert ("abs", "time.sleep") in calls
        assert ("abs", "lib.util.helper") in calls
        assert ("local", "local_target") in calls
        method_calls = {
            (site.kind, site.target)
            for site in summary.functions["C.g"].calls
        }
        assert ("self", "h") in method_calls

    def test_instance_call_resolves_like_the_class_method(self):
        summary = summarize(
            "class Timer:\n"
            "    def read(self):\n"
            "        return 0\n"
            "def f():\n"
            "    return Timer().read()\n"
        )
        calls = {
            (site.kind, site.target)
            for site in summary.functions["f"].calls
        }
        assert ("local", "Timer.read") in calls

    def test_module_level_code_lands_in_the_module_body(self):
        summary = summarize("import time\nstamp = time.time()\n")
        body = summary.functions[MODULE_BODY]
        assert [(s.rule, s.target) for s in body.sources] == [
            ("transitive-wallclock", "time.time")
        ]


class TestSourcesAndWaivers:
    def test_clock_and_rng_sources_in_free_zone(self):
        summary = summarize(
            "import random\n"
            "import time\n"
            "def f():\n"
            "    return time.time() + random.random()\n"
        )
        sources = {
            (s.rule, s.target) for s in summary.functions["f"].sources
        }
        assert sources == {
            ("transitive-wallclock", "time.time"),
            ("transitive-rng", "random.random"),
        }

    def test_waived_source_site_is_dropped_at_extraction(self):
        source = (
            "import time\n"
            "def f():\n"
            "    return time.time()\n"
        )
        waivers = {3: frozenset({"transitive-wallclock"})}
        summary = summarize(source)
        assert summary.functions["f"].sources
        tree = ast.parse(source)
        waived = summarize_module(
            tree,
            "lib/mod.py",
            tuple(source.splitlines()),
            waivers=waivers,
        )
        assert waived.functions["f"].sources == ()


class TestLocksAndRegistrations:
    def test_lock_names_are_canonicalized(self):
        summary = summarize(
            "import threading\n"
            "GLOBAL_LOCK = threading.Lock()\n"
            "class C:\n"
            "    def f(self):\n"
            "        with self._lock:\n"
            "            with GLOBAL_LOCK:\n"
            "                pass\n",
            relpath="pkg/mod.py",
        )
        locks = summary.functions["C.f"].locks
        assert [(s.lock, s.held) for s in locks] == [
            ("pkg.mod.C._lock", ()),
            ("pkg.mod.GLOBAL_LOCK", ("pkg.mod.C._lock",)),
        ]

    def test_calls_under_a_lock_record_the_held_stack(self):
        summary = summarize(
            "import threading\n"
            "LOCK = threading.Lock()\n"
            "def f():\n"
            "    with LOCK:\n"
            "        g()\n"
            "def g():\n"
            "    pass\n",
            relpath="pkg/mod.py",
        )
        (site,) = summary.functions["f"].calls
        assert site.target == "g"
        assert site.held == ("pkg.mod.LOCK",)

    def test_registration_and_registry_read(self):
        summary = summarize(
            "from repro.sweep.engine import register_policy\n"
            "from repro.sweep.engine import POLICY_REGISTRY\n"
            "def build(sc, kw):\n"
            "    return None\n"
            "register_policy('mine', build)\n"
            "def dispatch(name):\n"
            "    return POLICY_REGISTRY[name]\n"
        )
        (reg,) = summary.registrations
        assert (reg.family, reg.name, reg.target_kind, reg.target) == (
            "policy",
            "mine",
            "local",
            "build",
        )
        assert summary.functions["dispatch"].registry_reads == ("policy",)


class TestPayloadRoundTrip:
    def test_summary_survives_to_payload_from_payload(self):
        summary = summarize(
            "import threading\n"
            "import time\n"
            "from lib.util import helper as h\n"
            "LOCK = threading.Lock()\n"
            "class Spec:\n"
            "    name: str\n"
            "    def key_payload(self):\n"
            "        return {'name': self.name}\n"
            "    def to_payload(self):\n"
            "        return {'name': self.name}\n"
            "    def from_payload(self, payload):\n"
            "        return Spec(payload['name'])\n"
            "def f():\n"
            "    with LOCK:\n"
            "        return h() + time.time()\n",
            relpath="pkg/mod.py",
        )
        clone = ModuleSummary.from_payload(summary.to_payload())
        assert clone == summary


class TestSymbolTableResolve:
    def test_resolution_follows_reexport_chains(self):
        facade = summarize(
            "from lib.impl import run as launch\n", relpath="lib/api.py"
        )
        impl = summarize("def run():\n    pass\n", relpath="lib/impl.py")
        table = SymbolTable([facade, impl])
        assert table.resolve("lib.api.launch") == "lib.impl.run"

    def test_reexport_cycle_terminates(self):
        a = summarize("from lib.b import broken\n", relpath="lib/a.py")
        b = summarize("from lib.a import broken\n", relpath="lib/b.py")
        table = SymbolTable([a, b])
        assert table.resolve("lib.a.broken") is None
        assert table.resolve("lib.b.broken") is None
