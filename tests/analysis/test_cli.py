"""The ``python -m repro.analysis`` entrypoint: exit codes and formats."""

import json
import re
from pathlib import Path

import pytest

from repro.analysis.cli import main

FIXTURES = Path(__file__).parent / "fixtures"

BAD_FIXTURES = sorted(FIXTURES.glob("*/bad_*.py"))
GOOD_FIXTURES = sorted(FIXTURES.glob("*/good_*.py"))

BAD_PROJECTS = sorted(FIXTURES.glob("project/bad_*"))
GOOD_PROJECTS = sorted(FIXTURES.glob("project/good_*"))


def run(*argv: str) -> int:
    return main(list(argv))


@pytest.mark.parametrize(
    "fixture", BAD_FIXTURES, ids=lambda p: f"{p.parent.name}/{p.name}"
)
def test_bad_fixtures_exit_nonzero(fixture):
    zone = fixture.parent.name
    assert run("--no-baseline", "--zone", zone, str(fixture)) == 1


@pytest.mark.parametrize(
    "fixture", GOOD_FIXTURES, ids=lambda p: f"{p.parent.name}/{p.name}"
)
def test_good_fixtures_exit_zero(fixture):
    zone = fixture.parent.name
    assert run("--no-baseline", "--zone", zone, str(fixture)) == 0


@pytest.mark.parametrize("project", BAD_PROJECTS, ids=lambda p: p.name)
def test_bad_projects_exit_nonzero(project):
    assert (
        run(
            "--no-baseline",
            "--no-cache",
            "--root",
            str(project),
            str(project),
        )
        == 1
    )


@pytest.mark.parametrize("project", GOOD_PROJECTS, ids=lambda p: p.name)
def test_good_projects_exit_zero(project):
    assert (
        run(
            "--no-baseline",
            "--no-cache",
            "--root",
            str(project),
            str(project),
        )
        == 0
    )


def test_json_format_is_machine_readable(capsys):
    fixture = FIXTURES / "deterministic" / "bad_wallclock.py"
    code = run(
        "--no-baseline",
        "--zone",
        "deterministic",
        "--format",
        "json",
        str(fixture),
    )
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["ok"] is False
    assert payload["files_scanned"] == 1
    assert len(payload["findings"]) == 4
    assert {f["rule"] for f in payload["findings"]} == {"no-wallclock"}
    assert all(f["fingerprint"] for f in payload["findings"])


def test_text_format_names_rule_and_location(capsys):
    fixture = FIXTURES / "deterministic" / "bad_wallclock.py"
    run("--no-baseline", "--zone", "deterministic", str(fixture))
    out = capsys.readouterr().out
    assert "no-wallclock" in out
    assert "bad_wallclock.py:" in out
    assert "FAILED" in out


def test_list_rules(capsys):
    assert run("--list-rules") == 0
    out = capsys.readouterr().out
    for rule_id in (
        "no-wallclock",
        "seeded-rng",
        "lease-clock",
        "lock-discipline",
        "serialization-safety",
        "no-deprecated-imports",
        "transitive-wallclock",
        "transitive-rng",
        "lock-order",
        "spec-schema-drift",
    ):
        assert rule_id in out
    # Cross-file rules are marked with the project scope, not a zone.
    assert re.search(r"transitive-wallclock\s+\[project\]", out)


def test_text_output_renders_the_chain(capsys):
    project = FIXTURES / "project" / "bad_taint_chain"
    run("--no-baseline", "--no-cache", "--root", str(project), str(project))
    out = capsys.readouterr().out
    assert "chain: repro.entry.simulate (repro/entry.py:7) -> " in out


def test_json_output_reports_cache_and_timing(tmp_path, capsys):
    project = FIXTURES / "project" / "good_schema"
    argv = (
        "--no-baseline",
        "--cache",
        str(tmp_path / "cache"),
        "--format",
        "json",
        "--root",
        str(project),
        str(project),
    )
    assert run(*argv) == 0
    cold = json.loads(capsys.readouterr().out)
    assert (cold["cache_hits"], cold["cache_misses"]) == (0, 1)
    assert cold["wall_time_s"] >= 0
    assert run(*argv) == 0
    warm = json.loads(capsys.readouterr().out)
    assert (warm["cache_hits"], warm["cache_misses"]) == (1, 0)


_DOT_BODY = re.compile(
    r'^  (rankdir=LR;|"[^"]+";|"[^"]+" -> "[^"]+"( \[[^\]]+\])?;)$'
)


def _assert_parses_as_dot(out: str, name: str) -> list[str]:
    lines = out.splitlines()
    assert lines[0] == f"digraph {name} {{"
    assert lines[-1] == "}"
    for line in lines[1:-1]:
        assert _DOT_BODY.match(line), line
    return lines


def test_graph_dot_dumps_the_call_graph(capsys):
    project = FIXTURES / "project" / "bad_taint_chain"
    assert run("--graph", "dot", "--root", str(project), str(project)) == 0
    lines = _assert_parses_as_dot(capsys.readouterr().out, "callgraph")
    assert '  "repro.entry.simulate" -> "lib.util.helper";' in lines
    assert '  "lib.util.helper" -> "lib.deep.now";' in lines


def test_graph_lock_dot_dumps_the_lock_order_graph(capsys):
    project = FIXTURES / "project" / "bad_lock_cycle"
    assert (
        run("--graph", "lock-dot", "--root", str(project), str(project)) == 0
    )
    out = capsys.readouterr().out
    _assert_parses_as_dot(out, "lockorder")
    assert (
        '"repro.sweep.backends.spool.SPOOL_LOCK" -> '
        '"repro.sweep.backends.wire.WIRE_LOCK"' in out
    )


def test_zone_of(capsys):
    assert run("--zone-of", "src/repro/sweep/backends/tcp.py") == 0
    assert capsys.readouterr().out.strip() == "distributed"
    assert run("--zone-of", "src/repro/sim/events.py") == 0
    assert capsys.readouterr().out.strip() == "deterministic"


def test_update_baseline_then_strict_clean(tmp_path, capsys):
    target = tmp_path / "offender.py"
    target.write_text("import time\n\ndef f():\n    return time.time()\n")
    baseline = tmp_path / "baseline.json"

    # Without a baseline the file fails.
    assert (
        run("--zone", "deterministic", "--baseline", str(baseline), str(target))
        == 1
    )

    # Grandfathering requires a justification...
    with pytest.raises(SystemExit) as excinfo:
        run(
            "--zone",
            "deterministic",
            "--baseline",
            str(baseline),
            "--update-baseline",
            str(target),
        )
    assert excinfo.value.code == 2
    capsys.readouterr()

    # ...and with one, a strict re-run is clean.
    assert (
        run(
            "--zone",
            "deterministic",
            "--baseline",
            str(baseline),
            "--update-baseline",
            "--justification",
            "fixture debt",
            str(target),
        )
        == 0
    )
    assert (
        run(
            "--strict",
            "--zone",
            "deterministic",
            "--baseline",
            str(baseline),
            str(target),
        )
        == 0
    )

    # Fixing the code expires the entry: strict fails, plain does not.
    target.write_text("x = 1\n")
    assert (
        run(
            "--zone",
            "deterministic",
            "--baseline",
            str(baseline),
            str(target),
        )
        == 0
    )
    assert (
        run(
            "--strict",
            "--zone",
            "deterministic",
            "--baseline",
            str(baseline),
            str(target),
        )
        == 1
    )

    # --update-baseline drops the stale entry; strict is clean again.
    assert (
        run(
            "--zone",
            "deterministic",
            "--baseline",
            str(baseline),
            "--update-baseline",
            str(target),
        )
        == 0
    )
    assert (
        run(
            "--strict",
            "--zone",
            "deterministic",
            "--baseline",
            str(baseline),
            str(target),
        )
        == 0
    )


def test_update_baseline_conflicts_with_no_baseline(capsys):
    with pytest.raises(SystemExit) as excinfo:
        run("--update-baseline", "--no-baseline")
    assert excinfo.value.code == 2


def test_corrupt_baseline_is_a_usage_error(tmp_path, capsys):
    target = tmp_path / "clean.py"
    target.write_text("x = 1\n")
    baseline = tmp_path / "baseline.json"
    baseline.write_text("{not json")
    assert run("--baseline", str(baseline), str(target)) == 2
    assert "not valid JSON" in capsys.readouterr().err
