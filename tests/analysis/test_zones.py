"""Zone-map resolution."""

from repro.analysis import Zone, zone_for


class TestZoneFor:
    def test_backends_are_distributed(self):
        assert zone_for("src/repro/sweep/backends/tcp.py") is Zone.DISTRIBUTED
        assert (
            zone_for("src/repro/sweep/backends/distributed.py")
            is Zone.DISTRIBUTED
        )
        assert zone_for("src/repro/sweep/backends/base.py") is Zone.DISTRIBUTED

    def test_sweep_core_is_deterministic(self):
        # The cache/engine/grid layer feeds reproducible results even
        # though its backends subpackage is distributed.
        assert zone_for("src/repro/sweep/cache.py") is Zone.DETERMINISTIC
        assert zone_for("src/repro/sweep/engine.py") is Zone.DETERMINISTIC

    def test_named_deterministic_zones(self):
        for module in ("sim", "search", "experiment", "core", "cluster"):
            path = f"src/repro/{module}/x.py"
            assert zone_for(path) is Zone.DETERMINISTIC, path

    def test_free_zones(self):
        assert zone_for("src/repro/viz/tables.py") is Zone.FREE
        assert zone_for("src/repro/analysis/engine.py") is Zone.FREE
        assert zone_for("benchmarks/_common.py") is Zone.FREE
        assert zone_for("examples/quickstart.py") is Zone.FREE
        assert zone_for("scripts/bench_check.py") is Zone.FREE
        assert zone_for("tests/sim/test_events.py") is Zone.FREE

    def test_absolute_and_relative_paths_agree(self):
        rel = zone_for("src/repro/sweep/backends/tcp.py")
        absolute = zone_for("/anywhere/repo/src/repro/sweep/backends/tcp.py")
        assert rel is absolute is Zone.DISTRIBUTED

    def test_unknown_paths_are_free(self):
        assert zone_for("somewhere/else.py") is Zone.FREE

    def test_longest_fragment_wins(self):
        # ``repro`` alone would say deterministic; the longer
        # ``repro/sweep/backends`` fragment must take precedence.
        assert zone_for("repro/sweep/backends/x.py") is Zone.DISTRIBUTED
        assert zone_for("repro/sweep/x.py") is Zone.DETERMINISTIC
