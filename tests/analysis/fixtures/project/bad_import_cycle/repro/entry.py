"""Deterministic caller through a cyclic import pair."""

from lib.alpha import ping


def run():
    return ping()
