"""Half of an import cycle, plus a pure re-export cycle (``broken``)."""

from lib.beta import broken, pong  # noqa: F401


def ping():
    return pong()


def dead():
    return broken()
