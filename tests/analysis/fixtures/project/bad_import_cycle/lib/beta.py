"""Other half of the cycle: imports straight back into alpha."""

import time

from lib.alpha import broken, ping  # noqa: F401  (cycle on purpose)


def pong():
    return time.time()
