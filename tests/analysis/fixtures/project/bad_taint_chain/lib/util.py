"""Free-zone helper in the middle of the chain."""

from lib.deep import now


def helper(ticks):
    return now() + ticks
