"""Free-zone leaf that reads the wall clock."""

import time


def now():
    return time.time()
