"""Deterministic entrypoint two call-edges from a wall clock."""

from lib.util import helper


def simulate(ticks):
    return helper(ticks)
