"""Locks always taken in the same global order: no cycle."""

import threading

A_LOCK = threading.Lock()
B_LOCK = threading.Lock()


def outer():
    with A_LOCK:
        inner()


def inner():
    with B_LOCK:
        pass


def outer_again():
    with A_LOCK:
        with B_LOCK:
            pass
