"""Free-zone helper drawing from the random module's global state."""

import random


def jitter(n):
    return random.random() * n
