"""Deterministic entrypoint reaching the global RNG transitively."""

from lib.noise import jitter


def plan(n):
    return jitter(n)
