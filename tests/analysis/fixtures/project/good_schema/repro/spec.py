"""Payload methods that agree with the field list."""

from dataclasses import dataclass


@dataclass(frozen=True)
class JobSpec:
    name: str
    retries: int = 0

    def key_payload(self):
        return {"name": self.name, "retries": self.retries}

    def to_payload(self):
        return {"name": self.name, "retries": self.retries}

    @classmethod
    def from_payload(cls, payload):
        return cls(name=payload["name"], retries=payload["retries"])
