"""Deterministic caller reaching a clock through method resolution."""

from lib.timer import reading


def run():
    return reading()
