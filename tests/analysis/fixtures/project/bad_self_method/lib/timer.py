"""Free-zone class hierarchy: the clock hides in a base class."""

import time


class Base:
    def now(self):
        return time.time()


class Timer(Base):
    def read(self):
        return self.now()


def reading():
    return Timer().read()
