"""Distributed wire layer: holds WIRE_LOCK, then takes the spool lock."""

import threading

from repro.sweep.backends.spool import flush_locked

WIRE_LOCK = threading.Lock()


def send_locked():
    with WIRE_LOCK:
        pass


def drain():
    with WIRE_LOCK:
        flush_locked()
