"""Distributed spool: holds SPOOL_LOCK, then takes the wire lock."""

import threading

from repro.sweep.backends.wire import send_locked

SPOOL_LOCK = threading.Lock()


def flush():
    with SPOOL_LOCK:
        send_locked()


def flush_locked():
    with SPOOL_LOCK:
        pass
