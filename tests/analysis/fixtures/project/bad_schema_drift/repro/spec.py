"""Payload methods that drifted away from the field list."""

from dataclasses import dataclass


@dataclass(frozen=True)
class JobSpec:
    name: str
    retries: int = 0
    tag: str = "latest"

    def key_payload(self):
        payload = {"name": self.name}
        if self.tag != "stable":
            payload["tag"] = self.tag
        return payload

    def to_payload(self):
        return {"name": self.name, "retries": self.retries, "tag": self.tag}

    @classmethod
    def from_payload(cls, payload):
        return cls(name=payload["name"], retries=payload.get("retries", 0))
