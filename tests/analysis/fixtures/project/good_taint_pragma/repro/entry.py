"""Deterministic entrypoint whose only source is pragma-waived."""

from lib.util import helper


def simulate(ticks):
    return helper(ticks)
