"""Free-zone helper in the middle of the (waived) chain."""

from lib.deep import now


def helper(ticks):
    return now() + ticks
