"""Free-zone clock read, waived for the taint analysis."""

import time


def now():
    return time.time()  # repro-lint: ignore[transitive-wallclock] -- fixture waiver
