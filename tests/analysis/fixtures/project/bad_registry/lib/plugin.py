"""Free-zone plugin registered into the deterministic dispatcher."""

import time

from repro.engine import register_policy


def build(scenario, kwargs):
    return time.time()


register_policy("wallclock", build)
