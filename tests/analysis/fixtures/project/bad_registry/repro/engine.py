"""Deterministic dispatcher over the policy registry."""

POLICY_REGISTRY = {}


def register_policy(name, builder):
    POLICY_REGISTRY[name] = builder


def make(name):
    return POLICY_REGISTRY[name]()
