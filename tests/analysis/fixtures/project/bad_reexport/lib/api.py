"""Facade re-exporting the implementation under a new name."""

from lib.impl import now as now_alias  # noqa: F401  (re-export)
