"""Implementation module with the actual clock read."""

import time


def now():
    return time.time()
