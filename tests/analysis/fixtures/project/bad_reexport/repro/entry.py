"""Deterministic caller of a re-exported clock helper."""

from lib.api import now_alias


def run():
    return now_alias()
