"""Good fixture: lease age as locally-observed monotonic dwell.

The sanctioned pattern from ``JobSpool.lease_age``: remember the last
observed mtime, compare later observations for *equality* (did it
change?), and measure the dwell on the local monotonic clock.
"""

import time

_seen: dict[str, tuple[int, float]] = {}


def lease_age(job_id: str, mtime_ns: int) -> float:
    now = time.monotonic()
    seen = _seen.get(job_id)
    if seen is None or seen[0] != mtime_ns:
        _seen[job_id] = (mtime_ns, now)
        return 0.0
    return now - seen[1]


def is_live(age: float, lease_ttl: float) -> bool:
    return age <= lease_ttl
