"""Bad fixture: the PR 6 clock-skew bug class, reconstructed.

Expected findings: lease-clock x4 (wall-clock read, wall-minus-mtime
subtraction on the same line counts separately, ordered comparison
against an mtime, datetime.now in broker code).
"""

import time
from datetime import datetime

LEASE_TTL = 30.0


def lease_age(path) -> float:
    # Both the time.time() call and the subtraction are flagged: the
    # mtime was written by another host's wall clock.
    return time.time() - path.stat().st_mtime


def is_expired(st, now: float) -> bool:
    return now - LEASE_TTL > st.st_mtime


def claim_stamp() -> str:
    return datetime.now().isoformat()
