"""Bad fixture: split-brain attribute locking and blocking under a lock.

Expected findings: lock-discipline x3 (self._generation written with and
without the lock; sendall and time.sleep inside the critical section).
"""

import threading
import time


class Broker:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._leases: dict[str, str] = {}
        self._generation = 0

    def claim(self, job_id: str, worker: str) -> None:
        with self._lock:
            self._leases[job_id] = worker
            self._generation += 1

    def reset(self) -> None:
        # Same attribute, no lock: a torn read is one scheduler slice away.
        self._generation = 0

    def beat(self, sock, payload: bytes) -> None:
        with self._lock:
            sock.sendall(payload)
            time.sleep(0.1)
