"""Good fixture: one locking regime per attribute, I/O outside the lock."""

import threading


class Broker:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._leases: dict[str, str] = {}
        self._generation = 0

    def claim(self, job_id: str, worker: str) -> None:
        with self._lock:
            self._leases[job_id] = worker
            self._generation += 1

    def reset(self) -> None:
        with self._lock:
            self._generation = 0

    def beat(self, sock, payload: bytes) -> None:
        with self._lock:
            generation = self._generation
        # The send happens after the critical section.
        sock.sendall(payload + str(generation).encode())
