"""Bad fixture: call-time-only callables into registries/submission.

Expected findings: serialization-safety x3 (lambda to register_policy
inside a function, local class to register_strategy, local def to
submit_many via keyword).
"""


def register_policy(name, builder, overwrite=False):  # fixture stand-in
    return builder


def register_strategy(name, cls):  # fixture stand-in
    return cls


def submit_many(scenarios, on_done=None):  # fixture stand-in
    return scenarios


def route_factory(policy_factory):
    register_policy("factory", lambda sc, kw: policy_factory(), overwrite=True)


def register_local_strategy():
    class LocalStrategy:
        pass

    register_strategy("local", LocalStrategy)


def submit_with_callback(scenarios):
    def on_done(result):
        return result

    return submit_many(scenarios, on_done=on_done)
