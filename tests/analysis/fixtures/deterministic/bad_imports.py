"""Bad fixture: imports of the deprecated ``repro.exploration`` front.

Expected findings: no-deprecated-imports x3.
"""

import repro.exploration.pareto  # noqa: F401
from repro import exploration  # noqa: F401
from repro.exploration import DesignSpaceExplorer  # noqa: F401
