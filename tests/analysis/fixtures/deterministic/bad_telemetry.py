"""Bad fixture: telemetry readings leaking into result computation.

Expected findings: telemetry-side-channel x5 — a recorder.snapshot()
read, a module-level summary() merge, a returned clock reading, a
clock-derived value stored into object state, and one passed to a
non-recorder call.
"""

from repro import telemetry
from repro.telemetry import get_recorder


def duration_from_snapshot() -> float:
    recorder = get_recorder()
    stats = recorder.snapshot()
    return stats["span_totals"]["scenario.run"]["total_s"]


def fleet_hit_rate() -> float:
    merged = telemetry.summary()
    return merged["counters"].get("sweep.cache.hit", 0.0)


def leaked_timestamp() -> float:
    recorder = get_recorder()
    started = recorder.now()
    return started


class EpochResult:
    def __init__(self) -> None:
        self.wall_seconds = 0.0

    def finish(self) -> None:
        recorder = get_recorder()
        begun = recorder.now()
        self.wall_seconds = recorder.now() - begun


def stamp_payload(payload: dict) -> dict:
    recorder = get_recorder()
    tick = recorder.now()
    payload.update(observed_at=tick)
    return payload
