"""Bad fixture: ambient clock reads where results must be reproducible.

Expected findings: no-wallclock x4 (time.time, datetime.now,
time.monotonic via alias, perf_counter via from-import).
"""

import time
import time as t
from datetime import datetime
from time import perf_counter


def epoch_stamp() -> float:
    return time.time()


def run_started() -> str:
    return datetime.now().isoformat()


def dwell() -> float:
    return t.monotonic()


def elapsed() -> float:
    return perf_counter()
